// PredictionService: a thread-safe, caching front end over the staged
// prediction pipeline, built for what-if traffic — schedulers asking
// "how long will each of these algorithms take on each of these
// datasets?" many times over.
//
// Two artifact caches amortize the expensive front half of the pipeline:
//
//   sample cache   (graph fingerprint, SamplerOptions) -> SampleArtifact
//   profile cache  (sample key, algorithm, dataset, transformed config)
//                  -> ProfileArtifact
//
// Both are shared across concurrent Predict calls: the first request for
// a key computes the artifact while later requests for the same key wait
// on it (no duplicated sampling or sample runs, no thundering herd).
// PredictBatch fans requests out over a bsp::ThreadPool.
//
// Determinism contract: every stage is deterministic, so a report served
// from warm caches under any concurrency is bit-identical to a cold
// sequential Predictor::PredictRuntime — except sample_wall_seconds,
// which reports host timing of whichever run produced the artifact.

#ifndef PREDICT_SERVICE_PREDICTION_SERVICE_H_
#define PREDICT_SERVICE_PREDICTION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bsp/thread_pool.h"
#include "common/result.h"
#include "core/predictor.h"
#include "pipeline/artifacts.h"

namespace predict {

/// One what-if query: predict `algorithm` on `*graph`.
struct PredictionRequest {
  std::string algorithm;
  /// The full graph. Not owned; must outlive the call. Requests may
  /// share one graph — the service reads it concurrently, never writes.
  const Graph* graph = nullptr;
  /// Labels profiles and excludes same-dataset history rows.
  std::string dataset;
  /// Overrides for the *actual* run's configuration.
  AlgorithmConfig overrides;
};

struct PredictionServiceOptions {
  /// Pipeline configuration shared by every request this service answers
  /// (caches are only valid within one such configuration).
  PredictorOptions predictor;

  /// Host threads for PredictBatch fan-out: -1 = one per hardware
  /// thread, 0 = inline on the caller. Independent of
  /// predictor.engine.num_threads (the per-run simulation threads); for
  /// batch serving, prefer engine.num_threads = 0 and let the batch
  /// fan-out supply the parallelism.
  int num_threads = -1;

  bool enable_sample_cache = true;
  bool enable_profile_cache = true;
};

/// Cumulative cache accounting. A "hit" includes joining an in-flight
/// computation of the same key (shared work, not duplicated work).
struct ServiceCacheStats {
  uint64_t sample_hits = 0;
  uint64_t sample_misses = 0;
  uint64_t profile_hits = 0;
  uint64_t profile_misses = 0;
};

/// \brief Concurrent, caching prediction server over one pipeline
/// configuration. All public methods are thread-safe.
class PredictionService {
 public:
  explicit PredictionService(PredictionServiceOptions options);

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Answers one request through the caches. Safe to call concurrently
  /// with any other method.
  Result<PredictionReport> Predict(const PredictionRequest& request);

  /// Answers a batch, fanning out across the service's thread pool.
  /// results[i] corresponds to requests[i]; outputs are bit-identical to
  /// issuing the requests sequentially (any thread count, any request
  /// order — see the determinism contract above).
  std::vector<Result<PredictionReport>> PredictBatch(
      const std::vector<PredictionRequest>& requests);

  ServiceCacheStats cache_stats() const;

  /// Drops every cached artifact (stats are kept).
  void ClearCaches();

  const PredictionServiceOptions& options() const { return options_; }

 private:
  struct SampleEntry;
  struct ProfileEntry;

  using SamplePtr = std::shared_ptr<const pipeline::SampleArtifact>;
  using ProfilePtr = std::shared_ptr<const pipeline::ProfileArtifact>;

  Result<SamplePtr> GetOrComputeSample(const Graph& graph);
  Result<ProfilePtr> GetOrComputeProfile(
      const std::string& profile_key, const std::string& algorithm,
      const std::string& dataset, const pipeline::SampleArtifact& sample,
      const pipeline::TransformArtifact& transform);

  PredictionServiceOptions options_;
  PredictionPipeline stages_;

  /// Serializes PredictBatch callers (ThreadPool runs one batch at a
  /// time); single Predict calls do not take this.
  std::mutex batch_mutex_;
  bsp::ThreadPool pool_;

  mutable std::mutex mutex_;  // guards the two maps and stats_
  std::unordered_map<std::string, std::shared_ptr<SampleEntry>> sample_cache_;
  std::unordered_map<std::string, std::shared_ptr<ProfileEntry>> profile_cache_;
  ServiceCacheStats stats_;
};

}  // namespace predict

#endif  // PREDICT_SERVICE_PREDICTION_SERVICE_H_
