// PredictionService: a thread-safe, caching front end over the staged
// prediction pipeline, built for what-if traffic — schedulers asking
// "how long will each of these algorithms take on each of these
// datasets?" many times over.
//
// Two artifact caches amortize the expensive front half of the pipeline:
//
//   sample cache   (graph fingerprint, SamplerOptions) -> SampleArtifact
//   profile cache  (sample key, algorithm, dataset, transformed config,
//                  scenario key) -> ProfileArtifact
//
// Both are shared across concurrent Predict calls: the first request for
// a key computes the artifact while later requests for the same key wait
// on it (no duplicated sampling or sample runs, no thundering herd).
// PredictBatch fans requests out over a bsp::ThreadPool.
//
// Requests may target a cluster scenario (bsp/scenario.h) other than the
// service's configured deployment: the sample cache is scenario-agnostic
// (sampling is deployment-independent) and keeps its hits, while the
// profile cache keys on the scenario's canonical engine key, so a
// profile measured under one deployment is never served for another.
// PredictScenarios sweeps one request across many scenarios, reusing the
// cached sample and fanning the per-scenario sample runs out over the
// pool.
//
// Determinism contract: every stage is deterministic, so a report served
// from warm caches under any concurrency is bit-identical to a cold
// sequential Predictor::PredictRuntime — except sample_wall_seconds,
// which reports host timing of whichever run produced the artifact, and
// PredictionReport::accounting, which counts whichever attempts this
// host's interleaving actually ran.
//
// Failure semantics (the robustness contract):
//   - A failed stage never populates a cache: the computing thread
//     erases the in-flight slot before publishing the error, so the next
//     request for the key re-attempts instead of replaying a cached
//     failure (no cache poisoning, no latched errors).
//   - Concurrent joiners of a failed computation receive that failure
//     (deterministic under an armed fault schedule), but do not latch it.
//   - With predictor.robustness.degraded_fallbacks set, a failed or
//     deadline-exceeded request walks the degradation ladder: last good
//     profile cached for the same profile key (survives ClearCaches —
//     "previous epoch" semantics), then a history-only fit, then the
//     explicit error. The report's `degradation` field says which rung
//     answered.

#ifndef PREDICT_SERVICE_PREDICTION_SERVICE_H_
#define PREDICT_SERVICE_PREDICTION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bsp/scenario.h"
#include "bsp/thread_pool.h"
#include "common/result.h"
#include "core/predictor.h"
#include "pipeline/artifacts.h"

namespace predict {

/// One what-if query: predict `algorithm` on `*graph`.
struct PredictionRequest {
  std::string algorithm;
  /// The full graph. Not owned; must outlive the call. Requests may
  /// share one graph — the service reads it concurrently, never writes.
  const Graph* graph = nullptr;
  /// Labels profiles and excludes same-dataset history rows.
  std::string dataset;
  /// Overrides for the *actual* run's configuration.
  AlgorithmConfig overrides;
  /// Target deployment; unset = the service's configured engine. Only
  /// the engine configuration changes — sampler and cost-model options
  /// stay the service's (the caches remain valid across scenarios).
  /// History rows carry no deployment identity, so they join the fit
  /// only when the scenario's canonical engine key matches the
  /// service's configured engine; other scenarios fit on the sample run
  /// alone (the paper re-trains its cost model per cluster).
  std::optional<bsp::ClusterScenario> scenario;
};

struct PredictionServiceOptions {
  /// Pipeline configuration shared by every request this service answers
  /// (caches are only valid within one such configuration).
  PredictorOptions predictor;

  /// Host threads for PredictBatch fan-out: -1 = one per hardware
  /// thread, 0 = inline on the caller. Independent of
  /// predictor.engine.num_threads (the per-run simulation threads); for
  /// batch serving, prefer engine.num_threads = 0 and let the batch
  /// fan-out supply the parallelism.
  int num_threads = -1;

  bool enable_sample_cache = true;
  bool enable_profile_cache = true;

  /// Maintain the characterized sample incrementally across graph
  /// versions: on a sample-cache miss the service diffs the new graph
  /// against the last graph it sampled and re-walks only the affected
  /// walk segments (bit-identical to sampling from scratch). Effective
  /// only when predictor.sampler.walk_segment_steps > 0; costs one
  /// retained copy of the last-sampled graph plus its walk record.
  bool enable_incremental_sampling = true;
};

/// Cumulative cache accounting. A "hit" includes joining an in-flight
/// computation of the same key (shared work, not duplicated work).
struct ServiceCacheStats {
  uint64_t sample_hits = 0;
  uint64_t sample_misses = 0;
  uint64_t profile_hits = 0;
  uint64_t profile_misses = 0;
  /// Degraded-mode accounting: requests answered from the stale-profile
  /// rung and from the history-only rung.
  uint64_t stale_profile_hits = 0;
  uint64_t history_only_fallbacks = 0;
  /// Incremental-sampling accounting: sample-cache misses answered by
  /// splicing the previous walk record (vs sampling from scratch), and
  /// walk segments replayed without re-walking across those updates.
  uint64_t incremental_sample_updates = 0;
  uint64_t incremental_segments_reused = 0;
};

/// What ClearCaches dropped.
struct ServiceCacheEvictions {
  uint64_t sample_entries = 0;
  uint64_t profile_entries = 0;
  /// 1 if a retained incremental-sampling state (graph + walk record)
  /// was dropped.
  uint64_t incremental_states = 0;
};

/// \brief Concurrent, caching prediction server over one pipeline
/// configuration. All public methods are thread-safe.
class PredictionService {
 public:
  explicit PredictionService(PredictionServiceOptions options);

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Answers one request through the caches. Safe to call concurrently
  /// with any other method.
  Result<PredictionReport> Predict(const PredictionRequest& request);

  /// Answers a batch, fanning out across the service's thread pool.
  /// results[i] corresponds to requests[i]; outputs are bit-identical to
  /// issuing the requests sequentially (any thread count, any request
  /// order — see the determinism contract above).
  std::vector<Result<PredictionReport>> PredictBatch(
      const std::vector<PredictionRequest>& requests);

  /// Cross-deployment what-if: answers `request` under each scenario
  /// (ignoring request.scenario), fanning out across the pool. The
  /// sample is shared across scenarios via the sample cache; each
  /// scenario's sample run populates its own profile-cache slot.
  /// results[i] corresponds to scenarios[i] and is bit-identical to a
  /// sequential per-scenario loop.
  std::vector<Result<PredictionReport>> PredictScenarios(
      const PredictionRequest& request,
      const std::vector<bsp::ClusterScenario>& scenarios);

  ServiceCacheStats cache_stats() const;

  /// Drops every cached artifact and the incremental-sampling state
  /// (stats and last-good profiles are kept). Returns what was evicted.
  ServiceCacheEvictions ClearCaches();

  const PredictionServiceOptions& options() const { return options_; }

 private:
  struct SampleEntry;
  struct ProfileEntry;

  using SamplePtr = std::shared_ptr<const pipeline::SampleArtifact>;
  using ProfilePtr = std::shared_ptr<const pipeline::ProfileArtifact>;

  /// `cache_hit` (may be null) reports whether the artifact was served
  /// from the cache (including joining an in-flight computation).
  Result<SamplePtr> GetOrComputeSample(const Graph& graph,
                                       const pipeline::StageContext& ctx,
                                       bool* cache_hit = nullptr);
  Result<ProfilePtr> GetOrComputeProfile(
      const std::string& profile_key, const std::string& algorithm,
      const std::string& dataset, const pipeline::SampleArtifact& sample,
      const pipeline::TransformArtifact& transform,
      const bsp::EngineOptions& engine, const pipeline::StageContext& ctx,
      bool* cache_hit = nullptr);

  /// Computes the sample artifact on a cache miss: incrementally from
  /// the retained previous walk when possible, from scratch otherwise.
  Result<SamplePtr> ComputeSampleArtifact(const Graph& graph,
                                          const pipeline::StageContext& ctx);

  PredictionServiceOptions options_;
  PredictionPipeline stages_;
  /// stages_ with the history store detached: assembles reports for
  /// scenarios that model a deployment other than the configured one
  /// (history rows belong to the configured deployment only).
  PredictionPipeline history_free_stages_;
  /// EngineOptionsKey of the service's configured deployment, the
  /// profile-cache scenario component for requests without a scenario.
  std::string default_engine_key_;
  /// Canonical key of the model configuration (cost-model options + zoo
  /// thresholds + bootstrap settings), a component of every profile
  /// cache key: artifacts cached under one model configuration are never
  /// mistaken for another's if services ever share a cache backing.
  std::string model_config_key_;

  /// Serializes PredictBatch callers (ThreadPool runs one batch at a
  /// time); single Predict calls do not take this.
  std::mutex batch_mutex_;
  bsp::ThreadPool pool_;

  mutable std::mutex mutex_;  // guards the maps below and stats_
  std::unordered_map<std::string, std::shared_ptr<SampleEntry>> sample_cache_;
  std::unordered_map<std::string, std::shared_ptr<ProfileEntry>> profile_cache_;
  /// Last successfully computed profile per profile key: the
  /// stale-profile degradation rung. Updated on every successful profile
  /// compute; intentionally NOT dropped by ClearCaches, so a service
  /// whose caches were cleared (a "restart") can still answer from the
  /// previous epoch's profiles when the fresh run fails.
  std::unordered_map<std::string, ProfilePtr> last_good_profiles_;
  /// The last graph this service sampled plus the walk record taken on
  /// it — the splice source for incremental re-sampling. One slot: the
  /// evolving-graph workload this serves is "predict, churn, re-predict"
  /// on one logical graph. A compute in flight takes the slot (so a
  /// concurrent sample for a different graph falls back to a cold walk)
  /// and stores the refreshed state back when done.
  struct IncrementalState {
    Graph graph;
    SampleWalkRecord record;
  };
  std::optional<IncrementalState> incremental_state_;
  ServiceCacheStats stats_;
};

}  // namespace predict

#endif  // PREDICT_SERVICE_PREDICTION_SERVICE_H_
