#include "service/prediction_service.h"

#include <optional>
#include <thread>
#include <utility>

namespace predict {

namespace {

uint32_t ResolveThreads(int num_threads) {
  if (num_threads >= 0) return static_cast<uint32_t>(num_threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

PredictorOptions WithoutHistory(PredictorOptions options) {
  options.history = nullptr;
  return options;
}

}  // namespace

// A cache slot that deduplicates concurrent computation: whichever
// thread first reaches call_once computes; everyone else blocks until
// the result (value or error — both deterministic) is published.
struct PredictionService::SampleEntry {
  std::once_flag once;
  Result<SamplePtr> result = Status::Internal("uncomputed");
};

struct PredictionService::ProfileEntry {
  std::once_flag once;
  Result<ProfilePtr> result = Status::Internal("uncomputed");
};

PredictionService::PredictionService(PredictionServiceOptions options)
    : options_(std::move(options)),
      stages_(options_.predictor),
      history_free_stages_(WithoutHistory(options_.predictor)),
      default_engine_key_(bsp::EngineOptionsKey(options_.predictor.engine)),
      model_config_key_(
          models::ModelConfigKey(options_.predictor.cost_model,
                                 options_.predictor.model_zoo) +
          ";" + options_.predictor.bootstrap.ConfigKey()),
      pool_(ResolveThreads(options_.num_threads)) {}

Result<PredictionService::SamplePtr> PredictionService::GetOrComputeSample(
    const Graph& graph) {
  auto compute = [&]() -> Result<SamplePtr> {
    PREDICT_ASSIGN_OR_RETURN(pipeline::SampleArtifact artifact,
                             stages_.sample.Run(graph));
    return std::make_shared<const pipeline::SampleArtifact>(
        std::move(artifact));
  };

  if (!options_.enable_sample_cache) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.sample_misses;
    }
    return compute();  // outside the lock: uncached work must still overlap
  }

  const std::string key =
      pipeline::SampleKey::For(graph, stages_.sample.options()).ToString();
  std::shared_ptr<SampleEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<SampleEntry>& slot = sample_cache_[key];
    if (slot == nullptr) {
      slot = std::make_shared<SampleEntry>();
      ++stats_.sample_misses;
    } else {
      ++stats_.sample_hits;
    }
    entry = slot;
  }
  std::call_once(entry->once, [&] { entry->result = compute(); });
  return entry->result;
}

Result<PredictionService::ProfilePtr> PredictionService::GetOrComputeProfile(
    const std::string& profile_key, const std::string& algorithm,
    const std::string& dataset, const pipeline::SampleArtifact& sample,
    const pipeline::TransformArtifact& transform,
    const bsp::EngineOptions& engine) {
  auto compute = [&]() -> Result<ProfilePtr> {
    PREDICT_ASSIGN_OR_RETURN(
        pipeline::ProfileArtifact artifact,
        stages_.profile.RunWithEngine(algorithm, dataset, sample, transform,
                                      engine));
    return std::make_shared<const pipeline::ProfileArtifact>(
        std::move(artifact));
  };

  if (!options_.enable_profile_cache) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.profile_misses;
    }
    return compute();  // outside the lock: uncached work must still overlap
  }

  std::shared_ptr<ProfileEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<ProfileEntry>& slot = profile_cache_[profile_key];
    if (slot == nullptr) {
      slot = std::make_shared<ProfileEntry>();
      ++stats_.profile_misses;
    } else {
      ++stats_.profile_hits;
    }
    entry = slot;
  }
  std::call_once(entry->once, [&] { entry->result = compute(); });
  return entry->result;
}

Result<PredictionReport> PredictionService::Predict(
    const PredictionRequest& request) {
  if (request.graph == nullptr) {
    return Status::InvalidArgument("PredictionRequest.graph must not be null");
  }
  const Graph& graph = *request.graph;

  // Fail fast on an unknown algorithm or bad override before sampling
  // (and before occupying a sample-cache slot for a doomed request).
  const Status valid =
      stages_.transform.Validate(request.algorithm, request.overrides);
  if (!valid.ok()) return valid;

  // 1. Sample (cached on the graph's content + sampler options; the
  // sample is deployment-independent, so scenario requests share it).
  PREDICT_ASSIGN_OR_RETURN(SamplePtr sample, GetOrComputeSample(graph));

  // 2. Transform (cheap; always recomputed).
  PREDICT_ASSIGN_OR_RETURN(pipeline::TransformArtifact transform,
                           stages_.transform.Run(request.algorithm,
                                                 request.overrides,
                                                 sample->realized_ratio()));

  // 3. Sample run (cached on sample identity + algorithm + dataset label
  // + transformed config + the target deployment's canonical engine key
  // — everything the profile depends on).
  bsp::EngineOptions engine = options_.predictor.engine;
  std::string engine_key = default_engine_key_;
  if (request.scenario.has_value()) {
    // Scenario runs simulate inline on the calling (fan-out) thread,
    // like Predictor::PredictAcrossScenarios: inheriting a hardware-wide
    // num_threads here would nest an engine pool inside every
    // PredictScenarios pool task. Inline execution never changes
    // simulated output (the determinism contract).
    engine = request.scenario->ToEngineOptions(0);
    engine_key = bsp::EngineOptionsKey(engine);
  }
  const std::string profile_key =
      sample->key.ToString() + "|" + request.algorithm + "|" +
      request.dataset + "|" + transform.ConfigKey() + "|" + engine_key + "|" +
      model_config_key_;
  PREDICT_ASSIGN_OR_RETURN(
      ProfilePtr profile,
      GetOrComputeProfile(profile_key, request.algorithm, request.dataset,
                          *sample, transform, engine));

  // 4-6. Extrapolate, fit, predict — per request, never cached (history
  // exclusion and the full graph differ per request). History belongs
  // to the configured deployment only (StagesForDeployment).
  const PredictionPipeline& assemble_stages = StagesForDeployment(
      engine_key, default_engine_key_, stages_, history_free_stages_);
  PREDICT_ASSIGN_OR_RETURN(
      PredictionReport report,
      AssemblePredictionReport(assemble_stages, graph, request.algorithm,
                               request.dataset, *sample, transform, *profile));
  if (request.scenario.has_value()) report.scenario = request.scenario->name;
  return report;
}

std::vector<Result<PredictionReport>> PredictionService::PredictScenarios(
    const PredictionRequest& request,
    const std::vector<bsp::ClusterScenario>& scenarios) {
  // One request per scenario through the regular cached path: the first
  // to need the sample computes it, everyone else joins it.
  std::vector<std::optional<Result<PredictionReport>>> slots(scenarios.size());
  {
    std::lock_guard<std::mutex> batch_lock(batch_mutex_);
    pool_.ParallelFor(scenarios.size(), [&](uint64_t i) {
      PredictionRequest scenario_request = request;
      scenario_request.scenario = scenarios[i];
      slots[i].emplace(Predict(scenario_request));
    });
  }

  std::vector<Result<PredictionReport>> results;
  results.reserve(scenarios.size());
  for (std::optional<Result<PredictionReport>>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

std::vector<Result<PredictionReport>> PredictionService::PredictBatch(
    const std::vector<PredictionRequest>& requests) {
  // Slots are written by index: results are positionally deterministic no
  // matter which pool thread answers which request.
  std::vector<std::optional<Result<PredictionReport>>> slots(requests.size());
  {
    std::lock_guard<std::mutex> batch_lock(batch_mutex_);
    pool_.ParallelFor(requests.size(), [&](uint64_t i) {
      slots[i].emplace(Predict(requests[i]));
    });
  }

  std::vector<Result<PredictionReport>> results;
  results.reserve(requests.size());
  for (std::optional<Result<PredictionReport>>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

ServiceCacheStats PredictionService::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PredictionService::ClearCaches() {
  std::lock_guard<std::mutex> lock(mutex_);
  sample_cache_.clear();
  profile_cache_.clear();
}

}  // namespace predict
