#include "service/prediction_service.h"

#include <condition_variable>
#include <optional>
#include <thread>
#include <utility>

#include "graph/delta.h"

namespace predict {

namespace {

uint32_t ResolveThreads(int num_threads) {
  if (num_threads >= 0) return static_cast<uint32_t>(num_threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

PredictorOptions WithoutHistory(PredictorOptions options) {
  options.history = nullptr;
  return options;
}

}  // namespace

// A cache slot that deduplicates concurrent computation: the thread that
// created the slot computes; everyone else blocks until the result
// (value or error — both deterministic) is published. Deliberately NOT a
// once_flag: a once_flag would latch the first failure into the cache
// forever, whereas these slots are erased from the map before a failure
// is published, so the next request re-attempts.
template <typename ValuePtr>
struct CacheEntry {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Result<ValuePtr> result = Status::Internal("uncomputed");

  void Publish(Result<ValuePtr> value) {
    {
      std::lock_guard<std::mutex> lock(m);
      result = std::move(value);
      done = true;
    }
    cv.notify_all();
  }

  Result<ValuePtr> Wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done; });
    return result;
  }
};

struct PredictionService::SampleEntry : CacheEntry<SamplePtr> {};
struct PredictionService::ProfileEntry : CacheEntry<ProfilePtr> {};

PredictionService::PredictionService(PredictionServiceOptions options)
    : options_(std::move(options)),
      stages_(options_.predictor),
      history_free_stages_(WithoutHistory(options_.predictor)),
      default_engine_key_(bsp::EngineOptionsKey(options_.predictor.engine)),
      model_config_key_(
          models::ModelConfigKey(options_.predictor.cost_model,
                                 options_.predictor.model_zoo) +
          ";" + options_.predictor.bootstrap.ConfigKey()),
      pool_(ResolveThreads(options_.num_threads)) {}

Result<PredictionService::SamplePtr> PredictionService::ComputeSampleArtifact(
    const Graph& graph, const pipeline::StageContext& ctx) {
  const bool incremental_enabled =
      options_.enable_incremental_sampling &&
      options_.predictor.sampler.walk_segment_steps != 0;
  if (!incremental_enabled) {
    PREDICT_ASSIGN_OR_RETURN(pipeline::SampleArtifact artifact,
                             stages_.sample.Run(graph, ctx));
    return std::make_shared<const pipeline::SampleArtifact>(
        std::move(artifact));
  }

  // Take the retained previous-walk state (if any); a concurrent
  // compute for another graph simply finds the slot empty and walks
  // cold. Either way the artifact is bit-identical — the state is a
  // pure accelerator.
  std::optional<IncrementalState> prev;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    prev.swap(incremental_state_);
  }

  pipeline::SampleArtifact artifact;
  SampleWalkRecord updated;
  pipeline::SampleStage::IncrementalStats inc_stats;
  bool incremental_ran = false;
  if (prev.has_value() && prev->graph.num_vertices() == graph.num_vertices()) {
    const std::vector<VertexId> dirty = DirtyOutVertices(prev->graph, graph);
    // Past ~25% dirty vertices the splice check itself stops paying;
    // walk from scratch instead.
    if (dirty.size() * 4 <= graph.num_vertices()) {
      PREDICT_ASSIGN_OR_RETURN(
          artifact, stages_.sample.RunIncremental(graph, dirty, prev->record,
                                                  &updated, &inc_stats, ctx));
      incremental_ran = true;
    }
  }
  if (!incremental_ran) {
    PREDICT_ASSIGN_OR_RETURN(artifact,
                             stages_.sample.RunRecorded(graph, &updated, ctx));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    incremental_state_.emplace(IncrementalState{graph, std::move(updated)});
    if (incremental_ran && !inc_stats.full_resample) {
      ++stats_.incremental_sample_updates;
      stats_.incremental_segments_reused += inc_stats.segments_reused;
    }
  }
  return std::make_shared<const pipeline::SampleArtifact>(std::move(artifact));
}

Result<PredictionService::SamplePtr> PredictionService::GetOrComputeSample(
    const Graph& graph, const pipeline::StageContext& ctx, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  auto compute = [&]() -> Result<SamplePtr> {
    return ComputeSampleArtifact(graph, ctx);
  };

  if (!options_.enable_sample_cache) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.sample_misses;
    }
    return compute();  // outside the lock: uncached work must still overlap
  }

  const std::string key =
      pipeline::SampleKey::For(graph, stages_.sample.options()).ToString();
  std::shared_ptr<SampleEntry> entry;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<SampleEntry>& slot = sample_cache_[key];
    if (slot == nullptr) {
      slot = std::make_shared<SampleEntry>();
      creator = true;
      ++stats_.sample_misses;
    } else {
      ++stats_.sample_hits;
    }
    entry = slot;
  }
  if (!creator) {
    if (cache_hit != nullptr) *cache_hit = true;
    return entry->Wait();
  }

  Result<SamplePtr> result = compute();
  if (!result.ok()) {
    // Cache hygiene: drop the slot *before* publishing the failure, so
    // by the time any joiner observes the error the cache no longer
    // holds it and the next request for this key re-attempts.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sample_cache_.find(key);
    if (it != sample_cache_.end() && it->second == entry) {
      sample_cache_.erase(it);
    }
  }
  entry->Publish(result);
  return result;
}

Result<PredictionService::ProfilePtr> PredictionService::GetOrComputeProfile(
    const std::string& profile_key, const std::string& algorithm,
    const std::string& dataset, const pipeline::SampleArtifact& sample,
    const pipeline::TransformArtifact& transform,
    const bsp::EngineOptions& engine, const pipeline::StageContext& ctx,
    bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  auto compute = [&]() -> Result<ProfilePtr> {
    PREDICT_ASSIGN_OR_RETURN(
        pipeline::ProfileArtifact artifact,
        stages_.profile.RunWithEngine(algorithm, dataset, sample, transform,
                                      engine, ctx));
    return std::make_shared<const pipeline::ProfileArtifact>(
        std::move(artifact));
  };
  // Every successful profile run — cached or not — refreshes the
  // stale-profile rung for its key.
  auto remember_good = [&](const Result<ProfilePtr>& result) {
    if (!result.ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    last_good_profiles_[profile_key] = *result;
  };

  if (!options_.enable_profile_cache) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.profile_misses;
    }
    Result<ProfilePtr> result = compute();  // outside the lock: must overlap
    remember_good(result);
    return result;
  }

  std::shared_ptr<ProfileEntry> entry;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<ProfileEntry>& slot = profile_cache_[profile_key];
    if (slot == nullptr) {
      slot = std::make_shared<ProfileEntry>();
      creator = true;
      ++stats_.profile_misses;
    } else {
      ++stats_.profile_hits;
    }
    entry = slot;
  }
  if (!creator) {
    if (cache_hit != nullptr) *cache_hit = true;
    return entry->Wait();
  }

  Result<ProfilePtr> result = compute();
  if (!result.ok()) {
    // Cache hygiene: the failed slot leaves the map before the failure
    // is visible to anyone (see GetOrComputeSample).
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = profile_cache_.find(profile_key);
    if (it != profile_cache_.end() && it->second == entry) {
      profile_cache_.erase(it);
    }
  }
  remember_good(result);
  entry->Publish(result);
  return result;
}

Result<PredictionReport> PredictionService::Predict(
    const PredictionRequest& request) {
  if (request.graph == nullptr) {
    return Status::InvalidArgument("PredictionRequest.graph must not be null");
  }
  const Graph& graph = *request.graph;

  // Fail fast on an unknown algorithm or bad override before sampling
  // (and before occupying a sample-cache slot for a doomed request).
  // Never degrades: a misspelled request must fail loudly.
  const Status valid =
      stages_.transform.Validate(request.algorithm, request.overrides);
  if (!valid.ok()) return valid;

  const RobustnessOptions& robustness = options_.predictor.robustness;
  const Deadline deadline = robustness.deadline_seconds > 0
                                ? Deadline::After(robustness.deadline_seconds)
                                : Deadline::Infinite();
  RequestAccounting accounting;
  const pipeline::StageContext sample_ctx{robustness.retry, deadline,
                                          &accounting.sample};
  const pipeline::StageContext profile_ctx{robustness.retry, deadline,
                                           &accounting.profile};
  const pipeline::StageContext fit_ctx{robustness.retry, deadline,
                                       &accounting.fit};

  // The target deployment decides both the history-only fallback's worker
  // count and (below) the profile-cache scenario component.
  bsp::EngineOptions engine = options_.predictor.engine;
  std::string engine_key = default_engine_key_;
  if (request.scenario.has_value()) {
    // Scenario runs simulate inline on the calling (fan-out) thread,
    // like Predictor::PredictAcrossScenarios: inheriting a hardware-wide
    // num_threads here would nest an engine pool inside every
    // PredictScenarios pool task. Inline execution never changes
    // simulated output (the determinism contract).
    engine = request.scenario->ToEngineOptions(0);
    engine_key = bsp::EngineOptionsKey(engine);
  }

  // The ladder's bottom rung: answer from history alone, at the target
  // deployment's scale.
  auto history_only = [&](const Status& cause) -> Result<PredictionReport> {
    if (!robustness.degraded_fallbacks) return cause;
    Result<PredictionReport> fallback = HistoryOnlyPrediction(
        options_.predictor, request.algorithm, request.dataset,
        engine.num_workers, cause.ToString());
    if (!fallback.ok()) return fallback.status();
    if (request.scenario.has_value()) {
      fallback->scenario = request.scenario->name;
    }
    fallback->accounting = accounting;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.history_only_fallbacks;
    }
    return fallback;
  };

  // 1. Sample (cached on the graph's content + sampler options; the
  // sample is deployment-independent, so scenario requests share it).
  bool sample_reused = false;
  Result<SamplePtr> sample = GetOrComputeSample(graph, sample_ctx,
                                                &sample_reused);
  if (!sample.ok()) return history_only(sample.status());

  // 2. Transform (cheap; always recomputed). Pure config arithmetic — a
  // failure is a configuration bug, not a fault, and does not degrade.
  PREDICT_ASSIGN_OR_RETURN(
      pipeline::TransformArtifact transform,
      stages_.transform.Run(request.algorithm, request.overrides,
                            (*sample)->realized_ratio()));

  // 3. Sample run (cached on the sample's *content* + algorithm +
  // dataset label + transformed config + the target deployment's
  // canonical engine key — everything the profile depends on, and
  // nothing it doesn't: keying on content rather than the graph version
  // the sample came from keeps profiles hitting across graph churn that
  // leaves the sample unchanged).
  const std::string profile_key =
      (*sample)->ContentKey() + "|" + request.algorithm + "|" +
      request.dataset + "|" + transform.ConfigKey() + "|" + engine_key + "|" +
      model_config_key_;
  DegradationInfo degradation;
  bool profile_reused = false;
  Result<ProfilePtr> profile =
      GetOrComputeProfile(profile_key, request.algorithm, request.dataset,
                          **sample, transform, engine, profile_ctx,
                          &profile_reused);
  if (!profile.ok()) {
    if (!robustness.degraded_fallbacks) return profile.status();
    // Middle rung: the last profile this service (ever) computed for the
    // exact same key — same sample, config, deployment, just possibly
    // from a previous cache epoch.
    ProfilePtr stale;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = last_good_profiles_.find(profile_key);
      if (it != last_good_profiles_.end()) stale = it->second;
    }
    if (stale == nullptr) return history_only(profile.status());
    degradation.rung = DegradationRung::kStaleProfile;
    degradation.cause = profile.status().ToString();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.stale_profile_hits;
    }
    profile = stale;
    profile_reused = true;  // answered from a prior epoch's artifact
  }

  // 4-6. Extrapolate, fit, predict — per request, never cached (history
  // exclusion and the full graph differ per request). History belongs
  // to the configured deployment only (StagesForDeployment).
  const PredictionPipeline& assemble_stages = StagesForDeployment(
      engine_key, default_engine_key_, stages_, history_free_stages_);
  Result<PredictionReport> report = AssemblePredictionReport(
      assemble_stages, graph, request.algorithm, request.dataset, **sample,
      transform, **profile, fit_ctx);
  if (!report.ok()) return history_only(report.status());
  report->degradation = degradation;
  report->accounting = accounting;
  // Transform, extrapolate, and fit always execute per request; sample
  // and profile are the cacheable stages.
  report->stages_reused = (sample_reused ? 1 : 0) + (profile_reused ? 1 : 0);
  report->stages_recomputed = 5 - report->stages_reused;
  if (request.scenario.has_value()) report->scenario = request.scenario->name;
  return report;
}

std::vector<Result<PredictionReport>> PredictionService::PredictScenarios(
    const PredictionRequest& request,
    const std::vector<bsp::ClusterScenario>& scenarios) {
  // One request per scenario through the regular cached path: the first
  // to need the sample computes it, everyone else joins it.
  std::vector<std::optional<Result<PredictionReport>>> slots(scenarios.size());
  {
    std::lock_guard<std::mutex> batch_lock(batch_mutex_);
    pool_.ParallelFor(scenarios.size(), [&](uint64_t i) {
      PredictionRequest scenario_request = request;
      scenario_request.scenario = scenarios[i];
      slots[i].emplace(Predict(scenario_request));
    });
  }

  std::vector<Result<PredictionReport>> results;
  results.reserve(scenarios.size());
  for (std::optional<Result<PredictionReport>>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

std::vector<Result<PredictionReport>> PredictionService::PredictBatch(
    const std::vector<PredictionRequest>& requests) {
  // Slots are written by index: results are positionally deterministic no
  // matter which pool thread answers which request.
  std::vector<std::optional<Result<PredictionReport>>> slots(requests.size());
  {
    std::lock_guard<std::mutex> batch_lock(batch_mutex_);
    pool_.ParallelFor(requests.size(), [&](uint64_t i) {
      slots[i].emplace(Predict(requests[i]));
    });
  }

  std::vector<Result<PredictionReport>> results;
  results.reserve(requests.size());
  for (std::optional<Result<PredictionReport>>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

ServiceCacheStats PredictionService::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ServiceCacheEvictions PredictionService::ClearCaches() {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceCacheEvictions evicted;
  evicted.sample_entries = sample_cache_.size();
  evicted.profile_entries = profile_cache_.size();
  evicted.incremental_states = incremental_state_.has_value() ? 1 : 0;
  sample_cache_.clear();
  profile_cache_.clear();
  incremental_state_.reset();
  return evicted;
}

}  // namespace predict
