// The extrapolator (§3.4): scales features profiled on the sample run up
// to the complete dataset.
//
// Two factors: eV = |V_G| / |V_S| for vertex-dependent features
// (ActVert, TotVert) and eE = |E_G| / |E_S| for edge-dependent features
// (message counts and byte counts). AvgMsgSize and the number of
// iterations are not extrapolated (Table 1).

#ifndef PREDICT_CORE_EXTRAPOLATOR_H_
#define PREDICT_CORE_EXTRAPOLATOR_H_

#include "common/result.h"
#include "core/features.h"
#include "graph/graph.h"

namespace predict {

/// Scaling factors from a sample to the full graph.
struct ExtrapolationFactors {
  double vertex_factor = 1.0;  ///< eV
  double edge_factor = 1.0;    ///< eE
};

/// Computes eV and eE from the two graphs' sizes.
Result<ExtrapolationFactors> ComputeExtrapolationFactors(const Graph& full,
                                                         const Graph& sample);

/// Scales one feature vector.
FeatureVector ExtrapolateFeatures(const FeatureVector& sample_features,
                                  const ExtrapolationFactors& factors);

/// Scales a whole sample-run profile, iteration by iteration (the paper:
/// "extrapolation of input features is done at the granularity of
/// iterations").
RunProfile ExtrapolateProfile(const RunProfile& sample_profile,
                              const ExtrapolationFactors& factors);

}  // namespace predict

#endif  // PREDICT_CORE_EXTRAPOLATOR_H_
