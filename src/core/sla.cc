#include "core/sla.h"

#include <cstdio>

#include "common/strings.h"

namespace predict {

std::string FeasibilityReport::ToString() const {
  std::string out =
      "job                     predicted  p(conf)      deadline  verdict\n";
  char buf[192];
  for (const JobFeasibility& job : jobs) {
    const char* verdict = job.feasible ? "OK" : "VIOLATES SLA";
    if (job.rejected_degraded) verdict = "DEGRADED (rejected)";
    std::snprintf(buf, sizeof(buf), "%-22s %10s  %10s@%.2f  %10s  %s%s\n",
                  job.job_name.c_str(),
                  FormatSeconds(job.predicted_seconds).c_str(),
                  FormatSeconds(job.predicted_at_confidence_seconds).c_str(),
                  job.confidence,
                  FormatSeconds(job.deadline_seconds).c_str(), verdict,
                  job.degradation.degraded() && !job.rejected_degraded
                      ? " [degraded]"
                      : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "workload: %s, total predicted %s\n",
                all_feasible ? "FEASIBLE" : "INFEASIBLE",
                FormatSeconds(total_predicted_seconds).c_str());
  out += buf;
  return out;
}

Result<FeasibilityReport> AnalyzeFeasibility(const std::vector<JobRequest>& jobs,
                                             const PredictorOptions& options) {
  FeasibilityReport report;
  Predictor predictor(options);
  for (const JobRequest& job : jobs) {
    if (job.graph == nullptr) {
      return Status::InvalidArgument("job '" + job.job_name + "' has no graph");
    }
    PREDICT_ASSIGN_OR_RETURN(
        PredictionReport prediction,
        predictor.PredictRuntime(job.algorithm, *job.graph, job.dataset_name,
                                 job.overrides));
    JobFeasibility feasibility;
    feasibility.job_name = job.job_name;
    feasibility.predicted_seconds = prediction.predicted_superstep_seconds;
    feasibility.confidence = job.confidence;
    feasibility.predicted_at_confidence_seconds =
        prediction.distribution.PredictedAtConfidence(job.confidence);
    feasibility.deadline_seconds = job.deadline_seconds;
    feasibility.feasible =
        feasibility.predicted_at_confidence_seconds <= job.deadline_seconds;
    feasibility.headroom_seconds =
        job.deadline_seconds - feasibility.predicted_at_confidence_seconds;
    feasibility.degradation = prediction.degradation;
    if (job.require_full_quality && prediction.degradation.degraded()) {
      // A degraded prediction skips the methodology the SLA decision is
      // calibrated on; the caller asked not to gamble on it.
      feasibility.feasible = false;
      feasibility.rejected_degraded = true;
    }
    feasibility.report = std::move(prediction);

    report.total_predicted_seconds += feasibility.predicted_seconds;
    report.all_feasible = report.all_feasible && feasibility.feasible;
    report.jobs.push_back(std::move(feasibility));
  }
  return report;
}

}  // namespace predict
