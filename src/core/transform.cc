#include "core/transform.h"

namespace predict {

Result<AlgorithmConfig> DefaultTransform::Apply(
    const AlgorithmSpec& spec, const AlgorithmConfig& actual_config,
    double sampling_ratio) const {
  if (sampling_ratio <= 0.0 || sampling_ratio > 1.0) {
    return Status::InvalidArgument("sampling_ratio must be in (0, 1]");
  }
  AlgorithmConfig sample_config = actual_config;  // IDConf
  switch (spec.convergence) {
    case ConvergenceKind::kAbsoluteAggregate:
      // tau_S = tau_G * 1/sr (e.g. PageRank, §4.1).
      for (const std::string& key : spec.convergence_keys) {
        const auto it = sample_config.find(key);
        if (it == sample_config.end()) {
          return Status::InvalidArgument("convergence key '" + key +
                                         "' missing from config of '" +
                                         spec.name + "'");
        }
        it->second = it->second / sampling_ratio;
      }
      break;
    case ConvergenceKind::kRelativeRatio:
      // tau_S = tau_G (e.g. semi-clustering §4.2, top-k §4.3).
    case ConvergenceKind::kFixedPoint:
      // Nothing to scale.
      break;
  }
  return sample_config;
}

std::string DefaultTransform::Describe(const AlgorithmSpec& spec) const {
  switch (spec.convergence) {
    case ConvergenceKind::kAbsoluteAggregate:
      return "T = (ID_Conf, tau_S = tau_G / sr)";
    case ConvergenceKind::kRelativeRatio:
      return "T = (ID_Conf, tau_S = tau_G)";
    case ConvergenceKind::kFixedPoint:
      return "T = (ID_Conf, ID_Conv)";
  }
  return "T = ?";
}

const DefaultTransform& DefaultTransform::Instance() {
  static const DefaultTransform transform;
  return transform;
}

Result<AlgorithmConfig> IdentityTransform::Apply(
    const AlgorithmSpec& spec, const AlgorithmConfig& actual_config,
    double sampling_ratio) const {
  (void)spec;
  if (sampling_ratio <= 0.0 || sampling_ratio > 1.0) {
    return Status::InvalidArgument("sampling_ratio must be in (0, 1]");
  }
  return actual_config;
}

std::string IdentityTransform::Describe(const AlgorithmSpec& spec) const {
  (void)spec;
  return "T = (ID_Conf, ID_Conv)  [no scaling]";
}

const IdentityTransform& IdentityTransform::Instance() {
  static const IdentityTransform transform;
  return transform;
}

Result<AlgorithmConfig> TransformConfigForSample(
    const AlgorithmSpec& spec, const AlgorithmConfig& actual_config,
    double sampling_ratio, const TransformFunction* custom) {
  const TransformFunction& transform =
      custom != nullptr ? *custom
                        : static_cast<const TransformFunction&>(
                              DefaultTransform::Instance());
  return transform.Apply(spec, actual_config, sampling_ratio);
}

}  // namespace predict
