#include "core/distribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/rng.h"

namespace predict {

std::string BootstrapOptions::ConfigKey() const {
  std::ostringstream key;
  key << "boot=" << (enabled ? 1 : 0) << ";n=" << num_samples
      << ";seed=" << seed;
  return key.str();
}

double PredictionDistribution::QuantileSeconds(double q) const {
  if (samples.empty()) return point_seconds;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double t = pos - static_cast<double>(lo);
  return samples[lo] + t * (samples[hi] - samples[lo]);
}

double PredictionDistribution::PredictedAtConfidence(double confidence) const {
  if (confidence <= 0.5 || samples.empty()) return point_seconds;
  return std::max(point_seconds, QuantileSeconds(confidence));
}

std::string PredictionDistribution::ToString() const {
  std::ostringstream out;
  out << "point=" << point_seconds << "s";
  if (!samples.empty()) {
    out << " p50=" << p50_seconds << "s p95=" << p95_seconds << "s ("
        << samples.size() << " replicates)";
  }
  return out.str();
}

PredictionDistribution BootstrapDistribution(
    const std::vector<double>& per_iteration_seconds,
    const std::vector<double>& residuals, double straggler_spread,
    const BootstrapOptions& options) {
  PredictionDistribution dist;
  dist.point_seconds = std::accumulate(per_iteration_seconds.begin(),
                                       per_iteration_seconds.end(), 0.0);
  dist.p50_seconds = dist.point_seconds;
  dist.p95_seconds = dist.point_seconds;
  dist.seed = options.seed;
  if (!options.enabled || options.num_samples <= 0 || residuals.empty() ||
      per_iteration_seconds.empty()) {
    return dist;
  }

  const double spread = std::max(0.0, straggler_spread);
  Rng rng(options.seed);
  dist.samples.reserve(static_cast<size_t>(options.num_samples));
  for (int s = 0; s < options.num_samples; ++s) {
    // One independent stream per replicate: inserting an iteration or
    // changing the replicate count never reshuffles the other draws.
    Rng replicate = rng.Fork(static_cast<uint64_t>(s));
    double total = 0.0;
    for (double predicted : per_iteration_seconds) {
      const double residual =
          residuals[replicate.Uniform(residuals.size())];
      // Iterations can't run in negative time, so each perturbed
      // iteration clamps at zero (mirroring the models' own clamp).
      const double stretch = 1.0 + spread * replicate.NextDouble();
      total += std::max(0.0, (predicted + residual) * stretch);
    }
    dist.samples.push_back(total);
  }
  std::sort(dist.samples.begin(), dist.samples.end());
  dist.p50_seconds = dist.QuantileSeconds(0.5);
  dist.p95_seconds = dist.QuantileSeconds(0.95);
  return dist;
}

}  // namespace predict
