// Feasibility analysis (§1): "Given a cluster deployment and a workload
// of iterative algorithms, is it feasible to execute the workload on an
// input dataset while guaranteeing user specified SLAs?"
//
// Thin decision layer on top of the Predictor: predicts every job's
// runtime and checks it (plus the non-superstep phases) against its
// deadline.

#ifndef PREDICT_CORE_SLA_H_
#define PREDICT_CORE_SLA_H_

#include <string>
#include <vector>

#include "core/predictor.h"

namespace predict {

/// One job of the workload under analysis.
struct JobRequest {
  std::string job_name;
  std::string algorithm;       ///< registered algorithm name
  const Graph* graph = nullptr;
  std::string dataset_name;
  AlgorithmConfig overrides;   ///< actual-run configuration
  double deadline_seconds = 0.0;  ///< the SLA
  /// Probability with which the deadline must hold. The default 0.5 is
  /// the degenerate case: it checks the point estimate, exactly the
  /// pre-interval behavior. Higher values check the bootstrap quantile
  /// (PredictionDistribution::PredictedAtConfidence), which is never
  /// below the point estimate — raising the confidence can only flip a
  /// job from feasible to infeasible, never the reverse.
  double confidence = 0.5;
  /// When set and the predictor runs with degraded fallbacks, a
  /// prediction answered from a degradation rung (stale profile or
  /// history-only) is not trusted for this job's SLA: the job is marked
  /// infeasible regardless of the predicted number. Default: a degraded
  /// answer is still an answer.
  bool require_full_quality = false;
};

/// Verdict for one job.
struct JobFeasibility {
  std::string job_name;
  double predicted_seconds = 0.0;  ///< superstep phase, point estimate
  /// Runtime bound checked against the deadline: the point estimate at
  /// confidence <= 0.5, the bootstrap quantile above.
  double predicted_at_confidence_seconds = 0.0;
  double confidence = 0.5;
  double deadline_seconds = 0.0;
  bool feasible = false;
  double headroom_seconds = 0.0;  ///< deadline - predicted at confidence
  /// Copied from the prediction: which rung answered (kFull unless the
  /// predictor degraded) and why.
  DegradationInfo degradation;
  /// True when require_full_quality vetoed a degraded prediction.
  bool rejected_degraded = false;
  PredictionReport report;
};

/// Verdict for the workload.
struct FeasibilityReport {
  std::vector<JobFeasibility> jobs;
  bool all_feasible = true;
  double total_predicted_seconds = 0.0;

  std::string ToString() const;
};

/// Predicts every job and checks it against its SLA.
Result<FeasibilityReport> AnalyzeFeasibility(const std::vector<JobRequest>& jobs,
                                             const PredictorOptions& options);

}  // namespace predict

#endif  // PREDICT_CORE_SLA_H_
