// The RuntimeModel interface: one member of the model zoo.
//
// PREDIcT fits a single fixed-form cost model (forward-selected OLS over
// key-input-cardinality features, §3.4). Related work (Ellis' Ernest/Bell
// split, SNIPPETS.md #2) shows model *selection* beats any single model:
// which functional form is trustworthy depends on how much history is
// available and how it is distributed across cluster configurations. The
// zoo makes that explicit — every member predicts one iteration's
// runtime, but from different signals:
//
//   PaperModel          features of the critical-path worker (the paper's
//                       OLS; the only member that uses the FeatureVector)
//   MeanModel           constant: mean observed runtime
//   ErnestModel         NNLS over {1, 1/w, log w, w} of the worker count
//   InterpolationModel  piecewise-linear over per-worker-count means,
//                       delegating to Ernest outside the observed range
//
// ModelSelector (model_selector.h) picks the member from training-data
// density and records why.

#ifndef PREDICT_CORE_MODELS_RUNTIME_MODEL_H_
#define PREDICT_CORE_MODELS_RUNTIME_MODEL_H_

#include <string>

#include "core/features.h"

namespace predict::models {

/// Which zoo member a fit selected.
enum class ModelTier : int {
  kPaper = 0,          ///< forward-selected OLS over Table-1 features
  kMean = 1,           ///< mean observed runtime (sparse history)
  kErnest = 2,         ///< NNLS scale-out model (few configurations)
  kInterpolation = 3,  ///< per-configuration interpolation (dense history)
};

const char* ModelTierName(ModelTier tier);

/// \brief One member of the model zoo: predicts a single iteration's
/// runtime for the actual run.
///
/// Implementations are immutable after construction and safe to share
/// across threads (ModelArtifact holds them by shared_ptr<const>).
class RuntimeModel {
 public:
  virtual ~RuntimeModel() = default;

  /// The tier this model implements.
  virtual ModelTier tier() const = 0;

  /// Predicted runtime of one iteration, >= 0. `features` are the
  /// iteration's extrapolated critical-worker features; `scale_out` is
  /// the worker count the prediction targets. Feature-driven members
  /// ignore scale_out; scale-out-driven members ignore features.
  virtual double PredictIterationSeconds(const FeatureVector& features,
                                         double scale_out) const = 0;

  /// Human-readable form for reports, e.g. "ernest: 0.31 + 12.4/w".
  virtual std::string ToString() const = 0;
};

}  // namespace predict::models

#endif  // PREDICT_CORE_MODELS_RUNTIME_MODEL_H_
