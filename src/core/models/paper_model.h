// The paper's cost model as a zoo member.
//
// PaperModel wraps a trained core/cost_model.h CostModel behind the
// RuntimeModel interface without touching its math: prediction goes
// through CostModel::PredictIterationSeconds verbatim, so a pipeline that
// selects the paper tier is bit-identical to the pre-zoo predictor.

#ifndef PREDICT_CORE_MODELS_PAPER_MODEL_H_
#define PREDICT_CORE_MODELS_PAPER_MODEL_H_

#include <utility>

#include "core/cost_model.h"
#include "core/models/runtime_model.h"

namespace predict::models {

/// \brief Forward-selected OLS over Table-1 features (§3.4), wrapped.
class PaperModel final : public RuntimeModel {
 public:
  explicit PaperModel(CostModel model) : model_(std::move(model)) {}

  ModelTier tier() const override { return ModelTier::kPaper; }

  double PredictIterationSeconds(const FeatureVector& features,
                                 double /*scale_out*/) const override {
    return model_.PredictIterationSeconds(features);
  }

  std::string ToString() const override { return model_.ToString(); }

  const CostModel& cost_model() const { return model_; }

 private:
  CostModel model_;
};

}  // namespace predict::models

#endif  // PREDICT_CORE_MODELS_PAPER_MODEL_H_
