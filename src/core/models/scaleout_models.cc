#include "core/models/scaleout_models.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/regression.h"

namespace predict::models {

namespace {

/// Collapses observations to (worker count, mean runtime) knots sorted by
/// ascending worker count. Repeated runs at the same configuration average
/// out run-to-run noise instead of double-weighting the configuration.
std::vector<ScaleOutObservation> MeanKnots(
    const std::vector<ScaleOutObservation>& points) {
  std::map<double, std::pair<double, int>> by_config;
  for (const auto& p : points) {
    if (!(p.scale_out > 0.0) || !std::isfinite(p.runtime_seconds)) continue;
    auto& [sum, count] = by_config[p.scale_out];
    sum += p.runtime_seconds;
    ++count;
  }
  std::vector<ScaleOutObservation> knots;
  knots.reserve(by_config.size());
  for (const auto& [w, agg] : by_config) {
    knots.push_back({w, agg.first / agg.second});
  }
  return knots;
}

}  // namespace

Result<MeanModel> MeanModel::Fit(const std::vector<ScaleOutObservation>& points) {
  double sum = 0.0;
  int count = 0;
  for (const auto& p : points) {
    if (!std::isfinite(p.runtime_seconds)) {
      return Status::InvalidArgument("non-finite runtime observation");
    }
    sum += p.runtime_seconds;
    ++count;
  }
  if (count == 0) {
    return Status::InvalidArgument("mean model needs at least one observation");
  }
  return MeanModel(sum / count);
}

double MeanModel::PredictIterationSeconds(const FeatureVector& /*features*/,
                                          double /*scale_out*/) const {
  return std::max(0.0, mean_seconds_);
}

std::string MeanModel::ToString() const {
  std::ostringstream out;
  out << "mean: " << mean_seconds_ << " s/iteration";
  return out.str();
}

std::array<double, 4> ErnestModel::Basis(double scale_out) {
  const double w = std::max(scale_out, 1.0);
  return {1.0, 1.0 / w, std::log(w), w};
}

Result<ErnestModel> ErnestModel::Fit(
    const std::vector<ScaleOutObservation>& points) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  rows.reserve(points.size());
  targets.reserve(points.size());
  double first_config = 0.0;
  bool multi_config = false;
  for (const auto& p : points) {
    if (!(p.scale_out > 0.0)) {
      return Status::InvalidArgument("ernest fit needs positive worker counts");
    }
    if (!std::isfinite(p.runtime_seconds)) {
      return Status::InvalidArgument("non-finite runtime observation");
    }
    const auto basis = Basis(p.scale_out);
    rows.emplace_back(basis.begin(), basis.end());
    targets.push_back(p.runtime_seconds);
    if (rows.size() == 1) {
      first_config = p.scale_out;
    } else if (p.scale_out != first_config) {
      multi_config = true;
    }
  }
  if (rows.size() < 2 || !multi_config) {
    return Status::FailedPrecondition(
        "ernest fit needs observations at >= 2 distinct worker counts");
  }
  PREDICT_ASSIGN_OR_RETURN(std::vector<double> coeffs, FitNnls(rows, targets));
  std::array<double, 4> c{};
  std::copy_n(coeffs.begin(), 4, c.begin());
  return ErnestModel(c);
}

double ErnestModel::PredictIterationSeconds(const FeatureVector& /*features*/,
                                            double scale_out) const {
  const auto basis = Basis(scale_out);
  double seconds = 0.0;
  for (size_t i = 0; i < basis.size(); ++i) {
    seconds += coefficients_[i] * basis[i];
  }
  return std::max(0.0, seconds);
}

std::string ErnestModel::ToString() const {
  std::ostringstream out;
  out << "ernest: " << coefficients_[0] << " + " << coefficients_[1] << "/w + "
      << coefficients_[2] << "*log(w) + " << coefficients_[3] << "*w";
  return out.str();
}

Result<InterpolationModel> InterpolationModel::Fit(
    const std::vector<ScaleOutObservation>& points) {
  std::vector<ScaleOutObservation> knots = MeanKnots(points);
  if (knots.size() < 2) {
    return Status::FailedPrecondition(
        "interpolation needs >= 2 distinct positive worker counts");
  }
  PREDICT_ASSIGN_OR_RETURN(ErnestModel ernest, ErnestModel::Fit(points));
  return InterpolationModel(std::move(knots), std::move(ernest));
}

double InterpolationModel::PredictIterationSeconds(const FeatureVector& features,
                                                   double scale_out) const {
  if (scale_out < knots_.front().scale_out ||
      scale_out > knots_.back().scale_out) {
    return ernest_.PredictIterationSeconds(features, scale_out);
  }
  auto upper = std::lower_bound(
      knots_.begin(), knots_.end(), scale_out,
      [](const ScaleOutObservation& k, double w) { return k.scale_out < w; });
  if (upper->scale_out == scale_out) {
    return std::max(0.0, upper->runtime_seconds);
  }
  const auto& hi = *upper;
  const auto& lo = *(upper - 1);
  const double t = (scale_out - lo.scale_out) / (hi.scale_out - lo.scale_out);
  return std::max(0.0,
                  lo.runtime_seconds + t * (hi.runtime_seconds - lo.runtime_seconds));
}

std::string InterpolationModel::ToString() const {
  std::ostringstream out;
  out << "interpolation: " << knots_.size() << " knots over w=["
      << knots_.front().scale_out << ", " << knots_.back().scale_out
      << "], out-of-range via { " << ernest_.ToString() << " }";
  return out.str();
}

}  // namespace predict::models
