// Scale-out-driven zoo members: mean, Ernest (NNLS), interpolation.
//
// These model per-iteration runtime as a function of the cluster's
// worker count alone, trained on historical *actual* runs (never on
// sample runs, whose iterations are an order of magnitude cheaper than
// the full-scale iterations they predict). The progression mirrors
// Ellis' compute_predictions (SNIPPETS.md #2): mean when history is too
// sparse to fit anything, Ernest's fixed basis while extrapolation must
// be trusted, per-configuration interpolation once history is dense —
// with Ernest handling out-of-range targets even in the dense tier.

#ifndef PREDICT_CORE_MODELS_SCALEOUT_MODELS_H_
#define PREDICT_CORE_MODELS_SCALEOUT_MODELS_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/features.h"
#include "core/models/runtime_model.h"

namespace predict::models {

/// One (worker count, observed per-iteration runtime) training point.
struct ScaleOutObservation {
  double scale_out = 0.0;
  double runtime_seconds = 0.0;
};

/// \brief Sparse-history fallback: the mean observed runtime.
class MeanModel final : public RuntimeModel {
 public:
  /// Requires at least one observation.
  static Result<MeanModel> Fit(const std::vector<ScaleOutObservation>& points);

  ModelTier tier() const override { return ModelTier::kMean; }
  double PredictIterationSeconds(const FeatureVector& features,
                                 double scale_out) const override;
  std::string ToString() const override;

  double mean_seconds() const { return mean_seconds_; }

 private:
  explicit MeanModel(double mean_seconds) : mean_seconds_(mean_seconds) {}
  double mean_seconds_ = 0.0;
};

/// \brief Ernest-style scale-out model: runtime(w) = c0*1 + c1/w +
/// c2*log(w) + c3*w with c >= 0 (NNLS; core/regression FitNnls).
///
/// The basis captures the canonical cluster cost shape: fixed overhead,
/// perfectly parallel work (1/w), tree-aggregation (log w), and per-worker
/// coordination (w). Non-negativity is what keeps extrapolation beyond
/// the observed worker counts monotone-sane.
class ErnestModel final : public RuntimeModel {
 public:
  /// Requires >= 2 observations at >= 2 distinct positive worker counts.
  static Result<ErnestModel> Fit(const std::vector<ScaleOutObservation>& points);

  ModelTier tier() const override { return ModelTier::kErnest; }
  double PredictIterationSeconds(const FeatureVector& features,
                                 double scale_out) const override;
  std::string ToString() const override;

  /// The NNLS coefficients over {1, 1/w, log w, w}.
  const std::array<double, 4>& coefficients() const { return coefficients_; }

  /// The Ernest basis row for worker count w.
  static std::array<double, 4> Basis(double scale_out);

 private:
  explicit ErnestModel(std::array<double, 4> coefficients)
      : coefficients_(coefficients) {}
  std::array<double, 4> coefficients_{};
};

/// \brief Dense-history member: piecewise-linear interpolation over the
/// mean runtime at each observed worker count; targets outside the
/// observed range fall through to an embedded ErnestModel (the Ellis
/// interpolation/extrapolation split).
class InterpolationModel final : public RuntimeModel {
 public:
  /// Requires observations at >= 2 distinct positive worker counts (the
  /// selector only picks this tier far past that density).
  static Result<InterpolationModel> Fit(
      const std::vector<ScaleOutObservation>& points);

  ModelTier tier() const override { return ModelTier::kInterpolation; }
  double PredictIterationSeconds(const FeatureVector& features,
                                 double scale_out) const override;
  std::string ToString() const override;

  /// The interpolation knots: (worker count, mean runtime), ascending.
  const std::vector<ScaleOutObservation>& knots() const { return knots_; }

 private:
  InterpolationModel(std::vector<ScaleOutObservation> knots, ErnestModel ernest)
      : knots_(std::move(knots)), ernest_(std::move(ernest)) {}
  std::vector<ScaleOutObservation> knots_;
  ErnestModel ernest_;
};

}  // namespace predict::models

#endif  // PREDICT_CORE_MODELS_SCALEOUT_MODELS_H_
