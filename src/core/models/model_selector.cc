#include "core/models/model_selector.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "core/models/paper_model.h"
#include "core/models/scaleout_models.h"

namespace predict::models {

namespace {

std::vector<ScaleOutObservation> Observations(
    const std::vector<TrainingRow>& history_rows) {
  std::vector<ScaleOutObservation> points;
  points.reserve(history_rows.size());
  for (const auto& row : history_rows) {
    points.push_back({row.scale_out, row.runtime_seconds});
  }
  return points;
}

std::vector<double> Residuals(const RuntimeModel& model,
                              const std::vector<TrainingRow>& rows) {
  std::vector<double> residuals;
  residuals.reserve(rows.size());
  for (const auto& row : rows) {
    residuals.push_back(
        row.runtime_seconds -
        model.PredictIterationSeconds(row.features, row.scale_out));
  }
  return residuals;
}

Result<ModelZooFit> FitPaper(const std::vector<TrainingRow>& sample_rows,
                             const std::vector<TrainingRow>& history_rows,
                             const CostModelOptions& cost_options,
                             ModelSelection selection) {
  // Same training set, in the same order, as the pre-zoo FitStage:
  // sample rows first, then history rows.
  std::vector<TrainingRow> combined = sample_rows;
  combined.insert(combined.end(), history_rows.begin(), history_rows.end());
  PREDICT_ASSIGN_OR_RETURN(CostModel cost,
                           CostModel::Train(combined, cost_options));
  ModelZooFit fit;
  fit.model = std::make_shared<PaperModel>(std::move(cost));
  fit.selection = std::move(selection);
  fit.selection.tier = ModelTier::kPaper;
  fit.residuals = Residuals(*fit.model, combined);
  return fit;
}

}  // namespace

const char* ModelTierName(ModelTier tier) {
  switch (tier) {
    case ModelTier::kPaper:
      return "paper";
    case ModelTier::kMean:
      return "mean";
    case ModelTier::kErnest:
      return "ernest";
    case ModelTier::kInterpolation:
      return "interpolation";
  }
  return "unknown";
}

std::string ModelZooOptions::ConfigKey() const {
  std::ostringstream key;
  key << "zoo=" << (enable_zoo ? 1 : 0) << ";mean<=" << mean_max_configs
      << ";ernest<=" << ernest_max_configs;
  return key.str();
}

std::string ModelConfigKey(const CostModelOptions& cost_options,
                           const ModelZooOptions& zoo_options) {
  std::ostringstream key;
  key << "fsel=" << (cost_options.use_feature_selection ? 1 : 0)
      << ";maxf=" << cost_options.selection.max_features
      << ";minimp=" << cost_options.selection.min_improvement
      << ";ridge=" << cost_options.selection.ridge << ";"
      << zoo_options.ConfigKey();
  return key.str();
}

std::string ModelSelection::ToString() const {
  std::ostringstream out;
  out << "tier=" << ModelTierName(tier)
      << " unique_configs=" << unique_configurations
      << " sample_rows=" << sample_rows << " history_rows=" << history_rows
      << " reason=\"" << reason << "\"";
  return out.str();
}

ModelTier TierForConfigs(int unique_configurations,
                         const ModelZooOptions& options) {
  if (!options.enable_zoo || unique_configurations <= 1) {
    return ModelTier::kPaper;
  }
  if (unique_configurations <= options.mean_max_configs) {
    return ModelTier::kMean;
  }
  if (unique_configurations <= options.ernest_max_configs) {
    return ModelTier::kErnest;
  }
  return ModelTier::kInterpolation;
}

Result<ModelZooFit> FitModelZoo(const std::vector<TrainingRow>& sample_rows,
                                const std::vector<TrainingRow>& history_rows,
                                const CostModelOptions& cost_options,
                                const ModelZooOptions& zoo_options) {
  // Rows with scale_out == 0 predate configuration tracking; they count
  // as one legacy configuration so sparse/unknown history stays on the
  // paper path.
  std::set<double> configs;
  for (const auto& row : history_rows) {
    configs.insert(std::max(row.scale_out, 0.0));
  }
  ModelSelection selection;
  selection.unique_configurations = static_cast<int>(configs.size());
  selection.sample_rows = sample_rows.size();
  selection.history_rows = history_rows.size();
  selection.tier = TierForConfigs(selection.unique_configurations, zoo_options);

  std::ostringstream reason;
  if (!zoo_options.enable_zoo) {
    reason << "zoo disabled -> paper";
  } else if (selection.unique_configurations <= 1) {
    reason << selection.unique_configurations
           << " unique worker configurations in history (<= 1) -> paper";
  } else if (selection.tier == ModelTier::kMean) {
    reason << selection.unique_configurations
           << " unique worker configurations in history (<= "
           << zoo_options.mean_max_configs << ") -> mean";
  } else if (selection.tier == ModelTier::kErnest) {
    reason << selection.unique_configurations
           << " unique worker configurations in history (> "
           << zoo_options.mean_max_configs << ", <= "
           << zoo_options.ernest_max_configs << ") -> ernest";
  } else {
    reason << selection.unique_configurations
           << " unique worker configurations in history (> "
           << zoo_options.ernest_max_configs << ") -> interpolation";
  }
  selection.reason = reason.str();

  if (selection.tier == ModelTier::kPaper) {
    return FitPaper(sample_rows, history_rows, cost_options,
                    std::move(selection));
  }

  // Scale-out tiers train on actual-run history only: sample-run
  // iterations are an order of magnitude cheaper than full-scale ones
  // and would poison a runtime-vs-workers fit.
  const std::vector<ScaleOutObservation> points = Observations(history_rows);
  Result<ModelZooFit> fit = [&]() -> Result<ModelZooFit> {
    ModelZooFit out;
    out.selection = selection;
    switch (selection.tier) {
      case ModelTier::kMean: {
        PREDICT_ASSIGN_OR_RETURN(MeanModel model, MeanModel::Fit(points));
        out.model = std::make_shared<MeanModel>(std::move(model));
        break;
      }
      case ModelTier::kErnest: {
        PREDICT_ASSIGN_OR_RETURN(ErnestModel model, ErnestModel::Fit(points));
        out.model = std::make_shared<ErnestModel>(std::move(model));
        break;
      }
      default: {
        PREDICT_ASSIGN_OR_RETURN(InterpolationModel model,
                                 InterpolationModel::Fit(points));
        out.model = std::make_shared<InterpolationModel>(std::move(model));
        break;
      }
    }
    out.residuals = Residuals(*out.model, history_rows);
    return out;
  }();
  if (fit.ok()) return fit;

  // Degenerate scale-out fit (e.g. non-finite runtimes): fall back to
  // the paper model rather than failing the whole prediction.
  selection.reason += "; scale-out fit failed (" +
                      fit.status().message() + ") -> paper fallback";
  return FitPaper(sample_rows, history_rows, cost_options,
                  std::move(selection));
}

}  // namespace predict::models
