// Data-density-driven model selection (Ellis-style).
//
// Which zoo member to trust is a function of how much *actual-run*
// history exists and how many distinct cluster configurations it spans:
//
//   unique worker configurations in history   selected tier
//   ----------------------------------------  -------------------------
//   <= 1 (incl. no history)                   paper (OLS over features)
//   <= mean_max_configs   (default 2)         mean
//   <= ernest_max_configs (default 5)         ernest
//   otherwise                                 interpolation
//
// The paper tier at <= 1 configuration keeps the default flows (no
// history, or history gathered on a single deployment) bit-identical to
// the pre-zoo predictor. Every selection records *why* in
// ModelSelection::reason so reports and the CLI can surface it.

#ifndef PREDICT_CORE_MODELS_MODEL_SELECTOR_H_
#define PREDICT_CORE_MODELS_MODEL_SELECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/cost_model.h"
#include "core/features.h"
#include "core/models/runtime_model.h"

namespace predict::models {

/// Zoo configuration. Defaults reproduce Ellis' density thresholds.
struct ModelZooOptions {
  /// Off = always select the paper model (ablation / strict-paper mode).
  bool enable_zoo = true;
  /// Densest history (unique configurations) the mean tier still covers.
  int mean_max_configs = 2;
  /// Densest history the Ernest tier still covers.
  int ernest_max_configs = 5;

  /// Canonical key fragment for prediction caches; distinct options map
  /// to distinct keys.
  std::string ConfigKey() const;
};

/// Cache-key fragment covering everything that changes a fitted model:
/// the paper cost-model options plus the zoo options.
std::string ModelConfigKey(const CostModelOptions& cost_options,
                           const ModelZooOptions& zoo_options);

/// Why a fit ended up with the model it did.
struct ModelSelection {
  ModelTier tier = ModelTier::kPaper;
  /// Distinct worker configurations among the history rows.
  int unique_configurations = 0;
  size_t sample_rows = 0;
  size_t history_rows = 0;
  /// Human-readable selection rationale, e.g.
  /// "4 unique worker configurations in history (> 2, <= 5) -> ernest".
  std::string reason;

  std::string ToString() const;
};

/// A fitted zoo member plus its selection rationale and training
/// residuals (observed - predicted, one per training row of the selected
/// model) for residual bootstrapping.
struct ModelZooFit {
  std::shared_ptr<const RuntimeModel> model;
  ModelSelection selection;
  std::vector<double> residuals;
};

/// The density rule alone (no fitting): which tier `unique_configurations`
/// maps to under `options`.
ModelTier TierForConfigs(int unique_configurations,
                         const ModelZooOptions& options);

/// Fits the zoo member the density rule selects.
///
/// `sample_rows` come from the (scaled-down) sample run, `history_rows`
/// from HistoryStore actual runs — each history row's TrainingRow::scale_out
/// holds the worker count of the run it came from (0 = unknown, treated
/// as a single legacy configuration). The paper tier trains on
/// sample + history concatenated, exactly as the pre-zoo FitStage did;
/// scale-out tiers train on history rows only, because sample-run
/// iterations are an order of magnitude cheaper than the full-scale
/// iterations they stand in for and would poison a runtime-vs-workers
/// fit. If a scale-out fit degenerates, the selector falls back to the
/// paper model and says so in the reason.
Result<ModelZooFit> FitModelZoo(const std::vector<TrainingRow>& sample_rows,
                                const std::vector<TrainingRow>& history_rows,
                                const CostModelOptions& cost_options,
                                const ModelZooOptions& zoo_options = {});

}  // namespace predict::models

#endif  // PREDICT_CORE_MODELS_MODEL_SELECTOR_H_
