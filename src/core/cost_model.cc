#include "core/cost_model.h"

#include <algorithm>

namespace predict {

namespace {

std::vector<std::string> CandidateNames() {
  std::vector<std::string> names;
  names.reserve(kNumFeatures);
  for (int i = 0; i < kNumFeatures; ++i) {
    names.push_back(FeatureName(static_cast<Feature>(i)));
  }
  return names;
}

}  // namespace

Result<CostModel> CostModel::Train(const std::vector<TrainingRow>& rows,
                                   const CostModelOptions& options) {
  if (rows.empty()) {
    return Status::InvalidArgument("cost model needs at least one row");
  }
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(rows.size());
  y.reserve(rows.size());
  for (const TrainingRow& row : rows) {
    x.emplace_back(row.features.begin(), row.features.end());
    y.push_back(row.runtime_seconds);
  }

  CostModel model;
  if (options.use_feature_selection) {
    PREDICT_ASSIGN_OR_RETURN(
        model.model_, ForwardSelect(x, y, kNumFeatures, options.selection));
  } else {
    std::vector<int> all(kNumFeatures);
    for (int i = 0; i < kNumFeatures; ++i) all[i] = i;
    PREDICT_ASSIGN_OR_RETURN(model.model_,
                             FitOls(x, y, all, options.selection.ridge));
  }
  return model;
}

double CostModel::PredictIterationSeconds(const FeatureVector& features) const {
  const double y = model_.Predict(features.data(), features.size());
  return std::max(0.0, y);
}

std::vector<double> CostModel::PredictProfile(const RunProfile& profile) const {
  std::vector<double> seconds;
  seconds.reserve(profile.iterations.size());
  for (const IterationProfile& it : profile.iterations) {
    seconds.push_back(PredictIterationSeconds(it.critical_features));
  }
  return seconds;
}

std::vector<Feature> CostModel::selected_features() const {
  std::vector<Feature> features;
  for (const int idx : model_.feature_indices) {
    features.push_back(static_cast<Feature>(idx));
  }
  return features;
}

std::string CostModel::ToString() const {
  return model_.ToString(CandidateNames());
}

}  // namespace predict
