// Historical-run store (§3.4 "Training Methodology", §5.2).
//
// Analytical workloads run the same algorithms repeatedly on newly
// arriving datasets. Profiles of those *actual* runs are far better
// training data than short sample runs (Figures 7b/8b: R^2 improves and
// error drops when history is used), so PREDIcT persists them here and
// merges them into the cost model's training set.

#ifndef PREDICT_CORE_HISTORY_H_
#define PREDICT_CORE_HISTORY_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/features.h"

namespace predict {

/// \brief In-memory store of run profiles, persistable as CSV.
///
/// Thread-safe: Add and the readers may be called concurrently (the
/// PredictionService shares one store across in-flight predictions).
/// Readers return snapshots, never references into the store.
class HistoryStore {
 public:
  HistoryStore() = default;
  HistoryStore(const HistoryStore& other);
  HistoryStore& operator=(const HistoryStore& other);
  HistoryStore(HistoryStore&& other) noexcept;
  HistoryStore& operator=(HistoryStore&& other) noexcept;

  /// Records one run profile.
  void Add(RunProfile profile);

  /// All rows for `algorithm` (any dataset), in insertion order.
  std::vector<TrainingRow> TrainingRowsFor(const std::string& algorithm) const;

  /// Profiles of `algorithm`, excluding dataset `exclude_dataset` (the
  /// paper's evaluation trains on "all other datasets but the predicted
  /// one").
  std::vector<TrainingRow> TrainingRowsExcluding(
      const std::string& algorithm, const std::string& exclude_dataset) const;

  size_t size() const;

  /// Snapshot of every stored profile.
  std::vector<RunProfile> profiles() const;

  /// CSV persistence. Columns: algorithm,dataset,num_vertices,num_edges,
  /// num_workers,iteration,<7 features>,runtime_seconds. Files written
  /// before the num_workers column existed still load (num_workers = 0).
  ///
  /// SaveToFile is crash-safe: it writes to a temporary file in the same
  /// directory and renames it into place, so a crash mid-save leaves any
  /// previous file intact and never a half-written one.
  ///
  /// LoadFromFile quarantines malformed rows instead of failing the
  /// whole file: well-formed rows load, and `quarantine_note` (when
  /// non-null) receives a summary — count plus the first offending line
  /// — or stays empty when every row parsed. Fail points: history.save
  /// (before the rename), history.load (after open).
  Status SaveToFile(const std::string& path) const;
  static Result<HistoryStore> LoadFromFile(
      const std::string& path, std::string* quarantine_note = nullptr);

 private:
  mutable std::mutex mutex_;
  std::vector<RunProfile> profiles_;
};

}  // namespace predict

#endif  // PREDICT_CORE_HISTORY_H_
