// The PREDIcT predictor: the end-to-end methodology of Figure 1.
//
//   sample -> transform -> sample run (profiling) -> extrapolate ->
//   cost model (fit on sample + history) -> per-iteration runtimes.
//
// Prediction happens at iteration granularity: the sample run's i-th
// iteration predicts the actual run's i-th iteration, so the number of
// iterations enters implicitly (§3.4) — which is what makes PREDIcT work
// for algorithms whose per-iteration runtime varies 100x.
//
// The methodology itself lives in the staged pipeline (pipeline/stages.h);
// Predictor is the uncached end-to-end composition of those stages.
// PredictionService (service/prediction_service.h) composes the same
// stages with shared artifact caches for concurrent what-if traffic.

#ifndef PREDICT_CORE_PREDICTOR_H_
#define PREDICT_CORE_PREDICTOR_H_

#include <span>
#include <string>
#include <vector>

#include "algorithms/runner.h"
#include "bsp/scenario.h"
#include "bsp/thread_pool.h"
#include "common/result.h"
#include "core/cost_model.h"
#include "core/distribution.h"
#include "core/extrapolator.h"
#include "core/features.h"
#include "core/history.h"
#include "core/models/model_selector.h"
#include "core/transform.h"
#include "pipeline/stages.h"
#include "sampling/sampler.h"

namespace predict {

/// Fault-tolerance knobs for one prediction request. The defaults (one
/// attempt, no deadline, no fallbacks) reproduce the pre-robustness
/// behavior bit for bit; chaos tests, the bench gate and the CLI opt in
/// explicitly.
struct RobustnessOptions {
  /// Applied independently at every pipeline stage boundary.
  RetryPolicy retry;
  /// Whole-request deadline in seconds; <= 0 means none.
  double deadline_seconds = 0.0;
  /// When true, a failed or deadline-exceeded profile run degrades to a
  /// cheaper prediction (stale profile, then history-only) instead of
  /// failing the request.
  bool degraded_fallbacks = false;
};

/// How much of the methodology a report is built from: the rung of the
/// degradation ladder the request landed on.
enum class DegradationRung {
  kFull = 0,         ///< the normal five-stage pipeline
  kStaleProfile,     ///< cached profile from a previous epoch (service only)
  kHistoryOnly,      ///< no sample run at all; fit on history alone
};

const char* DegradationRungName(DegradationRung rung);

/// Which rung a prediction landed on and why it fell there.
struct DegradationInfo {
  DegradationRung rung = DegradationRung::kFull;
  /// Empty on kFull; otherwise the stage error that forced the fall.
  std::string cause;

  bool degraded() const { return rung != DegradationRung::kFull; }
};

/// Per-request attempt/latency accounting, filled when a StageContext
/// carried a retry policy. Host-execution-dependent (a cache hit skips a
/// stage entirely), so excluded from determinism comparisons — like
/// sample_wall_seconds.
struct RequestAccounting {
  AttemptAccounting sample;
  AttemptAccounting profile;
  AttemptAccounting fit;

  int total_attempts() const {
    return sample.attempts + profile.attempts + fit.attempts;
  }
  double total_backoff_seconds() const {
    return sample.backoff_seconds + profile.backoff_seconds +
           fit.backoff_seconds;
  }
};

/// Everything configuring one prediction.
struct PredictorOptions {
  /// Sampling technique + ratio (§3.2.1). The default is BRJ at 10%.
  SamplerOptions sampler;

  /// Execution configuration — shared verbatim by the sample run and (by
  /// assumption iii of §3.1) the actual run it predicts.
  bsp::EngineOptions engine;

  CostModelOptions cost_model;

  /// Historical actual runs to merge into the training set (may be null).
  const HistoryStore* history = nullptr;

  /// Custom transform function; null = the paper's default rules.
  const TransformFunction* transform = nullptr;

  /// Model-zoo selection thresholds (core/models/model_selector.h). The
  /// defaults keep history-free and single-deployment flows on the
  /// paper's cost model, bit-identical to the pre-zoo predictor.
  models::ModelZooOptions model_zoo;

  /// Residual-bootstrap prediction intervals (core/distribution.h).
  BootstrapOptions bootstrap;

  /// Retries, deadline and degraded-mode fallbacks. Default: off.
  RobustnessOptions robustness;
};

/// Output of one prediction.
struct PredictionReport {
  std::string algorithm;
  std::string dataset;
  /// Name of the cluster scenario the prediction targets; empty for the
  /// caller's baseline engine configuration.
  std::string scenario;

  /// Iterations observed on the sample run = predicted iterations (the
  /// transform function preserves the count; §3.3).
  int predicted_iterations = 0;

  /// Predicted runtime of each iteration of the actual run.
  std::vector<double> per_iteration_seconds;

  /// Sum of the above: the predicted superstep-phase runtime (§2.2 — the
  /// phase PREDIcT targets).
  double predicted_superstep_seconds = 0.0;

  /// The transformed configuration the sample run used, and the rule.
  AlgorithmConfig sample_config;
  std::string transform_description;

  ExtrapolationFactors factors;

  /// The trained cost model (R^2, selected features, coefficients).
  /// Always the paper's OLS fit, even when another zoo member predicts.
  CostModel cost_model;

  /// Which zoo member produced per_iteration_seconds, and why the
  /// selector picked it.
  models::ModelSelection model_selection;
  /// ToString() of the selected member, e.g. "ernest: 0.3 + 12/w + ...".
  std::string runtime_model_description;

  /// The prediction as a distribution: point estimate plus bootstrap
  /// P50/P95 and replicates (degenerate when bootstrapping is off).
  /// distribution.point_seconds == predicted_superstep_seconds.
  PredictionDistribution distribution;

  /// Profiles: as measured on the sample, and extrapolated to full scale.
  RunProfile sample_profile;
  RunProfile extrapolated_profile;

  /// Overhead accounting (§5.4): the sample run's own simulated runtime
  /// (all phases) and host wall time.
  double sample_total_seconds = 0.0;
  double sample_wall_seconds = 0.0;
  double realized_sampling_ratio = 0.0;

  /// Which degradation rung produced this report (kFull unless the
  /// request fell back) and the error that caused the fall.
  DegradationInfo degradation;

  /// Attempt/backoff accounting for the request. Excluded from
  /// determinism byte-compares (see RequestAccounting).
  RequestAccounting accounting;

  /// Of the five pipeline stages, how many this request served from
  /// cached artifacts vs actually executed (PredictionService fills
  /// these; a bare Predictor always recomputes all five). Like
  /// `accounting`, a property of the execution rather than the
  /// prediction: excluded from determinism byte-compares.
  int stages_reused = 0;
  int stages_recomputed = 5;

  /// Predicted total remote message bytes on the critical-path worker
  /// (the Figure-6 "remote message bytes" key feature).
  double PredictedCriticalRemoteBytes() const;
};

/// The five pipeline stages wired from one PredictorOptions. Immutable
/// after construction and safe to share across threads; both Predictor
/// and PredictionService run predictions through one of these.
struct PredictionPipeline {
  explicit PredictionPipeline(const PredictorOptions& options)
      : sample(options.sampler),
        transform(options.transform),
        profile(options.engine),
        fit(options.cost_model, options.history, options.model_zoo),
        bootstrap(options.bootstrap) {}

  pipeline::SampleStage sample;
  pipeline::TransformStage transform;
  pipeline::ProfileStage profile;
  pipeline::ExtrapolateStage extrapolate;
  pipeline::FitStage fit;
  /// Interval configuration for AssemblePredictionReport (no stage of
  /// its own: bootstrapping consumes the fit's residuals in place).
  BootstrapOptions bootstrap;
};

/// THE history-scoping rule, shared by Predictor's what-if sweep and
/// PredictionService's scenario requests: history rows carry no
/// deployment identity and belong to the baseline engine (assumption
/// iii), so a deployment is assembled with the history-trained pipeline
/// only when its canonical engine key (bsp::EngineOptionsKey) matches
/// the baseline's; any other deployment fits on its sample run alone.
/// Changing the match semantics here changes both APIs together.
inline const PredictionPipeline& StagesForDeployment(
    const std::string& engine_key, const std::string& baseline_key,
    const PredictionPipeline& with_history,
    const PredictionPipeline& history_free) {
  return engine_key == baseline_key ? with_history : history_free;
}

/// Runs the back half of the pipeline (extrapolate -> fit -> predict)
/// on already-computed front-half artifacts and assembles the full
/// PredictionReport. Deterministic in its inputs: cached and freshly
/// computed artifacts yield bit-identical reports (modulo
/// sample_wall_seconds, which reports host timing).
Result<PredictionReport> AssemblePredictionReport(
    const PredictionPipeline& stages, const Graph& graph,
    const std::string& algorithm, const std::string& dataset_name,
    const pipeline::SampleArtifact& sample,
    const pipeline::TransformArtifact& transform,
    const pipeline::ProfileArtifact& profile,
    const pipeline::StageContext& fit_ctx = {});

/// The bottom rung of the degradation ladder: a prediction built from the
/// history store alone, with no sample run. Iterations = the rounded mean
/// iteration count of the algorithm's history profiles; per-iteration
/// runtime from an Ernest fit over the history's (workers, runtime) rows
/// when at least two distinct positive worker counts exist, else from the
/// mean model. Far coarser than the methodology — the report says so via
/// `degradation` (rung kHistoryOnly, the given `cause`).
///
/// Fails with the annotated cause when the options carry no usable
/// history for `algorithm` — the ladder's explicit-error bottom.
Result<PredictionReport> HistoryOnlyPrediction(const PredictorOptions& options,
                                               const std::string& algorithm,
                                               const std::string& dataset_name,
                                               uint32_t num_workers,
                                               const std::string& cause);

/// \brief Runs the PREDIcT methodology for one (algorithm, graph) pair.
class Predictor {
 public:
  explicit Predictor(PredictorOptions options) : options_(std::move(options)) {}

  /// Predicts the runtime of `algorithm` on `graph`.
  ///
  /// `dataset_name` labels profiles and excludes same-dataset rows from
  /// the history store (the paper trains on "all other datasets but the
  /// predicted one"). `overrides` configure the *actual* run; the
  /// transform function derives the sample run's configuration from them.
  ///
  /// Honors options().robustness: each stage runs under the retry policy
  /// and the request deadline, and when degraded_fallbacks is set a
  /// failed stage falls back to HistoryOnlyPrediction (the Predictor has
  /// no profile cache, so the stale-profile rung is service-only).
  /// Validation failures (unknown algorithm, bad override) never degrade
  /// — a misspelled request must fail loudly.
  Result<PredictionReport> PredictRuntime(const std::string& algorithm,
                                          const Graph& graph,
                                          const std::string& dataset_name = "",
                                          const AlgorithmConfig& overrides = {});

  /// Cross-deployment what-if (the paper's §5 deployment axis): predicts
  /// `algorithm` on `graph` under each scenario. The graph is sampled
  /// and the configuration transformed exactly once (neither depends on
  /// the deployment); the sample run is profiled and the cost model
  /// fitted per scenario, each under the scenario's engine options.
  ///
  /// The history store carries no deployment identity — assumption iii
  /// ties its rows to the predictor's configured engine — and the paper
  /// re-trains the cost model per cluster, so history joins a scenario's
  /// fit only when the scenario's canonical engine key matches the
  /// baseline engine's; every other scenario fits on its sample run
  /// alone.
  ///
  /// results[i] corresponds to scenarios[i]. `pool` fans the scenarios
  /// out (null = sequential); every stage is deterministic, so the
  /// fanned-out batch is bit-identical to the sequential loop. Scenario
  /// runs simulate inline on their fan-out thread (num_threads = 0).
  std::vector<Result<PredictionReport>> PredictAcrossScenarios(
      const std::string& algorithm, const Graph& graph,
      const std::string& dataset_name, const AlgorithmConfig& overrides,
      std::span<const bsp::ClusterScenario> scenarios,
      bsp::ThreadPool* pool = nullptr);

  const PredictorOptions& options() const { return options_; }

 private:
  PredictorOptions options_;
};

/// Signed relative errors of a prediction against the observed actual
/// run ((predicted - actual) / actual; negative = under-prediction).
struct PredictionEvaluation {
  double iterations_error = 0.0;
  double runtime_error = 0.0;           ///< superstep-phase seconds
  double remote_bytes_error = 0.0;      ///< critical-worker remote bytes
  int actual_iterations = 0;
  double actual_superstep_seconds = 0.0;
};

/// Compares a report to the actual run's stats.
PredictionEvaluation EvaluatePrediction(const PredictionReport& report,
                                        const bsp::RunStats& actual);

}  // namespace predict

#endif  // PREDICT_CORE_PREDICTOR_H_
