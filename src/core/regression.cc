#include "core/regression.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace predict {

namespace {

// Solves the symmetric positive (semi-)definite system A x = b in place
// via Gaussian elimination with partial pivoting. Returns false if
// singular beyond repair.
bool SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-30) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate.
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  for (size_t col = n; col-- > 0;) {
    double sum = b[col];
    for (size_t k = col + 1; k < n; ++k) sum -= a[col][k] * b[k];
    b[col] = sum / a[col][col];
  }
  return true;
}

double AdjustedRSquared(double r_squared, size_t n, size_t k) {
  if (n <= k + 1) return r_squared;  // not enough dof to penalize
  return 1.0 - (1.0 - r_squared) * (static_cast<double>(n) - 1.0) /
                   (static_cast<double>(n) - static_cast<double>(k) - 1.0);
}

}  // namespace

double LinearModel::Predict(const std::vector<double>& row) const {
  return Predict(row.data(), row.size());
}

double LinearModel::Predict(const double* row, size_t size) const {
  double y = intercept;
  for (size_t i = 0; i < feature_indices.size(); ++i) {
    const size_t idx = static_cast<size_t>(feature_indices[i]);
    if (idx < size) y += coefficients[i] * row[idx];
  }
  return y;
}

std::string LinearModel::ToString(
    const std::vector<std::string>& candidate_names) const {
  std::string out = "y =";
  char buf[64];
  for (size_t i = 0; i < feature_indices.size(); ++i) {
    std::snprintf(buf, sizeof(buf), " %s%.4g*", i == 0 ? "" : "+ ",
                  coefficients[i]);
    out += buf;
    const size_t idx = static_cast<size_t>(feature_indices[i]);
    if (idx < candidate_names.size()) {
      out += candidate_names[idx];
    } else {
      out += "x" + std::to_string(idx);
    }
  }
  std::snprintf(buf, sizeof(buf), " + %.4g  (R2=%.3f)", intercept, r_squared);
  out += buf;
  return out;
}

Result<LinearModel> FitOls(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           const std::vector<int>& feature_indices,
                           double ridge) {
  const size_t n = rows.size();
  const size_t k = feature_indices.size();
  if (n == 0) return Status::InvalidArgument("no training rows");
  if (n != targets.size()) {
    return Status::InvalidArgument("rows/targets size mismatch");
  }
  for (const int idx : feature_indices) {
    if (idx < 0 || static_cast<size_t>(idx) >= rows[0].size()) {
      return Status::OutOfRange("feature index " + std::to_string(idx) +
                                " out of candidate range");
    }
  }

  // Degenerate-input checks: each of these would previously produce
  // NaN/Inf or ridge-regularized garbage coefficients that only surface
  // as absurd predictions far downstream.
  for (const double y : targets) {
    if (!std::isfinite(y)) {
      return Status::InvalidArgument("non-finite training target");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (const int idx : feature_indices) {
      if (!std::isfinite(rows[i][idx])) {
        return Status::InvalidArgument("non-finite value in training row " +
                                       std::to_string(i));
      }
    }
  }
  if (n < k + 1) {
    return Status::InvalidArgument(
        "underdetermined fit: " + std::to_string(n) + " rows for " +
        std::to_string(k) + " features + intercept");
  }
  if (k > 0) {
    bool target_varies = false;
    for (const double y : targets) {
      if (y != targets[0]) {
        target_varies = true;
        break;
      }
    }
    if (!target_varies) {
      return Status::FailedPrecondition(
          "zero-variance targets: nothing to fit beyond the constant");
    }
    bool any_feature_varies = false;
    for (const int idx : feature_indices) {
      for (size_t i = 1; i < n && !any_feature_varies; ++i) {
        if (rows[i][idx] != rows[0][idx]) any_feature_varies = true;
      }
    }
    if (!any_feature_varies) {
      return Status::FailedPrecondition(
          "all training rows identical over the selected features");
    }
  }

  // Column scaling: normal equations on raw byte counts (1e8) vs. an
  // intercept column (1) are badly conditioned otherwise.
  std::vector<double> scale(k, 1.0);
  for (size_t j = 0; j < k; ++j) {
    double max_abs = 0.0;
    for (size_t i = 0; i < n; ++i) {
      max_abs = std::max(max_abs, std::abs(rows[i][feature_indices[j]]));
    }
    scale[j] = max_abs > 0.0 ? max_abs : 1.0;
  }

  // Design matrix columns: k scaled features + intercept.
  const size_t m = k + 1;
  std::vector<std::vector<double>> normal(m, std::vector<double>(m, 0.0));
  std::vector<double> rhs(m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x(m);
    for (size_t j = 0; j < k; ++j) {
      x[j] = rows[i][feature_indices[j]] / scale[j];
    }
    x[k] = 1.0;
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = 0; b < m; ++b) normal[a][b] += x[a] * x[b];
      rhs[a] += x[a] * targets[i];
    }
  }
  for (size_t j = 0; j < k; ++j) normal[j][j] += ridge * normal[j][j] + ridge;

  if (!SolveLinearSystem(normal, rhs)) {
    return Status::Internal("singular normal equations (collinear features)");
  }

  LinearModel model;
  model.feature_indices = feature_indices;
  model.coefficients.resize(k);
  for (size_t j = 0; j < k; ++j) model.coefficients[j] = rhs[j] / scale[j];
  model.intercept = rhs[k];

  // Training-set fit.
  double mean_y = 0.0;
  for (const double y : targets) mean_y += y;
  mean_y /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pred = model.Predict(rows[i]);
    ss_res += (targets[i] - pred) * (targets[i] - pred);
    ss_tot += (targets[i] - mean_y) * (targets[i] - mean_y);
  }
  model.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  model.adjusted_r_squared = AdjustedRSquared(model.r_squared, n, k);
  return model;
}

Result<LinearModel> ForwardSelect(const std::vector<std::vector<double>>& rows,
                                  const std::vector<double>& targets,
                                  int num_candidates,
                                  const ForwardSelectionOptions& options) {
  if (rows.empty()) return Status::InvalidArgument("no training rows");
  if (num_candidates <= 0) {
    return Status::InvalidArgument("num_candidates must be positive");
  }

  // Intercept-only baseline: FitOls naturally yields R^2 = 0 when the
  // targets vary (prediction = mean) and R^2 = 1 when they are constant
  // (already a perfect fit, so no feature can justify itself).
  std::vector<int> selected;
  PREDICT_ASSIGN_OR_RETURN(LinearModel best,
                           FitOls(rows, targets, selected, options.ridge));

  while (selected.size() < options.max_features) {
    int best_candidate = -1;
    LinearModel best_extended;
    for (int candidate = 0; candidate < num_candidates; ++candidate) {
      if (std::find(selected.begin(), selected.end(), candidate) !=
          selected.end()) {
        continue;
      }
      std::vector<int> trial = selected;
      trial.push_back(candidate);
      auto fit = FitOls(rows, targets, trial, options.ridge);
      if (!fit.ok()) continue;  // collinear subset; skip
      if (best_candidate < 0 ||
          fit->adjusted_r_squared > best_extended.adjusted_r_squared) {
        best_candidate = candidate;
        best_extended = std::move(fit).MoveValue();
      }
    }
    if (best_candidate < 0) break;
    if (best_extended.adjusted_r_squared - best.adjusted_r_squared <
        options.min_improvement) {
      break;
    }
    selected.push_back(best_candidate);
    best = std::move(best_extended);
  }
  return best;
}

Result<std::vector<double>> FitNnls(const std::vector<std::vector<double>>& rows,
                                    const std::vector<double>& targets,
                                    int max_iterations) {
  const size_t n = rows.size();
  if (n == 0) return Status::InvalidArgument("no training rows");
  if (n != targets.size()) {
    return Status::InvalidArgument("rows/targets size mismatch");
  }
  const size_t k = rows[0].size();
  if (k == 0) return Status::InvalidArgument("no design-matrix columns");
  for (size_t i = 0; i < n; ++i) {
    if (rows[i].size() != k) {
      return Status::InvalidArgument("ragged design matrix");
    }
    for (const double x : rows[i]) {
      if (!std::isfinite(x)) {
        return Status::InvalidArgument("non-finite value in design row " +
                                       std::to_string(i));
      }
    }
  }
  for (const double y : targets) {
    if (!std::isfinite(y)) {
      return Status::InvalidArgument("non-finite training target");
    }
  }

  // Precompute the normal equations: ata = A^T A, atb = A^T b. k is tiny
  // (4 for the Ernest basis), so dense is the right representation.
  std::vector<std::vector<double>> ata(k, std::vector<double>(k, 0.0));
  std::vector<double> atb(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = 0; b < k; ++b) ata[a][b] += rows[i][a] * rows[i][b];
      atb[a] += rows[i][a] * targets[i];
    }
  }

  // Scale tolerance to the problem so byte-sized and second-sized
  // columns behave alike.
  double max_diag = 0.0;
  for (size_t j = 0; j < k; ++j) max_diag = std::max(max_diag, ata[j][j]);
  const double tolerance = 1e-10 * std::max(1.0, max_diag);

  // Lawson–Hanson active set. Deterministic: the entering column is the
  // one with the largest gradient, ties broken by lowest index, and the
  // passive-set solve is plain Gaussian elimination.
  std::vector<double> x(k, 0.0);
  std::vector<bool> passive(k, false);

  // Solves the normal equations restricted to the passive set; returns
  // the solution scattered over all k columns (actives at 0), or nothing
  // if the subsystem is singular.
  auto solve_passive = [&](std::vector<double>* z) -> bool {
    std::vector<size_t> cols;
    for (size_t j = 0; j < k; ++j) {
      if (passive[j]) cols.push_back(j);
    }
    const size_t m = cols.size();
    std::vector<std::vector<double>> a(m, std::vector<double>(m));
    std::vector<double> b(m);
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < m; ++c) a[r][c] = ata[cols[r]][cols[c]];
      b[r] = atb[cols[r]];
    }
    if (!SolveLinearSystem(a, b)) return false;
    z->assign(k, 0.0);
    for (size_t r = 0; r < m; ++r) (*z)[cols[r]] = b[r];
    return true;
  };

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    // Gradient w = A^T b - A^T A x over the active (zero) set.
    int enter = -1;
    double best_gradient = tolerance;
    for (size_t j = 0; j < k; ++j) {
      if (passive[j]) continue;
      double w = atb[j];
      for (size_t c = 0; c < k; ++c) w -= ata[j][c] * x[c];
      if (w > best_gradient) {
        best_gradient = w;
        enter = static_cast<int>(j);
      }
    }
    if (enter < 0) break;  // KKT-optimal
    passive[enter] = true;

    std::vector<double> z;
    if (!solve_passive(&z)) {
      // Singular with the new column: it adds nothing; drop it for good.
      passive[enter] = false;
      break;
    }
    // Walk back along x -> z until everything passive is non-negative.
    while (true) {
      double alpha = 1.0;
      int blocker = -1;
      for (size_t j = 0; j < k; ++j) {
        if (!passive[j] || z[j] > 0.0) continue;
        const double step = x[j] / (x[j] - z[j]);
        if (step < alpha) {
          alpha = step;
          blocker = static_cast<int>(j);
        }
      }
      if (blocker < 0) {
        x = z;
        break;
      }
      for (size_t j = 0; j < k; ++j) {
        if (passive[j]) x[j] += alpha * (z[j] - x[j]);
      }
      for (size_t j = 0; j < k; ++j) {
        if (passive[j] && x[j] <= tolerance * 1e-2) {
          x[j] = 0.0;
          passive[j] = false;
        }
      }
      if (!solve_passive(&z)) break;
    }
  }

  for (double& v : x) {
    if (v < 0.0) v = 0.0;  // numeric dust from the walk-back
  }
  return x;
}

double RSquared(const std::vector<double>& predicted,
                const std::vector<double>& observed) {
  if (predicted.size() != observed.size() || observed.empty()) return 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (!std::isfinite(predicted[i]) || !std::isfinite(observed[i])) {
      return 0.0;
    }
  }
  double mean = 0.0;
  for (const double y : observed) mean += y;
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
  }
  return ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
}

}  // namespace predict
