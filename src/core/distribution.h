// Variance-aware predictions: intervals, not just points.
//
// A point estimate hides exactly the information an SLA decision needs —
// how wrong the model tends to be and how much the cluster's stragglers
// stretch a run. PredictionDistribution carries the point estimate plus
// an empirical distribution of plausible total runtimes built by
// residual bootstrapping: resample the fitted model's training residuals
// (with replacement, deterministic common/rng stream), perturb each
// predicted iteration by a drawn residual, inflate by a straggler factor
// drawn from the deployment's observed worker-speed spread, and sum.
// Quantiles of the resulting sample set give P50/P95 and
// feasible-at-confidence answers; the point-estimate path is the
// degenerate 50%-confidence case.

#ifndef PREDICT_CORE_DISTRIBUTION_H_
#define PREDICT_CORE_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace predict {

/// Bootstrap configuration. Deterministic for a fixed seed.
struct BootstrapOptions {
  /// Off = point estimates only (pre-interval behavior).
  bool enabled = true;
  /// Bootstrap replicates; more = smoother quantiles.
  int num_samples = 200;
  uint64_t seed = 0x9E3779B97F4A7C15ULL;

  /// Canonical key fragment for prediction caches.
  std::string ConfigKey() const;
};

/// \brief A predicted total runtime with uncertainty.
///
/// `samples` holds the bootstrap replicates sorted ascending; empty when
/// bootstrapping is disabled or no residuals were available, in which
/// case every quantile degenerates to the point estimate.
struct PredictionDistribution {
  /// The model's point estimate (sum of predicted iteration runtimes).
  double point_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  /// Sorted ascending bootstrap replicates of the total runtime.
  std::vector<double> samples;
  uint64_t seed = 0;

  /// The `q` quantile (q in [0,1]) of the replicates by linear
  /// interpolation over the sorted samples; the point estimate when no
  /// samples exist.
  double QuantileSeconds(double q) const;

  /// Runtime bound that holds with probability `confidence`. Never below
  /// the point estimate, so raising the confidence can only tighten an
  /// SLA decision: confidence <= 0.5 reproduces the point-estimate path
  /// exactly.
  double PredictedAtConfidence(double confidence) const;

  /// e.g. "point=12.3s p50=12.4s p95=14.1s (200 replicates)".
  std::string ToString() const;
};

/// Builds the distribution for a run predicted as `per_iteration_seconds`.
///
/// `residuals` are the fitted model's training residuals (observed -
/// predicted, one per training row); `straggler_spread` >= 0 is the
/// deployment's relative slow-worker overhang (max worker speed factor
/// over mean, minus 1) — each replicate draws a uniform inflation in
/// [1, 1 + spread]. With bootstrapping disabled, no residuals, or no
/// iterations, returns a degenerate distribution (quantiles == point).
PredictionDistribution BootstrapDistribution(
    const std::vector<double>& per_iteration_seconds,
    const std::vector<double>& residuals, double straggler_spread,
    const BootstrapOptions& options);

}  // namespace predict

#endif  // PREDICT_CORE_DISTRIBUTION_H_
