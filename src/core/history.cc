#include "core/history.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/failpoint.h"
#include "common/strings.h"

namespace predict {

HistoryStore::HistoryStore(const HistoryStore& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  profiles_ = other.profiles_;
}

HistoryStore& HistoryStore::operator=(const HistoryStore& other) {
  if (this == &other) return *this;
  std::vector<RunProfile> copy = other.profiles();
  std::lock_guard<std::mutex> lock(mutex_);
  profiles_ = std::move(copy);
  return *this;
}

HistoryStore::HistoryStore(HistoryStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  profiles_ = std::move(other.profiles_);
}

HistoryStore& HistoryStore::operator=(HistoryStore&& other) noexcept {
  if (this == &other) return *this;
  std::vector<RunProfile> stolen;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    stolen = std::move(other.profiles_);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  profiles_ = std::move(stolen);
  return *this;
}

void HistoryStore::Add(RunProfile profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  profiles_.push_back(std::move(profile));
}

size_t HistoryStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return profiles_.size();
}

std::vector<RunProfile> HistoryStore::profiles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return profiles_;
}

std::vector<TrainingRow> HistoryStore::TrainingRowsFor(
    const std::string& algorithm) const {
  return TrainingRowsExcluding(algorithm, "");
}

std::vector<TrainingRow> HistoryStore::TrainingRowsExcluding(
    const std::string& algorithm, const std::string& exclude_dataset) const {
  std::vector<TrainingRow> rows;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RunProfile& profile : profiles_) {
    if (profile.algorithm != algorithm) continue;
    if (!exclude_dataset.empty() && profile.dataset == exclude_dataset) {
      continue;
    }
    for (const IterationProfile& it : profile.iterations) {
      rows.push_back({it.critical_features, it.runtime_seconds,
                      static_cast<double>(profile.num_workers)});
    }
  }
  return rows;
}

Status HistoryStore::SaveToFile(const std::string& path) const {
  // Crash-safe: write the full file next to the target, then rename into
  // place. rename(2) within one directory is atomic, so readers see
  // either the old complete file or the new complete file — never a
  // truncated one — and a crash mid-write leaves the target untouched.
  const std::string temp_path = path + ".tmp";
  std::ofstream out(temp_path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + temp_path + "' for writing: " +
                           std::strerror(errno));
  }
  out << "algorithm,dataset,num_vertices,num_edges,num_workers,iteration";
  for (int i = 0; i < kNumFeatures; ++i) {
    out << ',' << FeatureName(static_cast<Feature>(i));
  }
  out << ",runtime_seconds\n";
  out.precision(17);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RunProfile& profile : profiles_) {
      for (const IterationProfile& it : profile.iterations) {
        out << profile.algorithm << ',' << profile.dataset << ','
            << profile.num_vertices << ',' << profile.num_edges << ','
            << profile.num_workers << ',' << it.iteration;
        for (int i = 0; i < kNumFeatures; ++i) {
          out << ',' << it.critical_features[i];
        }
        out << ',' << it.runtime_seconds << '\n';
      }
    }
  }
  out.close();
  if (!out) {
    std::remove(temp_path.c_str());
    return Status::IOError("write failed for '" + temp_path + "': " +
                           std::strerror(errno));
  }
  const Status injected = [&]() -> Status {
    PREDICT_FAIL_POINT("history.save");
    return Status::OK();
  }();
  if (!injected.ok() || std::rename(temp_path.c_str(), path.c_str()) != 0) {
    const Status cause = injected.ok()
                             ? Status::IOError("cannot rename '" + temp_path +
                                               "' to '" + path +
                                               "': " + std::strerror(errno))
                             : injected;
    std::remove(temp_path.c_str());
    return cause;
  }
  return Status::OK();
}

Result<HistoryStore> HistoryStore::LoadFromFile(const std::string& path,
                                                std::string* quarantine_note) {
  if (quarantine_note != nullptr) quarantine_note->clear();
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "': " + std::strerror(errno));
  }
  PREDICT_FAIL_POINT("history.load");
  HistoryStore store;
  std::string line;
  if (!std::getline(in, line)) {
    return store;  // empty file = empty store
  }

  // Profiles are keyed by (algorithm, dataset); rows must be contiguous
  // per profile, which SaveToFile guarantees.
  RunProfile current;
  uint64_t line_no = 1;
  uint64_t quarantined = 0;
  uint64_t first_bad_line = 0;
  std::string first_bad_text;
  while (std::getline(in, line)) {
    ++line_no;
    if (TrimWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = SplitString(line, ',');
    // Current format has a num_workers column after num_edges; files
    // written before it existed lack the column and load as
    // num_workers = 0 (unknown configuration).
    const size_t with_workers = static_cast<size_t>(6 + kNumFeatures + 1);
    const size_t legacy = static_cast<size_t>(5 + kNumFeatures + 1);
    if (fields.size() != with_workers && fields.size() != legacy) {
      // Quarantine: a corrupted row (partial write, manual edit) must
      // not take down the rest of the history with it.
      ++quarantined;
      if (first_bad_line == 0) {
        first_bad_line = line_no;
        first_bad_text = line;
      }
      continue;
    }
    const bool has_workers = fields.size() == with_workers;
    const size_t iter_at = has_workers ? 5 : 4;
    const std::string& algorithm = fields[0];
    const std::string& dataset = fields[1];
    if (algorithm != current.algorithm || dataset != current.dataset) {
      if (!current.iterations.empty()) store.Add(current);
      current = RunProfile{};
      current.algorithm = algorithm;
      current.dataset = dataset;
      current.num_vertices = std::strtoull(fields[2].c_str(), nullptr, 10);
      current.num_edges = std::strtoull(fields[3].c_str(), nullptr, 10);
      if (has_workers) {
        current.num_workers = static_cast<uint32_t>(
            std::strtoull(fields[4].c_str(), nullptr, 10));
      }
    }
    IterationProfile iteration;
    iteration.iteration = std::atoi(fields[iter_at].c_str());
    for (int i = 0; i < kNumFeatures; ++i) {
      iteration.critical_features[i] =
          std::strtod(fields[iter_at + 1 + i].c_str(), nullptr);
    }
    iteration.runtime_seconds =
        std::strtod(fields[iter_at + 1 + kNumFeatures].c_str(), nullptr);
    current.iterations.push_back(iteration);
  }
  if (!current.iterations.empty()) store.Add(current);
  if (quarantined > 0 && quarantine_note != nullptr) {
    *quarantine_note = "quarantined " + std::to_string(quarantined) +
                       " malformed history row" + (quarantined == 1 ? "" : "s") +
                       " in '" + path + "'; first at line " +
                       std::to_string(first_bad_line) + ": '" + first_bad_text +
                       "'";
  }
  return store;
}

}  // namespace predict
