// Multivariate linear regression with sequential forward feature
// selection (§3.4, "Customizable Cost Model").
//
// The paper's cost model is f(X1..Xk) = c1 X1 + ... + ck Xk + r: ordinary
// least squares over a feature subset chosen greedily by prediction
// accuracy on the training data. The fixed functional form is what lets
// the model extrapolate outside the training range (train on sample run,
// predict on the full graph), and the coefficients are interpretable as
// per-unit cost factors.

#ifndef PREDICT_CORE_REGRESSION_H_
#define PREDICT_CORE_REGRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace predict {

/// A fitted linear model y = sum_i coefficients[i] * x[indices[i]] +
/// intercept over a subset of a larger candidate feature space.
struct LinearModel {
  /// Candidate-space indices of the selected features.
  std::vector<int> feature_indices;
  /// Coefficients parallel to feature_indices ("cost values", §3.4).
  std::vector<double> coefficients;
  /// The residual term r.
  double intercept = 0.0;
  /// Coefficient of determination on the training data.
  double r_squared = 0.0;
  /// Adjusted R^2 (penalizes extra features; drives forward selection).
  double adjusted_r_squared = 0.0;

  /// Evaluates the model on a full candidate-space row.
  double Predict(const std::vector<double>& row) const;
  double Predict(const double* row, size_t size) const;

  /// Human-readable form, e.g. "y = 1.1e-7*RemMsgSize + 0.31".
  std::string ToString(
      const std::vector<std::string>& candidate_names = {}) const;
};

/// Ordinary least squares over the given candidate-space feature subset.
/// `rows` are full candidate-space vectors; `feature_indices` selects the
/// regressors. A small ridge term keeps collinear subsets solvable.
///
/// Degenerate inputs return explicit errors instead of NaN/Inf or
/// ridge-regularized garbage coefficients:
///   - any non-finite row or target value        -> InvalidArgument
///   - fewer rows than coefficients (n < k + 1)  -> InvalidArgument
///   - zero-variance targets with features       -> FailedPrecondition
///     (an intercept-only fit of the constant is still allowed)
///   - every selected feature constant across
///     all rows (all-identical rows)             -> FailedPrecondition
/// ForwardSelect skips trial subsets that hit these, so a degenerate
/// candidate can never be selected.
Result<LinearModel> FitOls(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           const std::vector<int>& feature_indices,
                           double ridge = 1e-9);

/// Non-negative least squares: minimizes ||A x - b||^2 subject to x >= 0,
/// where A's rows are `rows` (already in design-matrix form — callers
/// append their own intercept/basis columns) and b is `targets`.
///
/// Lawson–Hanson active-set over the normal equations: deterministic
/// (ties broken by lowest column index), no randomness, no iteration-
/// order dependence — the solver behind the Ernest-style scale-out model
/// (NNLS over {1, 1/w, log w, w}), which needs non-negative cost terms
/// to extrapolate sanely beyond the training range.
Result<std::vector<double>> FitNnls(const std::vector<std::vector<double>>& rows,
                                    const std::vector<double>& targets,
                                    int max_iterations = 10 * 32);

/// Options for forward selection.
struct ForwardSelectionOptions {
  size_t max_features = 4;
  /// Stop when the best new feature improves adjusted R^2 by less.
  double min_improvement = 1e-4;
  double ridge = 1e-9;
};

/// Sequential forward selection (Hastie et al., §3.4 of the paper):
/// greedily adds the candidate feature that most improves adjusted R^2.
Result<LinearModel> ForwardSelect(const std::vector<std::vector<double>>& rows,
                                  const std::vector<double>& targets,
                                  int num_candidates,
                                  const ForwardSelectionOptions& options = {});

/// R^2 of predictions vs. observations. Hardened: size mismatches, empty
/// inputs, and non-finite values all return 0.0 rather than NaN.
double RSquared(const std::vector<double>& predicted,
                const std::vector<double>& observed);

}  // namespace predict

#endif  // PREDICT_CORE_REGRESSION_H_
