// Analytical upper bounds for iteration counts (§5.1 "Upper Bound
// Estimates").
//
// The paper contrasts PREDIcT with the closed-form PageRank bound of
// Langville & Meyer:  #iterations = log10(eps) / log10(d),  which
// ignores the input graph entirely and over-predicts by 2x-3.5x. These
// bounds exist so the benches can reproduce that comparison.

#ifndef PREDICT_CORE_BOUNDS_H_
#define PREDICT_CORE_BOUNDS_H_

#include "common/result.h"

namespace predict {

/// Langville–Meyer bound on PageRank iterations for tolerance `epsilon`
/// and damping factor `d`.
Result<double> PageRankIterationUpperBound(double epsilon, double damping);

/// Trivial bound for label propagation (connected components): the
/// number of iterations is at most the graph diameter + 1; with no
/// diameter knowledge the only safe a-priori bound is |V|.
double ConnectedComponentsIterationUpperBound(uint64_t num_vertices);

}  // namespace predict

#endif  // PREDICT_CORE_BOUNDS_H_
