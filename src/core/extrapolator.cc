#include "core/extrapolator.h"

namespace predict {

Result<ExtrapolationFactors> ComputeExtrapolationFactors(const Graph& full,
                                                         const Graph& sample) {
  if (sample.num_vertices() == 0 || sample.num_edges() == 0) {
    return Status::InvalidArgument(
        "sample graph has no vertices or no edges; cannot extrapolate");
  }
  ExtrapolationFactors factors;
  factors.vertex_factor = static_cast<double>(full.num_vertices()) /
                          static_cast<double>(sample.num_vertices());
  factors.edge_factor = static_cast<double>(full.num_edges()) /
                        static_cast<double>(sample.num_edges());
  return factors;
}

FeatureVector ExtrapolateFeatures(const FeatureVector& sample_features,
                                  const ExtrapolationFactors& factors) {
  FeatureVector scaled = sample_features;
  scaled[static_cast<int>(Feature::kActVert)] *= factors.vertex_factor;
  scaled[static_cast<int>(Feature::kTotVert)] *= factors.vertex_factor;
  scaled[static_cast<int>(Feature::kLocMsg)] *= factors.edge_factor;
  scaled[static_cast<int>(Feature::kRemMsg)] *= factors.edge_factor;
  scaled[static_cast<int>(Feature::kLocMsgSize)] *= factors.edge_factor;
  scaled[static_cast<int>(Feature::kRemMsgSize)] *= factors.edge_factor;
  // AvgMsgSize is intentionally not extrapolated (Table 1).
  return scaled;
}

RunProfile ExtrapolateProfile(const RunProfile& sample_profile,
                              const ExtrapolationFactors& factors) {
  RunProfile scaled = sample_profile;
  for (IterationProfile& iteration : scaled.iterations) {
    iteration.critical_features =
        ExtrapolateFeatures(iteration.critical_features, factors);
    iteration.runtime_seconds = 0.0;  // to be predicted by the cost model
  }
  scaled.num_vertices = static_cast<uint64_t>(
      static_cast<double>(sample_profile.num_vertices) * factors.vertex_factor);
  scaled.num_edges = static_cast<uint64_t>(
      static_cast<double>(sample_profile.num_edges) * factors.edge_factor);
  return scaled;
}

}  // namespace predict
