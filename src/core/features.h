// Key input features (Table 1 of the paper) and run profiles.
//
// A RunProfile is the bridge between the execution substrate and the
// prediction machinery: per-iteration feature vectors taken from the
// critical-path worker (§3.4, "Modeling the Critical Path") plus the
// observed per-iteration runtime. Profiles come from sample runs and
// from historical actual runs; the cost model trains on both.

#ifndef PREDICT_CORE_FEATURES_H_
#define PREDICT_CORE_FEATURES_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bsp/counters.h"

namespace predict {

/// The candidate feature pool (Table 1). NumIter is not a per-iteration
/// feature: the transform function preserves it instead (§3.3).
enum class Feature : int {
  kActVert = 0,     ///< active vertices
  kTotVert = 1,     ///< total vertices on the worker
  kLocMsg = 2,      ///< local messages sent
  kRemMsg = 3,      ///< remote messages sent
  kLocMsgSize = 4,  ///< local message bytes
  kRemMsgSize = 5,  ///< remote message bytes
  kAvgMsgSize = 6,  ///< average message size (not extrapolated)
};

inline constexpr int kNumFeatures = 7;

const char* FeatureName(Feature feature);

/// One row of Table-1 features.
using FeatureVector = std::array<double, kNumFeatures>;

/// Extracts the feature vector of one worker's counters.
FeatureVector FeaturesFromCounters(const bsp::WorkerCounters& counters);

/// Features and observed runtime of one iteration.
struct IterationProfile {
  int iteration = 0;
  /// Features of the critical-path worker (max outbound edges).
  FeatureVector critical_features{};
  /// Observed runtime of the superstep (simulated seconds).
  double runtime_seconds = 0.0;
};

/// Profile of one complete run of an algorithm on one dataset.
struct RunProfile {
  std::string algorithm;
  std::string dataset;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  /// Worker count of the cluster the run executed on (0 = unknown, for
  /// profiles recorded before the configuration was tracked).
  uint32_t num_workers = 0;
  std::vector<IterationProfile> iterations;

  int num_iterations() const { return static_cast<int>(iterations.size()); }
  double total_superstep_seconds() const;
};

/// Builds a RunProfile from engine output, selecting the static critical
/// worker's counters for each superstep.
RunProfile ProfileFromRunStats(const std::string& algorithm,
                               const std::string& dataset,
                               uint64_t num_vertices, uint64_t num_edges,
                               const bsp::RunStats& stats);

/// One (features -> runtime) training observation for the cost model.
/// `scale_out` carries the worker count of the run the row came from so
/// the scale-out zoo members (models/scaleout_models.h) can train on it;
/// 0 means unknown and the feature-driven paper model ignores it.
struct TrainingRow {
  FeatureVector features{};
  double runtime_seconds = 0.0;
  double scale_out = 0.0;
};

/// Flattens a profile into training rows (one per iteration).
std::vector<TrainingRow> TrainingRowsFromProfile(const RunProfile& profile);

}  // namespace predict

#endif  // PREDICT_CORE_FEATURES_H_
