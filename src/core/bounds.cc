#include "core/bounds.h"

#include <cmath>

namespace predict {

Result<double> PageRankIterationUpperBound(double epsilon, double damping) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (damping <= 0.0 || damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  return std::log10(epsilon) / std::log10(damping);
}

double ConnectedComponentsIterationUpperBound(uint64_t num_vertices) {
  return static_cast<double>(num_vertices);
}

}  // namespace predict
