// The transform function (§3.2.2): mapping an algorithm's configuration
// and convergence parameters from the actual run to the sample run.
//
// T = (ConfS => ConfG, ConvS => ConvG). The default rules:
//   * convergence tuned to dataset size (absolute aggregate, e.g.
//     PageRank's average-delta threshold): tau_S = tau_G * 1/sr;
//   * convergence independent of dataset size (relative ratio, e.g.
//     semi-clustering's update ratio): tau_S = tau_G;
//   * fixed-point algorithms: nothing to transform.
// Configuration parameters always map by identity (IDConf). Users with
// domain knowledge can plug in a custom TransformFunction.

#ifndef PREDICT_CORE_TRANSFORM_H_
#define PREDICT_CORE_TRANSFORM_H_

#include <memory>
#include <string>

#include "algorithms/algorithm_spec.h"
#include "common/result.h"

namespace predict {

/// Maps the actual run's resolved config to the sample run's config.
class TransformFunction {
 public:
  virtual ~TransformFunction() = default;

  /// \param spec         the algorithm's spec (convergence kind, keys)
  /// \param actual_config the resolved config of the actual run
  /// \param sampling_ratio realized |V_S| / |V_G|, in (0, 1]
  virtual Result<AlgorithmConfig> Apply(const AlgorithmSpec& spec,
                                        const AlgorithmConfig& actual_config,
                                        double sampling_ratio) const = 0;

  /// For reports: a one-line description of the rule applied.
  virtual std::string Describe(const AlgorithmSpec& spec) const = 0;
};

/// The paper's default rules, keyed off AlgorithmSpec::convergence.
class DefaultTransform : public TransformFunction {
 public:
  Result<AlgorithmConfig> Apply(const AlgorithmSpec& spec,
                                const AlgorithmConfig& actual_config,
                                double sampling_ratio) const override;
  std::string Describe(const AlgorithmSpec& spec) const override;

  static const DefaultTransform& Instance();
};

/// An identity transform (ablation: what happens *without* scaling —
/// the Figure-2 discussion shows iteration invariants break).
class IdentityTransform : public TransformFunction {
 public:
  Result<AlgorithmConfig> Apply(const AlgorithmSpec& spec,
                                const AlgorithmConfig& actual_config,
                                double sampling_ratio) const override;
  std::string Describe(const AlgorithmSpec& spec) const override;

  static const IdentityTransform& Instance();
};

/// Applies `custom` if non-null, else the default rules.
Result<AlgorithmConfig> TransformConfigForSample(
    const AlgorithmSpec& spec, const AlgorithmConfig& actual_config,
    double sampling_ratio, const TransformFunction* custom = nullptr);

}  // namespace predict

#endif  // PREDICT_CORE_TRANSFORM_H_
