#include "core/features.h"

namespace predict {

const char* FeatureName(Feature feature) {
  switch (feature) {
    case Feature::kActVert:
      return "ActVert";
    case Feature::kTotVert:
      return "TotVert";
    case Feature::kLocMsg:
      return "LocMsg";
    case Feature::kRemMsg:
      return "RemMsg";
    case Feature::kLocMsgSize:
      return "LocMsgSize";
    case Feature::kRemMsgSize:
      return "RemMsgSize";
    case Feature::kAvgMsgSize:
      return "AvgMsgSize";
  }
  return "unknown";
}

FeatureVector FeaturesFromCounters(const bsp::WorkerCounters& counters) {
  FeatureVector features{};
  features[static_cast<int>(Feature::kActVert)] =
      static_cast<double>(counters.active_vertices);
  features[static_cast<int>(Feature::kTotVert)] =
      static_cast<double>(counters.total_vertices);
  features[static_cast<int>(Feature::kLocMsg)] =
      static_cast<double>(counters.local_messages);
  features[static_cast<int>(Feature::kRemMsg)] =
      static_cast<double>(counters.remote_messages);
  features[static_cast<int>(Feature::kLocMsgSize)] =
      static_cast<double>(counters.local_message_bytes);
  features[static_cast<int>(Feature::kRemMsgSize)] =
      static_cast<double>(counters.remote_message_bytes);
  features[static_cast<int>(Feature::kAvgMsgSize)] =
      counters.average_message_size();
  return features;
}

double RunProfile::total_superstep_seconds() const {
  double total = 0.0;
  for (const IterationProfile& it : iterations) total += it.runtime_seconds;
  return total;
}

RunProfile ProfileFromRunStats(const std::string& algorithm,
                               const std::string& dataset,
                               uint64_t num_vertices, uint64_t num_edges,
                               const bsp::RunStats& stats) {
  RunProfile profile;
  profile.algorithm = algorithm;
  profile.dataset = dataset;
  profile.num_vertices = num_vertices;
  profile.num_edges = num_edges;
  if (!stats.supersteps.empty()) {
    profile.num_workers =
        static_cast<uint32_t>(stats.supersteps.front().per_worker.size());
  }
  profile.iterations.reserve(stats.supersteps.size());
  const bsp::WorkerId critical = stats.static_critical_worker;
  for (const bsp::SuperstepStats& step : stats.supersteps) {
    IterationProfile iteration;
    iteration.iteration = step.superstep;
    iteration.critical_features =
        FeaturesFromCounters(step.per_worker[critical]);
    iteration.runtime_seconds = step.simulated_seconds;
    profile.iterations.push_back(iteration);
  }
  return profile;
}

std::vector<TrainingRow> TrainingRowsFromProfile(const RunProfile& profile) {
  std::vector<TrainingRow> rows;
  rows.reserve(profile.iterations.size());
  for (const IterationProfile& it : profile.iterations) {
    rows.push_back({it.critical_features, it.runtime_seconds,
                    static_cast<double>(profile.num_workers)});
  }
  return rows;
}

}  // namespace predict
