#include "core/predictor.h"

#include <cmath>
#include <set>

#include "core/models/scaleout_models.h"

namespace predict {

const char* DegradationRungName(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kFull:
      return "full";
    case DegradationRung::kStaleProfile:
      return "stale_profile";
    case DegradationRung::kHistoryOnly:
      return "history_only";
  }
  return "unknown";
}

double PredictionReport::PredictedCriticalRemoteBytes() const {
  double total = 0.0;
  for (const IterationProfile& it : extrapolated_profile.iterations) {
    total += it.critical_features[static_cast<int>(Feature::kRemMsgSize)];
  }
  return total;
}

Result<PredictionReport> AssemblePredictionReport(
    const PredictionPipeline& stages, const Graph& graph,
    const std::string& algorithm, const std::string& dataset_name,
    const pipeline::SampleArtifact& sample,
    const pipeline::TransformArtifact& transform,
    const pipeline::ProfileArtifact& profile,
    const pipeline::StageContext& fit_ctx) {
  PredictionReport report;
  report.algorithm = algorithm;
  report.dataset = dataset_name;
  report.sample_config = transform.sample_config;
  report.transform_description = transform.description;
  report.realized_sampling_ratio = sample.realized_ratio();
  report.sample_total_seconds = profile.sample_total_seconds;
  report.sample_wall_seconds = profile.sample_wall_seconds;
  report.sample_profile = profile.sample_profile;
  report.predicted_iterations = report.sample_profile.num_iterations();

  // 4. Extrapolate (§3.4), iteration by iteration.
  PREDICT_ASSIGN_OR_RETURN(pipeline::ExtrapolationArtifact extrapolation,
                           stages.extrapolate.Run(graph, sample, profile));
  report.factors = extrapolation.factors;
  report.extrapolated_profile = std::move(extrapolation.extrapolated_profile);

  // 5. Cost model: train on the sample run plus history of actual runs on
  // other datasets (§3.4 "Training Methodology"); the zoo selector picks
  // which member actually predicts (density rule over history).
  PREDICT_ASSIGN_OR_RETURN(
      pipeline::ModelArtifact model,
      stages.fit.Run(profile, algorithm, dataset_name, fit_ctx));
  report.cost_model = std::move(model.model);
  report.model_selection = model.selection;

  // 6. Predict each iteration of the actual run. Scale-out members
  // predict from the deployment's worker count; the paper member from
  // the extrapolated critical-worker features (identical numbers to the
  // pre-zoo CostModel::PredictProfile path).
  const double scale_out =
      static_cast<double>(report.extrapolated_profile.num_workers);
  if (model.runtime_model != nullptr) {
    report.runtime_model_description = model.runtime_model->ToString();
    report.per_iteration_seconds.clear();
    report.per_iteration_seconds.reserve(
        report.extrapolated_profile.iterations.size());
    for (const IterationProfile& it : report.extrapolated_profile.iterations) {
      report.per_iteration_seconds.push_back(
          model.runtime_model->PredictIterationSeconds(it.critical_features,
                                                       scale_out));
    }
  } else {
    // Hand-built ModelArtifact without a zoo member: the cost model is
    // the model.
    report.runtime_model_description = report.cost_model.ToString();
    report.per_iteration_seconds =
        report.cost_model.PredictProfile(report.extrapolated_profile);
  }
  report.predicted_superstep_seconds = 0.0;
  for (const double s : report.per_iteration_seconds) {
    report.predicted_superstep_seconds += s;
  }

  // 7. Interval: residual bootstrap over the fitted member's training
  // residuals, stretched by the deployment's straggler spread.
  report.distribution =
      BootstrapDistribution(report.per_iteration_seconds, model.residuals,
                            profile.straggler_spread, stages.bootstrap);
  return report;
}

Result<PredictionReport> HistoryOnlyPrediction(const PredictorOptions& options,
                                               const std::string& algorithm,
                                               const std::string& dataset_name,
                                               uint32_t num_workers,
                                               const std::string& cause) {
  const std::string unavailable_context =
      "history-only fallback unavailable for '" + algorithm + "'";
  if (options.history == nullptr) {
    return StatusAnnotate(Status::NotFound("no history store configured; " +
                                           cause),
                          unavailable_context);
  }

  // Every actual run of this algorithm counts — including the predicted
  // dataset itself, which the full methodology excludes from *training*:
  // with the sample run gone, a previous actual run of the same dataset
  // is the best evidence left.
  std::vector<RunProfile> matching;
  for (RunProfile& profile : options.history->profiles()) {
    if (profile.algorithm == algorithm) matching.push_back(std::move(profile));
  }
  if (matching.empty()) {
    return StatusAnnotate(
        Status::NotFound("history store has no runs of the algorithm; " +
                         cause),
        unavailable_context);
  }

  // Iteration count: the rounded mean across the history's runs.
  double iteration_sum = 0.0;
  std::vector<models::ScaleOutObservation> observations;
  std::set<uint32_t> distinct_workers;
  for (const RunProfile& profile : matching) {
    iteration_sum += profile.num_iterations();
    if (profile.num_workers > 0) distinct_workers.insert(profile.num_workers);
    for (const IterationProfile& it : profile.iterations) {
      observations.push_back({static_cast<double>(profile.num_workers),
                              it.runtime_seconds});
    }
  }
  const int predicted_iterations = std::max(
      1, static_cast<int>(std::lround(iteration_sum /
                                      static_cast<double>(matching.size()))));

  // Ernest when the history spans enough deployments to fit its basis,
  // else the mean observed iteration runtime.
  PredictionReport report;
  if (distinct_workers.size() >= 2) {
    PREDICT_ASSIGN_OR_RETURN(models::ErnestModel model,
                             models::ErnestModel::Fit(observations));
    report.model_selection.tier = models::ModelTier::kErnest;
    report.runtime_model_description = model.ToString();
    report.per_iteration_seconds.assign(
        predicted_iterations,
        model.PredictIterationSeconds(FeatureVector{},
                                      static_cast<double>(num_workers)));
  } else {
    PREDICT_ASSIGN_OR_RETURN(models::MeanModel model,
                             models::MeanModel::Fit(observations));
    report.model_selection.tier = models::ModelTier::kMean;
    report.runtime_model_description = model.ToString();
    report.per_iteration_seconds.assign(
        predicted_iterations,
        model.PredictIterationSeconds(FeatureVector{},
                                      static_cast<double>(num_workers)));
  }

  report.algorithm = algorithm;
  report.dataset = dataset_name;
  report.predicted_iterations = predicted_iterations;
  report.model_selection.unique_configurations =
      static_cast<int>(distinct_workers.size());
  report.model_selection.history_rows = observations.size();
  report.model_selection.reason =
      "history-only degraded fallback (" +
      std::to_string(matching.size()) + " history run" +
      (matching.size() == 1 ? "" : "s") + ")";
  report.transform_description = "none (no sample run)";
  for (const double s : report.per_iteration_seconds) {
    report.predicted_superstep_seconds += s;
  }
  // Degenerate distribution: no fitted residuals survive the fallback.
  report.distribution.point_seconds = report.predicted_superstep_seconds;
  report.distribution.p50_seconds = report.predicted_superstep_seconds;
  report.distribution.p95_seconds = report.predicted_superstep_seconds;
  report.degradation.rung = DegradationRung::kHistoryOnly;
  report.degradation.cause = cause;
  return report;
}

Result<PredictionReport> Predictor::PredictRuntime(
    const std::string& algorithm, const Graph& graph,
    const std::string& dataset_name, const AlgorithmConfig& overrides) {
  const PredictionPipeline stages(options_);
  const RobustnessOptions& robustness = options_.robustness;
  const Deadline deadline = robustness.deadline_seconds > 0
                                ? Deadline::After(robustness.deadline_seconds)
                                : Deadline::Infinite();
  RequestAccounting accounting;
  const pipeline::StageContext sample_ctx{robustness.retry, deadline,
                                          &accounting.sample};
  const pipeline::StageContext profile_ctx{robustness.retry, deadline,
                                           &accounting.profile};
  const pipeline::StageContext fit_ctx{robustness.retry, deadline,
                                       &accounting.fit};

  // Fail fast on an unknown algorithm or bad override before paying for
  // the sampling pass. Never degrades: a misspelled request is a caller
  // bug, and answering it from history would mask the typo.
  const Status valid = stages.transform.Validate(algorithm, overrides);
  if (!valid.ok()) return valid;

  // The degradation ladder. The Predictor holds no caches, so its ladder
  // has one rung below the full pipeline: history-only. When even that is
  // unavailable the annotated fallback error (which carries the original
  // cause) is the explicit bottom.
  auto degrade = [&](const Status& cause) -> Result<PredictionReport> {
    if (!robustness.degraded_fallbacks) return cause;
    Result<PredictionReport> fallback =
        HistoryOnlyPrediction(options_, algorithm, dataset_name,
                              options_.engine.num_workers, cause.ToString());
    if (!fallback.ok()) return fallback.status();
    fallback->accounting = accounting;
    return fallback;
  };

  // 1. Sample (§3.2.1).
  Result<pipeline::SampleArtifact> sample = stages.sample.Run(graph, sample_ctx);
  if (!sample.ok()) return degrade(sample.status());

  // 2. Transform (§3.2.2). Pure config arithmetic — a failure here is a
  // configuration bug, not a fault, so it does not degrade.
  PREDICT_ASSIGN_OR_RETURN(
      pipeline::TransformArtifact transform,
      stages.transform.Run(algorithm, overrides, sample->realized_ratio()));

  // 3. Sample run with profiling (§3.2). Same engine configuration as the
  // actual run (assumption iii).
  Result<pipeline::ProfileArtifact> profile =
      stages.profile.Run(algorithm, dataset_name, *sample, transform,
                         profile_ctx);
  if (!profile.ok()) return degrade(profile.status());

  // 4-6. Extrapolate, fit, predict.
  Result<PredictionReport> report =
      AssemblePredictionReport(stages, graph, algorithm, dataset_name, *sample,
                               transform, *profile, fit_ctx);
  if (!report.ok()) return degrade(report.status());
  report->accounting = accounting;
  return report;
}

std::vector<Result<PredictionReport>> Predictor::PredictAcrossScenarios(
    const std::string& algorithm, const Graph& graph,
    const std::string& dataset_name, const AlgorithmConfig& overrides,
    std::span<const bsp::ClusterScenario> scenarios, bsp::ThreadPool* pool) {
  const PredictionPipeline stages(options_);
  // History rows were observed on the baseline deployment (assumption
  // iii) and the paper re-trains per cluster, so scenarios that model a
  // different deployment must fit without them.
  PredictorOptions history_free_options = options_;
  history_free_options.history = nullptr;
  const PredictionPipeline history_free_stages(history_free_options);
  const std::string baseline_key = bsp::EngineOptionsKey(options_.engine);

  // One deadline for the whole sweep, the retry policy applied at every
  // boundary. No attempt accounting: the slots would race across the
  // fan-out threads, and the ladder is the single-prediction APIs' job.
  const RobustnessOptions& robustness = options_.robustness;
  const Deadline deadline = robustness.deadline_seconds > 0
                                ? Deadline::After(robustness.deadline_seconds)
                                : Deadline::Infinite();
  const pipeline::StageContext ctx{robustness.retry, deadline, nullptr};

  // The front half is deployment-independent: validate, sample and
  // transform once, then share the artifacts across every scenario.
  auto front_half = [&]() -> Result<
      std::pair<pipeline::SampleArtifact, pipeline::TransformArtifact>> {
    const Status valid = stages.transform.Validate(algorithm, overrides);
    if (!valid.ok()) return valid;
    PREDICT_ASSIGN_OR_RETURN(pipeline::SampleArtifact sample,
                             stages.sample.Run(graph, ctx));
    PREDICT_ASSIGN_OR_RETURN(
        pipeline::TransformArtifact transform,
        stages.transform.Run(algorithm, overrides, sample.realized_ratio()));
    return std::make_pair(std::move(sample), std::move(transform));
  }();
  if (!front_half.ok()) {
    return std::vector<Result<PredictionReport>>(scenarios.size(),
                                                 front_half.status());
  }
  const pipeline::SampleArtifact& sample = front_half->first;
  const pipeline::TransformArtifact& transform = front_half->second;

  auto predict_one = [&](size_t i) -> Result<PredictionReport> {
    const bsp::ClusterScenario& scenario = scenarios[i];
    const bsp::EngineOptions engine = scenario.ToEngineOptions(0);
    PREDICT_ASSIGN_OR_RETURN(
        pipeline::ProfileArtifact profile,
        stages.profile.RunWithEngine(algorithm, dataset_name, sample,
                                     transform, engine, ctx));
    PREDICT_ASSIGN_OR_RETURN(
        PredictionReport report,
        AssemblePredictionReport(
            StagesForDeployment(bsp::EngineOptionsKey(engine), baseline_key,
                                stages, history_free_stages),
            graph, algorithm, dataset_name, sample, transform, profile, ctx));
    report.scenario = scenario.name;
    return report;
  };

  // Slots are written by index, so results are positionally identical no
  // matter which pool thread answers which scenario.
  std::vector<Result<PredictionReport>> results(
      scenarios.size(), Status::Internal("scenario not computed"));
  if (pool != nullptr) {
    pool->ParallelFor(scenarios.size(),
                      [&](uint64_t i) { results[i] = predict_one(i); });
  } else {
    for (size_t i = 0; i < scenarios.size(); ++i) results[i] = predict_one(i);
  }
  return results;
}

PredictionEvaluation EvaluatePrediction(const PredictionReport& report,
                                        const bsp::RunStats& actual) {
  PredictionEvaluation eval;
  eval.actual_iterations = actual.num_supersteps();
  eval.actual_superstep_seconds = actual.superstep_phase_seconds;

  const double actual_iters = static_cast<double>(eval.actual_iterations);
  if (actual_iters > 0) {
    eval.iterations_error =
        (static_cast<double>(report.predicted_iterations) - actual_iters) /
        actual_iters;
  }
  if (eval.actual_superstep_seconds > 0) {
    eval.runtime_error =
        (report.predicted_superstep_seconds - eval.actual_superstep_seconds) /
        eval.actual_superstep_seconds;
  }

  double actual_remote_bytes = 0.0;
  const bsp::WorkerId critical = actual.static_critical_worker;
  for (const bsp::SuperstepStats& step : actual.supersteps) {
    actual_remote_bytes +=
        static_cast<double>(step.per_worker[critical].remote_message_bytes);
  }
  if (actual_remote_bytes > 0) {
    eval.remote_bytes_error =
        (report.PredictedCriticalRemoteBytes() - actual_remote_bytes) /
        actual_remote_bytes;
  }
  return eval;
}

}  // namespace predict
