#include "core/predictor.h"

namespace predict {

double PredictionReport::PredictedCriticalRemoteBytes() const {
  double total = 0.0;
  for (const IterationProfile& it : extrapolated_profile.iterations) {
    total += it.critical_features[static_cast<int>(Feature::kRemMsgSize)];
  }
  return total;
}

Result<PredictionReport> AssemblePredictionReport(
    const PredictionPipeline& stages, const Graph& graph,
    const std::string& algorithm, const std::string& dataset_name,
    const pipeline::SampleArtifact& sample,
    const pipeline::TransformArtifact& transform,
    const pipeline::ProfileArtifact& profile) {
  PredictionReport report;
  report.algorithm = algorithm;
  report.dataset = dataset_name;
  report.sample_config = transform.sample_config;
  report.transform_description = transform.description;
  report.realized_sampling_ratio = sample.realized_ratio();
  report.sample_total_seconds = profile.sample_total_seconds;
  report.sample_wall_seconds = profile.sample_wall_seconds;
  report.sample_profile = profile.sample_profile;
  report.predicted_iterations = report.sample_profile.num_iterations();

  // 4. Extrapolate (§3.4), iteration by iteration.
  PREDICT_ASSIGN_OR_RETURN(pipeline::ExtrapolationArtifact extrapolation,
                           stages.extrapolate.Run(graph, sample, profile));
  report.factors = extrapolation.factors;
  report.extrapolated_profile = std::move(extrapolation.extrapolated_profile);

  // 5. Cost model: train on the sample run plus history of actual runs on
  // other datasets (§3.4 "Training Methodology"); the zoo selector picks
  // which member actually predicts (density rule over history).
  PREDICT_ASSIGN_OR_RETURN(pipeline::ModelArtifact model,
                           stages.fit.Run(profile, algorithm, dataset_name));
  report.cost_model = std::move(model.model);
  report.model_selection = model.selection;

  // 6. Predict each iteration of the actual run. Scale-out members
  // predict from the deployment's worker count; the paper member from
  // the extrapolated critical-worker features (identical numbers to the
  // pre-zoo CostModel::PredictProfile path).
  const double scale_out =
      static_cast<double>(report.extrapolated_profile.num_workers);
  if (model.runtime_model != nullptr) {
    report.runtime_model_description = model.runtime_model->ToString();
    report.per_iteration_seconds.clear();
    report.per_iteration_seconds.reserve(
        report.extrapolated_profile.iterations.size());
    for (const IterationProfile& it : report.extrapolated_profile.iterations) {
      report.per_iteration_seconds.push_back(
          model.runtime_model->PredictIterationSeconds(it.critical_features,
                                                       scale_out));
    }
  } else {
    // Hand-built ModelArtifact without a zoo member: the cost model is
    // the model.
    report.runtime_model_description = report.cost_model.ToString();
    report.per_iteration_seconds =
        report.cost_model.PredictProfile(report.extrapolated_profile);
  }
  report.predicted_superstep_seconds = 0.0;
  for (const double s : report.per_iteration_seconds) {
    report.predicted_superstep_seconds += s;
  }

  // 7. Interval: residual bootstrap over the fitted member's training
  // residuals, stretched by the deployment's straggler spread.
  report.distribution =
      BootstrapDistribution(report.per_iteration_seconds, model.residuals,
                            profile.straggler_spread, stages.bootstrap);
  return report;
}

Result<PredictionReport> Predictor::PredictRuntime(
    const std::string& algorithm, const Graph& graph,
    const std::string& dataset_name, const AlgorithmConfig& overrides) {
  const PredictionPipeline stages(options_);

  // Fail fast on an unknown algorithm or bad override before paying for
  // the sampling pass.
  const Status valid = stages.transform.Validate(algorithm, overrides);
  if (!valid.ok()) return valid;

  // 1. Sample (§3.2.1).
  PREDICT_ASSIGN_OR_RETURN(pipeline::SampleArtifact sample,
                           stages.sample.Run(graph));

  // 2. Transform (§3.2.2).
  PREDICT_ASSIGN_OR_RETURN(
      pipeline::TransformArtifact transform,
      stages.transform.Run(algorithm, overrides, sample.realized_ratio()));

  // 3. Sample run with profiling (§3.2). Same engine configuration as the
  // actual run (assumption iii).
  PREDICT_ASSIGN_OR_RETURN(
      pipeline::ProfileArtifact profile,
      stages.profile.Run(algorithm, dataset_name, sample, transform));

  // 4-6. Extrapolate, fit, predict.
  return AssemblePredictionReport(stages, graph, algorithm, dataset_name,
                                  sample, transform, profile);
}

std::vector<Result<PredictionReport>> Predictor::PredictAcrossScenarios(
    const std::string& algorithm, const Graph& graph,
    const std::string& dataset_name, const AlgorithmConfig& overrides,
    std::span<const bsp::ClusterScenario> scenarios, bsp::ThreadPool* pool) {
  const PredictionPipeline stages(options_);
  // History rows were observed on the baseline deployment (assumption
  // iii) and the paper re-trains per cluster, so scenarios that model a
  // different deployment must fit without them.
  PredictorOptions history_free_options = options_;
  history_free_options.history = nullptr;
  const PredictionPipeline history_free_stages(history_free_options);
  const std::string baseline_key = bsp::EngineOptionsKey(options_.engine);

  // The front half is deployment-independent: validate, sample and
  // transform once, then share the artifacts across every scenario.
  auto front_half = [&]() -> Result<
      std::pair<pipeline::SampleArtifact, pipeline::TransformArtifact>> {
    const Status valid = stages.transform.Validate(algorithm, overrides);
    if (!valid.ok()) return valid;
    PREDICT_ASSIGN_OR_RETURN(pipeline::SampleArtifact sample,
                             stages.sample.Run(graph));
    PREDICT_ASSIGN_OR_RETURN(
        pipeline::TransformArtifact transform,
        stages.transform.Run(algorithm, overrides, sample.realized_ratio()));
    return std::make_pair(std::move(sample), std::move(transform));
  }();
  if (!front_half.ok()) {
    return std::vector<Result<PredictionReport>>(scenarios.size(),
                                                 front_half.status());
  }
  const pipeline::SampleArtifact& sample = front_half->first;
  const pipeline::TransformArtifact& transform = front_half->second;

  auto predict_one = [&](size_t i) -> Result<PredictionReport> {
    const bsp::ClusterScenario& scenario = scenarios[i];
    const bsp::EngineOptions engine = scenario.ToEngineOptions(0);
    PREDICT_ASSIGN_OR_RETURN(
        pipeline::ProfileArtifact profile,
        stages.profile.RunWithEngine(algorithm, dataset_name, sample,
                                     transform, engine));
    PREDICT_ASSIGN_OR_RETURN(
        PredictionReport report,
        AssemblePredictionReport(
            StagesForDeployment(bsp::EngineOptionsKey(engine), baseline_key,
                                stages, history_free_stages),
            graph, algorithm, dataset_name, sample, transform, profile));
    report.scenario = scenario.name;
    return report;
  };

  // Slots are written by index, so results are positionally identical no
  // matter which pool thread answers which scenario.
  std::vector<Result<PredictionReport>> results(
      scenarios.size(), Status::Internal("scenario not computed"));
  if (pool != nullptr) {
    pool->ParallelFor(scenarios.size(),
                      [&](uint64_t i) { results[i] = predict_one(i); });
  } else {
    for (size_t i = 0; i < scenarios.size(); ++i) results[i] = predict_one(i);
  }
  return results;
}

PredictionEvaluation EvaluatePrediction(const PredictionReport& report,
                                        const bsp::RunStats& actual) {
  PredictionEvaluation eval;
  eval.actual_iterations = actual.num_supersteps();
  eval.actual_superstep_seconds = actual.superstep_phase_seconds;

  const double actual_iters = static_cast<double>(eval.actual_iterations);
  if (actual_iters > 0) {
    eval.iterations_error =
        (static_cast<double>(report.predicted_iterations) - actual_iters) /
        actual_iters;
  }
  if (eval.actual_superstep_seconds > 0) {
    eval.runtime_error =
        (report.predicted_superstep_seconds - eval.actual_superstep_seconds) /
        eval.actual_superstep_seconds;
  }

  double actual_remote_bytes = 0.0;
  const bsp::WorkerId critical = actual.static_critical_worker;
  for (const bsp::SuperstepStats& step : actual.supersteps) {
    actual_remote_bytes +=
        static_cast<double>(step.per_worker[critical].remote_message_bytes);
  }
  if (actual_remote_bytes > 0) {
    eval.remote_bytes_error =
        (report.PredictedCriticalRemoteBytes() - actual_remote_bytes) /
        actual_remote_bytes;
  }
  return eval;
}

}  // namespace predict
