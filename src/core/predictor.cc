#include "core/predictor.h"

namespace predict {

double PredictionReport::PredictedCriticalRemoteBytes() const {
  double total = 0.0;
  for (const IterationProfile& it : extrapolated_profile.iterations) {
    total += it.critical_features[static_cast<int>(Feature::kRemMsgSize)];
  }
  return total;
}

Result<PredictionReport> Predictor::PredictRuntime(
    const std::string& algorithm, const Graph& graph,
    const std::string& dataset_name, const AlgorithmConfig& overrides) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmSpec spec, FindAlgorithmSpec(algorithm));
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig actual_config,
                           ResolveConfig(spec, overrides));

  // 1. Sample (§3.2.1).
  PREDICT_ASSIGN_OR_RETURN(Sample sample,
                           SampleGraph(graph, options_.sampler));

  // 2. Transform (§3.2.2).
  PREDICT_ASSIGN_OR_RETURN(
      AlgorithmConfig sample_config,
      TransformConfigForSample(spec, actual_config, sample.realized_ratio,
                               options_.transform));

  // 3. Sample run with profiling (§3.2). Same engine configuration as the
  // actual run (assumption iii).
  RunOptions run_options;
  run_options.engine = options_.engine;
  run_options.config_overrides = sample_config;
  PREDICT_ASSIGN_OR_RETURN(
      AlgorithmRunResult sample_run,
      RunAlgorithmByName(algorithm, sample.subgraph, run_options));

  PredictionReport report;
  report.algorithm = algorithm;
  report.dataset = dataset_name;
  report.sample_config = sample_config;
  const TransformFunction& transform =
      options_.transform != nullptr
          ? *options_.transform
          : static_cast<const TransformFunction&>(DefaultTransform::Instance());
  report.transform_description = transform.Describe(spec);
  report.realized_sampling_ratio = sample.realized_ratio;
  report.sample_total_seconds = sample_run.stats.total_seconds;
  report.sample_wall_seconds = sample_run.stats.wall_seconds;
  report.sample_profile = ProfileFromRunStats(
      algorithm, dataset_name.empty() ? "sample" : dataset_name + "_sample",
      sample.subgraph.num_vertices(), sample.subgraph.num_edges(),
      sample_run.stats);
  report.predicted_iterations = report.sample_profile.num_iterations();

  // 4. Extrapolate (§3.4), iteration by iteration.
  PREDICT_ASSIGN_OR_RETURN(report.factors,
                           ComputeExtrapolationFactors(graph, sample.subgraph));
  report.extrapolated_profile =
      ExtrapolateProfile(report.sample_profile, report.factors);

  // 5. Cost model: train on the sample run plus history of actual runs on
  // other datasets (§3.4 "Training Methodology").
  std::vector<TrainingRow> rows = TrainingRowsFromProfile(report.sample_profile);
  if (options_.history != nullptr) {
    const std::vector<TrainingRow> history_rows =
        options_.history->TrainingRowsExcluding(algorithm, dataset_name);
    rows.insert(rows.end(), history_rows.begin(), history_rows.end());
  }
  PREDICT_ASSIGN_OR_RETURN(report.cost_model,
                           CostModel::Train(rows, options_.cost_model));

  // 6. Predict each iteration of the actual run.
  report.per_iteration_seconds =
      report.cost_model.PredictProfile(report.extrapolated_profile);
  report.predicted_superstep_seconds = 0.0;
  for (const double s : report.per_iteration_seconds) {
    report.predicted_superstep_seconds += s;
  }
  return report;
}

PredictionEvaluation EvaluatePrediction(const PredictionReport& report,
                                        const bsp::RunStats& actual) {
  PredictionEvaluation eval;
  eval.actual_iterations = actual.num_supersteps();
  eval.actual_superstep_seconds = actual.superstep_phase_seconds;

  const double actual_iters = static_cast<double>(eval.actual_iterations);
  if (actual_iters > 0) {
    eval.iterations_error =
        (static_cast<double>(report.predicted_iterations) - actual_iters) /
        actual_iters;
  }
  if (eval.actual_superstep_seconds > 0) {
    eval.runtime_error =
        (report.predicted_superstep_seconds - eval.actual_superstep_seconds) /
        eval.actual_superstep_seconds;
  }

  double actual_remote_bytes = 0.0;
  const bsp::WorkerId critical = actual.static_critical_worker;
  for (const bsp::SuperstepStats& step : actual.supersteps) {
    actual_remote_bytes +=
        static_cast<double>(step.per_worker[critical].remote_message_bytes);
  }
  if (actual_remote_bytes > 0) {
    eval.remote_bytes_error =
        (report.PredictedCriticalRemoteBytes() - actual_remote_bytes) /
        actual_remote_bytes;
  }
  return eval;
}

}  // namespace predict
