// The customizable cost model (§3.4): translates extrapolated key input
// features into per-iteration runtime.
//
// Wraps regression + forward selection over the Table-1 feature pool and
// is trained on sample-run rows plus (optionally) historical actual
// runs. Once trained, the model is reusable across datasets — the
// paper's "Training Methodology": the underlying cost of sending a
// message or running the compute function does not depend on which
// dataset the algorithm processes.

#ifndef PREDICT_CORE_COST_MODEL_H_
#define PREDICT_CORE_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/features.h"
#include "core/regression.h"

namespace predict {

/// Training options.
struct CostModelOptions {
  /// Off = use every Table-1 feature (ablation baseline).
  bool use_feature_selection = true;
  ForwardSelectionOptions selection;
};

/// \brief Trained per-iteration runtime model.
class CostModel {
 public:
  /// Fits the model on (features -> superstep seconds) rows.
  static Result<CostModel> Train(const std::vector<TrainingRow>& rows,
                                 const CostModelOptions& options = {});

  /// Predicted runtime of one iteration with the given (extrapolated)
  /// critical-worker features. Clamped at >= 0.
  double PredictIterationSeconds(const FeatureVector& features) const;

  /// Predicted runtimes for every iteration of a profile, plus the total.
  std::vector<double> PredictProfile(const RunProfile& profile) const;

  double r_squared() const { return model_.r_squared; }
  const LinearModel& model() const { return model_; }

  /// The Table-1 features the forward selection kept.
  std::vector<Feature> selected_features() const;

  /// e.g. "y = 9.1e-08*RemMsgSize + 2.1e-06*RemMsg + 0.25 (R2=0.95)".
  std::string ToString() const;

 private:
  LinearModel model_;
};

}  // namespace predict

#endif  // PREDICT_CORE_COST_MODEL_H_
