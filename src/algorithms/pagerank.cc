#include "algorithms/pagerank.h"

#include <cmath>

namespace predict {

const AlgorithmSpec& PageRankSpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "pagerank";
    s.convergence = ConvergenceKind::kAbsoluteAggregate;
    s.default_config = {{"damping", 0.85}, {"tau", 1e-8}};
    s.requires_undirected = false;
    s.convergence_keys = {"tau"};
    return s;
  }();
  return spec;
}

PageRankProgram::PageRankProgram(const AlgorithmConfig& config) {
  damping_ = config.at("damping");
  tau_ = config.at("tau");
}

void PageRankProgram::RegisterAggregators(bsp::AggregatorRegistry* registry) {
  delta_agg_ = registry->Register(kDeltaAggregate, bsp::AggregatorOp::kSum);
}

PageRankValue PageRankProgram::InitialValue(VertexId v,
                                            const Graph& graph) const {
  (void)v;
  return {1.0 / static_cast<double>(graph.num_vertices())};
}

void PageRankProgram::Compute(bsp::VertexContext<PageRankValue, double>* ctx,
                              std::span<const double> messages) {
  double& rank = ctx->value().rank;
  if (ctx->superstep() > 0) {
    double sum = 0.0;
    for (const double m : messages) sum += m;
    const double next =
        (1.0 - damping_) / static_cast<double>(ctx->num_vertices()) +
        damping_ * sum;
    ctx->Aggregate(delta_agg_, std::abs(next - rank));
    rank = next;
  }
  const uint64_t out_degree = ctx->out_degree();
  if (out_degree > 0) {
    ctx->SendMessageToAllNeighbors(rank / static_cast<double>(out_degree));
  }
  // Vertices stay active; the master's convergence check stops the run.
}

void PageRankProgram::MasterCompute(bsp::MasterContext* ctx) {
  if (ctx->superstep() == 0 || tau_ <= 0.0) return;
  const double avg_delta =
      ctx->GetAggregate(delta_agg_) / static_cast<double>(ctx->num_vertices());
  if (avg_delta < tau_) ctx->HaltComputation();
}

Result<PageRankResult> RunPageRank(const Graph& graph,
                                   const AlgorithmConfig& overrides,
                                   const bsp::EngineOptions& engine_options) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig config,
                           ResolveConfig(PageRankSpec(), overrides));
  PageRankProgram program(config);
  bsp::Engine<PageRankValue, double> engine(engine_options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(graph, &program));
  PageRankResult result;
  result.stats = std::move(stats);
  result.ranks.reserve(graph.num_vertices());
  for (const PageRankValue& v : engine.vertex_values()) {
    result.ranks.push_back(v.rank);
  }
  return result;
}

}  // namespace predict
