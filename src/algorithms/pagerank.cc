#include "algorithms/pagerank.h"

#include <cmath>

namespace predict {

const AlgorithmSpec& PageRankSpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "pagerank";
    s.convergence = ConvergenceKind::kAbsoluteAggregate;
    s.default_config = {{"damping", 0.85}, {"tau", 1e-8}};
    s.requires_undirected = false;
    s.convergence_keys = {"tau"};
    return s;
  }();
  return spec;
}

PageRankProgram::PageRankProgram(const AlgorithmConfig& config) {
  damping_ = config.at("damping");
  tau_ = config.at("tau");
}

void PageRankProgram::RegisterAggregators(bsp::AggregatorRegistry* registry) {
  delta_agg_ = registry->Register(kDeltaAggregate, bsp::AggregatorOp::kSum);
}

PageRankValue PageRankProgram::InitialValue(VertexId v,
                                            const Graph& graph) const {
  (void)v;
  return {1.0 / static_cast<double>(graph.num_vertices())};
}

void PageRankProgram::Compute(bsp::VertexContext<PageRankValue, double>* ctx,
                              std::span<const double> messages) {
  double& rank = ctx->value().rank;
  if (ctx->superstep() > 0) {
    double sum = 0.0;
    for (const double m : messages) sum += m;
    // base_ = (1 - d) / |V|, computed once per superstep in MasterCompute
    // (the compute phases only read it) — the per-vertex divide is the
    // kernel's hottest scalar op and the `double` state writes alias the
    // `double` members under TBAA, so the compiler cannot hoist it.
    const double next = base_ + damping_ * sum;
    ctx->Aggregate(delta_agg_, std::abs(next - rank));
    rank = next;
  }
  const uint64_t out_degree = ctx->out_degree();
  if (out_degree > 0) {
    ctx->SendMessageToAllNeighbors(rank / static_cast<double>(out_degree));
  }
  // Vertices stay active; the master's convergence check stops the run.
}

void PageRankProgram::MasterCompute(bsp::MasterContext* ctx) {
  // Runs single-threaded between compute phases: superstep S+1's vertices
  // read what superstep S's master wrote, never concurrently. Superstep
  // 0's Compute skips the rank update, so a pre-run value is not needed.
  base_ = (1.0 - damping_) /
          static_cast<double>(ctx->num_vertices());
  if (ctx->superstep() == 0 || tau_ <= 0.0) return;
  const double avg_delta =
      ctx->GetAggregate(delta_agg_) / static_cast<double>(ctx->num_vertices());
  if (avg_delta < tau_) ctx->HaltComputation();
}

Result<PageRankResult> RunPageRank(const Graph& graph,
                                   const AlgorithmConfig& overrides,
                                   const bsp::EngineOptions& engine_options) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig config,
                           ResolveConfig(PageRankSpec(), overrides));
  PageRankProgram program(config);
  // Each Run* owns the compressed_graph flag for the graph it actually
  // hands the engine: callers describe the INPUT graph, but algorithms
  // that transform first (connected components, semi-clustering,
  // neighborhood) run on a plain derived graph regardless of the input's
  // representation. The engine's strict flag==representation check still
  // guards direct Engine users.
  bsp::EngineOptions options = engine_options;
  options.compressed_graph = graph.edges_compressed();
  bsp::Engine<PageRankValue, double> engine(options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(graph, &program));
  PageRankResult result;
  result.stats = std::move(stats);
  result.ranks.reserve(graph.num_vertices());
  for (const PageRankValue& v : engine.vertex_values()) {
    result.ranks.push_back(v.rank);
  }
  return result;
}

}  // namespace predict
