#include "algorithms/algorithm_spec.h"

namespace predict {

const char* ConvergenceKindName(ConvergenceKind kind) {
  switch (kind) {
    case ConvergenceKind::kAbsoluteAggregate:
      return "absolute_aggregate";
    case ConvergenceKind::kRelativeRatio:
      return "relative_ratio";
    case ConvergenceKind::kFixedPoint:
      return "fixed_point";
  }
  return "unknown";
}

Result<AlgorithmConfig> ResolveConfig(const AlgorithmSpec& spec,
                                      const AlgorithmConfig& overrides) {
  AlgorithmConfig config = spec.default_config;
  for (const auto& [key, value] : overrides) {
    if (config.find(key) == config.end()) {
      return Status::InvalidArgument("algorithm '" + spec.name +
                                     "' has no config parameter '" + key + "'");
    }
    config[key] = value;
  }
  return config;
}

Result<double> GetConfigValue(const AlgorithmConfig& config,
                              const std::string& key) {
  const auto it = config.find(key);
  if (it == config.end()) {
    return Status::NotFound("missing config parameter '" + key + "'");
  }
  return it->second;
}

}  // namespace predict
