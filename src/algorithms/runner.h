// Type-erased algorithm execution.
//
// PREDIcT's predictor is algorithm-agnostic: it looks an algorithm up by
// name, resolves its spec (for the transform rules), runs it on a graph
// (sample or complete), and consumes only the RunStats. This registry is
// also the extension point for user-defined algorithms (§3.2.2: "users
// can plug in their own set of transformations" — and, here, their own
// algorithms).

#ifndef PREDICT_ALGORITHMS_RUNNER_H_
#define PREDICT_ALGORITHMS_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"
#include "common/result.h"
#include "graph/graph.h"

namespace predict {

/// Inputs of a type-erased run.
struct RunOptions {
  /// Execution configuration, including the vertex partitioning
  /// strategy and cost profile. To target a named deployment, fill it
  /// from a cluster scenario: `options.engine =
  /// scenario.ToEngineOptions()` (bsp/scenario.h).
  bsp::EngineOptions engine;
  /// Overrides applied on top of the algorithm's default config.
  AlgorithmConfig config_overrides;
  /// Input PageRank values for algorithms with requires_rank_input;
  /// empty means "compute them with a fixed-iteration PageRank first".
  std::vector<double> input_ranks;
};

/// Output of a type-erased run.
struct AlgorithmRunResult {
  bsp::RunStats stats;
  /// PageRank output when the algorithm produces ranks (used to feed
  /// top-k sample runs); empty otherwise.
  std::vector<double> ranks;
};

/// Signature of a registered algorithm entry point.
///
/// Concurrency contract: a runner must be safe to invoke from multiple
/// threads at once on the same const Graph (the PredictionService fans
/// batched predictions out across a thread pool, sharing graphs and
/// registry entries). Runners must treat the graph as read-only and keep
/// all run state local; every builtin obeys this.
using AlgorithmRunner = std::function<Result<AlgorithmRunResult>(
    const Graph& graph, const RunOptions& options)>;

/// Looks up an algorithm spec by name; NotFound if unregistered.
Result<AlgorithmSpec> FindAlgorithmSpec(const std::string& name);

/// Runs a registered algorithm by name.
Result<AlgorithmRunResult> RunAlgorithmByName(const std::string& name,
                                              const Graph& graph,
                                              const RunOptions& options);

/// Names of all registered algorithms, sorted.
std::vector<std::string> RegisteredAlgorithmNames();

/// Registers a user-defined algorithm. Fails if the name is taken.
Status RegisterAlgorithm(const AlgorithmSpec& spec, AlgorithmRunner runner);

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_RUNNER_H_
