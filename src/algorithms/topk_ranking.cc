#include "algorithms/topk_ranking.h"

#include <algorithm>

#include "algorithms/pagerank.h"

namespace predict {

namespace {

// Descending by rank; ascending origin breaks ties deterministically.
bool EntryLess(const RankEntry& a, const RankEntry& b) {
  return a.rank != b.rank ? a.rank > b.rank : a.origin < b.origin;
}

// Inserts `entry` into the sorted list if it belongs in the top k.
// Returns true if the list changed. Entries are deduplicated by origin
// (a vertex's rank is fixed, so the first copy is authoritative).
bool MergeEntry(std::vector<RankEntry>* list, const RankEntry& entry,
                size_t k) {
  for (const RankEntry& existing : *list) {
    if (existing.origin == entry.origin) return false;
  }
  auto pos = std::lower_bound(list->begin(), list->end(), entry, EntryLess);
  if (list->size() >= k && pos == list->end()) return false;
  list->insert(pos, entry);
  if (list->size() > k) list->pop_back();
  return true;
}

}  // namespace

const AlgorithmSpec& TopKRankingSpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "topk_ranking";
    s.convergence = ConvergenceKind::kRelativeRatio;
    s.default_config = {{"k", 10}, {"tau", 0.001}, {"rank_iterations", 15}};
    s.requires_undirected = false;
    s.requires_rank_input = true;
    s.convergence_keys = {"tau"};
    return s;
  }();
  return spec;
}

TopKRankingProgram::TopKRankingProgram(const AlgorithmConfig& config,
                                       std::span<const double> ranks)
    : ranks_(ranks) {
  k_ = static_cast<size_t>(config.at("k"));
  tau_ = config.at("tau");
}

void TopKRankingProgram::RegisterAggregators(
    bsp::AggregatorRegistry* registry) {
  updates_agg_ = registry->Register(kUpdatesAggregate, bsp::AggregatorOp::kSum);
}

TopKValue TopKRankingProgram::InitialValue(VertexId v,
                                           const Graph& graph) const {
  (void)graph;
  TopKValue value;
  value.entries.push_back({ranks_[v], v});
  return value;
}

void TopKRankingProgram::Compute(
    bsp::VertexContext<TopKValue, TopKMessage>* ctx,
    std::span<const TopKMessage> messages) {
  std::vector<RankEntry>& list = ctx->value().entries;
  bool changed = false;
  if (ctx->superstep() == 0) {
    changed = true;  // the initial list is news to the neighbors
  } else {
    for (const TopKMessage& msg : messages) {
      for (const RankEntry& entry : *msg.entries) {
        changed |= MergeEntry(&list, entry, k_);
      }
    }
  }
  if (changed) {
    ctx->Aggregate(updates_agg_, 1.0);
    if (ctx->out_degree() > 0) {
      ctx->SendMessageToAllNeighbors(
          TopKMessage{std::make_shared<const std::vector<RankEntry>>(list)});
    }
  }
  ctx->VoteToHalt();
}

void TopKRankingProgram::MasterCompute(bsp::MasterContext* ctx) {
  if (ctx->superstep() == 0) return;
  const double active_ratio = ctx->GetAggregate(updates_agg_) /
                              static_cast<double>(ctx->num_vertices());
  if (active_ratio < tau_) ctx->HaltComputation();
}

Result<TopKResult> RunTopKRanking(const Graph& graph,
                                  const AlgorithmConfig& overrides,
                                  const bsp::EngineOptions& engine_options,
                                  std::vector<double> ranks) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig config,
                           ResolveConfig(TopKRankingSpec(), overrides));
  if (ranks.empty()) {
    // Produce input ranks with a fixed-iteration PageRank (not profiled:
    // the paper treats top-k as its own algorithm running on PR output).
    bsp::EngineOptions rank_engine = engine_options;
    rank_engine.max_supersteps =
        static_cast<int>(config.at("rank_iterations"));
    rank_engine.memory_budget_bytes = 0;  // the PR pre-pass always fits
    PREDICT_ASSIGN_OR_RETURN(
        PageRankResult pr,
        RunPageRank(graph, {{"tau", 0.0}}, rank_engine));
    ranks = std::move(pr.ranks);
  }
  if (ranks.size() != graph.num_vertices()) {
    return Status::InvalidArgument("ranks size " + std::to_string(ranks.size()) +
                                   " != num_vertices " +
                                   std::to_string(graph.num_vertices()));
  }

  TopKRankingProgram program(config, ranks);
  // The flag describes the graph the engine sees (see pagerank.cc).
  bsp::EngineOptions options = engine_options;
  options.compressed_graph = graph.edges_compressed();
  bsp::Engine<TopKValue, TopKMessage> engine(options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(graph, &program));
  TopKResult result;
  result.stats = std::move(stats);
  result.lists = std::move(engine.mutable_vertex_values());
  return result;
}

}  // namespace predict
