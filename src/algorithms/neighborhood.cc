#include "algorithms/neighborhood.h"

#include <cmath>

#include "common/rng.h"
#include "graph/transforms.h"

namespace predict {

const AlgorithmSpec& NeighborhoodSpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "neighborhood";
    s.convergence = ConvergenceKind::kRelativeRatio;
    s.default_config = {{"tau", 0.001}};
    s.requires_undirected = true;
    s.convergence_keys = {"tau"};
    return s;
  }();
  return spec;
}

NeighborhoodProgram::NeighborhoodProgram(const AlgorithmConfig& config,
                                         uint64_t sketch_seed)
    : sketch_seed_(sketch_seed) {
  tau_ = config.at("tau");
}

void NeighborhoodProgram::RegisterAggregators(
    bsp::AggregatorRegistry* registry) {
  changed_agg_ = registry->Register(kChangedAggregate, bsp::AggregatorOp::kSum);
}

NeighborhoodValue NeighborhoodProgram::InitialValue(VertexId v,
                                                    const Graph& graph) const {
  (void)graph;
  NeighborhoodValue value;
  for (size_t r = 0; r < kNeighborhoodRegisters; ++r) {
    // Geometric bit position: P(bit j) = 2^-(j+1).
    const double u = Rng::HashToUnitDouble(sketch_seed_, v + 1, r + 1);
    const double safe = u <= 0.0 ? 0x1.0p-32 : u;
    uint32_t bit = static_cast<uint32_t>(-std::log2(safe));
    if (bit > 31) bit = 31;
    value.sketch[r] = 1u << bit;
  }
  return value;
}

void NeighborhoodProgram::Compute(
    bsp::VertexContext<NeighborhoodValue, NeighborhoodMessage>* ctx,
    std::span<const NeighborhoodMessage> messages) {
  NeighborhoodValue& value = ctx->value();
  bool changed = false;
  if (ctx->superstep() == 0) {
    changed = true;  // seed round: everyone announces their sketch
  } else {
    for (const NeighborhoodMessage& msg : messages) {
      for (size_t r = 0; r < kNeighborhoodRegisters; ++r) {
        const uint32_t merged = value.sketch[r] | msg.sketch[r];
        changed |= merged != value.sketch[r];
        value.sketch[r] = merged;
      }
    }
  }
  if (changed) {
    ctx->Aggregate(changed_agg_, 1.0);
    if (ctx->out_degree() > 0) {
      ctx->SendMessageToAllNeighbors(value);
    }
  }
  ctx->VoteToHalt();
}

void NeighborhoodProgram::MasterCompute(bsp::MasterContext* ctx) {
  if (ctx->superstep() == 0) return;
  const double changed_ratio = ctx->GetAggregate(changed_agg_) /
                               static_cast<double>(ctx->num_vertices());
  if (changed_ratio < tau_) ctx->HaltComputation();
}

double EstimateCardinality(const NeighborhoodValue& value) {
  // Average position of the lowest zero bit across registers.
  double sum = 0.0;
  for (size_t r = 0; r < kNeighborhoodRegisters; ++r) {
    uint32_t mask = value.sketch[r];
    uint32_t lowest_zero = 0;
    while ((mask & 1u) != 0) {
      mask >>= 1;
      ++lowest_zero;
    }
    sum += static_cast<double>(lowest_zero);
  }
  const double mean = sum / static_cast<double>(kNeighborhoodRegisters);
  return std::pow(2.0, mean) / 0.77351;
}

Result<NeighborhoodResult> RunNeighborhoodEstimation(
    const Graph& graph, const AlgorithmConfig& overrides,
    const bsp::EngineOptions& engine_options) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig config,
                           ResolveConfig(NeighborhoodSpec(), overrides));
  PREDICT_ASSIGN_OR_RETURN(Graph undirected, ToUndirected(graph));
  NeighborhoodProgram program(config);
  // The flag follows the derived undirected graph, not the input
  // (see pagerank.cc).
  bsp::EngineOptions options = engine_options;
  options.compressed_graph = undirected.edges_compressed();
  bsp::Engine<NeighborhoodValue, NeighborhoodMessage> engine(options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(undirected, &program));
  NeighborhoodResult result;
  result.stats = std::move(stats);
  result.neighborhood_sizes.reserve(undirected.num_vertices());
  for (const NeighborhoodValue& v : engine.vertex_values()) {
    result.neighborhood_sizes.push_back(EstimateCardinality(v));
  }
  return result;
}

}  // namespace predict
