// Neighborhood estimation with Flajolet–Martin sketches (HADI-style, as
// in PEGASUS — reference [20] of the paper).
//
// Estimates, for every vertex, the number of vertices reachable within h
// hops by iterating a bitwise-OR of FM sketches over the undirected
// neighborhood. A vertex whose sketch did not change sends nothing, so
// message counts decay as neighborhoods saturate (variable per-iteration
// runtime, like connected components).
//
// Convergence: changedVertices/totalVertices < tau (a relative ratio;
// identity transform rule).
//
// Config keys:
//   "tau"  changed-ratio threshold, default 0.001

#ifndef PREDICT_ALGORITHMS_NEIGHBORHOOD_H_
#define PREDICT_ALGORITHMS_NEIGHBORHOOD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"

namespace predict {

const AlgorithmSpec& NeighborhoodSpec();

/// Number of FM registers per sketch (more = tighter estimates, bigger
/// messages; 16 keeps the relative error around 10%).
inline constexpr size_t kNeighborhoodRegisters = 16;

/// Per-vertex FM sketch: one 32-bit bitmask per register.
struct NeighborhoodValue {
  std::array<uint32_t, kNeighborhoodRegisters> sketch{};
};

using NeighborhoodMessage = NeighborhoodValue;

class NeighborhoodProgram final
    : public bsp::VertexProgram<NeighborhoodValue, NeighborhoodMessage> {
 public:
  explicit NeighborhoodProgram(const AlgorithmConfig& config,
                               uint64_t sketch_seed = 0xFACEFEEDULL);

  void RegisterAggregators(bsp::AggregatorRegistry* registry) override;
  NeighborhoodValue InitialValue(VertexId v, const Graph& graph) const override;
  void Compute(bsp::VertexContext<NeighborhoodValue, NeighborhoodMessage>* ctx,
               std::span<const NeighborhoodMessage> messages) override;
  void MasterCompute(bsp::MasterContext* ctx) override;

  /// 8-byte header + 4 bytes per register.
  uint64_t MessageBytes(const NeighborhoodMessage& message) const override {
    (void)message;
    return 8 + 4 * kNeighborhoodRegisters;
  }
  uint64_t VertexStateBytes(const NeighborhoodValue& value) const override {
    (void)value;
    return 8 + 4 * kNeighborhoodRegisters;
  }
  uint64_t FixedVertexStateBytes() const override {
    return 8 + 4 * kNeighborhoodRegisters;
  }

  static constexpr const char* kChangedAggregate = "neighborhood_changed";

 private:
  double tau_;
  uint64_t sketch_seed_;
  bsp::AggregatorId changed_agg_ = 0;
};

/// Flajolet–Martin cardinality estimate from a sketch.
double EstimateCardinality(const NeighborhoodValue& value);

/// Result of a standalone run.
struct NeighborhoodResult {
  /// Estimated size of each vertex's reachable neighborhood at the final
  /// hop count.
  std::vector<double> neighborhood_sizes;
  bsp::RunStats stats;
};

/// Runs neighborhood estimation on the undirected view of `graph`.
Result<NeighborhoodResult> RunNeighborhoodEstimation(
    const Graph& graph, const AlgorithmConfig& overrides = {},
    const bsp::EngineOptions& engine = {});

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_NEIGHBORHOOD_H_
