// Parallel semi-clustering (§4.2 of the paper, after Malewicz et al.,
// Pregel §4.2 "Semi-Clustering").
//
// A semi-cluster c is scored  S_c = (I_c - f_B * B_c) / (V_c (V_c-1)/2),
// where I_c is the weight of internal edges, B_c the weight of boundary
// edges, f_B the boundary penalty and V_c the member count. Each vertex
// keeps its C_max best clusters containing itself and forwards its S_max
// best known clusters to all neighbors every superstep, so message
// *sizes* grow as clusters fill toward V_max — the paper's category
// ii.a (variable runtime via message size).
//
// Convergence: updatedClusters/totalClusters < tau (a relative ratio;
// the identity transform rule applies).
//
// Config keys:
//   "f_b"    boundary edge factor, default 0.1
//   "v_max"  max vertices per cluster, default 10
//   "c_max"  clusters kept per vertex, default 1
//   "s_max"  clusters forwarded per vertex, default 1
//   "tau"    update-ratio threshold, default 0.001

#ifndef PREDICT_ALGORITHMS_SEMICLUSTERING_H_
#define PREDICT_ALGORITHMS_SEMICLUSTERING_H_

#include <memory>
#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"

namespace predict {

const AlgorithmSpec& SemiClusteringSpec();

/// One semi-cluster: sorted member list plus incremental score state.
struct SemiCluster {
  std::vector<VertexId> members;  ///< sorted ascending
  double internal_weight = 0.0;   ///< I_c
  double boundary_weight = 0.0;   ///< B_c

  bool ContainsVertex(VertexId v) const;
  double Score(double boundary_factor) const;

  bool operator==(const SemiCluster& other) const {
    return members == other.members;
  }
};

/// Per-vertex state: up to c_max best clusters containing this vertex.
struct SemiClusterValue {
  std::vector<SemiCluster> clusters;
};

/// Message: the sender's s_max best known clusters. Payload shared
/// across the per-neighbor copies; MessageBytes reports the serialized
/// size of each copy.
struct SemiClusterMessage {
  std::shared_ptr<const std::vector<SemiCluster>> clusters;
};

class SemiClusteringProgram final
    : public bsp::VertexProgram<SemiClusterValue, SemiClusterMessage> {
 public:
  explicit SemiClusteringProgram(const AlgorithmConfig& config);

  void RegisterAggregators(bsp::AggregatorRegistry* registry) override;
  SemiClusterValue InitialValue(VertexId v, const Graph& graph) const override;
  void Compute(bsp::VertexContext<SemiClusterValue, SemiClusterMessage>* ctx,
               std::span<const SemiClusterMessage> messages) override;
  void MasterCompute(bsp::MasterContext* ctx) override;

  uint64_t MessageBytes(const SemiClusterMessage& message) const override;
  uint64_t VertexStateBytes(const SemiClusterValue& value) const override;

  static constexpr const char* kUpdatedAggregate = "semicluster_updated";
  static constexpr const char* kTotalAggregate = "semicluster_total";

 private:
  double boundary_factor_;
  size_t v_max_;
  size_t c_max_;
  size_t s_max_;
  double tau_;
  bsp::AggregatorId updated_agg_ = 0;
  bsp::AggregatorId total_agg_ = 0;
};

/// Result of a standalone semi-clustering run.
struct SemiClusteringResult {
  std::vector<SemiClusterValue> clusters;
  bsp::RunStats stats;
};

/// Runs semi-clustering on the undirected view of `graph`.
Result<SemiClusteringResult> RunSemiClustering(
    const Graph& graph, const AlgorithmConfig& overrides = {},
    const bsp::EngineOptions& engine = {});

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_SEMICLUSTERING_H_
