// Random walk with restart (RWR) proximity estimation.
//
// §5.3 of the paper names "random walks with restart [20] (proximity
// estimation)" as a further algorithm expected to benefit from PREDIcT's
// walk-based sampling. RWR computes, for a source vertex s, the
// stationary distribution of a walker that follows out-edges with
// probability c and teleports back to s with probability 1-c —
// personalized PageRank, the standard graph-proximity measure.
//
// Convergence mirrors PageRank: average delta change per vertex below
// tau (an absolute aggregate tuned to dataset size, so the default
// transform rule tau_S = tau_G / sr applies). The source is chosen as
// the highest-out-degree vertex when "source" < 0, which makes sample
// runs self-consistent: the sample picks its own hub, mirroring how BRJ
// anchors samples at hub vertices.
//
// Config keys:
//   "restart"  walk-continue probability c, default 0.85
//   "tau"      average-delta threshold (<= 0: run to max_supersteps)
//   "source"   source vertex id; < 0 selects the max-out-degree vertex

#ifndef PREDICT_ALGORITHMS_RWR_PROXIMITY_H_
#define PREDICT_ALGORITHMS_RWR_PROXIMITY_H_

#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"

namespace predict {

const AlgorithmSpec& RwrProximitySpec();

struct RwrValue {
  double score = 0.0;
};

class RwrProximityProgram final
    : public bsp::VertexProgram<RwrValue, double> {
 public:
  RwrProximityProgram(const AlgorithmConfig& config, VertexId source);

  void RegisterAggregators(bsp::AggregatorRegistry* registry) override;
  RwrValue InitialValue(VertexId v, const Graph& graph) const override;
  void Compute(bsp::VertexContext<RwrValue, double>* ctx,
               std::span<const double> messages) override;
  void MasterCompute(bsp::MasterContext* ctx) override;

  uint64_t MessageBytes(const double&) const override { return 12; }
  uint64_t VertexStateBytes(const RwrValue&) const override { return 16; }
  uint64_t FixedVertexStateBytes() const override { return 16; }

  static constexpr const char* kDeltaAggregate = "rwr_delta_sum";

 private:
  double restart_;
  double tau_;
  VertexId source_;
  bsp::AggregatorId delta_agg_ = 0;
};

/// Picks the source vertex for a config: explicit id, or the
/// max-out-degree vertex when "source" < 0.
VertexId ResolveRwrSource(const AlgorithmConfig& config, const Graph& graph);

struct RwrResult {
  std::vector<double> scores;  ///< proximity of every vertex to the source
  VertexId source = 0;
  bsp::RunStats stats;
};

Result<RwrResult> RunRwrProximity(const Graph& graph,
                                  const AlgorithmConfig& overrides = {},
                                  const bsp::EngineOptions& engine = {});

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_RWR_PROXIMITY_H_
