// PageRank on BSP (§4.1 of the paper).
//
// PR(p_i) = (1-d)/N + d * sum_{p_j in M(p_i)} PR(p_j)/L(p_j)
//
// Convergence: the run halts when the average delta change of PageRank
// per vertex drops below tau (an *absolute aggregate*, tuned to dataset
// size — the paper's canonical case for the tau_S = tau_G / sr transform
// rule). Dangling vertices simply stop propagating mass, as in Giraph's
// reference implementation.
//
// Config keys:
//   "damping"  d, default 0.85
//   "tau"      convergence threshold on the average delta; <= 0 means
//              "never converge via the master" (run to max_supersteps,
//              used to produce fixed-iteration rank inputs for top-k)

#ifndef PREDICT_ALGORITHMS_PAGERANK_H_
#define PREDICT_ALGORITHMS_PAGERANK_H_

#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"

namespace predict {

/// The spec consumed by the transform rules (kAbsoluteAggregate).
const AlgorithmSpec& PageRankSpec();

/// Per-vertex state: the current rank.
struct PageRankValue {
  double rank = 0.0;
};

/// \brief The Giraph-style PageRank vertex program.
class PageRankProgram final
    : public bsp::VertexProgram<PageRankValue, double> {
 public:
  explicit PageRankProgram(const AlgorithmConfig& config);

  void RegisterAggregators(bsp::AggregatorRegistry* registry) override;
  PageRankValue InitialValue(VertexId v, const Graph& graph) const override;
  void Compute(bsp::VertexContext<PageRankValue, double>* ctx,
               std::span<const double> messages) override;
  void MasterCompute(bsp::MasterContext* ctx) override;

  /// 8-byte rank + 4-byte vertex id header on the wire.
  uint64_t MessageBytes(const double& message) const override {
    (void)message;
    return 12;
  }
  uint64_t VertexStateBytes(const PageRankValue& value) const override {
    (void)value;
    return 16;
  }
  uint64_t FixedVertexStateBytes() const override { return 16; }

  /// Name of the average-delta aggregate (exposed in SuperstepStats).
  static constexpr const char* kDeltaAggregate = "pagerank_delta_sum";

 private:
  double damping_;
  double tau_;
  /// (1 - damping) / |V|, refreshed by MasterCompute each superstep so
  /// the per-vertex kernel avoids the divide (see Compute).
  double base_ = 0.0;
  bsp::AggregatorId delta_agg_ = 0;
};

/// Result of a standalone PageRank run.
struct PageRankResult {
  std::vector<double> ranks;
  bsp::RunStats stats;
};

/// Convenience: runs PageRank over `graph` and returns ranks + profile.
Result<PageRankResult> RunPageRank(const Graph& graph,
                                   const AlgorithmConfig& overrides = {},
                                   const bsp::EngineOptions& engine = {});

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_PAGERANK_H_
