#include "algorithms/runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "algorithms/connected_components.h"
#include "algorithms/neighborhood.h"
#include "algorithms/pagerank.h"
#include "algorithms/rwr_proximity.h"
#include "algorithms/semiclustering.h"
#include "algorithms/topk_ranking.h"

namespace predict {

namespace {

struct RegistryEntry {
  AlgorithmSpec spec;
  AlgorithmRunner runner;
};

using EntryPtr = std::shared_ptr<const RegistryEntry>;

// Entries are immutable once registered and handed out as shared const
// pointers: a lookup never copies the spec/runner, and concurrent
// predictions (PredictionService fan-out) share one entry while invoking
// its runner on the same const Graph from many threads.
class Registry {
 public:
  static const Registry& Instance() {
    static Registry registry;
    return registry;
  }

  Status Add(const AlgorithmSpec& spec, AlgorithmRunner runner) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(spec.name) != 0) {
      return Status::AlreadyExists("algorithm '" + spec.name +
                                   "' already registered");
    }
    entries_[spec.name] =
        std::make_shared<const RegistryEntry>(spec, std::move(runner));
    return Status::OK();
  }

  Result<EntryPtr> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("unknown algorithm '" + name +
                              "'; registered: " + JoinNamesLocked());
    }
    return it->second;
  }

  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) names.push_back(name);
    return names;
  }

 private:
  Registry() { RegisterBuiltins(); }

  std::string JoinNamesLocked() const {
    std::string joined;
    for (const auto& [name, entry] : entries_) {
      if (!joined.empty()) joined += ", ";
      joined += name;
    }
    return joined;
  }

  void RegisterBuiltins();

  mutable std::mutex mutex_;
  mutable std::map<std::string, EntryPtr> entries_;
};

void Registry::RegisterBuiltins() {
  entries_[PageRankSpec().name] = std::make_shared<const RegistryEntry>(
      PageRankSpec(),
      [](const Graph& graph, const RunOptions& options)
          -> Result<AlgorithmRunResult> {
        PREDICT_ASSIGN_OR_RETURN(
            PageRankResult pr,
            RunPageRank(graph, options.config_overrides, options.engine));
        AlgorithmRunResult result;
        result.stats = std::move(pr.stats);
        result.ranks = std::move(pr.ranks);
        return result;
      });

  entries_[SemiClusteringSpec().name] = std::make_shared<const RegistryEntry>(
      SemiClusteringSpec(),
      [](const Graph& graph, const RunOptions& options)
          -> Result<AlgorithmRunResult> {
        PREDICT_ASSIGN_OR_RETURN(
            SemiClusteringResult sc,
            RunSemiClustering(graph, options.config_overrides, options.engine));
        AlgorithmRunResult result;
        result.stats = std::move(sc.stats);
        return result;
      });

  entries_[TopKRankingSpec().name] = std::make_shared<const RegistryEntry>(
      TopKRankingSpec(),
      [](const Graph& graph, const RunOptions& options)
          -> Result<AlgorithmRunResult> {
        PREDICT_ASSIGN_OR_RETURN(
            TopKResult topk,
            RunTopKRanking(graph, options.config_overrides, options.engine,
                           options.input_ranks));
        AlgorithmRunResult result;
        result.stats = std::move(topk.stats);
        return result;
      });

  entries_[ConnectedComponentsSpec().name] = std::make_shared<const RegistryEntry>(
      ConnectedComponentsSpec(),
      [](const Graph& graph, const RunOptions& options)
          -> Result<AlgorithmRunResult> {
        if (!options.config_overrides.empty()) {
          return Status::InvalidArgument(
              "connected_components takes no config parameters");
        }
        PREDICT_ASSIGN_OR_RETURN(ConnectedComponentsResult cc,
                                 RunConnectedComponents(graph, options.engine));
        AlgorithmRunResult result;
        result.stats = std::move(cc.stats);
        return result;
      });

  entries_[NeighborhoodSpec().name] = std::make_shared<const RegistryEntry>(
      NeighborhoodSpec(),
      [](const Graph& graph, const RunOptions& options)
          -> Result<AlgorithmRunResult> {
        PREDICT_ASSIGN_OR_RETURN(
            NeighborhoodResult nh,
            RunNeighborhoodEstimation(graph, options.config_overrides,
                                      options.engine));
        AlgorithmRunResult result;
        result.stats = std::move(nh.stats);
        return result;
      });

  entries_[RwrProximitySpec().name] = std::make_shared<const RegistryEntry>(
      RwrProximitySpec(),
      [](const Graph& graph, const RunOptions& options)
          -> Result<AlgorithmRunResult> {
        PREDICT_ASSIGN_OR_RETURN(
            RwrResult rwr,
            RunRwrProximity(graph, options.config_overrides, options.engine));
        AlgorithmRunResult result;
        result.stats = std::move(rwr.stats);
        result.ranks = std::move(rwr.scores);
        return result;
      });
}

}  // namespace

Result<AlgorithmSpec> FindAlgorithmSpec(const std::string& name) {
  PREDICT_ASSIGN_OR_RETURN(EntryPtr entry, Registry::Instance().Find(name));
  return entry->spec;
}

Result<AlgorithmRunResult> RunAlgorithmByName(const std::string& name,
                                              const Graph& graph,
                                              const RunOptions& options) {
  PREDICT_ASSIGN_OR_RETURN(EntryPtr entry, Registry::Instance().Find(name));
  return entry->runner(graph, options);
}

std::vector<std::string> RegisteredAlgorithmNames() {
  return Registry::Instance().Names();
}

Status RegisterAlgorithm(const AlgorithmSpec& spec, AlgorithmRunner runner) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("algorithm name must not be empty");
  }
  return Registry::Instance().Add(spec, std::move(runner));
}

}  // namespace predict
