// Connected components by minimum-label propagation (HCC, as in
// PEGASUS).
//
// Each vertex starts labeled with its own id and repeatedly adopts the
// minimum label among its neighbors, forwarding improvements only.
// Runs on the undirected view of the graph, so the result is the weakly-
// connected components. Converges at a fixed point — the paper's example
// of "sparse computation" with up to 100x runtime variability between
// consecutive iterations (§1): the first supersteps touch every edge,
// the last ones only a trickle of label improvements.
//
// Config keys: none (fixed-point convergence, nothing to scale — the
// transform function is the identity).

#ifndef PREDICT_ALGORITHMS_CONNECTED_COMPONENTS_H_
#define PREDICT_ALGORITHMS_CONNECTED_COMPONENTS_H_

#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"

namespace predict {

const AlgorithmSpec& ConnectedComponentsSpec();

struct ComponentValue {
  VertexId label = 0;
};

/// Min-label propagation vertex program. Expects an undirected graph
/// (use ToUndirected first; the runner does this automatically).
class ConnectedComponentsProgram final
    : public bsp::VertexProgram<ComponentValue, VertexId> {
 public:
  ComponentValue InitialValue(VertexId v, const Graph& graph) const override;
  void Compute(bsp::VertexContext<ComponentValue, VertexId>* ctx,
               std::span<const VertexId> messages) override;

  /// 4-byte label + 4-byte header.
  uint64_t MessageBytes(const VertexId& message) const override {
    (void)message;
    return 8;
  }
  uint64_t VertexStateBytes(const ComponentValue& value) const override {
    (void)value;
    return 8;
  }
  uint64_t FixedVertexStateBytes() const override { return 8; }
};

/// Result of a standalone run: per-vertex component labels.
struct ConnectedComponentsResult {
  std::vector<VertexId> labels;
  bsp::RunStats stats;
};

/// Runs min-label propagation on the undirected view of `graph`.
Result<ConnectedComponentsResult> RunConnectedComponents(
    const Graph& graph, const bsp::EngineOptions& engine = {});

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_CONNECTED_COMPONENTS_H_
