#include "algorithms/semiclustering.h"

#include <algorithm>

#include "graph/transforms.h"

namespace predict {

namespace {

// Deterministic candidate ordering: score descending, then member list
// lexicographic (clusters are value types; no pointer identity involved).
struct ClusterOrder {
  double boundary_factor;
  bool operator()(const SemiCluster& a, const SemiCluster& b) const {
    const double sa = a.Score(boundary_factor);
    const double sb = b.Score(boundary_factor);
    if (sa != sb) return sa > sb;
    return a.members < b.members;
  }
};

// Sorted snapshot of a vertex's incident edges, built once per Compute
// call so that extending a cluster costs O(v_max * log deg) instead of
// O(deg) per candidate (hubs receive thousands of candidates).
class IncidentEdges {
 public:
  explicit IncidentEdges(
      const bsp::VertexContext<SemiClusterValue, SemiClusterMessage>& ctx) {
    const auto neighbors = ctx.out_neighbors();
    const bool weighted = ctx.graph_is_weighted();
    const auto weights =
        weighted ? ctx.out_weights() : std::span<const float>{};
    adjacency_.reserve(neighbors.size());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const float w = weighted ? weights[i] : 1.0f;
      adjacency_.emplace_back(neighbors[i], w);
      total_weight_ += w;
    }
    std::sort(adjacency_.begin(), adjacency_.end());
  }

  double total_weight() const { return total_weight_; }

  // Total edge weight from this vertex to `members`.
  double WeightTo(const std::vector<VertexId>& members) const {
    double sum = 0.0;
    for (const VertexId m : members) {
      auto it = std::lower_bound(
          adjacency_.begin(), adjacency_.end(), m,
          [](const auto& entry, VertexId v) { return entry.first < v; });
      while (it != adjacency_.end() && it->first == m) {
        sum += it->second;
        ++it;
      }
    }
    return sum;
  }

 private:
  std::vector<std::pair<VertexId, float>> adjacency_;
  double total_weight_ = 0.0;
};

}  // namespace

bool SemiCluster::ContainsVertex(VertexId v) const {
  return std::binary_search(members.begin(), members.end(), v);
}

double SemiCluster::Score(double boundary_factor) const {
  const double vc = static_cast<double>(members.size());
  const double denom = std::max(1.0, vc * (vc - 1.0) / 2.0);
  return (internal_weight - boundary_factor * boundary_weight) / denom;
}

const AlgorithmSpec& SemiClusteringSpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "semiclustering";
    s.convergence = ConvergenceKind::kRelativeRatio;
    s.default_config = {{"f_b", 0.1},  {"v_max", 10}, {"c_max", 1},
                        {"s_max", 1},  {"tau", 0.001}};
    s.requires_undirected = true;
    s.convergence_keys = {"tau"};
    return s;
  }();
  return spec;
}

SemiClusteringProgram::SemiClusteringProgram(const AlgorithmConfig& config) {
  boundary_factor_ = config.at("f_b");
  v_max_ = static_cast<size_t>(config.at("v_max"));
  c_max_ = static_cast<size_t>(config.at("c_max"));
  s_max_ = static_cast<size_t>(config.at("s_max"));
  tau_ = config.at("tau");
}

void SemiClusteringProgram::RegisterAggregators(
    bsp::AggregatorRegistry* registry) {
  updated_agg_ = registry->Register(kUpdatedAggregate, bsp::AggregatorOp::kSum);
  total_agg_ = registry->Register(kTotalAggregate, bsp::AggregatorOp::kSum);
}

SemiClusterValue SemiClusteringProgram::InitialValue(VertexId v,
                                                     const Graph& graph) const {
  // The singleton cluster {v}: no internal edges; every incident edge is
  // a boundary edge.
  SemiCluster cluster;
  cluster.members = {v};
  cluster.internal_weight = 0.0;
  double boundary = 0.0;
  if (graph.is_weighted()) {
    for (const float w : graph.out_weights(v)) boundary += w;
  } else {
    boundary = static_cast<double>(graph.out_degree(v));
  }
  cluster.boundary_weight = boundary;
  return {{std::move(cluster)}};
}

void SemiClusteringProgram::Compute(
    bsp::VertexContext<SemiClusterValue, SemiClusterMessage>* ctx,
    std::span<const SemiClusterMessage> messages) {
  const VertexId self = ctx->id();
  std::vector<SemiCluster>& own = ctx->value().clusters;
  const ClusterOrder order{boundary_factor_};

  if (ctx->superstep() == 0) {
    // Send the singleton cluster to all neighbors.
    ctx->Aggregate(total_agg_, static_cast<double>(own.size()));
    if (ctx->out_degree() > 0) {
      ctx->SendMessageToAllNeighbors(SemiClusterMessage{
          std::make_shared<const std::vector<SemiCluster>>(own)});
    }
    return;
  }

  // Candidates for forwarding: every received cluster plus the extension
  // of each one by this vertex (when legal).
  const IncidentEdges incident(*ctx);
  std::vector<SemiCluster> candidates;
  for (const SemiClusterMessage& msg : messages) {
    for (const SemiCluster& cluster : *msg.clusters) {
      candidates.push_back(cluster);
      if (!cluster.ContainsVertex(self) && cluster.members.size() < v_max_) {
        const double to_members = incident.WeightTo(cluster.members);
        const double total = incident.total_weight();
        SemiCluster extended = cluster;
        extended.members.insert(
            std::lower_bound(extended.members.begin(), extended.members.end(),
                             self),
            self);
        // Edges from this vertex to members become internal; members'
        // boundary edges towards this vertex stop being boundary; this
        // vertex's other incident edges become new boundary edges.
        extended.internal_weight += to_members;
        extended.boundary_weight += (total - to_members) - to_members;
        candidates.push_back(std::move(extended));
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(), order);
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Forward the s_max best known clusters.
  if (!candidates.empty() && ctx->out_degree() > 0) {
    auto forwarded = std::make_shared<std::vector<SemiCluster>>(
        candidates.begin(),
        candidates.begin() + std::min(s_max_, candidates.size()));
    ctx->SendMessageToAllNeighbors(SemiClusterMessage{std::move(forwarded)});
  }

  // Update this vertex's list of c_max best clusters containing itself.
  std::vector<SemiCluster> containing = own;
  for (const SemiCluster& cluster : candidates) {
    if (cluster.ContainsVertex(self)) containing.push_back(cluster);
  }
  std::sort(containing.begin(), containing.end(), order);
  containing.erase(std::unique(containing.begin(), containing.end()),
                   containing.end());
  if (containing.size() > c_max_) containing.resize(c_max_);

  // A cluster counts as updated if it was not in the previous list.
  uint64_t updated = 0;
  for (const SemiCluster& cluster : containing) {
    if (std::find(own.begin(), own.end(), cluster) == own.end()) ++updated;
  }
  ctx->Aggregate(updated_agg_, static_cast<double>(updated));
  ctx->Aggregate(total_agg_, static_cast<double>(containing.size()));
  own = std::move(containing);
  // Vertices stay active; the master's update-ratio check stops the run.
}

void SemiClusteringProgram::MasterCompute(bsp::MasterContext* ctx) {
  if (ctx->superstep() == 0) return;
  const double total = ctx->GetAggregate(total_agg_);
  if (total <= 0.0) return;
  const double ratio = ctx->GetAggregate(updated_agg_) / total;
  if (ratio < tau_) ctx->HaltComputation();
}

uint64_t SemiClusteringProgram::MessageBytes(
    const SemiClusterMessage& message) const {
  uint64_t bytes = 8;
  for (const SemiCluster& cluster : *message.clusters) {
    bytes += 24 + 4 * cluster.members.size();
  }
  return bytes;
}

uint64_t SemiClusteringProgram::VertexStateBytes(
    const SemiClusterValue& value) const {
  uint64_t bytes = 16;
  for (const SemiCluster& cluster : value.clusters) {
    bytes += 24 + 4 * cluster.members.size();
  }
  return bytes;
}

Result<SemiClusteringResult> RunSemiClustering(
    const Graph& graph, const AlgorithmConfig& overrides,
    const bsp::EngineOptions& engine_options) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig config,
                           ResolveConfig(SemiClusteringSpec(), overrides));
  PREDICT_ASSIGN_OR_RETURN(Graph undirected, ToUndirected(graph));
  SemiClusteringProgram program(config);
  // The flag follows the derived undirected graph, not the input
  // (see pagerank.cc).
  bsp::EngineOptions options = engine_options;
  options.compressed_graph = undirected.edges_compressed();
  bsp::Engine<SemiClusterValue, SemiClusterMessage> engine(options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(undirected, &program));
  SemiClusteringResult result;
  result.stats = std::move(stats);
  result.clusters = std::move(engine.mutable_vertex_values());
  return result;
}

}  // namespace predict
