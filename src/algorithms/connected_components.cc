#include "algorithms/connected_components.h"

#include "graph/transforms.h"

namespace predict {

const AlgorithmSpec& ConnectedComponentsSpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "connected_components";
    s.convergence = ConvergenceKind::kFixedPoint;
    s.default_config = {};
    s.requires_undirected = true;
    s.convergence_keys = {};
    return s;
  }();
  return spec;
}

ComponentValue ConnectedComponentsProgram::InitialValue(
    VertexId v, const Graph& graph) const {
  (void)graph;
  return {v};
}

void ConnectedComponentsProgram::Compute(
    bsp::VertexContext<ComponentValue, VertexId>* ctx,
    std::span<const VertexId> messages) {
  VertexId& label = ctx->value().label;
  if (ctx->superstep() == 0) {
    // Seed the propagation with our own label.
    ctx->SendMessageToAllNeighbors(label);
    ctx->VoteToHalt();
    return;
  }
  VertexId best = label;
  for (const VertexId m : messages) best = std::min(best, m);
  if (best < label) {
    label = best;
    ctx->SendMessageToAllNeighbors(label);
  }
  ctx->VoteToHalt();
}

Result<ConnectedComponentsResult> RunConnectedComponents(
    const Graph& graph, const bsp::EngineOptions& engine_options) {
  PREDICT_ASSIGN_OR_RETURN(Graph undirected, ToUndirected(graph));
  ConnectedComponentsProgram program;
  // The engine runs on the derived undirected graph, which transforms
  // always emit plain — the flag follows it, not the input (pagerank.cc).
  bsp::EngineOptions options = engine_options;
  options.compressed_graph = undirected.edges_compressed();
  bsp::Engine<ComponentValue, VertexId> engine(options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(undirected, &program));
  ConnectedComponentsResult result;
  result.stats = std::move(stats);
  result.labels.reserve(undirected.num_vertices());
  for (const ComponentValue& v : engine.vertex_values()) {
    result.labels.push_back(v.label);
  }
  return result;
}

}  // namespace predict
