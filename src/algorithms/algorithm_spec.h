// Algorithm specifications: the metadata PREDIcT's transform-rule engine
// consumes.
//
// §3.2.2 of the paper keys the default transform rules off whether an
// algorithm's convergence threshold is tuned to the dataset size
// (PageRank: absolute aggregate) or not (semi-clustering, top-k: a
// relative ratio). Each algorithm declares that here, along with its
// configuration parameters and defaults, so the transform function can
// map (ConfG, ConvG) -> (ConfS, ConvS) generically.

#ifndef PREDICT_ALGORITHMS_ALGORITHM_SPEC_H_
#define PREDICT_ALGORITHMS_ALGORITHM_SPEC_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace predict {

/// How an algorithm decides it has converged (§3.2.2, §3.5).
enum class ConvergenceKind {
  /// Converges when an absolute aggregate (e.g. total/average delta of
  /// PageRank mass) drops below tau; tau is tuned to dataset size.
  kAbsoluteAggregate,
  /// Converges when a ratio (updates/total) drops below tau; tau is
  /// independent of dataset size.
  kRelativeRatio,
  /// Runs to a fixed point (no updates anywhere); no threshold at all.
  kFixedPoint,
};

const char* ConvergenceKindName(ConvergenceKind kind);

/// Key-value algorithm configuration. Keys are algorithm-specific (see
/// each algorithm's header); "tau" is the convergence threshold by
/// convention.
using AlgorithmConfig = std::map<std::string, double>;

/// Static description of an algorithm, used by the transform rules and
/// the runner registry.
struct AlgorithmSpec {
  std::string name;
  ConvergenceKind convergence = ConvergenceKind::kRelativeRatio;
  AlgorithmConfig default_config;
  /// True if the algorithm operates on the undirected version of the
  /// input (§5: "a reverse edge is added to each edge").
  bool requires_undirected = false;
  /// True if the algorithm consumes PageRank output as its input (§4.3).
  bool requires_rank_input = false;
  /// Which config keys are convergence parameters (Conv in §3.2.2); the
  /// rest are configuration parameters (Conf).
  std::vector<std::string> convergence_keys = {"tau"};
};

/// Merges `overrides` over `spec.default_config` and validates that every
/// override key exists in the spec.
Result<AlgorithmConfig> ResolveConfig(const AlgorithmSpec& spec,
                                      const AlgorithmConfig& overrides);

/// Fetches a config value, with a precise error naming the key.
Result<double> GetConfigValue(const AlgorithmConfig& config,
                              const std::string& key);

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_ALGORITHM_SPEC_H_
