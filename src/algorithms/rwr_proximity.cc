#include "algorithms/rwr_proximity.h"

#include <cmath>

namespace predict {

const AlgorithmSpec& RwrProximitySpec() {
  static const AlgorithmSpec spec = [] {
    AlgorithmSpec s;
    s.name = "rwr_proximity";
    s.convergence = ConvergenceKind::kAbsoluteAggregate;
    s.default_config = {{"restart", 0.85}, {"tau", 1e-8}, {"source", -1.0}};
    s.requires_undirected = false;
    s.convergence_keys = {"tau"};
    return s;
  }();
  return spec;
}

RwrProximityProgram::RwrProximityProgram(const AlgorithmConfig& config,
                                         VertexId source)
    : source_(source) {
  restart_ = config.at("restart");
  tau_ = config.at("tau");
}

void RwrProximityProgram::RegisterAggregators(
    bsp::AggregatorRegistry* registry) {
  delta_agg_ = registry->Register(kDeltaAggregate, bsp::AggregatorOp::kSum);
}

RwrValue RwrProximityProgram::InitialValue(VertexId v,
                                           const Graph& graph) const {
  (void)graph;
  return {v == source_ ? 1.0 : 0.0};
}

void RwrProximityProgram::Compute(bsp::VertexContext<RwrValue, double>* ctx,
                                  std::span<const double> messages) {
  double& score = ctx->value().score;
  if (ctx->superstep() > 0) {
    double incoming = 0.0;
    for (const double m : messages) incoming += m;
    const double next =
        (ctx->id() == source_ ? 1.0 - restart_ : 0.0) + restart_ * incoming;
    ctx->Aggregate(delta_agg_, std::abs(next - score));
    score = next;
  }
  const uint64_t out_degree = ctx->out_degree();
  if (out_degree > 0 && score > 0.0) {
    ctx->SendMessageToAllNeighbors(score / static_cast<double>(out_degree));
  }
  // The master's convergence check stops the run; a vertex with zero
  // score simply sends nothing (sparse computation near the fringe).
}

void RwrProximityProgram::MasterCompute(bsp::MasterContext* ctx) {
  if (ctx->superstep() == 0 || tau_ <= 0.0) return;
  const double avg_delta =
      ctx->GetAggregate(delta_agg_) / static_cast<double>(ctx->num_vertices());
  if (avg_delta < tau_) ctx->HaltComputation();
}

VertexId ResolveRwrSource(const AlgorithmConfig& config, const Graph& graph) {
  const double configured = config.at("source");
  if (configured >= 0.0 &&
      static_cast<uint64_t>(configured) < graph.num_vertices()) {
    return static_cast<VertexId>(configured);
  }
  VertexId best = 0;
  uint64_t best_degree = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.out_degree(v) > best_degree) {
      best_degree = graph.out_degree(v);
      best = v;
    }
  }
  return best;
}

Result<RwrResult> RunRwrProximity(const Graph& graph,
                                  const AlgorithmConfig& overrides,
                                  const bsp::EngineOptions& engine_options) {
  PREDICT_ASSIGN_OR_RETURN(AlgorithmConfig config,
                           ResolveConfig(RwrProximitySpec(), overrides));
  const VertexId source = ResolveRwrSource(config, graph);
  RwrProximityProgram program(config, source);
  // The flag describes the graph the engine sees (see pagerank.cc).
  bsp::EngineOptions options = engine_options;
  options.compressed_graph = graph.edges_compressed();
  bsp::Engine<RwrValue, double> engine(options);
  PREDICT_ASSIGN_OR_RETURN(bsp::RunStats stats, engine.Run(graph, &program));
  RwrResult result;
  result.source = source;
  result.stats = std::move(stats);
  result.scores.reserve(graph.num_vertices());
  for (const RwrValue& v : engine.vertex_values()) {
    result.scores.push_back(v.score);
  }
  return result;
}

}  // namespace predict
