// Top-k ranking for PageRank (§4.3 of the paper, after Khayyat et al.).
//
// Each vertex maintains the k highest PageRank values among the vertices
// that can reach it (including itself), together with their origins. In
// the first superstep every vertex sends its own rank to its out-
// neighbors; afterwards, a vertex that improved its list forwards the
// updated list, and a vertex with no update sends nothing — so both the
// number of messages and the bytes per message vary across supersteps
// (the paper's category ii.b: variable runtime via message *count*).
//
// Convergence: activeVertices/totalVertices < tau (a *relative ratio* —
// the identity transform rule applies, §4.3).
//
// Config keys:
//   "k"    list capacity, default 10
//   "tau"  active-ratio threshold, default 0.001
//   "rank_iterations"  supersteps of the internal fixed-iteration
//          PageRank used to produce input ranks when none are supplied

#ifndef PREDICT_ALGORITHMS_TOPK_RANKING_H_
#define PREDICT_ALGORITHMS_TOPK_RANKING_H_

#include <memory>
#include <span>
#include <vector>

#include "algorithms/algorithm_spec.h"
#include "bsp/engine.h"

namespace predict {

const AlgorithmSpec& TopKRankingSpec();

/// One (rank, origin) entry of a top-k list.
struct RankEntry {
  double rank = 0.0;
  VertexId origin = 0;

  bool operator==(const RankEntry& other) const {
    return rank == other.rank && origin == other.origin;
  }
};

/// Per-vertex state: a descending-sorted list of at most k entries.
struct TopKValue {
  std::vector<RankEntry> entries;
};

/// Message: the sender's current list. The payload is shared between the
/// copies fanned out to each neighbor (one allocation per send, not per
/// edge); MessageBytes still reports the full serialized size per copy.
struct TopKMessage {
  std::shared_ptr<const std::vector<RankEntry>> entries;
};

class TopKRankingProgram final
    : public bsp::VertexProgram<TopKValue, TopKMessage> {
 public:
  /// `ranks` are the input PageRank values, one per vertex.
  TopKRankingProgram(const AlgorithmConfig& config,
                     std::span<const double> ranks);

  void RegisterAggregators(bsp::AggregatorRegistry* registry) override;
  TopKValue InitialValue(VertexId v, const Graph& graph) const override;
  void Compute(bsp::VertexContext<TopKValue, TopKMessage>* ctx,
               std::span<const TopKMessage> messages) override;
  void MasterCompute(bsp::MasterContext* ctx) override;

  /// 8-byte header + 12 bytes per (rank, origin) entry.
  uint64_t MessageBytes(const TopKMessage& message) const override {
    return 8 + 12 * message.entries->size();
  }
  uint64_t VertexStateBytes(const TopKValue& value) const override {
    return 16 + 12 * value.entries.size();
  }

  static constexpr const char* kUpdatesAggregate = "topk_updated_vertices";

 private:
  size_t k_;
  double tau_;
  std::span<const double> ranks_;
  bsp::AggregatorId updates_agg_ = 0;
};

/// Result of a standalone top-k run.
struct TopKResult {
  std::vector<TopKValue> lists;
  bsp::RunStats stats;
};

/// Runs top-k ranking over `graph`. If `ranks` is empty, a fixed-
/// iteration PageRank is executed first to produce them (not included in
/// the returned stats, mirroring the paper's treatment of top-k as its
/// own algorithm operating on PageRank output).
Result<TopKResult> RunTopKRanking(const Graph& graph,
                                  const AlgorithmConfig& overrides = {},
                                  const bsp::EngineOptions& engine = {},
                                  std::vector<double> ranks = {});

}  // namespace predict

#endif  // PREDICT_ALGORITHMS_TOPK_RANKING_H_
