#include "pipeline/stages.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bsp/scenario.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "core/features.h"
#include "core/models/paper_model.h"

namespace predict::pipeline {

namespace {

// Every stage boundary funnels through here: check the request deadline
// before starting, run the stage body under the caller's retry policy,
// and annotate any error with the stage's name so it keeps its
// provenance ("profile_stage: injected fault at 'profile.run' ...").
template <typename Fn>
auto RunStage(const char* stage, const StageContext& ctx, Fn&& fn)
    -> decltype(fn()) {
  if (ctx.deadline.Expired()) {
    return Status::DeadlineExceeded(std::string(stage) +
                                    ": deadline expired before the stage ran");
  }
  auto result = RunWithRetry(ctx.retry, ctx.deadline, stage,
                             std::forward<Fn>(fn), ctx.accounting);
  if (!result.ok() && !StartsWith(result.status().message(), stage)) {
    return StatusAnnotate(result.status(), stage);
  }
  return result;
}

}  // namespace

SampleKey SampleKey::For(const Graph& graph, const SamplerOptions& options) {
  return SampleKey{graph.Fingerprint(), graph.num_vertices(),
                   graph.num_edges(), options};
}

std::string SampleKey::ToString() const {
  char fp[96];
  std::snprintf(fp, sizeof(fp), "fp=%016llx;v=%llu;e=%llu;",
                static_cast<unsigned long long>(graph_fingerprint),
                static_cast<unsigned long long>(graph_num_vertices),
                static_cast<unsigned long long>(graph_num_edges));
  return fp + SamplerOptionsKey(options);
}

std::string SampleArtifact::ContentKey() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "sfp=%016llx;sv=%llu;se=%llu;ov=%llu;ratio=%.17g",
                static_cast<unsigned long long>(sample.subgraph.Fingerprint()),
                static_cast<unsigned long long>(sample.subgraph.num_vertices()),
                static_cast<unsigned long long>(sample.subgraph.num_edges()),
                static_cast<unsigned long long>(sample.original_num_vertices),
                sample.realized_ratio);
  return buf;
}

std::string TransformArtifact::ConfigKey() const {
  std::string key;
  for (const auto& [name, value] : sample_config) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.17g;", name.c_str(), value);
    key += buf;
  }
  return key;
}

Result<SampleArtifact> SampleStage::Run(const Graph& graph,
                                        const StageContext& ctx) const {
  return RunStage("sample_stage", ctx, [&]() -> Result<SampleArtifact> {
    SampleArtifact artifact;
    artifact.key = SampleKey::For(graph, options_);
    PREDICT_FAIL_POINT_CTX("sample.walk",
                           fail::HashContext(artifact.key.ToString()));
    PREDICT_ASSIGN_OR_RETURN(artifact.sample, SampleGraph(graph, options_));
    return artifact;
  });
}

Result<SampleArtifact> SampleStage::RunRecorded(const Graph& graph,
                                                SampleWalkRecord* record,
                                                const StageContext& ctx) const {
  return RunStage("sample_stage", ctx, [&]() -> Result<SampleArtifact> {
    SampleArtifact artifact;
    artifact.key = SampleKey::For(graph, options_);
    PREDICT_FAIL_POINT_CTX("sample.walk",
                           fail::HashContext(artifact.key.ToString()));
    PREDICT_ASSIGN_OR_RETURN(artifact.sample,
                             SampleGraphRecorded(graph, options_, record));
    return artifact;
  });
}

Result<SampleArtifact> SampleStage::RunIncremental(
    const Graph& graph, const std::vector<VertexId>& dirty,
    const SampleWalkRecord& record, SampleWalkRecord* updated,
    IncrementalStats* stats, const StageContext& ctx) const {
  return RunStage("sample_stage", ctx, [&]() -> Result<SampleArtifact> {
    if (!(record.options == options_)) {
      return Status::InvalidArgument(
          "walk record was made with different sampler options");
    }
    SampleArtifact artifact;
    artifact.key = SampleKey::For(graph, options_);
    PREDICT_FAIL_POINT_CTX("sample.walk",
                           fail::HashContext(artifact.key.ToString()));
    PREDICT_ASSIGN_OR_RETURN(
        IncrementalSampleResult incremental,
        ResampleIncremental(graph, dirty, record, updated));
    if (stats != nullptr) {
      stats->segments_total = incremental.segments_total;
      stats->segments_reused = incremental.segments_reused;
      stats->full_resample = incremental.full_resample;
    }
    artifact.sample = std::move(incremental.sample);
    return artifact;
  });
}

Status TransformStage::Validate(const std::string& algorithm,
                                const AlgorithmConfig& overrides) const {
  auto spec = FindAlgorithmSpec(algorithm);
  if (!spec.ok()) return spec.status();
  auto config = ResolveConfig(*spec, overrides);
  if (!config.ok()) return config.status();
  return Status::OK();
}

Result<TransformArtifact> TransformStage::Run(const std::string& algorithm,
                                              const AlgorithmConfig& overrides,
                                              double realized_ratio) const {
  TransformArtifact artifact;
  PREDICT_ASSIGN_OR_RETURN(artifact.spec, FindAlgorithmSpec(algorithm));
  PREDICT_ASSIGN_OR_RETURN(artifact.actual_config,
                           ResolveConfig(artifact.spec, overrides));
  PREDICT_ASSIGN_OR_RETURN(
      artifact.sample_config,
      TransformConfigForSample(artifact.spec, artifact.actual_config,
                               realized_ratio, custom_));
  const TransformFunction& transform =
      custom_ != nullptr
          ? *custom_
          : static_cast<const TransformFunction&>(DefaultTransform::Instance());
  artifact.description = transform.Describe(artifact.spec);
  return artifact;
}

Result<ProfileArtifact> ProfileStage::RunWithEngine(
    const std::string& algorithm, const std::string& dataset_name,
    const SampleArtifact& sample, const TransformArtifact& transform,
    const bsp::EngineOptions& engine, const StageContext& ctx) const {
  // Context-keyed fail point: the decision for a given work item is a
  // pure function of what is being profiled, never of how many other
  // profile runs interleaved before it — which is what keeps a
  // probabilistic fault schedule byte-replayable through the concurrent
  // service.
  const uint64_t fail_context =
      fail::AnyActive()
          ? fail::HashContext(algorithm + "|" + dataset_name + "|" +
                              transform.ConfigKey() + "|" +
                              bsp::EngineOptionsKey(engine))
          : 0;
  return RunStage("profile_stage", ctx, [&]() -> Result<ProfileArtifact> {
    PREDICT_FAIL_POINT_CTX("profile.run", fail_context);
    RunOptions run_options;
    run_options.engine = engine;
    run_options.config_overrides = transform.sample_config;
    PREDICT_ASSIGN_OR_RETURN(
        AlgorithmRunResult run,
        RunAlgorithmByName(algorithm, sample.sample.subgraph, run_options));

    ProfileArtifact artifact;
    artifact.scenario_key = bsp::EngineOptionsKey(engine);
    // Straggler overhang of this deployment: how much slower the slowest
    // worker is than the average one. Workers beyond the factor vector
    // run at 1.0 (homogeneous).
    if (engine.num_workers > 0) {
      double sum = 0.0;
      double max_factor = 0.0;
      for (uint32_t w = 0; w < engine.num_workers; ++w) {
        const double f = engine.cost_profile.SpeedFactor(w);
        sum += f;
        max_factor = std::max(max_factor, f);
      }
      const double mean = sum / engine.num_workers;
      if (mean > 0.0) {
        artifact.straggler_spread = std::max(0.0, max_factor / mean - 1.0);
      }
    }
    artifact.sample_total_seconds = run.stats.total_seconds;
    artifact.sample_wall_seconds = run.stats.wall_seconds;
    artifact.sample_profile = ProfileFromRunStats(
        algorithm, dataset_name.empty() ? "sample" : dataset_name + "_sample",
        sample.sample.subgraph.num_vertices(),
        sample.sample.subgraph.num_edges(), run.stats);
    return artifact;
  });
}

Result<ExtrapolationArtifact> ExtrapolateStage::Run(
    const Graph& full_graph, const SampleArtifact& sample,
    const ProfileArtifact& profile, const StageContext& ctx) const {
  return RunStage("extrapolate_stage", ctx,
                  [&]() -> Result<ExtrapolationArtifact> {
    ExtrapolationArtifact artifact;
    PREDICT_ASSIGN_OR_RETURN(
        artifact.factors,
        ComputeExtrapolationFactors(full_graph, sample.sample.subgraph));
    artifact.extrapolated_profile =
        ExtrapolateProfile(profile.sample_profile, artifact.factors);
    return artifact;
  });
}

Result<ModelArtifact> FitStage::Run(const ProfileArtifact& profile,
                                    const std::string& algorithm,
                                    const std::string& exclude_dataset,
                                    const StageContext& ctx) const {
  const uint64_t fail_context =
      fail::AnyActive()
          ? fail::HashContext(algorithm + "|" + exclude_dataset)
          : 0;
  return RunStage("fit_stage", ctx, [&]() -> Result<ModelArtifact> {
    PREDICT_FAIL_POINT_CTX("fit.ols", fail_context);
    const std::vector<TrainingRow> sample_rows =
        TrainingRowsFromProfile(profile.sample_profile);
    std::vector<TrainingRow> history_rows;
    if (history_ != nullptr) {
      history_rows =
          history_->TrainingRowsExcluding(algorithm, exclude_dataset);
    }

    ModelArtifact artifact;
    PREDICT_ASSIGN_OR_RETURN(
        models::ModelZooFit zoo_fit,
        models::FitModelZoo(sample_rows, history_rows, options_, zoo_));
    artifact.selection = std::move(zoo_fit.selection);
    artifact.residuals = std::move(zoo_fit.residuals);
    artifact.runtime_model = std::move(zoo_fit.model);

    // The paper's cost model is always part of the artifact: when the
    // selector picked it, reuse the exact fit; otherwise train it
    // separately so reports keep R^2 / selected features.
    if (artifact.selection.tier == models::ModelTier::kPaper) {
      artifact.model = static_cast<const models::PaperModel&>(
                           *artifact.runtime_model)
                           .cost_model();
    } else {
      std::vector<TrainingRow> combined = sample_rows;
      combined.insert(combined.end(), history_rows.begin(),
                      history_rows.end());
      PREDICT_ASSIGN_OR_RETURN(artifact.model,
                               CostModel::Train(combined, options_));
    }
    return artifact;
  });
}

}  // namespace predict::pipeline
