// Typed artifacts flowing between the staged prediction pipeline's
// stages (Figure 1 of the paper, made explicit):
//
//   SampleStage      -> SampleArtifact
//   TransformStage   -> TransformArtifact
//   ProfileStage     -> ProfileArtifact
//   ExtrapolateStage -> ExtrapolationArtifact
//   FitStage         -> ModelArtifact
//
// Each artifact is a plain value: self-contained, copyable, and
// independent of the stage that produced it, so intermediate results can
// be cached (PredictionService shares SampleArtifacts and
// ProfileArtifacts across concurrent predictions) and each stage can be
// unit-tested in isolation by handing it a hand-built input artifact.

#ifndef PREDICT_PIPELINE_ARTIFACTS_H_
#define PREDICT_PIPELINE_ARTIFACTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithm_spec.h"
#include "core/cost_model.h"
#include "core/extrapolator.h"
#include "core/features.h"
#include "core/models/model_selector.h"
#include "sampling/sampler.h"

namespace predict::pipeline {

/// Identity of a sample: which graph it was drawn from (by content
/// fingerprint plus |V|/|E|, belt-and-braces against a 64-bit hash
/// collision) and with which sampler configuration. Two SampleKeys with
/// the same ToString() denote byte-identical SampleArtifacts (the
/// samplers are deterministic), which is what makes samples shareable
/// across predictions.
struct SampleKey {
  uint64_t graph_fingerprint = 0;
  uint64_t graph_num_vertices = 0;
  uint64_t graph_num_edges = 0;
  SamplerOptions options;

  /// Builds the key identifying `graph` sampled under `options`.
  static SampleKey For(const Graph& graph, const SamplerOptions& options);

  bool operator==(const SampleKey& other) const = default;

  /// Canonical map key, e.g. "fp=a1b2...;v=100;e=420;BRJ;ratio=0.1;...".
  std::string ToString() const;
};

/// Output of SampleStage: the sampled subgraph plus its identity.
struct SampleArtifact {
  SampleKey key;
  Sample sample;

  /// The realized sampling ratio, read from the Sample (never
  /// recomputed downstream).
  double realized_ratio() const { return sample.realized_ratio; }

  /// Identity of the sample's *content* (subgraph fingerprint + sizes +
  /// realized ratio), independent of which graph version it was drawn
  /// from. Downstream stages (profile onward) consume only the content,
  /// so caches keyed on this string keep hitting across graph churn
  /// that leaves the sample unchanged — the heart of stale-artifact-only
  /// re-prediction. Equal ContentKey() ⇒ byte-identical downstream
  /// artifacts (the engine is deterministic).
  std::string ContentKey() const;
};

/// Output of TransformStage: the resolved actual-run configuration and
/// the §3.2.2-transformed sample-run configuration.
struct TransformArtifact {
  AlgorithmSpec spec;
  AlgorithmConfig actual_config;
  AlgorithmConfig sample_config;
  /// One-line description of the transform rule, for reports.
  std::string description;

  /// Canonical form of sample_config for cache keys, e.g. "tau=0.001;k=2".
  std::string ConfigKey() const;
};

/// Output of ProfileStage: the sample run's per-iteration profile and
/// overhead accounting (§5.4).
struct ProfileArtifact {
  RunProfile sample_profile;
  /// Simulated runtime of the complete sample run (all phases).
  double sample_total_seconds = 0.0;
  /// Host wall time of the sample run. Excluded from the determinism
  /// contract: it is the one host-dependent field, and a cached
  /// ProfileArtifact reports the wall time of the run that produced it.
  double sample_wall_seconds = 0.0;
  /// Provenance: the canonical key (bsp::EngineOptionsKey) of the
  /// engine configuration the profile was measured under. Profiles are
  /// only comparable within one such configuration; consumers holding a
  /// cached artifact can check which deployment produced it.
  /// (PredictionService derives its cache key from the same
  /// EngineOptionsKey before the artifact exists.)
  std::string scenario_key;
  /// Relative slow-worker overhang of the deployment the profile was
  /// measured under: max worker speed factor over the mean, minus 1
  /// (0 = homogeneous cluster). Feeds the straggler term of the
  /// bootstrap prediction intervals (core/distribution.h).
  double straggler_spread = 0.0;
};

/// Output of ExtrapolateStage: scaling factors and the profile scaled to
/// the full graph, iteration by iteration (§3.4).
struct ExtrapolationArtifact {
  ExtrapolationFactors factors;
  RunProfile extrapolated_profile;
};

/// Output of FitStage: the trained cost model, plus the zoo member the
/// density rule selected for the actual prediction.
struct ModelArtifact {
  /// The paper's cost model, always trained (reports expose its R^2 and
  /// selected features regardless of which zoo member predicts).
  CostModel model;
  /// The selected zoo member; the predictor calls this one. Null only in
  /// hand-built artifacts (legacy tests) — consumers fall back to
  /// `model`.
  std::shared_ptr<const models::RuntimeModel> runtime_model;
  /// Why the selector picked `runtime_model`.
  models::ModelSelection selection;
  /// Training residuals of the selected member (observed - predicted),
  /// the raw material of bootstrap prediction intervals.
  std::vector<double> residuals;
};

}  // namespace predict::pipeline

#endif  // PREDICT_PIPELINE_ARTIFACTS_H_
