// The staged prediction pipeline: PREDIcT's Figure-1 methodology split
// into five composable stages.
//
//   SampleStage      sample the graph (§3.2.1)
//   TransformStage   map the actual run's config to the sample run (§3.2.2)
//   ProfileStage     run the algorithm on the sample, profiled (§3.2)
//   ExtrapolateStage scale the profile to full size (§3.4)
//   FitStage         train the cost model on sample + history (§3.4)
//
// Each stage is an immutable value object: configured once, then Run()
// any number of times from any thread (stages hold no mutable state).
// Stages consume and produce the typed artifacts of artifacts.h, so any
// stage can be exercised in isolation and any artifact can be cached and
// reused — Predictor composes them end to end; PredictionService
// interposes caches between them.

#ifndef PREDICT_PIPELINE_STAGES_H_
#define PREDICT_PIPELINE_STAGES_H_

#include <string>

#include "algorithms/runner.h"
#include "common/result.h"
#include "common/retry.h"
#include "core/history.h"
#include "core/transform.h"
#include "pipeline/artifacts.h"

namespace predict::pipeline {

/// Execution context a caller threads through the stage boundaries of
/// one request: a retry policy applied independently at each boundary, a
/// deadline shared across all of them, and optional per-boundary attempt
/// accounting. The default (one attempt, infinite deadline) reproduces
/// the pre-context behavior exactly, so existing callers need not pass
/// one. Stage errors come back annotated with the stage name
/// ("profile_stage: ...") regardless of the context.
struct StageContext {
  RetryPolicy retry;
  Deadline deadline;
  /// Not owned; may be null. Counts attempts/backoff at this boundary.
  AttemptAccounting* accounting = nullptr;
};

/// Stage 1: draws the sample and stamps it with its cache identity.
/// Fail point: sample.walk.
class SampleStage {
 public:
  explicit SampleStage(SamplerOptions options) : options_(options) {}

  Result<SampleArtifact> Run(const Graph& graph,
                             const StageContext& ctx = {}) const;

  /// Run, additionally filling `record` (non-null) with the walk
  /// trajectories so the sample can later be maintained incrementally.
  /// Artifact is bit-identical to Run's.
  Result<SampleArtifact> RunRecorded(const Graph& graph,
                                     SampleWalkRecord* record,
                                     const StageContext& ctx = {}) const;

  /// How an incremental stage run got its sample.
  struct IncrementalStats {
    uint64_t segments_total = 0;
    uint64_t segments_reused = 0;
    bool full_resample = false;
  };

  /// Re-derives the sample for a mutated `graph`, re-walking only
  /// segments whose trajectory touched a vertex in `dirty` (see
  /// ResampleIncremental). The artifact is bit-identical to Run(graph)
  /// with the same options; `updated` (non-null, distinct from
  /// `record`) receives the new walk record and `stats` (may be null)
  /// the reuse counts.
  Result<SampleArtifact> RunIncremental(const Graph& graph,
                                        const std::vector<VertexId>& dirty,
                                        const SampleWalkRecord& record,
                                        SampleWalkRecord* updated,
                                        IncrementalStats* stats,
                                        const StageContext& ctx = {}) const;

  const SamplerOptions& options() const { return options_; }

 private:
  SamplerOptions options_;
};

/// Stage 2: resolves the algorithm's config and applies the transform
/// function. Needs only the realized sampling ratio, not the sample
/// itself, so it is cheap enough to run uncached per prediction.
class TransformStage {
 public:
  /// `custom` overrides the paper's default rules; may be null. Not owned.
  explicit TransformStage(const TransformFunction* custom = nullptr)
      : custom_(custom) {}

  /// Resolves the spec and config without applying the transform: the
  /// fail-fast check compositions run *before* paying for SampleStage,
  /// so a misspelled algorithm or bad override never costs a sampling
  /// pass (or a cache slot).
  Status Validate(const std::string& algorithm,
                  const AlgorithmConfig& overrides) const;

  Result<TransformArtifact> Run(const std::string& algorithm,
                                const AlgorithmConfig& overrides,
                                double realized_ratio) const;

 private:
  const TransformFunction* custom_;
};

/// Stage 3: the sample run. Executes the algorithm on the sampled
/// subgraph with the transformed configuration and extracts the
/// critical-worker profile. The dominant cost of a prediction — the
/// artifact PredictionService caches most aggressively.
///
/// The stage is configured with a default engine (the deployment the
/// prediction targets), but a what-if sweep can profile the same sample
/// under any other deployment via RunWithEngine — the stage itself stays
/// immutable and shareable.
/// Fail point: profile.run, context-keyed on (algorithm, dataset,
/// transformed config, engine key) so probabilistic fault schedules are
/// deterministic per work item even through the concurrent service.
class ProfileStage {
 public:
  explicit ProfileStage(bsp::EngineOptions engine)
      : engine_(std::move(engine)) {}

  /// `dataset_name` labels the profile ("<dataset>_sample").
  Result<ProfileArtifact> Run(const std::string& algorithm,
                              const std::string& dataset_name,
                              const SampleArtifact& sample,
                              const TransformArtifact& transform,
                              const StageContext& ctx = {}) const {
    return RunWithEngine(algorithm, dataset_name, sample, transform, engine_,
                         ctx);
  }

  /// Runs the sample under an explicit engine configuration (a cluster
  /// scenario's ToEngineOptions); the artifact carries the matching
  /// scenario_key.
  Result<ProfileArtifact> RunWithEngine(const std::string& algorithm,
                                        const std::string& dataset_name,
                                        const SampleArtifact& sample,
                                        const TransformArtifact& transform,
                                        const bsp::EngineOptions& engine,
                                        const StageContext& ctx = {}) const;

  const bsp::EngineOptions& engine() const { return engine_; }

 private:
  bsp::EngineOptions engine_;
};

/// Stage 4: extrapolates the sample profile to the full graph.
class ExtrapolateStage {
 public:
  Result<ExtrapolationArtifact> Run(const Graph& full_graph,
                                    const SampleArtifact& sample,
                                    const ProfileArtifact& profile,
                                    const StageContext& ctx = {}) const;
};

/// Stage 5: trains the cost model on the sample run's rows plus the
/// history store's rows for the same algorithm on *other* datasets (the
/// paper's training methodology), and selects the zoo member for the
/// actual prediction from history density (core/models/model_selector.h).
class FitStage {
 public:
  /// `history` may be null (train on the sample rows alone). Not owned.
  FitStage(CostModelOptions options, const HistoryStore* history,
           models::ModelZooOptions zoo = {})
      : options_(options), history_(history), zoo_(zoo) {}

  /// Fail point: fit.ols, context-keyed on (algorithm, exclude_dataset).
  Result<ModelArtifact> Run(const ProfileArtifact& profile,
                            const std::string& algorithm,
                            const std::string& exclude_dataset,
                            const StageContext& ctx = {}) const;

 private:
  CostModelOptions options_;
  const HistoryStore* history_;
  models::ModelZooOptions zoo_;
};

}  // namespace predict::pipeline

#endif  // PREDICT_PIPELINE_STAGES_H_
