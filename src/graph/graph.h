// Immutable directed graph in Compressed Sparse Row (CSR) form.
//
// The Graph is the single input type shared by the BSP engine, the
// samplers, and the statistics module. It stores both out- and in-
// adjacency so that algorithms and graph statistics (in/out degree
// ratios, PREDIcT's sampling requirements in §3.2.1 of the paper) are
// O(1)/O(deg) without re-deriving the transpose.
//
// Edge endpoints can optionally be stored varint/delta-compressed
// (graph/varint.h) instead of as flat id arrays — opt in via
// GraphBuilder::set_compress_edges, the Graph::FromCsr flag, or
// Graph::WithCompressedEdges. A compressed graph has the same logical
// structure (same Fingerprint, same ToEdgeList) at a fraction of the
// edge bytes, which is what lets 10M-100M-edge inputs fit the simulated
// memory budgets; adjacency is then read through ForEachOutNeighbor /
// OutNeighborsInto (block-wise decode) rather than the raw spans.

#ifndef PREDICT_GRAPH_GRAPH_H_
#define PREDICT_GRAPH_GRAPH_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/varint.h"

namespace predict {

/// Vertex identifier. Graphs are always compact: ids are [0, num_vertices).
using VertexId = uint32_t;

/// A directed edge with an optional weight (1.0 when unweighted).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  bool operator==(const Edge& other) const {
    return src == other.src && dst == other.dst && weight == other.weight;
  }
};

/// \brief Immutable directed graph in CSR form with both adjacency
/// directions materialized.
///
/// Construction goes through GraphBuilder or Graph::FromEdges. Parallel
/// edges are allowed (they matter for message counts); self-loops are
/// allowed unless the builder is told to drop them.
class Graph {
 public:
  Graph() = default;

  // The memoized fingerprint cache is an atomic, so the compiler-written
  // special members are unavailable; these copy/move the CSR arrays and
  // carry the cache along (the fingerprint is content-based, so a copy
  // shares it validly).
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Builds a graph from an edge list. Vertices are [0, num_vertices);
  /// edges referencing vertices outside that range are rejected.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 const std::vector<Edge>& edges);

  /// Overload taking ownership of the edge list: skips the copy entirely
  /// (the CSR assembly consumes the vector in place). Prefer this when
  /// the caller's edge list is expendable.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge>&& edges);

  /// Builds a graph from an edge batch carrying deletions: `removals`
  /// are (src, dst) pairs, each deleting one matching edge from `edges`.
  /// Every removal is validated — an unknown vertex id, a delete of a
  /// non-existent edge, or a duplicate removal beyond an edge's
  /// multiplicity is InvalidArgument carrying the offending (src, dst).
  static Result<Graph> FromEdges(
      VertexId num_vertices, const std::vector<Edge>& edges,
      const std::vector<std::pair<VertexId, VertexId>>& removals);

  /// \brief Trusted constructor from prebuilt CSR arrays; the fast path
  /// for transforms that assemble adjacency directly (InducedSubgraph,
  /// Transpose, ToUndirected) without an edge-list round trip.
  ///
  /// The caller guarantees the standard CSR invariants: both offset
  /// arrays have size V+1, start at 0, are non-decreasing, and end at
  /// the edge count; every target/source id is < V; `out_weights` is
  /// either empty (unweighted) or parallel to `out_targets` with at
  /// least one weight != 1.0f; the in arrays describe exactly the
  /// reverse of the out arrays. Invariants are checked with assert()
  /// in debug builds only — this is not an input-validation API.
  ///
  /// With `compress_edges` set, the target/source arrays are re-encoded
  /// as varint/delta streams and discarded.
  static Graph FromCsr(std::vector<uint64_t> out_offsets,
                       std::vector<VertexId> out_targets,
                       std::vector<float> out_weights,
                       std::vector<uint64_t> in_offsets,
                       std::vector<VertexId> in_sources,
                       bool compress_edges = false);

  /// Returns `g` with edge endpoints varint/delta-compressed (no-op if
  /// already compressed). Same logical structure, same Fingerprint.
  static Graph WithCompressedEdges(Graph g);

  /// Inverse of WithCompressedEdges: re-materializes the flat endpoint
  /// arrays (no-op if already plain).
  static Graph WithPlainEdges(Graph g);

  uint64_t num_vertices() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  uint64_t num_edges() const {
    return out_offsets_.empty() ? 0 : out_offsets_.back();
  }

  /// True when any edge carries a weight != 1.0.
  bool is_weighted() const { return is_weighted_; }

  /// True when edge endpoints are stored varint/delta-compressed; the
  /// raw out_neighbors / in_neighbors / out_targets / in_sources spans
  /// are unavailable then — use the ForEach / *Into accessors.
  bool edges_compressed() const { return edges_compressed_; }

  uint64_t out_degree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  uint64_t in_degree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Targets of v's outgoing edges (with multiplicity). Plain storage
  /// only (asserts); compression-agnostic callers use ForEachOutNeighbor
  /// or OutNeighborsInto.
  std::span<const VertexId> out_neighbors(VertexId v) const {
    assert(!edges_compressed_);
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// Weights parallel to v's out-edges. Valid only if is_weighted();
  /// weights stay uncompressed, so this works in both storage modes.
  std::span<const float> out_weights(VertexId v) const {
    return {out_weights_.data() + out_offsets_[v],
            out_weights_.data() + out_offsets_[v + 1]};
  }

  /// Sources of v's incoming edges (with multiplicity). Plain storage
  /// only (asserts).
  std::span<const VertexId> in_neighbors(VertexId v) const {
    assert(!edges_compressed_);
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Invokes fn(target) for each of v's out-edges in CSR order. For
  /// compressed graphs this is the block-wise decode path (the engine's
  /// scatter loops); for plain graphs it iterates the span directly.
  template <typename Fn>
  void ForEachOutNeighbor(VertexId v, Fn&& fn) const {
    if (!edges_compressed_) {
      for (const VertexId t : out_neighbors(v)) fn(t);
      return;
    }
    DecodeList(out_packed_.data() + out_packed_offsets_[v], out_degree(v),
               static_cast<Fn&&>(fn));
  }

  /// Invokes fn(source) for each of v's in-edges in CSR order.
  template <typename Fn>
  void ForEachInSource(VertexId v, Fn&& fn) const {
    if (!edges_compressed_) {
      for (const VertexId s : in_neighbors(v)) fn(s);
      return;
    }
    DecodeList(in_packed_.data() + in_packed_offsets_[v], in_degree(v),
               static_cast<Fn&&>(fn));
  }

  /// v's out-targets as a span, valid until the next call reusing
  /// `scratch`. Plain graphs return the CSR span directly (no copy);
  /// compressed graphs decode into `scratch`.
  std::span<const VertexId> OutNeighborsInto(
      VertexId v, std::vector<VertexId>* scratch) const {
    if (!edges_compressed_) return out_neighbors(v);
    return DecodeInto(out_packed_.data() + out_packed_offsets_[v],
                      out_degree(v), scratch);
  }

  /// v's in-sources as a span; same contract as OutNeighborsInto.
  std::span<const VertexId> InSourcesInto(VertexId v,
                                          std::vector<VertexId>* scratch) const {
    if (!edges_compressed_) return in_neighbors(v);
    return DecodeInto(in_packed_.data() + in_packed_offsets_[v], in_degree(v),
                      scratch);
  }

  /// Whole-array views of the CSR structure, for code that walks or
  /// re-assembles adjacency wholesale (transforms, serialization) rather
  /// than per vertex. The target/source arrays are empty when
  /// edges_compressed().
  std::span<const uint64_t> out_offsets() const { return out_offsets_; }
  std::span<const VertexId> out_targets() const { return out_targets_; }
  std::span<const float> out_weights() const { return out_weights_; }
  std::span<const uint64_t> in_offsets() const { return in_offsets_; }
  std::span<const VertexId> in_sources() const { return in_sources_; }

  /// Materializes the edge list (in CSR order). O(E).
  std::vector<Edge> ToEdgeList() const;

  /// Total bytes of the CSR arrays; used by the simulated memory model to
  /// account for the in-memory input graph (Giraph's "read phase" loads the
  /// graph into worker memory). Compressed graphs report the packed size.
  uint64_t MemoryFootprintBytes() const;

  /// Bytes spent on edge-endpoint storage only: the target/source arrays
  /// (plain) or the packed streams plus their per-vertex byte index
  /// (compressed). The quantity the rmat_scale_gate compression-ratio
  /// check compares.
  uint64_t EdgeStorageBytes() const;

  /// Hash of one directed edge, the commutative building block of the
  /// order-independent edge-set hash below: EdgeSetHash sums these mod
  /// 2^64, and graph/delta.h's version chain adds/subtracts them per
  /// mutation so any batch interleaving reaching the same edge set
  /// reaches the same version fingerprint.
  static uint64_t EdgeHash(VertexId src, VertexId dst, float weight);

  /// Order-independent 64-bit hash of the edge *multiset* (plus |V|):
  /// unlike Fingerprint(), two graphs whose adjacency lists hold the
  /// same edges in different CSR order hash equal. O(V + E), never
  /// memoized — computed once per EvolvingGraph as the anchor of its
  /// incremental version chain. Never returns 0.
  uint64_t EdgeSetHash() const;

  /// Stable 64-bit content hash of the graph structure (vertex count, out
  /// CSR arrays, weights), independent of how the Graph was constructed —
  /// including whether edges are compressed: plain and compressed copies
  /// of the same structure hash equal. Identical structure always hashes
  /// equal; distinct structures collide only with 64-bit-hash probability
  /// (FNV-1a is not cryptographic — callers building cache keys on it
  /// should also key on |V|/|E|, as pipeline::SampleKey does). Never
  /// returns 0.
  ///
  /// Memoized: the O(V + E) scan runs once per Graph instance (copies
  /// inherit the cached value) and the result is served from a cache
  /// thereafter, so hot cache-key paths (pipeline::SampleKey per
  /// PredictionService request) pay a single atomic load. Thread-safe;
  /// concurrent first calls may redundantly compute the same value.
  uint64_t Fingerprint() const;

  /// Number of full-CSR fingerprint scans performed process-wide since
  /// start. Test-only observability for the memoization contract.
  static uint64_t FingerprintComputationsForTest();

  /// Human-readable one-line summary, e.g. "Graph(|V|=100000, |E|=854301)".
  std::string ToString() const;

 private:
  friend class GraphBuilder;

  /// Re-encodes the endpoint arrays as varint/delta streams (and frees
  /// them); inverse is DecompressEdgesInPlace.
  void CompressEdgesInPlace();
  void DecompressEdgesInPlace();

  template <typename Fn>
  static void DecodeList(const uint8_t* p, uint64_t count, Fn&& fn) {
    uint32_t prev = 0;
    VertexId block[varint::kDecodeBlock];
    while (count != 0) {
      const size_t n = count < varint::kDecodeBlock
                           ? static_cast<size_t>(count)
                           : varint::kDecodeBlock;
      p = varint::DecodeDeltaBlock(p, n, &prev, block);
      for (size_t i = 0; i < n; ++i) fn(block[i]);
      count -= n;
    }
  }

  static std::span<const VertexId> DecodeInto(const uint8_t* p, uint64_t count,
                                              std::vector<VertexId>* scratch) {
    if (scratch->size() < count) scratch->resize(count);
    uint32_t prev = 0;
    VertexId* out = scratch->data();
    uint64_t remaining = count;
    while (remaining != 0) {
      const size_t n = remaining < varint::kDecodeBlock
                           ? static_cast<size_t>(remaining)
                           : varint::kDecodeBlock;
      p = varint::DecodeDeltaBlock(p, n, &prev, out);
      out += n;
      remaining -= n;
    }
    return {scratch->data(), scratch->data() + count};
  }

  std::vector<uint64_t> out_offsets_;  // size V+1
  std::vector<VertexId> out_targets_;  // size E (empty when compressed)
  std::vector<float> out_weights_;     // size E iff weighted, else empty
  std::vector<uint64_t> in_offsets_;   // size V+1
  std::vector<VertexId> in_sources_;   // size E (empty when compressed)
  bool is_weighted_ = false;

  // Compressed-edge storage (edges_compressed_ only): varint/delta
  // streams plus per-vertex byte offsets into them. Byte offsets are
  // 32-bit — a stream would exceed 4 GiB only beyond ~1.5G edges, far
  // past what a single simulated cluster models.
  bool edges_compressed_ = false;
  std::vector<uint8_t> out_packed_;
  std::vector<uint8_t> in_packed_;
  std::vector<uint32_t> out_packed_offsets_;  // size V+1
  std::vector<uint32_t> in_packed_offsets_;   // size V+1

  // 0 = not yet computed (Fingerprint() itself never yields 0).
  mutable std::atomic<uint64_t> fingerprint_cache_{0};
};

/// \brief Incremental graph construction.
///
/// Usage:
///   GraphBuilder b(num_vertices);
///   b.AddEdge(0, 1);
///   PREDICT_ASSIGN_OR_RETURN(Graph g, b.Build());
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Appends a directed edge. Out-of-range endpoints are reported by Build.
  void AddEdge(VertexId src, VertexId dst, float weight = 1.0f) {
    edges_.push_back({src, dst, weight});
  }

  /// Appends both (src,dst) and (dst,src); convenience for undirected input.
  void AddUndirectedEdge(VertexId src, VertexId dst, float weight = 1.0f) {
    AddEdge(src, dst, weight);
    AddEdge(dst, src, weight);
  }

  /// Appends a whole batch; adopts the vector (no copy) when the builder
  /// holds no pending edges yet.
  void AddEdges(std::vector<Edge> edges) {
    if (edges_.empty()) {
      edges_ = std::move(edges);
    } else {
      edges_.insert(edges_.end(), edges.begin(), edges.end());
    }
  }

  /// Pre-sizes the pending edge list for `count` further AddEdge calls.
  void ReserveEdges(uint64_t count) { edges_.reserve(edges_.size() + count); }

  /// Deletes one pending edge matching (src, dst) at Build time (the
  /// first-added occurrence). Build validates every removal: an unknown
  /// vertex id, a delete of a non-existent edge (including a self-loop
  /// delete with no matching loop), or duplicate removals exceeding the
  /// edge's multiplicity fail with InvalidArgument carrying the
  /// offending (src, dst) — deletions are never dropped silently.
  void RemoveEdge(VertexId src, VertexId dst) {
    removals_.emplace_back(src, dst);
  }

  /// Drop self-loops at Build time (default keeps them).
  void set_drop_self_loops(bool drop) { drop_self_loops_ = drop; }

  /// Deduplicate parallel edges at Build time, keeping the first weight.
  void set_dedup_parallel_edges(bool dedup) { dedup_parallel_edges_ = dedup; }

  /// Store edge endpoints varint/delta-compressed (default plain).
  void set_compress_edges(bool compress) { compress_edges_ = compress; }

  uint64_t num_pending_edges() const { return edges_.size(); }

  /// Validates and assembles the CSR structure. The builder is consumed.
  Result<Graph> Build();

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
  std::vector<std::pair<VertexId, VertexId>> removals_;
  bool drop_self_loops_ = false;
  bool dedup_parallel_edges_ = false;
  bool compress_edges_ = false;
};

}  // namespace predict

#endif  // PREDICT_GRAPH_GRAPH_H_
