// Immutable directed graph in Compressed Sparse Row (CSR) form.
//
// The Graph is the single input type shared by the BSP engine, the
// samplers, and the statistics module. It stores both out- and in-
// adjacency so that algorithms and graph statistics (in/out degree
// ratios, PREDIcT's sampling requirements in §3.2.1 of the paper) are
// O(1)/O(deg) without re-deriving the transpose.

#ifndef PREDICT_GRAPH_GRAPH_H_
#define PREDICT_GRAPH_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace predict {

/// Vertex identifier. Graphs are always compact: ids are [0, num_vertices).
using VertexId = uint32_t;

/// A directed edge with an optional weight (1.0 when unweighted).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  bool operator==(const Edge& other) const {
    return src == other.src && dst == other.dst && weight == other.weight;
  }
};

/// \brief Immutable directed graph in CSR form with both adjacency
/// directions materialized.
///
/// Construction goes through GraphBuilder or Graph::FromEdges. Parallel
/// edges are allowed (they matter for message counts); self-loops are
/// allowed unless the builder is told to drop them.
class Graph {
 public:
  Graph() = default;

  // The memoized fingerprint cache is an atomic, so the compiler-written
  // special members are unavailable; these copy/move the CSR arrays and
  // carry the cache along (the fingerprint is content-based, so a copy
  // shares it validly).
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Builds a graph from an edge list. Vertices are [0, num_vertices);
  /// edges referencing vertices outside that range are rejected.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 const std::vector<Edge>& edges);

  /// Overload taking ownership of the edge list: skips the copy entirely
  /// (the CSR assembly consumes the vector in place). Prefer this when
  /// the caller's edge list is expendable.
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge>&& edges);

  /// \brief Trusted constructor from prebuilt CSR arrays; the fast path
  /// for transforms that assemble adjacency directly (InducedSubgraph,
  /// Transpose, ToUndirected) without an edge-list round trip.
  ///
  /// The caller guarantees the standard CSR invariants: both offset
  /// arrays have size V+1, start at 0, are non-decreasing, and end at
  /// the edge count; every target/source id is < V; `out_weights` is
  /// either empty (unweighted) or parallel to `out_targets` with at
  /// least one weight != 1.0f; the in arrays describe exactly the
  /// reverse of the out arrays. Invariants are checked with assert()
  /// in debug builds only — this is not an input-validation API.
  static Graph FromCsr(std::vector<uint64_t> out_offsets,
                       std::vector<VertexId> out_targets,
                       std::vector<float> out_weights,
                       std::vector<uint64_t> in_offsets,
                       std::vector<VertexId> in_sources);

  uint64_t num_vertices() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  uint64_t num_edges() const { return out_targets_.size(); }

  /// True when any edge carries a weight != 1.0.
  bool is_weighted() const { return is_weighted_; }

  uint64_t out_degree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  uint64_t in_degree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Targets of v's outgoing edges (with multiplicity).
  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// Weights parallel to out_neighbors(v). Valid only if is_weighted().
  std::span<const float> out_weights(VertexId v) const {
    return {out_weights_.data() + out_offsets_[v],
            out_weights_.data() + out_offsets_[v + 1]};
  }

  /// Sources of v's incoming edges (with multiplicity).
  std::span<const VertexId> in_neighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// Whole-array views of the CSR structure, for code that walks or
  /// re-assembles adjacency wholesale (transforms, serialization) rather
  /// than per vertex.
  std::span<const uint64_t> out_offsets() const { return out_offsets_; }
  std::span<const VertexId> out_targets() const { return out_targets_; }
  std::span<const float> out_weights() const { return out_weights_; }
  std::span<const uint64_t> in_offsets() const { return in_offsets_; }
  std::span<const VertexId> in_sources() const { return in_sources_; }

  /// Materializes the edge list (in CSR order). O(E).
  std::vector<Edge> ToEdgeList() const;

  /// Total bytes of the CSR arrays; used by the simulated memory model to
  /// account for the in-memory input graph (Giraph's "read phase" loads the
  /// graph into worker memory).
  uint64_t MemoryFootprintBytes() const;

  /// Stable 64-bit content hash of the graph structure (vertex count, out
  /// CSR arrays, weights), independent of how the Graph was constructed.
  /// Identical structure always hashes equal; distinct structures collide
  /// only with 64-bit-hash probability (FNV-1a is not cryptographic —
  /// callers building cache keys on it should also key on |V|/|E|, as
  /// pipeline::SampleKey does). Never returns 0.
  ///
  /// Memoized: the O(V + E) scan runs once per Graph instance (copies
  /// inherit the cached value) and the result is served from a cache
  /// thereafter, so hot cache-key paths (pipeline::SampleKey per
  /// PredictionService request) pay a single atomic load. Thread-safe;
  /// concurrent first calls may redundantly compute the same value.
  uint64_t Fingerprint() const;

  /// Number of full-CSR fingerprint scans performed process-wide since
  /// start. Test-only observability for the memoization contract.
  static uint64_t FingerprintComputationsForTest();

  /// Human-readable one-line summary, e.g. "Graph(|V|=100000, |E|=854301)".
  std::string ToString() const;

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> out_offsets_;  // size V+1
  std::vector<VertexId> out_targets_;  // size E
  std::vector<float> out_weights_;     // size E iff weighted, else empty
  std::vector<uint64_t> in_offsets_;   // size V+1
  std::vector<VertexId> in_sources_;   // size E
  bool is_weighted_ = false;

  // 0 = not yet computed (Fingerprint() itself never yields 0).
  mutable std::atomic<uint64_t> fingerprint_cache_{0};
};

/// \brief Incremental graph construction.
///
/// Usage:
///   GraphBuilder b(num_vertices);
///   b.AddEdge(0, 1);
///   PREDICT_ASSIGN_OR_RETURN(Graph g, b.Build());
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Appends a directed edge. Out-of-range endpoints are reported by Build.
  void AddEdge(VertexId src, VertexId dst, float weight = 1.0f) {
    edges_.push_back({src, dst, weight});
  }

  /// Appends both (src,dst) and (dst,src); convenience for undirected input.
  void AddUndirectedEdge(VertexId src, VertexId dst, float weight = 1.0f) {
    AddEdge(src, dst, weight);
    AddEdge(dst, src, weight);
  }

  /// Appends a whole batch; adopts the vector (no copy) when the builder
  /// holds no pending edges yet.
  void AddEdges(std::vector<Edge> edges) {
    if (edges_.empty()) {
      edges_ = std::move(edges);
    } else {
      edges_.insert(edges_.end(), edges.begin(), edges.end());
    }
  }

  /// Pre-sizes the pending edge list for `count` further AddEdge calls.
  void ReserveEdges(uint64_t count) { edges_.reserve(edges_.size() + count); }

  /// Drop self-loops at Build time (default keeps them).
  void set_drop_self_loops(bool drop) { drop_self_loops_ = drop; }

  /// Deduplicate parallel edges at Build time, keeping the first weight.
  void set_dedup_parallel_edges(bool dedup) { dedup_parallel_edges_ = dedup; }

  uint64_t num_pending_edges() const { return edges_.size(); }

  /// Validates and assembles the CSR structure. The builder is consumed.
  Result<Graph> Build();

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
  bool drop_self_loops_ = false;
  bool dedup_parallel_edges_ = false;
};

}  // namespace predict

#endif  // PREDICT_GRAPH_GRAPH_H_
