// Evolving graphs: a delta overlay over the immutable CSR.
//
// PREDIcT's pipeline assumes a frozen input graph, but production graphs
// churn between predictions. EvolvingGraph makes that churn cheap: edge
// insert/delete batches accumulate in a per-vertex sorted overlay on top
// of an immutable canonical CSR (the "base"), a merged-view iterator
// serves adjacency that algorithms and transforms consume without
// compaction, and the overlay is compacted into a fresh CSR once it
// crosses a size threshold.
//
// Versioned fingerprints. Every version of the edge set has a stable
// 64-bit identity maintained incrementally: the chain is anchored at the
// base CSR's order-independent Graph::EdgeSetHash() and each mutation
// adds (insert) or subtracts (delete) the edge's Graph::EdgeHash — a
// commutative multiset hash, so ANY interleaving of batches and
// compactions reaching the same edge set reaches the same
// VersionFingerprint (and an insert cancelled by a delete restores the
// previous version's identity exactly). Compaction preserves the value;
// in debug builds it is re-derived from the fresh CSR and asserted.
//
// Canonical adjacency. The edge set alone must determine the compacted
// CSR bytes (otherwise two routes to the same version could feed
// bit-different adjacency orders to the deterministic algorithms), so
// EvolvingGraph keeps every vertex's out-list sorted by (dst, weight
// bits). The base is normalized on construction (Canonicalize), merges
// preserve the order, and compaction emits it — a cold
// Canonicalize(Graph::FromEdges(mutated edge list)) is byte-identical
// to the evolved graph's compacted CSR.
//
// Failure semantics: Apply validates the whole batch before mutating
// anything (unknown vertex, delete of a non-existent edge, duplicate
// removal — each an InvalidArgument carrying the offending (src, dst));
// compaction builds the fresh CSR off to the side and installs it only
// at the very end, so a fault inside compaction (fail point
// "graph.compact") leaves the overlay and the current version fully
// intact — callers retry, and caches keyed on the version fingerprint
// can never observe a half-compacted graph.

#ifndef PREDICT_GRAPH_DELTA_H_
#define PREDICT_GRAPH_DELTA_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/transforms.h"

namespace predict {

/// One edge mutation in a delta batch.
struct EdgeDelta {
  enum class Op : uint8_t {
    kInsert = 0,  ///< add (src, dst, weight)
    kDelete = 1,  ///< remove one edge matching (src, dst)
  };

  Op op = Op::kInsert;
  VertexId src = 0;
  VertexId dst = 0;
  /// Inserts only; deletes match on (src, dst) regardless of weight.
  float weight = 1.0f;

  static EdgeDelta Insert(VertexId src, VertexId dst, float weight = 1.0f) {
    return {Op::kInsert, src, dst, weight};
  }
  static EdgeDelta Delete(VertexId src, VertexId dst) {
    return {Op::kDelete, src, dst, 1.0f};
  }

  bool operator==(const EdgeDelta& other) const = default;
};

using EdgeDeltaBatch = std::vector<EdgeDelta>;

/// \brief A mutable graph: an immutable canonical base CSR plus a
/// per-vertex sorted add/remove overlay.
///
/// Not thread-safe for mutation; the merged-view readers are const and
/// may run concurrently with each other (like Graph).
class EvolvingGraph {
 public:
  /// Adopts `base`, normalizing it to canonical (sorted) adjacency and
  /// plain (uncompressed) edge storage — the mutation-friendly
  /// representation. O(V + E log deg).
  explicit EvolvingGraph(Graph base);

  /// |V| (fixed: delta batches mutate edges only).
  uint64_t num_vertices() const { return base_.num_vertices(); }
  /// Logical |E| of the current version (base minus removes plus adds).
  uint64_t num_edges() const {
    return static_cast<uint64_t>(
        static_cast<int64_t>(base_.num_edges()) + edge_count_delta_);
  }
  /// Pending overlay entries (adds + removes not yet compacted).
  uint64_t overlay_edges() const { return overlay_entries_; }
  bool dirty() const { return overlay_entries_ != 0; }

  /// The current version's stable identity (see file comment). Never 0;
  /// equals Current()->EdgeSetHash() at all times.
  uint64_t VersionFingerprint() const { return version_fp_ == 0 ? 1 : version_fp_; }

  /// Validates and applies a mutation batch. On a validation error
  /// (InvalidArgument carrying the offending (src, dst)) the graph is
  /// unchanged. When the grown overlay crosses the compaction threshold
  /// the batch is folded into a fresh base CSR; a fault injected there
  /// ("graph.compact") is returned as the (annotated) error with the
  /// batch fully applied and the overlay intact — retry via Compact().
  Status Apply(const EdgeDeltaBatch& batch);

  /// Merged-view out-degree of `v` in the current version.
  uint64_t out_degree(VertexId v) const;

  /// Invokes fn(dst, weight) for each of v's current out-edges in
  /// canonical (dst, weight-bits) order, merging the base row with the
  /// overlay without materializing anything.
  template <typename Fn>
  void ForEachOutEdge(VertexId v, Fn&& fn) const;

  /// Invokes fn(dst) for each current out-edge of v in canonical order —
  /// the same shape algorithms use on a plain Graph.
  template <typename Fn>
  void ForEachOutNeighbor(VertexId v, Fn&& fn) const {
    ForEachOutEdge(v, [&](VertexId dst, float) { fn(dst); });
  }

  /// v's current out-targets decoded into `scratch` (merged view); same
  /// contract as Graph::OutNeighborsInto.
  std::span<const VertexId> OutNeighborsInto(
      VertexId v, std::vector<VertexId>* scratch) const;

  /// Folds the overlay into a fresh canonical CSR. Strong exception
  /// safety: on failure (fail point "graph.compact") nothing changes.
  Status Compact();

  /// The compacted current version (compacting first if dirty). The
  /// returned pointer is valid until the next Apply/Compact.
  Result<const Graph*> Current();

  /// The last compacted CSR (ignores any pending overlay).
  const Graph& base() const { return base_; }

  /// Auto-compaction threshold: Apply compacts once overlay_edges()
  /// exceeds `fraction` of the base edge count (clamped to a small
  /// floor so tiny graphs still batch). Default 0.25.
  void set_compaction_threshold(double fraction) {
    compaction_threshold_ = fraction;
  }

  /// Normalizes a graph to the canonical form EvolvingGraph uses: plain
  /// edge storage, every out-list sorted by (dst, weight bits), in-CSR
  /// rebuilt to match. Two graphs with equal edge multisets canonicalize
  /// to byte-identical CSRs (and hence equal Graph::Fingerprint()s).
  static Graph Canonicalize(Graph g);

 private:
  struct VertexDelta {
    /// Pending inserts from this vertex, sorted by (dst, weight bits).
    std::vector<std::pair<VertexId, float>> adds;
    /// Pending deletes of base-row occurrences: sorted dst multiset
    /// (deletes that cancel a pending add never land here).
    std::vector<VertexId> removes;
  };

  /// Occurrences of dst surviving in v's base row = multiplicity in the
  /// base minus pending removes.
  uint64_t SurvivingBaseCount(VertexId v, VertexId dst) const;

  Graph base_;  // canonical, plain edges
  std::unordered_map<VertexId, VertexDelta> overlay_;
  uint64_t overlay_entries_ = 0;
  int64_t edge_count_delta_ = 0;
  uint64_t version_fp_ = 0;
  double compaction_threshold_ = 0.25;
};

template <typename Fn>
void EvolvingGraph::ForEachOutEdge(VertexId v, Fn&& fn) const {
  const auto targets = base_.out_neighbors(v);
  const std::span<const float> weights =
      base_.is_weighted() ? base_.out_weights(v) : std::span<const float>{};
  const auto weight_at = [&](size_t i) {
    return weights.empty() ? 1.0f : weights[i];
  };
  const auto it = overlay_.find(v);
  if (it == overlay_.end()) {
    for (size_t i = 0; i < targets.size(); ++i) fn(targets[i], weight_at(i));
    return;
  }
  const VertexDelta& delta = it->second;
  // Merge the base row (minus removed occurrences) with the adds; both
  // sides are sorted by (dst, weight bits), ties emit base first.
  size_t bi = 0;
  size_t ai = 0;
  size_t ri = 0;  // cursor into the sorted remove multiset
  while (bi < targets.size() || ai < delta.adds.size()) {
    // Skip base occurrences consumed by pending removes: the k removes
    // recorded for a dst consume its first k base occurrences.
    if (bi < targets.size() && ri < delta.removes.size() &&
        delta.removes[ri] == targets[bi]) {
      ++bi;
      ++ri;
      continue;
    }
    if (ai >= delta.adds.size()) {
      fn(targets[bi], weight_at(bi));
      ++bi;
      continue;
    }
    if (bi >= targets.size()) {
      fn(delta.adds[ai].first, delta.adds[ai].second);
      ++ai;
      continue;
    }
    const VertexId bd = targets[bi];
    const VertexId ad = delta.adds[ai].first;
    bool base_first;
    if (bd != ad) {
      base_first = bd < ad;
    } else {
      uint32_t bw;
      uint32_t aw;
      const float bwf = weight_at(bi);
      std::memcpy(&bw, &bwf, sizeof(bw));
      std::memcpy(&aw, &delta.adds[ai].second, sizeof(aw));
      base_first = bw <= aw;
    }
    if (base_first) {
      fn(targets[bi], weight_at(bi));
      ++bi;
    } else {
      fn(delta.adds[ai].first, delta.adds[ai].second);
      ++ai;
    }
  }
}

/// Induced subgraph of the evolving graph's *current* version, computed
/// straight off the merged view (no compaction): the transform
/// counterpart of the merged-view iterator. Output is byte-identical to
/// InducedSubgraph(*evolving.Current(), vertices).
Result<SubgraphResult> InducedSubgraph(const EvolvingGraph& graph,
                                       const std::vector<VertexId>& vertices);

/// Vertices whose out-row (targets or weights) differs between two
/// same-|V| graphs, ascending — the dirty set incremental re-sampling
/// re-walks from. O(V + E) span compares; graphs with different |V|
/// report every vertex of the larger one.
std::vector<VertexId> DirtyOutVertices(const Graph& before,
                                       const Graph& after);

/// Deterministic seeded churn: deletes `fraction/2` of the existing
/// edges and inserts an equal count of fresh (absent) edges, all drawn
/// from Rng(seed). The batch is always valid for Apply on `graph`.
struct ChurnOptions {
  /// Total mutations as a fraction of |E| (half deletes, half inserts).
  double fraction = 0.01;
  uint64_t seed = 1;
  /// Optional size-|V| byte mask: vertices marked nonzero are left
  /// untouched (no incident edge deleted, no new edge attached). Models
  /// periphery churn around a stable core; empty = unrestricted.
  std::span<const uint8_t> avoid = {};
};

Result<EdgeDeltaBatch> GenerateChurn(const Graph& graph,
                                     const ChurnOptions& options);

}  // namespace predict

#endif  // PREDICT_GRAPH_DELTA_H_
