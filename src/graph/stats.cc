#include "graph/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "bsp/thread_pool.h"
#include "common/rng.h"

namespace predict {

namespace {

// Runs fn(i) for i in [0, count): on the pool when one with worker
// threads is supplied, inline otherwise. Callers own determinism — fn
// must write only to slot i so invocation order cannot matter.
void ForEachIndex(bsp::ThreadPool* pool, uint64_t count,
                  const std::function<void(uint64_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 0) {
    pool->ParallelFor(count, fn);
  } else {
    for (uint64_t i = 0; i < count; ++i) fn(i);
  }
}

DegreeStats StatsFromSequence(std::vector<double> degrees) {
  DegreeStats stats;
  if (degrees.empty()) return stats;
  std::sort(degrees.begin(), degrees.end());
  const double n = static_cast<double>(degrees.size());
  stats.mean = std::accumulate(degrees.begin(), degrees.end(), 0.0) / n;
  stats.max = degrees.back();
  auto quantile = [&](double q) {
    const size_t idx = static_cast<size_t>(q * (degrees.size() - 1));
    return degrees[idx];
  };
  stats.p50 = quantile(0.5);
  stats.p90 = quantile(0.9);
  stats.p99 = quantile(0.99);
  // Gini coefficient over the sorted sequence.
  double weighted = 0.0, total = 0.0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * degrees[i];
    total += degrees[i];
  }
  if (total > 0.0) {
    stats.gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return stats;
}

// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(uint64_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

DegreeStats ComputeOutDegreeStats(const Graph& graph) {
  return StatsFromSequence(OutDegreeSequence(graph));
}

DegreeStats ComputeInDegreeStats(const Graph& graph) {
  return StatsFromSequence(InDegreeSequence(graph));
}

double MeanInOutDegreeRatio(const Graph& graph) {
  const uint64_t n = graph.num_vertices();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    sum += static_cast<double>(graph.in_degree(v)) /
           (static_cast<double>(graph.out_degree(v)) + 1.0);
  }
  return sum / static_cast<double>(n);
}

std::vector<VertexId> WeaklyConnectedComponents(const Graph& graph) {
  const uint64_t n = graph.num_vertices();
  UnionFind uf(n);
  for (VertexId v = 0; v < n; ++v) {
    graph.ForEachOutNeighbor(v, [&](VertexId u) { uf.Union(v, u); });
  }
  std::vector<VertexId> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = uf.Find(v);
  return labels;
}

uint64_t CountWeaklyConnectedComponents(const Graph& graph) {
  const auto labels = WeaklyConnectedComponents(graph);
  uint64_t count = 0;
  for (VertexId v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

double LargestComponentFraction(const Graph& graph) {
  const uint64_t n = graph.num_vertices();
  if (n == 0) return 0.0;
  const auto labels = WeaklyConnectedComponents(graph);
  std::vector<uint64_t> sizes(n, 0);
  for (const VertexId label : labels) sizes[label]++;
  const uint64_t largest = *std::max_element(sizes.begin(), sizes.end());
  return static_cast<double>(largest) / static_cast<double>(n);
}

double EffectiveDiameter(const Graph& graph, double quantile,
                         uint32_t num_sources, uint64_t seed,
                         bsp::ThreadPool* pool) {
  const uint64_t n = graph.num_vertices();
  if (n == 0) return 0.0;
  Rng rng(seed);
  const uint64_t sources = std::min<uint64_t>(num_sources, n);
  const auto picks = Rng(rng).SampleWithoutReplacement(n, sources);

  // Merged undirected adjacency, built once and shared read-only by
  // every source: one contiguous neighbor range per vertex instead of
  // two separate span walks per BFS step.
  std::vector<uint64_t> und_offsets(n + 1, 0);
  for (uint64_t v = 0; v < n; ++v) {
    und_offsets[v + 1] = und_offsets[v] + graph.out_degree(v) +
                         graph.in_degree(static_cast<VertexId>(v));
  }
  std::vector<VertexId> und_targets(und_offsets[n]);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t slot = und_offsets[v];
    const auto vid = static_cast<VertexId>(v);
    graph.ForEachOutNeighbor(vid, [&](VertexId u) { und_targets[slot++] = u; });
    graph.ForEachInSource(vid, [&](VertexId u) { und_targets[slot++] = u; });
  }

  // One exact undirected BFS per source, fanned out across the pool.
  //
  // The BFS is level-synchronous and direction-optimizing (Beamer et
  // al.): bit-per-vertex level sets, top-down expansion for thin
  // frontiers, bottom-up ("which unvisited vertex has a parent in the
  // current level?") for the heavy middle levels of these small-diameter
  // graphs. Both directions compute the same level sets by definition —
  // a vertex is at level L iff it is unvisited after L-1 levels and
  // adjacent to level L-1 — and the hop histogram needs only the level
  // *sizes*, so this produces exactly the per-vertex-distance histogram
  // the original queue BFS did. Each BFS owns slot i of per_source;
  // histograms are merged in source order afterwards (and hop counts are
  // integers), so the final histogram is also independent of which
  // thread ran which source.
  std::vector<std::vector<uint64_t>> per_source(picks.size());
  const uint64_t words = (n + 63) / 64;
  const uint64_t last_word_mask =
      (n % 64) == 0 ? ~0ULL : (1ULL << (n % 64)) - 1;
  const uint64_t und_edges = und_offsets[n];
  ForEachIndex(pool, picks.size(), [&](uint64_t i) {
    // Per-invocation scratch: three bit-per-vertex sets plus the
    // frontier. Allocating per source (not thread_local) keeps memory
    // bounded by the call instead of pinning largest-graph-sized
    // buffers to pool threads for the process lifetime; the cost is
    // noise next to the O(E) traversal.
    std::vector<uint64_t> visited(words, 0);
    std::vector<uint64_t> current(words, 0);  // this level's set
    std::vector<uint64_t> fresh(words, 0);    // next level's set
    std::vector<VertexId> frontier;
    std::vector<uint64_t>& histogram = per_source[i];

    const VertexId src = static_cast<VertexId>(picks[i]);
    visited[src >> 6] |= 1ULL << (src & 63);
    current[src >> 6] |= 1ULL << (src & 63);
    frontier.assign(1, src);
    uint64_t frontier_degree = und_offsets[src + 1] - und_offsets[src];
    uint32_t level = 0;
    while (!frontier.empty()) {
      ++level;
      uint64_t found = 0;
      if (frontier_degree * 10 > und_edges) {
        // Bottom-up: scan unvisited vertices for a neighbor in the
        // current level; first hit settles the vertex.
        for (uint64_t w = 0; w < words; ++w) {
          uint64_t unvisited = ~visited[w];
          if (w == words - 1) unvisited &= last_word_mask;
          while (unvisited != 0) {
            const int b = std::countr_zero(unvisited);
            unvisited &= unvisited - 1;
            const auto u = static_cast<VertexId>((w << 6) + b);
            const uint64_t end = und_offsets[u + 1];
            for (uint64_t s = und_offsets[u]; s < end; ++s) {
              const VertexId p = und_targets[s];
              if (current[p >> 6] & (1ULL << (p & 63))) {
                visited[w] |= 1ULL << b;
                fresh[w] |= 1ULL << b;
                ++found;
                break;
              }
            }
          }
        }
      } else {
        // Top-down: expand the current level's adjacency.
        for (const VertexId v : frontier) {
          const uint64_t end = und_offsets[v + 1];
          for (uint64_t s = und_offsets[v]; s < end; ++s) {
            const VertexId u = und_targets[s];
            const uint64_t mask = 1ULL << (u & 63);
            if ((visited[u >> 6] & mask) == 0) {
              visited[u >> 6] |= mask;
              fresh[u >> 6] |= mask;
              ++found;
            }
          }
        }
      }
      if (found != 0) {
        histogram.resize(level + 1, 0);
        histogram[level] = found;
      }
      // Rebuild the frontier from the fresh bits: ascending vertex ids,
      // so the next top-down level walks und_targets nearly sequentially
      // instead of in discovery order.
      frontier.clear();
      frontier_degree = 0;
      for (uint64_t w = 0; w < words; ++w) {
        uint64_t bits = fresh[w];
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          const auto u = static_cast<VertexId>((w << 6) + b);
          frontier.push_back(u);
          frontier_degree += und_offsets[u + 1] - und_offsets[u];
        }
      }
      current.swap(fresh);
      std::fill(fresh.begin(), fresh.end(), 0);
    }
  });

  // Deterministic merge in source order.
  std::vector<uint64_t> hop_histogram;
  for (const std::vector<uint64_t>& histogram : per_source) {
    if (histogram.size() > hop_histogram.size()) {
      hop_histogram.resize(histogram.size(), 0);
    }
    for (size_t h = 0; h < histogram.size(); ++h) {
      hop_histogram[h] += histogram[h];
    }
  }

  uint64_t total_pairs = 0;
  for (const uint64_t c : hop_histogram) total_pairs += c;
  if (total_pairs == 0) return 0.0;

  const double target = quantile * static_cast<double>(total_pairs);
  uint64_t cumulative = 0;
  for (size_t h = 1; h < hop_histogram.size(); ++h) {
    const uint64_t next = cumulative + hop_histogram[h];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation between h-1 and h as in Leskovec & Faloutsos.
      const double need = target - static_cast<double>(cumulative);
      const double frac = need / static_cast<double>(hop_histogram[h]);
      return static_cast<double>(h - 1) + frac;
    }
    cumulative = next;
  }
  return static_cast<double>(hop_histogram.size() - 1);
}

double AverageClusteringCoefficient(const Graph& graph, uint32_t num_samples,
                                    uint64_t seed, bsp::ThreadPool* pool) {
  const uint64_t n = graph.num_vertices();
  if (n == 0) return 0.0;
  Rng rng(seed);
  std::vector<uint64_t> picks;
  if (num_samples >= n) {
    picks.resize(n);
    std::iota(picks.begin(), picks.end(), 0);
  } else {
    picks = rng.SampleWithoutReplacement(n, num_samples);
  }
  if (picks.empty()) return 0.0;

  // Every neighborhood consulted below belongs to a pick or to one of a
  // pick's neighbors ("touched" vertices). Mark them, then build each
  // touched vertex's sorted unique undirected neighborhood exactly once
  // — the former code rebuilt-and-sorted neighborhood(u) from scratch
  // for every neighbor u of every pick, paying O(deg(u) log deg(u)) per
  // appearance instead of per vertex. touch_slot maps a vertex to its
  // memo slot + 1 (0 = untouched), so the memo array is sized by the
  // touched count, not |V|.
  std::vector<uint32_t> touch_slot(n, 0);
  std::vector<VertexId> touched_list;
  const auto touch = [&](VertexId u) {
    if (touch_slot[u] == 0) {
      touched_list.push_back(u);
      touch_slot[u] = static_cast<uint32_t>(touched_list.size());
    }
  };
  for (const uint64_t v64 : picks) {
    const VertexId v = static_cast<VertexId>(v64);
    touch(v);
    graph.ForEachOutNeighbor(v, touch);
    graph.ForEachInSource(v, touch);
  }

  std::vector<std::vector<VertexId>> neighborhoods(touched_list.size());
  ForEachIndex(pool, touched_list.size(), [&](uint64_t i) {
    const VertexId v = touched_list[i];
    std::vector<VertexId>& nbrs = neighborhoods[i];
    graph.ForEachOutNeighbor(v, [&](VertexId u) {
      if (u != v) nbrs.push_back(u);
    });
    graph.ForEachInSource(v, [&](VertexId u) {
      if (u != v) nbrs.push_back(u);
    });
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  });

  // Per-pick coefficients, each writing only its own slot; the reduction
  // below walks pick order, so thread scheduling cannot reorder the
  // floating-point sum.
  std::vector<double> coefficient(picks.size(), 0.0);
  std::vector<uint8_t> has_coefficient(picks.size(), 0);
  ForEachIndex(pool, picks.size(), [&](uint64_t p) {
    const VertexId v = static_cast<VertexId>(picks[p]);
    const std::vector<VertexId>& nbrs = neighborhoods[touch_slot[v] - 1];
    const size_t k = nbrs.size();
    if (k < 2) return;  // convention: cc=0 for degree<2 vertices
    uint64_t closed = 0;
    for (const VertexId u : nbrs) {
      const std::vector<VertexId>& u_nbrs = neighborhoods[touch_slot[u] - 1];
      // Count |nbrs ∩ u_nbrs| via merge.
      size_t i = 0, j = 0;
      while (i < nbrs.size() && j < u_nbrs.size()) {
        if (nbrs[i] < u_nbrs[j]) {
          ++i;
        } else if (nbrs[i] > u_nbrs[j]) {
          ++j;
        } else {
          ++closed;
          ++i;
          ++j;
        }
      }
    }
    coefficient[p] = static_cast<double>(closed) /
                     (static_cast<double>(k) * static_cast<double>(k - 1));
    has_coefficient[p] = 1;
  });

  // Deterministic reduction in pick order, adding exactly the terms the
  // sequential implementation added (degree<2 picks count toward the
  // mean but contribute no addend).
  double sum = 0.0;
  for (size_t p = 0; p < picks.size(); ++p) {
    if (has_coefficient[p]) sum += coefficient[p];
  }
  return sum / static_cast<double>(picks.size());
}

double KolmogorovSmirnovD(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

std::vector<double> OutDegreeSequence(const Graph& graph) {
  std::vector<double> seq(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    seq[v] = static_cast<double>(graph.out_degree(v));
  }
  return seq;
}

std::vector<double> InDegreeSequence(const Graph& graph) {
  std::vector<double> seq(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    seq[v] = static_cast<double>(graph.in_degree(v));
  }
  return seq;
}

PowerLawFit FitOutDegreePowerLaw(const Graph& graph, uint64_t min_degree) {
  PowerLawFit fit;
  // Build ccdf points (k, P(deg >= k)) for k >= min_degree.
  std::vector<uint64_t> degrees;
  degrees.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    degrees.push_back(graph.out_degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  const double n = static_cast<double>(degrees.size());
  if (degrees.empty()) return fit;

  std::vector<double> log_k, log_ccdf;
  uint64_t prev = 0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    const uint64_t k = degrees[i];
    if (k < min_degree || k == prev) continue;
    prev = k;
    const double ccdf = static_cast<double>(degrees.size() - i) / n;
    log_k.push_back(std::log(static_cast<double>(k)));
    log_ccdf.push_back(std::log(ccdf));
  }
  if (log_k.size() < 10) return fit;

  // Simple OLS in log-log space.
  const double m = static_cast<double>(log_k.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < log_k.size(); ++i) {
    sx += log_k[i];
    sy += log_ccdf[i];
    sxx += log_k[i] * log_k[i];
    sxy += log_k[i] * log_ccdf[i];
  }
  const double denom = m * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.exponent = (m * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / m;
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / m;
  for (size_t i = 0; i < log_k.size(); ++i) {
    const double pred = fit.exponent * log_k[i] + intercept;
    ss_res += (log_ccdf[i] - pred) * (log_ccdf[i] - pred);
    ss_tot += (log_ccdf[i] - mean_y) * (log_ccdf[i] - mean_y);
  }
  fit.r_squared = ss_tot <= 0.0 ? 0.0 : 1.0 - ss_res / ss_tot;

  // Quadratic refit (centered to keep the normal equations conditioned):
  // log_ccdf ~ a + b*z + c*z^2 with z = log_k - mean(log_k). The
  // curvature c separates power law (c ~ 0) from log-normal (c << 0).
  {
    const double mean_x = sx / m;
    double s1 = m, sz = 0, sz2 = 0, sz3 = 0, sz4 = 0;
    double ty = 0, tzy = 0, tz2y = 0;
    for (size_t i = 0; i < log_k.size(); ++i) {
      const double z = log_k[i] - mean_x;
      const double z2 = z * z;
      sz += z;
      sz2 += z2;
      sz3 += z2 * z;
      sz4 += z2 * z2;
      ty += log_ccdf[i];
      tzy += z * log_ccdf[i];
      tz2y += z2 * log_ccdf[i];
    }
    // Solve the 3x3 normal system with Gaussian elimination.
    double a[3][4] = {{s1, sz, sz2, ty},
                      {sz, sz2, sz3, tzy},
                      {sz2, sz3, sz4, tz2y}};
    bool singular = false;
    for (int col = 0; col < 3 && !singular; ++col) {
      int pivot = col;
      for (int row = col + 1; row < 3; ++row) {
        if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
      }
      if (std::abs(a[pivot][col]) < 1e-12) {
        singular = true;
        break;
      }
      for (int k = 0; k < 4; ++k) std::swap(a[col][k], a[pivot][k]);
      for (int row = col + 1; row < 3; ++row) {
        const double factor = a[row][col] / a[col][col];
        for (int k = col; k < 4; ++k) a[row][k] -= factor * a[col][k];
      }
    }
    if (!singular) {
      // Back-substitute only the quadratic coefficient (last unknown).
      fit.curvature = a[2][3] / a[2][2];
    }
  }

  fit.plausible = fit.r_squared >= 0.7 && fit.exponent < -0.5 &&
                  fit.curvature > -0.35;
  return fit;
}

std::string DescribeGraph(const Graph& graph) {
  const DegreeStats out = ComputeOutDegreeStats(graph);
  const PowerLawFit fit = FitOutDegreePowerLaw(graph);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "|V|=%llu |E|=%llu avg_out=%.2f max_out=%.0f gini=%.2f "
                "powerlaw(R2=%.2f, a=%.2f) lcc_frac=%.3f",
                static_cast<unsigned long long>(graph.num_vertices()),
                static_cast<unsigned long long>(graph.num_edges()), out.mean,
                out.max, out.gini, fit.r_squared, fit.exponent,
                LargestComponentFraction(graph));
  return buf;
}

}  // namespace predict
