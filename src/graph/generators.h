// Synthetic graph generators.
//
// The paper evaluates on four real graphs (LiveJournal, Wikipedia,
// Twitter, UK-2002) that are not redistributable here. These generators
// produce laptop-scale graphs with the *shape* properties the paper's
// findings depend on:
//   * scale-free (power-law out-degree) vs. not — the paper attributes
//     LiveJournal's poor predictability to a non-power-law out-degree
//     distribution (§5.1, footnote 7);
//   * density — Twitter is ~9x denser per vertex than the web graphs,
//     which drives the §5.4 overhead observation;
//   * connectivity and a small effective diameter.
// See datasets/datasets.h for the four named stand-ins.

#ifndef PREDICT_GRAPH_GENERATORS_H_
#define PREDICT_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace predict {

/// \brief Directed preferential attachment (Bollobás et al. scale-free
/// digraph flavor).
///
/// Each new vertex attaches `out_degree` edges to existing vertices chosen
/// proportionally to (in_degree + 1). Produces a power-law in-degree tail
/// and, via the `reciprocal_p` back-edge probability, correlated in/out
/// degrees as in social graphs.
struct PreferentialAttachmentOptions {
  VertexId num_vertices = 10000;
  uint32_t out_degree = 8;       ///< edges added per new vertex
  double reciprocal_p = 0.3;     ///< probability of adding the reverse edge
  uint64_t seed = 1;
};
Result<Graph> GeneratePreferentialAttachment(
    const PreferentialAttachmentOptions& options);

/// \brief Copy-model web graph (Kumar et al.): a new page either copies
/// the out-links of a random existing page (probability `copy_p`) or
/// links uniformly at random. Yields power-law in-degree, high clustering
/// and the hub-dominated structure of web crawls like UK-2002.
struct CopyModelOptions {
  VertexId num_vertices = 10000;
  uint32_t out_degree = 16;  ///< fixed out-degree when zipf_alpha == 0
  double copy_p = 0.7;
  /// When > 1, per-page out-degrees are drawn from a Zipf distribution
  /// with this exponent instead of being fixed (real web crawls have
  /// power-law out-degree too).
  double zipf_alpha = 0.0;
  uint32_t min_out_degree = 4;   ///< Zipf lower bound
  uint32_t max_out_degree = 2000;  ///< Zipf upper bound
  uint64_t seed = 1;
};
Result<Graph> GenerateCopyModelWebGraph(const CopyModelOptions& options);

/// \brief Social graph with log-normal (NOT power-law) out-degree.
///
/// Matches the paper's description of LiveJournal: connected and social,
/// but with an out-degree distribution that does not follow a power law,
/// which makes degree-biased sampling less representative. Targets are
/// chosen with mild preferential attachment so in-degree stays skewed.
struct LogNormalDegreeOptions {
  VertexId num_vertices = 10000;
  double log_mean = 2.2;    ///< mean of log(out_degree)
  double log_stddev = 0.8;  ///< stddev of log(out_degree)
  double reciprocal_p = 0.5;
  uint64_t seed = 1;
};
Result<Graph> GenerateLogNormalDegreeGraph(const LogNormalDegreeOptions& options);

/// \brief Erdős–Rényi G(n, m): m uniform random directed edges.
/// Used in tests as the canonical non-scale-free control.
struct ErdosRenyiOptions {
  VertexId num_vertices = 10000;
  uint64_t num_edges = 80000;
  uint64_t seed = 1;
};
Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options);

/// \brief R-MAT / Kronecker-style recursive generator (Chakrabarti et
/// al.), the standard scale-free benchmark generator (Graph500).
struct RmatOptions {
  uint32_t scale = 14;          ///< 2^scale vertices
  uint64_t num_edges = 131072;  ///< edges to generate
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1-a-b-c
  uint64_t seed = 1;
};
Result<Graph> GenerateRmat(const RmatOptions& options);

/// \brief Directed chain 0 -> 1 -> ... -> n-1: the paper's example of a
/// "degenerate" structure where sampling cannot preserve key properties
/// (§3.5 Limitations). Used to test PREDIcT's failure modes.
Result<Graph> GenerateChain(VertexId num_vertices);

/// \brief Complete directed graph on n vertices (no self loops); small-n
/// testing utility.
Result<Graph> GenerateComplete(VertexId num_vertices);

/// \brief Star: vertex 0 points to all others (and optionally back).
Result<Graph> GenerateStar(VertexId num_vertices, bool bidirectional = false);

}  // namespace predict

#endif  // PREDICT_GRAPH_GENERATORS_H_
