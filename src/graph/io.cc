#include "graph/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace predict {

namespace {

Result<Graph> ParseEdgeLines(std::istream& in, VertexId num_vertices) {
  std::vector<Edge> edges;
  VertexId max_id = 0;
  bool saw_vertex = false;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    uint64_t src = 0, dst = 0;
    double weight = 1.0;
    const int n = std::sscanf(std::string(trimmed).c_str(), "%llu %llu %lf",
                              reinterpret_cast<unsigned long long*>(&src),
                              reinterpret_cast<unsigned long long*>(&dst),
                              &weight);
    if (n < 2) {
      return Status::IOError("malformed edge at line " + std::to_string(line_no) +
                             ": '" + std::string(trimmed) + "'");
    }
    if (src > 0xFFFFFFFFULL || dst > 0xFFFFFFFFULL) {
      return Status::OutOfRange("vertex id exceeds 32 bits at line " +
                                std::to_string(line_no));
    }
    edges.push_back({static_cast<VertexId>(src), static_cast<VertexId>(dst),
                     static_cast<float>(n >= 3 ? weight : 1.0)});
    max_id = std::max(max_id, static_cast<VertexId>(std::max(src, dst)));
    saw_vertex = true;
  }
  if (num_vertices == 0) num_vertices = saw_vertex ? max_id + 1 : 0;
  return Graph::FromEdges(num_vertices, std::move(edges));
}

}  // namespace

Result<Graph> ReadEdgeListFile(const std::string& path, VertexId num_vertices) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "': " + std::strerror(errno));
  }
  return ParseEdgeLines(in, num_vertices);
}

Result<Graph> ParseEdgeList(const std::string& text, VertexId num_vertices) {
  std::istringstream in(text);
  return ParseEdgeLines(in, num_vertices);
}

namespace {

constexpr char kBinaryMagic[4] = {'P', 'R', 'D', 'G'};
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteBinaryGraphFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing: " +
                           std::strerror(errno));
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  WriteScalar<uint32_t>(out, kBinaryVersion);
  WriteScalar<uint64_t>(out, graph.num_vertices());
  WriteScalar<uint64_t>(out, graph.num_edges());
  WriteScalar<uint8_t>(out, graph.is_weighted() ? 1 : 0);
  std::vector<VertexId> decode;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto targets = graph.OutNeighborsInto(v, &decode);
    for (size_t i = 0; i < targets.size(); ++i) {
      WriteScalar<uint32_t>(out, v);
      WriteScalar<uint32_t>(out, targets[i]);
      if (graph.is_weighted()) {
        WriteScalar<float>(out, graph.out_weights(v)[i]);
      }
    }
  }
  if (!out) {
    return Status::IOError("write failed for '" + path + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<Graph> ReadBinaryGraphFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "': " + std::strerror(errno));
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::IOError("'" + path + "' is not a PRDG binary graph");
  }
  uint32_t version = 0;
  uint64_t num_vertices = 0, num_edges = 0;
  uint8_t weighted = 0;
  if (!ReadScalar(in, &version) || version != kBinaryVersion) {
    return Status::IOError("unsupported PRDG version in '" + path + "'");
  }
  if (!ReadScalar(in, &num_vertices) || !ReadScalar(in, &num_edges) ||
      !ReadScalar(in, &weighted)) {
    return Status::IOError("truncated PRDG header in '" + path + "'");
  }
  if (num_vertices > 0xFFFFFFFFULL) {
    return Status::OutOfRange("vertex count exceeds 32-bit ids");
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t src = 0, dst = 0;
    float weight = 1.0f;
    if (!ReadScalar(in, &src) || !ReadScalar(in, &dst) ||
        (weighted != 0 && !ReadScalar(in, &weight))) {
      return Status::IOError("truncated PRDG edge section in '" + path + "'");
    }
    edges.push_back({src, dst, weight});
  }
  return Graph::FromEdges(static_cast<VertexId>(num_vertices),
                          std::move(edges));
}

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing: " +
                           std::strerror(errno));
  }
  out << "# predict edge list |V|=" << graph.num_vertices()
      << " |E|=" << graph.num_edges() << "\n";
  std::vector<VertexId> decode;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto targets = graph.OutNeighborsInto(v, &decode);
    for (size_t i = 0; i < targets.size(); ++i) {
      out << v << ' ' << targets[i];
      if (graph.is_weighted()) out << ' ' << graph.out_weights(v)[i];
      out << '\n';
    }
  }
  if (!out) {
    return Status::IOError("write failed for '" + path + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace predict
