// Graph statistics used by PREDIcT's sampling-quality analysis.
//
// §3.2.1 of the paper requires the sampling technique to maintain "key
// properties of the sample graph similar or proportional with those of
// the original graph: ... in/out degree proportionality, effective
// diameter, clustering coefficient". This module computes those
// properties plus the Kolmogorov–Smirnov D-statistic that Leskovec &
// Faloutsos (KDD'06) use to score how closely a sample's property
// distributions track the full graph's.

#ifndef PREDICT_GRAPH_STATS_H_
#define PREDICT_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace predict {

namespace bsp {
class ThreadPool;
}  // namespace bsp

/// Summary statistics of a degree sequence.
struct DegreeStats {
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;   ///< median
  double p90 = 0.0;
  double p99 = 0.0;
  double gini = 0.0;  ///< inequality of the degree mass; ~0 uniform, ->1 skewed
};

DegreeStats ComputeOutDegreeStats(const Graph& graph);
DegreeStats ComputeInDegreeStats(const Graph& graph);

/// Mean over vertices of in_degree/(out_degree+1); tracks the paper's
/// "in/out node degree proportionality" sampling requirement.
double MeanInOutDegreeRatio(const Graph& graph);

/// Weakly-connected components via union-find.
/// Returns the component label of each vertex (labels are arbitrary but
/// equal within a component).
std::vector<VertexId> WeaklyConnectedComponents(const Graph& graph);

/// Number of weakly-connected components.
uint64_t CountWeaklyConnectedComponents(const Graph& graph);

/// Fraction of vertices in the largest weakly-connected component;
/// the paper's "connectivity" sampling requirement in one number.
double LargestComponentFraction(const Graph& graph);

/// \brief Effective diameter: the smallest h such that at least `quantile`
/// (default 0.9, per Kang et al. / the paper's §4.1) of connected vertex
/// pairs are within h hops, estimated by exact BFS from `num_sources`
/// sampled sources, treating edges as undirected.
///
/// Deterministic for a fixed seed. Interpolates between integer hop counts
/// as in Leskovec & Faloutsos.
///
/// When `pool` is non-null its threads run the per-source BFS fan-out;
/// per-source hop histograms are merged in source order, so the result
/// is bit-identical for any thread count (nullptr / 0 / N) — the repo's
/// standing determinism contract, pinned by tests/coldpath_test.cc.
double EffectiveDiameter(const Graph& graph, double quantile = 0.9,
                         uint32_t num_sources = 64, uint64_t seed = 42,
                         bsp::ThreadPool* pool = nullptr);

/// Average local clustering coefficient, estimated on `num_samples`
/// sampled vertices (exact when num_samples >= |V|). Edge directions are
/// ignored.
///
/// Sorted undirected neighborhoods are memoized per touched vertex (a
/// vertex's neighborhood is built once, not once per appearance in a
/// pick's neighbor list). When `pool` is non-null, neighborhood
/// construction and per-pick coefficients fan out across its threads;
/// per-pick contributions are reduced in pick order, so the result is
/// bit-identical for any thread count.
double AverageClusteringCoefficient(const Graph& graph,
                                    uint32_t num_samples = 2000,
                                    uint64_t seed = 42,
                                    bsp::ThreadPool* pool = nullptr);

/// Kolmogorov–Smirnov D-statistic between two empirical samples
/// (max distance between their ECDFs). Used to compare degree
/// distributions of a sample graph vs. the original (Leskovec's metric).
double KolmogorovSmirnovD(std::vector<double> a, std::vector<double> b);

/// Out-degree sequence as doubles (for D-statistics).
std::vector<double> OutDegreeSequence(const Graph& graph);
std::vector<double> InDegreeSequence(const Graph& graph);

/// \brief Tests whether the out-degree tail is power-law-like.
///
/// Fits log(ccdf) ~ alpha*log(k) over the upper tail, and additionally a
/// quadratic term to measure curvature: a power law is straight in
/// log-log space (curvature ~ 0), while a log-normal — the paper's
/// LiveJournal observation, footnote 7: out-degree "not following a
/// power law" — bends downward (curvature ~ -1/(2 sigma^2)).
struct PowerLawFit {
  double exponent = 0.0;  ///< slope of the ccdf in log-log space (negative)
  double r_squared = 0.0;
  double curvature = 0.0;  ///< quadratic coefficient; << 0 = log-normal-ish
  bool plausible = false;  ///< straight enough + steep enough + enough points
};

PowerLawFit FitOutDegreePowerLaw(const Graph& graph, uint64_t min_degree = 4);

/// One-line description of all key properties; used by the dataset
/// registry (Table 2) and the sample-quality report.
std::string DescribeGraph(const Graph& graph);

}  // namespace predict

#endif  // PREDICT_GRAPH_STATS_H_
