#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"

namespace predict {

namespace {

// Shared preferential-target picker: maintains a repeated-endpoint pool so
// a vertex's probability of being picked is proportional to (uses + 1).
class PreferentialPool {
 public:
  explicit PreferentialPool(uint64_t expected) { pool_.reserve(expected); }

  void Add(VertexId v) { pool_.push_back(v); }

  // Picks preferentially from the pool, or uniformly from [0, fallback)
  // with probability uniform_p (keeps low-degree vertices reachable).
  VertexId Pick(Rng& rng, VertexId fallback_bound, double uniform_p) {
    if (pool_.empty() || rng.NextBool(uniform_p)) {
      return static_cast<VertexId>(rng.Uniform(fallback_bound));
    }
    return pool_[rng.Uniform(pool_.size())];
  }

 private:
  std::vector<VertexId> pool_;
};

// Zipf sampler over [min_k, max_k] with exponent alpha, via inverse CDF
// on a precomputed table.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t min_k, uint32_t max_k, double alpha)
      : min_k_(min_k) {
    double total = 0.0;
    cdf_.reserve(max_k - min_k + 1);
    for (uint32_t k = min_k; k <= max_k; ++k) {
      total += std::pow(static_cast<double>(k), -alpha);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  uint32_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return min_k_ + static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  uint32_t min_k_;
  std::vector<double> cdf_;
};

}  // namespace

Result<Graph> GeneratePreferentialAttachment(
    const PreferentialAttachmentOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (options.out_degree == 0) {
    return Status::InvalidArgument("out_degree must be > 0");
  }
  Rng rng(options.seed);
  GraphBuilder builder(options.num_vertices);
  builder.ReserveEdges(static_cast<uint64_t>(options.num_vertices) *
                       options.out_degree * 2);
  PreferentialPool pool(static_cast<uint64_t>(options.num_vertices) *
                        options.out_degree);

  // Seed clique among the first out_degree+1 vertices.
  const VertexId seed_count =
      std::min<VertexId>(options.num_vertices, options.out_degree + 1);
  for (VertexId v = 0; v < seed_count; ++v) {
    for (VertexId u = 0; u < seed_count; ++u) {
      if (u == v) continue;
      builder.AddEdge(v, u);
      pool.Add(u);
    }
  }

  for (VertexId v = seed_count; v < options.num_vertices; ++v) {
    for (uint32_t i = 0; i < options.out_degree; ++i) {
      VertexId target = pool.Pick(rng, v, /*uniform_p=*/0.1);
      if (target == v) target = (v + 1) % v;  // avoid self-loop, keep degree
      builder.AddEdge(v, target);
      pool.Add(target);
      if (rng.NextBool(options.reciprocal_p)) {
        builder.AddEdge(target, v);
        pool.Add(v);
      }
    }
  }
  builder.set_dedup_parallel_edges(true);
  return builder.Build();
}

Result<Graph> GenerateCopyModelWebGraph(const CopyModelOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (options.copy_p < 0.0 || options.copy_p > 1.0) {
    return Status::InvalidArgument("copy_p must be in [0,1]");
  }
  Rng rng(options.seed);
  // Keep per-vertex out-lists so later pages can copy them.
  std::vector<std::vector<VertexId>> out_lists(options.num_vertices);

  const VertexId seed_count =
      std::min<VertexId>(options.num_vertices, options.out_degree + 1);
  for (VertexId v = 0; v < seed_count; ++v) {
    for (VertexId u = 0; u < seed_count; ++u) {
      if (u != v) out_lists[v].push_back(u);
    }
  }

  std::unique_ptr<ZipfSampler> zipf;
  if (options.zipf_alpha > 1.0) {
    const uint32_t max_k = std::min<uint32_t>(
        options.max_out_degree, std::max<uint32_t>(options.min_out_degree + 1,
                                                   options.num_vertices / 10));
    zipf = std::make_unique<ZipfSampler>(options.min_out_degree, max_k,
                                         options.zipf_alpha);
  }

  for (VertexId v = seed_count; v < options.num_vertices; ++v) {
    // Prototype page to copy from.
    const VertexId proto = static_cast<VertexId>(rng.Uniform(v));
    const auto& proto_links = out_lists[proto];
    const uint32_t page_out_degree =
        zipf != nullptr ? zipf->Sample(rng) : options.out_degree;
    for (uint32_t i = 0; i < page_out_degree; ++i) {
      VertexId target;
      if (!proto_links.empty() && rng.NextBool(options.copy_p)) {
        target = proto_links[rng.Uniform(proto_links.size())];
      } else {
        target = static_cast<VertexId>(rng.Uniform(v));
      }
      if (target == v) target = proto;
      out_lists[v].push_back(target);
    }
  }

  GraphBuilder builder(options.num_vertices);
  uint64_t total_links = 0;
  for (const auto& links : out_lists) total_links += links.size();
  builder.ReserveEdges(total_links);
  for (VertexId v = 0; v < options.num_vertices; ++v) {
    for (const VertexId u : out_lists[v]) builder.AddEdge(v, u);
  }
  builder.set_dedup_parallel_edges(true);
  builder.set_drop_self_loops(true);
  return builder.Build();
}

Result<Graph> GenerateLogNormalDegreeGraph(
    const LogNormalDegreeOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (options.log_stddev < 0.0) {
    return Status::InvalidArgument("log_stddev must be >= 0");
  }
  Rng rng(options.seed);
  GraphBuilder builder(options.num_vertices);
  PreferentialPool pool(static_cast<uint64_t>(options.num_vertices) * 8);
  pool.Add(0);

  for (VertexId v = 0; v < options.num_vertices; ++v) {
    // Log-normal out-degree, clamped to [1, n/4]: heavy-ish but NOT a
    // power-law tail (the defining LiveJournal-like property).
    const double raw =
        std::exp(options.log_mean + options.log_stddev * rng.NextGaussian());
    const uint64_t degree = std::clamp<uint64_t>(
        static_cast<uint64_t>(std::lround(raw)), 1,
        std::max<uint64_t>(1, options.num_vertices / 4));
    for (uint64_t i = 0; i < degree; ++i) {
      VertexId target = pool.Pick(rng, options.num_vertices, /*uniform_p=*/0.4);
      if (target == v) {
        target = static_cast<VertexId>((v + 1) % options.num_vertices);
      }
      builder.AddEdge(v, target);
      pool.Add(target);
      if (rng.NextBool(options.reciprocal_p)) {
        builder.AddEdge(target, v);
        pool.Add(v);
      }
    }
  }
  builder.set_dedup_parallel_edges(true);
  return builder.Build();
}

Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  Rng rng(options.seed);
  GraphBuilder builder(options.num_vertices);
  builder.ReserveEdges(options.num_edges);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    const VertexId src = static_cast<VertexId>(rng.Uniform(options.num_vertices));
    VertexId dst = static_cast<VertexId>(rng.Uniform(options.num_vertices));
    if (dst == src) dst = static_cast<VertexId>((dst + 1) % options.num_vertices);
    builder.AddEdge(src, dst);
  }
  builder.set_dedup_parallel_edges(true);
  return builder.Build();
}

Result<Graph> GenerateRmat(const RmatOptions& options) {
  if (options.scale == 0 || options.scale > 30) {
    return Status::InvalidArgument("scale must be in [1,30]");
  }
  const double d = 1.0 - options.a - options.b - options.c;
  if (options.a < 0 || options.b < 0 || options.c < 0 || d < 0) {
    return Status::InvalidArgument("RMAT probabilities must be nonnegative and sum <= 1");
  }
  Rng rng(options.seed);
  const VertexId n = static_cast<VertexId>(1u << options.scale);
  GraphBuilder builder(n);
  builder.ReserveEdges(options.num_edges);
  for (uint64_t e = 0; e < options.num_edges; ++e) {
    VertexId row = 0, col = 0;
    for (uint32_t level = 0; level < options.scale; ++level) {
      const double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < options.a) {
        // top-left quadrant
      } else if (r < options.a + options.b) {
        col |= 1;
      } else if (r < options.a + options.b + options.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) builder.AddEdge(row, col);
  }
  builder.set_dedup_parallel_edges(true);
  return builder.Build();
}

Result<Graph> GenerateChain(VertexId num_vertices) {
  if (num_vertices == 0) return Status::InvalidArgument("empty chain");
  GraphBuilder builder(num_vertices);
  if (num_vertices > 1) builder.ReserveEdges(num_vertices - 1);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Result<Graph> GenerateComplete(VertexId num_vertices) {
  if (num_vertices == 0) return Status::InvalidArgument("empty graph");
  GraphBuilder builder(num_vertices);
  builder.ReserveEdges(static_cast<uint64_t>(num_vertices) * (num_vertices - 1));
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (VertexId u = 0; u < num_vertices; ++u) {
      if (u != v) builder.AddEdge(v, u);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateStar(VertexId num_vertices, bool bidirectional) {
  if (num_vertices == 0) return Status::InvalidArgument("empty graph");
  GraphBuilder builder(num_vertices);
  builder.ReserveEdges(static_cast<uint64_t>(num_vertices - 1) *
                       (bidirectional ? 2 : 1));
  for (VertexId v = 1; v < num_vertices; ++v) {
    builder.AddEdge(0, v);
    if (bidirectional) builder.AddEdge(v, 0);
  }
  return builder.Build();
}

}  // namespace predict
