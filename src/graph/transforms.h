// Structural graph transforms: undirected conversion and induced
// subgraphs.
//
// ToUndirected mirrors Giraph's behaviour described in §5 of the paper
// ("a reverse edge is added to each edge" for algorithms operating on
// undirected graphs). InducedSubgraph is the second half of every
// sampling technique: given the sampled vertex set, keep the edges whose
// endpoints were both sampled and remap ids to a compact range.
//
// All transforms are CSR-native: they assemble the result's adjacency
// arrays directly from the parent's CSR (dense O(|V|) remap scratch, two
// counting passes) with no intermediate edge list, no hashing, and no
// re-validation round trip. Output is bit-identical — fingerprint and
// edge order — to the original edge-list implementations; the
// equivalence suite in tests/coldpath_test.cc pins this.

#ifndef PREDICT_GRAPH_TRANSFORMS_H_
#define PREDICT_GRAPH_TRANSFORMS_H_

#include <vector>

#include "graph/graph.h"

namespace predict {

/// Adds a reverse edge for every directed edge, deduplicating so each
/// unordered pair appears exactly once in each direction. Self-loops are
/// kept once. Weights are preserved (first occurrence wins).
Result<Graph> ToUndirected(const Graph& graph);

/// Result of InducedSubgraph: the subgraph plus the id mapping.
struct SubgraphResult {
  Graph graph;
  /// original_id[i] = the vertex in the source graph that became vertex i.
  std::vector<VertexId> original_id;
};

/// Builds the subgraph induced by `vertices` (order defines the new ids).
/// Duplicate entries in `vertices` are rejected.
Result<SubgraphResult> InducedSubgraph(const Graph& graph,
                                       const std::vector<VertexId>& vertices);

/// Reverses every edge (the transpose graph).
Result<Graph> Transpose(const Graph& graph);

}  // namespace predict

#endif  // PREDICT_GRAPH_TRANSFORMS_H_
