#include "graph/delta.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/rng.h"

namespace predict {

namespace {

inline uint32_t WeightBits(float w) {
  uint32_t bits;
  std::memcpy(&bits, &w, sizeof(bits));
  return bits;
}

// Canonical out-row order: (dst, weight bits).
inline bool CanonicalLess(const std::pair<VertexId, float>& a,
                          const std::pair<VertexId, float>& b) {
  if (a.first != b.first) return a.first < b.first;
  return WeightBits(a.second) < WeightBits(b.second);
}

Status OffendingEdge(const char* what, VertexId src, VertexId dst) {
  return Status::InvalidArgument(std::string(what) + " (" +
                                 std::to_string(src) + " -> " +
                                 std::to_string(dst) + ")");
}

// Assembles a canonical Graph from per-vertex (dst, weight) rows already
// in canonical order: builds the out CSR, derives the in CSR by a
// counting sort over targets in (src asc, slot) order — the same
// convention GraphBuilder and the CSR-native transforms use.
Graph GraphFromCanonicalRows(uint64_t v_count,
                             std::vector<uint64_t> out_offsets,
                             std::vector<VertexId> out_targets,
                             std::vector<float> out_weights) {
  const uint64_t e_count = out_targets.size();
  const bool weighted =
      std::any_of(out_weights.begin(), out_weights.end(),
                  [](float w) { return w != 1.0f; });
  if (!weighted) out_weights.clear();

  std::vector<uint64_t> in_offsets(v_count + 1, 0);
  for (const VertexId t : out_targets) in_offsets[t + 1]++;
  for (uint64_t v = 0; v < v_count; ++v) in_offsets[v + 1] += in_offsets[v];
  std::vector<VertexId> in_sources(e_count);
  std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
  for (uint64_t v = 0; v < v_count; ++v) {
    for (uint64_t s = out_offsets[v]; s < out_offsets[v + 1]; ++s) {
      in_sources[cursor[out_targets[s]]++] = static_cast<VertexId>(v);
    }
  }
  return Graph::FromCsr(std::move(out_offsets), std::move(out_targets),
                        std::move(out_weights), std::move(in_offsets),
                        std::move(in_sources));
}

}  // namespace

Graph EvolvingGraph::Canonicalize(Graph g) {
  g = Graph::WithPlainEdges(std::move(g));
  const uint64_t v_count = g.num_vertices();
  if (v_count == 0) return g;

  std::vector<uint64_t> out_offsets(g.out_offsets().begin(),
                                    g.out_offsets().end());
  std::vector<VertexId> out_targets(g.num_edges());
  std::vector<float> out_weights(g.num_edges(), 1.0f);
  std::vector<std::pair<VertexId, float>> row;
  for (uint64_t v = 0; v < v_count; ++v) {
    const auto targets = g.out_neighbors(static_cast<VertexId>(v));
    row.clear();
    for (size_t i = 0; i < targets.size(); ++i) {
      row.emplace_back(targets[i],
                       g.is_weighted()
                           ? g.out_weights(static_cast<VertexId>(v))[i]
                           : 1.0f);
    }
    std::sort(row.begin(), row.end(), CanonicalLess);
    uint64_t slot = out_offsets[v];
    for (const auto& [dst, w] : row) {
      out_targets[slot] = dst;
      out_weights[slot] = w;
      ++slot;
    }
  }
  return GraphFromCanonicalRows(v_count, std::move(out_offsets),
                                std::move(out_targets),
                                std::move(out_weights));
}

EvolvingGraph::EvolvingGraph(Graph base)
    : base_(Canonicalize(std::move(base))) {
  version_fp_ = base_.EdgeSetHash();
}

uint64_t EvolvingGraph::SurvivingBaseCount(VertexId v, VertexId dst) const {
  const auto targets = base_.out_neighbors(v);
  const auto [lo, hi] = std::equal_range(targets.begin(), targets.end(), dst);
  uint64_t count = static_cast<uint64_t>(hi - lo);
  const auto it = overlay_.find(v);
  if (it != overlay_.end()) {
    const auto& removes = it->second.removes;
    const auto [rlo, rhi] =
        std::equal_range(removes.begin(), removes.end(), dst);
    count -= static_cast<uint64_t>(rhi - rlo);
  }
  return count;
}

uint64_t EvolvingGraph::out_degree(VertexId v) const {
  uint64_t degree = base_.out_degree(v);
  const auto it = overlay_.find(v);
  if (it != overlay_.end()) {
    degree += it->second.adds.size();
    degree -= it->second.removes.size();
  }
  return degree;
}

std::span<const VertexId> EvolvingGraph::OutNeighborsInto(
    VertexId v, std::vector<VertexId>* scratch) const {
  if (overlay_.find(v) == overlay_.end()) return base_.out_neighbors(v);
  scratch->clear();
  ForEachOutNeighbor(v, [&](VertexId dst) { scratch->push_back(dst); });
  return {scratch->data(), scratch->data() + scratch->size()};
}

Status EvolvingGraph::Apply(const EdgeDeltaBatch& batch) {
  const uint64_t v_count = num_vertices();

  // Validate the whole batch against the current version before touching
  // anything: replay it against per-vertex occurrence counters so a
  // delete may consume an insert earlier in the same batch, and a batch
  // over-deleting an edge (duplicate removal) is caught here.
  {
    // (src, dst) -> net occurrence delta within this batch.
    std::unordered_map<uint64_t, int64_t> net;
    const auto pack = [](VertexId s, VertexId d) {
      return (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(d);
    };
    for (const EdgeDelta& delta : batch) {
      if (delta.src >= v_count || delta.dst >= v_count) {
        return OffendingEdge(delta.op == EdgeDelta::Op::kInsert
                                 ? "edge insert references an unknown vertex"
                                 : "edge delete references an unknown vertex",
                             delta.src, delta.dst);
      }
      int64_t& n = net[pack(delta.src, delta.dst)];
      if (delta.op == EdgeDelta::Op::kInsert) {
        ++n;
        continue;
      }
      --n;
      const uint64_t existing =
          SurvivingBaseCount(delta.src, delta.dst) +
          [&]() -> uint64_t {
        const auto it = overlay_.find(delta.src);
        if (it == overlay_.end()) return 0;
        const auto& adds = it->second.adds;
        const auto lo = std::lower_bound(
            adds.begin(), adds.end(), delta.dst,
            [](const auto& a, VertexId d) { return a.first < d; });
        const auto hi = std::upper_bound(
            adds.begin(), adds.end(), delta.dst,
            [](VertexId d, const auto& a) { return d < a.first; });
        return static_cast<uint64_t>(hi - lo);
      }();
      if (static_cast<int64_t>(existing) + n < 0) {
        return OffendingEdge("delete of a non-existent edge", delta.src,
                             delta.dst);
      }
    }
  }

  // Apply. Deletes cancel a pending add for the same (src, dst) first
  // (most recent state), else consume a base occurrence.
  for (const EdgeDelta& delta : batch) {
    VertexDelta& vd = overlay_[delta.src];
    if (delta.op == EdgeDelta::Op::kInsert) {
      const std::pair<VertexId, float> entry{delta.dst, delta.weight};
      vd.adds.insert(std::upper_bound(vd.adds.begin(), vd.adds.end(), entry,
                                      CanonicalLess),
                     entry);
      ++overlay_entries_;
      ++edge_count_delta_;
      version_fp_ += Graph::EdgeHash(delta.src, delta.dst, delta.weight);
      continue;
    }
    // Delete: prefer cancelling a pending add (first add with this dst).
    const auto add_it = std::lower_bound(
        vd.adds.begin(), vd.adds.end(), delta.dst,
        [](const auto& a, VertexId d) { return a.first < d; });
    float removed_weight;
    if (add_it != vd.adds.end() && add_it->first == delta.dst) {
      removed_weight = add_it->second;
      vd.adds.erase(add_it);
      --overlay_entries_;
    } else {
      // Consume the next surviving base occurrence: its weight is the
      // (removes-so-far)-th occurrence of dst in the sorted base row.
      const auto targets = base_.out_neighbors(delta.src);
      const auto lo =
          std::lower_bound(targets.begin(), targets.end(), delta.dst);
      const auto [rlo, rhi] = std::equal_range(vd.removes.begin(),
                                               vd.removes.end(), delta.dst);
      const uint64_t prior = static_cast<uint64_t>(rhi - rlo);
      const uint64_t slot =
          static_cast<uint64_t>(lo - targets.begin()) + prior;
      removed_weight = base_.is_weighted()
                           ? base_.out_weights(delta.src)[slot]
                           : 1.0f;
      vd.removes.insert(rhi, delta.dst);
      ++overlay_entries_;
    }
    --edge_count_delta_;
    version_fp_ -= Graph::EdgeHash(delta.src, delta.dst, removed_weight);
    if (vd.adds.empty() && vd.removes.empty()) overlay_.erase(delta.src);
  }

  const uint64_t threshold = std::max<uint64_t>(
      64, static_cast<uint64_t>(compaction_threshold_ *
                                static_cast<double>(base_.num_edges())));
  if (overlay_entries_ > threshold) return Compact();
  return Status::OK();
}

Status EvolvingGraph::Compact() {
  if (!dirty()) return Status::OK();
  const uint64_t v_count = num_vertices();

  // Build the fresh CSR entirely off to the side; the members are not
  // touched until the very end (strong exception safety — a fault below
  // leaves the current version fully intact).
  std::vector<uint64_t> out_offsets(v_count + 1, 0);
  for (uint64_t v = 0; v < v_count; ++v) {
    out_offsets[v + 1] =
        out_offsets[v] + out_degree(static_cast<VertexId>(v));
  }
  const uint64_t e_count = out_offsets[v_count];
  std::vector<VertexId> out_targets(e_count);
  std::vector<float> out_weights(e_count, 1.0f);
  for (uint64_t v = 0; v < v_count; ++v) {
    uint64_t slot = out_offsets[v];
    ForEachOutEdge(static_cast<VertexId>(v), [&](VertexId dst, float w) {
      out_targets[slot] = dst;
      out_weights[slot] = w;
      ++slot;
    });
    assert(slot == out_offsets[v + 1]);
  }

  // The fault point sits between building and installing: an injected
  // compaction fault can never leave a half-built CSR visible.
  {
    const Status faulted = [&]() -> Status {
      PREDICT_FAIL_POINT("graph.compact");
      return Status::OK();
    }();
    if (!faulted.ok()) return StatusAnnotate(faulted, "graph_compact");
  }

  Graph fresh = GraphFromCanonicalRows(v_count, std::move(out_offsets),
                                       std::move(out_targets),
                                       std::move(out_weights));
  assert(fresh.EdgeSetHash() == VersionFingerprint());
  base_ = std::move(fresh);
  overlay_.clear();
  overlay_entries_ = 0;
  edge_count_delta_ = 0;
  return Status::OK();
}

Result<const Graph*> EvolvingGraph::Current() {
  if (dirty()) {
    const Status compacted = Compact();
    if (!compacted.ok()) return compacted;
  }
  return &base_;
}

Result<SubgraphResult> InducedSubgraph(const EvolvingGraph& graph,
                                       const std::vector<VertexId>& vertices) {
  // Mirrors transforms.cc's CSR-native InducedSubgraph, reading parent
  // adjacency through the merged view instead of a compacted CSR — the
  // outputs are byte-identical because both consume rows in canonical
  // order.
  const uint64_t v_count = graph.num_vertices();
  const uint64_t k = vertices.size();
  constexpr VertexId kAbsent = 0xFFFFFFFFu;

  std::vector<VertexId> new_id(v_count, kAbsent);
  for (uint64_t i = 0; i < k; ++i) {
    const VertexId v = vertices[i];
    if (v >= v_count) {
      return Status::InvalidArgument("sampled vertex " + std::to_string(v) +
                                     " out of range");
    }
    if (new_id[v] != kAbsent) {
      return Status::InvalidArgument("duplicate vertex " + std::to_string(v) +
                                     " in sample");
    }
    new_id[v] = static_cast<VertexId>(i);
  }

  std::vector<uint64_t> out_offsets(k + 1, 0);
  std::vector<uint64_t> in_offsets(k + 1, 0);
  for (uint64_t i = 0; i < k; ++i) {
    graph.ForEachOutNeighbor(vertices[i], [&](VertexId t) {
      const VertexId j = new_id[t];
      if (j == kAbsent) return;
      out_offsets[i + 1]++;
      in_offsets[j + 1]++;
    });
  }
  for (uint64_t i = 0; i < k; ++i) {
    out_offsets[i + 1] += out_offsets[i];
    in_offsets[i + 1] += in_offsets[i];
  }
  const uint64_t kept = out_offsets[k];

  std::vector<VertexId> out_targets(kept);
  std::vector<float> out_weights(kept);
  std::vector<VertexId> in_sources(kept);
  std::vector<uint64_t> in_cursor(in_offsets.begin(), in_offsets.end() - 1);
  bool any_weight = false;
  uint64_t out_slot = 0;
  for (uint64_t i = 0; i < k; ++i) {
    graph.ForEachOutEdge(vertices[i], [&](VertexId t, float w) {
      const VertexId j = new_id[t];
      if (j == kAbsent) return;
      out_targets[out_slot] = j;
      out_weights[out_slot] = w;
      any_weight |= w != 1.0f;
      ++out_slot;
      in_sources[in_cursor[j]++] = static_cast<VertexId>(i);
    });
  }
  if (!any_weight) out_weights.clear();

  SubgraphResult result;
  result.original_id = vertices;
  result.graph = Graph::FromCsr(std::move(out_offsets), std::move(out_targets),
                                std::move(out_weights), std::move(in_offsets),
                                std::move(in_sources));
  return result;
}

std::vector<VertexId> DirtyOutVertices(const Graph& before,
                                       const Graph& after) {
  std::vector<VertexId> dirty;
  const uint64_t nb = before.num_vertices();
  const uint64_t na = after.num_vertices();
  if (nb != na) {
    const uint64_t n = std::max(nb, na);
    dirty.resize(n);
    for (uint64_t v = 0; v < n; ++v) dirty[v] = static_cast<VertexId>(v);
    return dirty;
  }
  std::vector<VertexId> scratch_b;
  std::vector<VertexId> scratch_a;
  for (uint64_t v = 0; v < nb; ++v) {
    const VertexId id = static_cast<VertexId>(v);
    const auto tb = before.OutNeighborsInto(id, &scratch_b);
    const auto ta = after.OutNeighborsInto(id, &scratch_a);
    bool differs = tb.size() != ta.size() ||
                   std::memcmp(tb.data(), ta.data(),
                               tb.size() * sizeof(VertexId)) != 0;
    if (!differs && (before.is_weighted() || after.is_weighted())) {
      if (before.is_weighted() != after.is_weighted()) {
        // A weightedness flip changes every non-empty row (all-1.0
        // weights vs explicit ones); empty rows cannot differ.
        differs = !tb.empty();
      } else {
        const auto wb = before.out_weights(id);
        const auto wa = after.out_weights(id);
        differs = std::memcmp(wb.data(), wa.data(),
                              wb.size() * sizeof(float)) != 0;
      }
    }
    if (differs) dirty.push_back(id);
  }
  return dirty;
}

Result<EdgeDeltaBatch> GenerateChurn(const Graph& graph,
                                     const ChurnOptions& options) {
  const uint64_t v_count = graph.num_vertices();
  const uint64_t e_count = graph.num_edges();
  if (v_count < 2 || e_count == 0) {
    return Status::InvalidArgument("churn needs a non-trivial graph");
  }
  if (options.fraction < 0.0 || options.fraction > 1.0) {
    return Status::InvalidArgument("churn fraction must be in [0, 1]");
  }
  if (!options.avoid.empty() && options.avoid.size() != v_count) {
    return Status::InvalidArgument("avoid mask must have |V| entries");
  }
  const auto avoided = [&](VertexId v) {
    return !options.avoid.empty() && options.avoid[v] != 0;
  };

  const uint64_t total = static_cast<uint64_t>(
      options.fraction * static_cast<double>(e_count) + 0.5);
  const uint64_t want_deletes = total / 2;
  const uint64_t want_inserts = total - want_deletes;
  Rng rng(options.seed);

  // Existing (src, dst) pairs, for insert-collision rejection. Multiset
  // multiplicity is irrelevant: an insert colliding with ANY existing
  // pair is skipped so the batch stays unambiguous.
  std::unordered_map<uint64_t, uint64_t> present;  // pair -> multiplicity
  const auto pack = [](VertexId s, VertexId d) {
    return (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(d);
  };
  std::vector<std::pair<VertexId, VertexId>> deletable;
  std::vector<VertexId> scratch;
  for (uint64_t v = 0; v < v_count; ++v) {
    const VertexId src = static_cast<VertexId>(v);
    for (const VertexId dst : graph.OutNeighborsInto(src, &scratch)) {
      present[pack(src, dst)]++;
      if (!avoided(src) && !avoided(dst)) deletable.emplace_back(src, dst);
    }
  }

  EdgeDeltaBatch batch;
  batch.reserve(total);
  const uint64_t n_deletes = std::min<uint64_t>(want_deletes, deletable.size());
  for (const uint64_t idx :
       rng.SampleWithoutReplacement(deletable.size(), n_deletes)) {
    const auto [src, dst] = deletable[idx];
    batch.push_back(EdgeDelta::Delete(src, dst));
    // A parallel edge may appear several times in `deletable`; deleting
    // each occurrence once is valid (multiplicity covers them).
  }

  uint64_t inserted = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = 64 * want_inserts + 1024;
  while (inserted < want_inserts && attempts < max_attempts) {
    ++attempts;
    const VertexId src = static_cast<VertexId>(rng.Uniform(v_count));
    const VertexId dst = static_cast<VertexId>(rng.Uniform(v_count));
    if (src == dst || avoided(src) || avoided(dst)) continue;
    uint64_t& mult = present[pack(src, dst)];
    if (mult != 0) continue;
    mult = 1;
    batch.push_back(EdgeDelta::Insert(src, dst));
    ++inserted;
  }
  return batch;
}

}  // namespace predict
