#include "graph/graph.h"

#include <algorithm>
#include <cstdio>

namespace predict {

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               const std::vector<Edge>& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(edges);  // one sized allocation + copy
  return builder.Build();
}

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               std::vector<Edge>&& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(std::move(edges));
  return builder.Build();
}

std::vector<Edge> Graph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto targets = out_neighbors(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const float w = is_weighted_ ? out_weights_[out_offsets_[v] + i] : 1.0f;
      edges.push_back({v, targets[i], w});
    }
  }
  return edges;
}

uint64_t Graph::MemoryFootprintBytes() const {
  uint64_t bytes = 0;
  bytes += out_offsets_.size() * sizeof(uint64_t);
  bytes += out_targets_.size() * sizeof(VertexId);
  bytes += out_weights_.size() * sizeof(float);
  bytes += in_offsets_.size() * sizeof(uint64_t);
  bytes += in_sources_.size() * sizeof(VertexId);
  return bytes;
}

namespace {

// FNV-1a over a byte range.
inline uint64_t FnvMix(uint64_t hash, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

uint64_t Graph::Fingerprint() const {
  uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  const uint64_t v = num_vertices();
  const uint64_t e = num_edges();
  hash = FnvMix(hash, &v, sizeof(v));
  hash = FnvMix(hash, &e, sizeof(e));
  // The out CSR fully determines the structure (the in CSR is derived).
  hash = FnvMix(hash, out_offsets_.data(),
                out_offsets_.size() * sizeof(uint64_t));
  hash = FnvMix(hash, out_targets_.data(),
                out_targets_.size() * sizeof(VertexId));
  if (is_weighted_) {
    hash = FnvMix(hash, out_weights_.data(),
                  out_weights_.size() * sizeof(float));
  }
  return hash == 0 ? 1 : hash;
}

std::string Graph::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Graph(|V|=%llu, |E|=%llu%s)",
                static_cast<unsigned long long>(num_vertices()),
                static_cast<unsigned long long>(num_edges()),
                is_weighted_ ? ", weighted" : "");
  return buf;
}

Result<Graph> GraphBuilder::Build() {
  // Validate endpoints.
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(e.src) + " -> " + std::to_string(e.dst) +
          ") references a vertex >= num_vertices=" +
          std::to_string(num_vertices_));
    }
  }

  if (drop_self_loops_) {
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const Edge& e) { return e.src == e.dst; }),
                 edges_.end());
  }

  if (dedup_parallel_edges_) {
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const Edge& a, const Edge& b) {
                               return a.src == b.src && a.dst == b.dst;
                             }),
                 edges_.end());
  }

  Graph g;
  const uint64_t v_count = num_vertices_;
  const uint64_t e_count = edges_.size();

  g.is_weighted_ =
      std::any_of(edges_.begin(), edges_.end(),
                  [](const Edge& e) { return e.weight != 1.0f; });

  // Counting sort into CSR; the cursor scratch is sized once and reused
  // for both adjacency directions.
  std::vector<uint64_t> cursor;
  cursor.reserve(v_count);

  // Out direction.
  g.out_offsets_.assign(v_count + 1, 0);
  for (const Edge& e : edges_) g.out_offsets_[e.src + 1]++;
  for (uint64_t v = 0; v < v_count; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  g.out_targets_.resize(e_count);
  if (g.is_weighted_) g.out_weights_.resize(e_count);
  cursor.assign(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    const uint64_t slot = cursor[e.src]++;
    g.out_targets_[slot] = e.dst;
    if (g.is_weighted_) g.out_weights_[slot] = e.weight;
  }

  // In direction.
  g.in_offsets_.assign(v_count + 1, 0);
  for (const Edge& e : edges_) g.in_offsets_[e.dst + 1]++;
  for (uint64_t v = 0; v < v_count; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_sources_.resize(e_count);
  cursor.assign(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : edges_) g.in_sources_[cursor[e.dst]++] = e.src;

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace predict
