#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace predict {

Graph::Graph(const Graph& other)
    : out_offsets_(other.out_offsets_),
      out_targets_(other.out_targets_),
      out_weights_(other.out_weights_),
      in_offsets_(other.in_offsets_),
      in_sources_(other.in_sources_),
      is_weighted_(other.is_weighted_),
      edges_compressed_(other.edges_compressed_),
      out_packed_(other.out_packed_),
      in_packed_(other.in_packed_),
      out_packed_offsets_(other.out_packed_offsets_),
      in_packed_offsets_(other.in_packed_offsets_),
      fingerprint_cache_(
          other.fingerprint_cache_.load(std::memory_order_relaxed)) {}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  out_offsets_ = other.out_offsets_;
  out_targets_ = other.out_targets_;
  out_weights_ = other.out_weights_;
  in_offsets_ = other.in_offsets_;
  in_sources_ = other.in_sources_;
  is_weighted_ = other.is_weighted_;
  edges_compressed_ = other.edges_compressed_;
  out_packed_ = other.out_packed_;
  in_packed_ = other.in_packed_;
  out_packed_offsets_ = other.out_packed_offsets_;
  in_packed_offsets_ = other.in_packed_offsets_;
  fingerprint_cache_.store(
      other.fingerprint_cache_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : out_offsets_(std::move(other.out_offsets_)),
      out_targets_(std::move(other.out_targets_)),
      out_weights_(std::move(other.out_weights_)),
      in_offsets_(std::move(other.in_offsets_)),
      in_sources_(std::move(other.in_sources_)),
      is_weighted_(other.is_weighted_),
      edges_compressed_(other.edges_compressed_),
      out_packed_(std::move(other.out_packed_)),
      in_packed_(std::move(other.in_packed_)),
      out_packed_offsets_(std::move(other.out_packed_offsets_)),
      in_packed_offsets_(std::move(other.in_packed_offsets_)),
      fingerprint_cache_(
          other.fingerprint_cache_.load(std::memory_order_relaxed)) {
  other.edges_compressed_ = false;
  other.fingerprint_cache_.store(0, std::memory_order_relaxed);
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  out_offsets_ = std::move(other.out_offsets_);
  out_targets_ = std::move(other.out_targets_);
  out_weights_ = std::move(other.out_weights_);
  in_offsets_ = std::move(other.in_offsets_);
  in_sources_ = std::move(other.in_sources_);
  is_weighted_ = other.is_weighted_;
  edges_compressed_ = other.edges_compressed_;
  out_packed_ = std::move(other.out_packed_);
  in_packed_ = std::move(other.in_packed_);
  out_packed_offsets_ = std::move(other.out_packed_offsets_);
  in_packed_offsets_ = std::move(other.in_packed_offsets_);
  fingerprint_cache_.store(
      other.fingerprint_cache_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.edges_compressed_ = false;
  other.fingerprint_cache_.store(0, std::memory_order_relaxed);
  return *this;
}

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               const std::vector<Edge>& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(edges);  // one sized allocation + copy
  return builder.Build();
}

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               std::vector<Edge>&& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(std::move(edges));
  return builder.Build();
}

Result<Graph> Graph::FromEdges(
    VertexId num_vertices, const std::vector<Edge>& edges,
    const std::vector<std::pair<VertexId, VertexId>>& removals) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(edges);
  for (const auto& [src, dst] : removals) builder.RemoveEdge(src, dst);
  return builder.Build();
}

Graph Graph::FromCsr(std::vector<uint64_t> out_offsets,
                     std::vector<VertexId> out_targets,
                     std::vector<float> out_weights,
                     std::vector<uint64_t> in_offsets,
                     std::vector<VertexId> in_sources,
                     bool compress_edges) {
  assert(!out_offsets.empty() && out_offsets.size() == in_offsets.size());
  assert(out_offsets.front() == 0 && in_offsets.front() == 0);
  assert(out_offsets.back() == out_targets.size());
  assert(in_offsets.back() == in_sources.size());
  assert(out_targets.size() == in_sources.size());
  assert(out_weights.empty() || out_weights.size() == out_targets.size());
#ifndef NDEBUG
  const uint64_t v_count = out_offsets.size() - 1;
  for (uint64_t v = 0; v < v_count; ++v) {
    assert(out_offsets[v] <= out_offsets[v + 1]);
    assert(in_offsets[v] <= in_offsets[v + 1]);
  }
  for (const VertexId t : out_targets) assert(t < v_count);
  for (const VertexId s : in_sources) assert(s < v_count);
#endif
  Graph g;
  g.out_offsets_ = std::move(out_offsets);
  g.out_targets_ = std::move(out_targets);
  g.out_weights_ = std::move(out_weights);
  g.in_offsets_ = std::move(in_offsets);
  g.in_sources_ = std::move(in_sources);
  g.is_weighted_ = !g.out_weights_.empty();
  if (compress_edges) g.CompressEdgesInPlace();
  return g;
}

Graph Graph::WithCompressedEdges(Graph g) {
  g.CompressEdgesInPlace();
  return g;
}

Graph Graph::WithPlainEdges(Graph g) {
  g.DecompressEdgesInPlace();
  return g;
}

namespace {

// Re-encodes one adjacency direction as per-vertex varint/delta streams.
// Deltas reset per vertex (prev = 0 at each list head) so any single
// vertex's list can be decoded without touching its neighbors' bytes.
void PackDirection(uint64_t v_count, const std::vector<uint64_t>& offsets,
                   std::vector<VertexId>* ids, std::vector<uint8_t>* packed,
                   std::vector<uint32_t>* packed_offsets) {
  packed->clear();
  packed->reserve(ids->size() * 2);
  packed_offsets->assign(v_count + 1, 0);
  for (uint64_t v = 0; v < v_count; ++v) {
    (*packed_offsets)[v] = static_cast<uint32_t>(packed->size());
    uint32_t prev = 0;
    varint::AppendDeltaList(
        std::span<const VertexId>(ids->data() + offsets[v],
                                  ids->data() + offsets[v + 1]),
        &prev, packed);
  }
  assert(packed->size() < (1ULL << 32));
  (*packed_offsets)[v_count] = static_cast<uint32_t>(packed->size());
  packed->shrink_to_fit();
  ids->clear();
  ids->shrink_to_fit();
}

void UnpackDirection(uint64_t v_count, const std::vector<uint64_t>& offsets,
                     std::vector<uint8_t>* packed,
                     std::vector<uint32_t>* packed_offsets,
                     std::vector<VertexId>* ids) {
  ids->resize(offsets.empty() ? 0 : offsets.back());
  for (uint64_t v = 0; v < v_count; ++v) {
    const uint8_t* p = packed->data() + (*packed_offsets)[v];
    uint32_t prev = 0;
    VertexId* out = ids->data() + offsets[v];
    uint64_t count = offsets[v + 1] - offsets[v];
    while (count != 0) {
      const size_t n = count < varint::kDecodeBlock
                           ? static_cast<size_t>(count)
                           : varint::kDecodeBlock;
      p = varint::DecodeDeltaBlock(p, n, &prev, out);
      out += n;
      count -= n;
    }
  }
  packed->clear();
  packed->shrink_to_fit();
  packed_offsets->clear();
  packed_offsets->shrink_to_fit();
}

}  // namespace

void Graph::CompressEdgesInPlace() {
  if (edges_compressed_) return;
  const uint64_t v_count = num_vertices();
  PackDirection(v_count, out_offsets_, &out_targets_, &out_packed_,
                &out_packed_offsets_);
  PackDirection(v_count, in_offsets_, &in_sources_, &in_packed_,
                &in_packed_offsets_);
  edges_compressed_ = true;
}

void Graph::DecompressEdgesInPlace() {
  if (!edges_compressed_) return;
  const uint64_t v_count = num_vertices();
  UnpackDirection(v_count, out_offsets_, &out_packed_, &out_packed_offsets_,
                  &out_targets_);
  UnpackDirection(v_count, in_offsets_, &in_packed_, &in_packed_offsets_,
                  &in_sources_);
  edges_compressed_ = false;
}

std::vector<Edge> Graph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    uint64_t slot = out_offsets_[v];
    ForEachOutNeighbor(v, [&](VertexId t) {
      edges.push_back({v, t, is_weighted_ ? out_weights_[slot] : 1.0f});
      ++slot;
    });
  }
  return edges;
}

uint64_t Graph::MemoryFootprintBytes() const {
  uint64_t bytes = 0;
  bytes += out_offsets_.size() * sizeof(uint64_t);
  bytes += out_targets_.size() * sizeof(VertexId);
  bytes += out_weights_.size() * sizeof(float);
  bytes += in_offsets_.size() * sizeof(uint64_t);
  bytes += in_sources_.size() * sizeof(VertexId);
  bytes += out_packed_.size() + in_packed_.size();
  bytes += out_packed_offsets_.size() * sizeof(uint32_t);
  bytes += in_packed_offsets_.size() * sizeof(uint32_t);
  return bytes;
}

uint64_t Graph::EdgeStorageBytes() const {
  if (!edges_compressed_) {
    return (out_targets_.size() + in_sources_.size()) * sizeof(VertexId);
  }
  return out_packed_.size() + in_packed_.size() +
         (out_packed_offsets_.size() + in_packed_offsets_.size()) *
             sizeof(uint32_t);
}

namespace {

// FNV-1a over a byte range.
inline uint64_t FnvMix(uint64_t hash, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Process-wide count of full-CSR fingerprint scans; lets tests assert
// the memoization contract ("hashed exactly once per Graph").
std::atomic<uint64_t> g_fingerprint_computations{0};

}  // namespace

uint64_t Graph::Fingerprint() const {
  const uint64_t cached = fingerprint_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;

  g_fingerprint_computations.fetch_add(1, std::memory_order_relaxed);
  uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  const uint64_t v = num_vertices();
  const uint64_t e = num_edges();
  hash = FnvMix(hash, &v, sizeof(v));
  hash = FnvMix(hash, &e, sizeof(e));
  // The out CSR fully determines the structure (the in CSR is derived).
  hash = FnvMix(hash, out_offsets_.data(),
                out_offsets_.size() * sizeof(uint64_t));
  if (!edges_compressed_) {
    hash = FnvMix(hash, out_targets_.data(),
                  out_targets_.size() * sizeof(VertexId));
  } else {
    // Hash the decoded target ids so plain and compressed copies of the
    // same structure see the identical byte stream (per-vertex chunks
    // concatenate to exactly the plain out_targets_ array).
    std::vector<VertexId> scratch;
    for (uint64_t u = 0; u < v; ++u) {
      const auto targets = OutNeighborsInto(static_cast<VertexId>(u), &scratch);
      hash = FnvMix(hash, targets.data(), targets.size() * sizeof(VertexId));
    }
  }
  if (is_weighted_) {
    hash = FnvMix(hash, out_weights_.data(),
                  out_weights_.size() * sizeof(float));
  }
  if (hash == 0) hash = 1;
  // Benign race: concurrent first callers compute the same content hash
  // and store the same value.
  fingerprint_cache_.store(hash, std::memory_order_relaxed);
  return hash;
}

uint64_t Graph::FingerprintComputationsForTest() {
  return g_fingerprint_computations.load(std::memory_order_relaxed);
}

namespace {

// splitmix64 finalizer: the per-edge mixer behind EdgeHash.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t Graph::EdgeHash(VertexId src, VertexId dst, float weight) {
  uint32_t wbits;
  static_assert(sizeof(wbits) == sizeof(weight));
  std::memcpy(&wbits, &weight, sizeof(wbits));
  const uint64_t endpoints =
      (static_cast<uint64_t>(src) << 32) | static_cast<uint64_t>(dst);
  // Two dependent mixing rounds: a single splitmix of the packed word
  // leaves additive structure that a *sum* of hashes would expose.
  return Mix64(Mix64(endpoints) ^ (static_cast<uint64_t>(wbits) + 0x51ED270B));
}

uint64_t Graph::EdgeSetHash() const {
  const uint64_t v_count = num_vertices();
  uint64_t sum = Mix64(v_count ^ 0xE0D1F1A6C5B49382ULL);
  std::vector<VertexId> scratch;
  for (uint64_t v = 0; v < v_count; ++v) {
    const auto targets = OutNeighborsInto(static_cast<VertexId>(v), &scratch);
    const std::span<const float> weights =
        is_weighted_ ? out_weights(static_cast<VertexId>(v))
                     : std::span<const float>{};
    for (size_t i = 0; i < targets.size(); ++i) {
      sum += EdgeHash(static_cast<VertexId>(v), targets[i],
                      is_weighted_ ? weights[i] : 1.0f);
    }
  }
  if (sum == 0) sum = 1;
  return sum;
}

std::string Graph::ToString() const {
  char buf[112];
  std::snprintf(buf, sizeof(buf), "Graph(|V|=%llu, |E|=%llu%s%s)",
                static_cast<unsigned long long>(num_vertices()),
                static_cast<unsigned long long>(num_edges()),
                is_weighted_ ? ", weighted" : "",
                edges_compressed_ ? ", compressed" : "");
  return buf;
}

Result<Graph> GraphBuilder::Build() {
  // Validate endpoints.
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(e.src) + " -> " + std::to_string(e.dst) +
          ") references a vertex >= num_vertices=" +
          std::to_string(num_vertices_));
    }
  }

  // Apply removals: each deletes one matching pending edge (first-added
  // occurrence). Validated strictly — a removal that names an unknown
  // vertex or fails to find an edge (non-existent edge, absent
  // self-loop, duplicate removal beyond the multiplicity) is an error
  // carrying the offending pair, never a silent no-op.
  if (!removals_.empty()) {
    const auto pack = [](VertexId s, VertexId d) {
      return (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(d);
    };
    for (const auto& [src, dst] : removals_) {
      if (src >= num_vertices_ || dst >= num_vertices_) {
        return Status::InvalidArgument(
            "edge removal (" + std::to_string(src) + " -> " +
            std::to_string(dst) + ") references a vertex >= num_vertices=" +
            std::to_string(num_vertices_));
      }
    }
    std::unordered_map<uint64_t, uint64_t> pending;  // pair -> removals left
    for (const auto& [src, dst] : removals_) pending[pack(src, dst)]++;
    uint64_t write = 0;
    for (const Edge& e : edges_) {
      const auto it = pending.find(pack(e.src, e.dst));
      if (it != pending.end() && it->second > 0) {
        --it->second;
        continue;
      }
      edges_[write++] = e;
    }
    edges_.resize(write);
    for (const auto& [src, dst] : removals_) {
      const auto it = pending.find(pack(src, dst));
      if (it != pending.end() && it->second > 0) {
        return Status::InvalidArgument(
            "removal of a non-existent edge (" + std::to_string(src) +
            " -> " + std::to_string(dst) + ")");
      }
    }
    removals_.clear();
  }

  if (drop_self_loops_) {
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const Edge& e) { return e.src == e.dst; }),
                 edges_.end());
  }

  if (dedup_parallel_edges_ && !edges_.empty()) {
    // Counting sort by src (stable), then sort + dedup each per-source
    // bucket by dst. Replaces the former O(E log E) whole-list comparator
    // sort with O(E + sum_b |b| log |b|) work, and makes the documented
    // "first weight wins" contract deterministic: the stable bucket pass
    // keeps, among parallel edges, the one added to the builder first.
    std::vector<uint64_t> offsets(num_vertices_ + 1, 0);
    for (const Edge& e : edges_) offsets[e.src + 1]++;
    for (VertexId v = 0; v < num_vertices_; ++v) offsets[v + 1] += offsets[v];
    std::vector<Edge> sorted(edges_.size());
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges_) sorted[cursor[e.src]++] = e;
    uint64_t write = 0;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      const auto begin = sorted.begin() + static_cast<int64_t>(offsets[v]);
      const auto end = sorted.begin() + static_cast<int64_t>(offsets[v + 1]);
      std::stable_sort(begin, end, [](const Edge& a, const Edge& b) {
        return a.dst < b.dst;
      });
      for (auto it = begin; it != end; ++it) {
        if (it != begin && it->dst == (it - 1)->dst) continue;
        sorted[write++] = *it;
      }
    }
    sorted.resize(write);
    edges_ = std::move(sorted);
  }

  Graph g;
  const uint64_t v_count = num_vertices_;
  const uint64_t e_count = edges_.size();

  g.is_weighted_ =
      std::any_of(edges_.begin(), edges_.end(),
                  [](const Edge& e) { return e.weight != 1.0f; });

  // Counting sort into CSR; the cursor scratch is sized once and reused
  // for both adjacency directions.
  std::vector<uint64_t> cursor;
  cursor.reserve(v_count);

  // Out direction.
  g.out_offsets_.assign(v_count + 1, 0);
  for (const Edge& e : edges_) g.out_offsets_[e.src + 1]++;
  for (uint64_t v = 0; v < v_count; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  g.out_targets_.resize(e_count);
  if (g.is_weighted_) g.out_weights_.resize(e_count);
  cursor.assign(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    const uint64_t slot = cursor[e.src]++;
    g.out_targets_[slot] = e.dst;
    if (g.is_weighted_) g.out_weights_[slot] = e.weight;
  }

  // In direction.
  g.in_offsets_.assign(v_count + 1, 0);
  for (const Edge& e : edges_) g.in_offsets_[e.dst + 1]++;
  for (uint64_t v = 0; v < v_count; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_sources_.resize(e_count);
  cursor.assign(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : edges_) g.in_sources_[cursor[e.dst]++] = e.src;

  edges_.clear();
  edges_.shrink_to_fit();

  if (compress_edges_) g.CompressEdgesInPlace();
  return g;
}

}  // namespace predict
