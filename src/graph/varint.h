// Varint/delta codec for compressed CSR adjacency (graph/graph.h).
//
// Adjacency lists are stored as zig-zag deltas between consecutive
// targets, LEB128-varint encoded. Deduplicated CSR lists are sorted
// ascending, so deltas are small positive gaps (1-2 bytes each on the
// scale-free graphs this repo models); unsorted lists stay correct via
// the zig-zag mapping, they just compress less.
//
// Decoding is block-wise: DecodeDeltaBlock materializes up to
// kDecodeBlock targets at a time into a caller buffer, so the engine's
// scatter loops and Graph::ForEachOutNeighbor alternate a tight decode
// loop with a tight consume loop instead of interleaving per edge.

#ifndef PREDICT_GRAPH_VARINT_H_
#define PREDICT_GRAPH_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace predict::varint {

/// Targets materialized per DecodeDeltaBlock call.
inline constexpr size_t kDecodeBlock = 64;

/// Maximum encoded size of one uint64 (10 LEB128 groups).
inline constexpr size_t kMaxEncodedBytes = 10;

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends the LEB128 encoding of `v` to `out`.
inline void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes one LEB128 value; returns the first unread byte. The caller
/// guarantees `p` points at a complete encoding (streams are only ever
/// produced by AppendU64 and consumed with exact element counts).
inline const uint8_t* DecodeU64(const uint8_t* p, uint64_t* v) {
  uint64_t value = *p & 0x7f;
  if (*p++ >= 0x80) {
    uint32_t shift = 7;
    while (true) {
      value |= static_cast<uint64_t>(*p & 0x7f) << shift;
      if (*p++ < 0x80) break;
      shift += 7;
    }
  }
  *v = value;
  return p;
}

/// Appends the zig-zag delta encoding of `targets` (deltas against
/// `*prev`, which is updated to the last element). Chaining calls with a
/// shared `prev` concatenates lists into one stream.
inline void AppendDeltaList(std::span<const uint32_t> targets, uint32_t* prev,
                            std::vector<uint8_t>* out) {
  uint32_t last = *prev;
  for (const uint32_t t : targets) {
    AppendU64(ZigZag(static_cast<int64_t>(t) - static_cast<int64_t>(last)),
              out);
    last = t;
  }
  *prev = last;
}

/// Decodes `count` (<= kDecodeBlock) delta-encoded targets into `out`,
/// continuing from `*prev`; returns the first unread byte.
inline const uint8_t* DecodeDeltaBlock(const uint8_t* p, size_t count,
                                       uint32_t* prev, uint32_t* out) {
  int64_t last = *prev;
  for (size_t i = 0; i < count; ++i) {
    uint64_t z;
    p = DecodeU64(p, &z);
    last += UnZigZag(z);
    out[i] = static_cast<uint32_t>(last);
  }
  *prev = static_cast<uint32_t>(last);
  return p;
}

}  // namespace predict::varint

#endif  // PREDICT_GRAPH_VARINT_H_
