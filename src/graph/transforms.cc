#include "graph/transforms.h"

#include <algorithm>
#include <unordered_map>

namespace predict {

Result<Graph> ToUndirected(const Graph& graph) {
  const uint64_t v_count = graph.num_vertices();
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges() * 2);
  for (VertexId v = 0; v < v_count; ++v) {
    const auto targets = graph.out_neighbors(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const float w = graph.is_weighted() ? graph.out_weights(v)[i] : 1.0f;
      edges.push_back({v, targets[i], w});
      if (v != targets[i]) edges.push_back({targets[i], v, w});
    }
  }
  // Dedup unordered pairs that already existed in both directions.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());
  return Graph::FromEdges(static_cast<VertexId>(v_count), std::move(edges));
}

Result<SubgraphResult> InducedSubgraph(const Graph& graph,
                                       const std::vector<VertexId>& vertices) {
  const uint64_t v_count = graph.num_vertices();
  std::unordered_map<VertexId, VertexId> new_id;
  new_id.reserve(vertices.size() * 2);
  for (size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    if (v >= v_count) {
      return Status::InvalidArgument("sampled vertex " + std::to_string(v) +
                                     " out of range");
    }
    if (!new_id.emplace(v, static_cast<VertexId>(i)).second) {
      return Status::InvalidArgument("duplicate vertex " + std::to_string(v) +
                                     " in sample");
    }
  }

  std::vector<Edge> edges;
  for (const VertexId v : vertices) {
    const auto it_src = new_id.find(v);
    const auto targets = graph.out_neighbors(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const auto it_dst = new_id.find(targets[i]);
      if (it_dst == new_id.end()) continue;
      const float w = graph.is_weighted() ? graph.out_weights(v)[i] : 1.0f;
      edges.push_back({it_src->second, it_dst->second, w});
    }
  }

  SubgraphResult result;
  result.original_id = vertices;
  PREDICT_ASSIGN_OR_RETURN(
      result.graph,
      Graph::FromEdges(static_cast<VertexId>(vertices.size()), std::move(edges)));
  return result;
}

Result<Graph> Transpose(const Graph& graph) {
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto targets = graph.out_neighbors(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const float w = graph.is_weighted() ? graph.out_weights(v)[i] : 1.0f;
      edges.push_back({targets[i], v, w});
    }
  }
  return Graph::FromEdges(static_cast<VertexId>(graph.num_vertices()),
                          std::move(edges));
}

}  // namespace predict
