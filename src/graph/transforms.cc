// CSR-native transform implementations.
//
// All three transforms assemble the result's out/in CSR arrays directly
// from the parent graph's CSR (two counting passes, dense O(|V|)
// scratch) instead of materializing an intermediate std::vector<Edge>
// and re-validating through GraphBuilder. The edge orderings produced
// are bit-identical to the historical edge-list implementations (which
// the equivalence suite in tests/coldpath_test.cc pins against frozen
// copies of the original code):
//
//   InducedSubgraph  out bucket i = kept targets in parent CSR slot
//                    order; in bucket j = kept sources by (new src asc,
//                    slot order) — exactly the stable counting sort of
//                    the old generated edge list.
//   Transpose        out bucket t = {v : (v,t)} by (v asc, slot order);
//                    in CSR = the parent's out CSR verbatim.
//   ToUndirected     out bucket v = sorted unique union of out(v) and
//                    in(v); the symmetric edge set makes the in CSR a
//                    verbatim copy of the out CSR.

#include "graph/transforms.h"

#include <algorithm>
#include <utility>

namespace predict {

namespace {

// The parent's edges scattered by target — source and weight side by
// side, bucket t holding {(v, w) : (v, t, w)} in (v asc, out-slot)
// order. The graph's own in CSR cannot serve here: its bucket order is
// the original edge-list insertion order, which carries no weight
// alignment. Bucket boundaries are the parent's in_offsets.
struct ReverseAdjacency {
  std::vector<VertexId> sources;
  std::vector<float> weights;
};

ReverseAdjacency ReverseWithWeights(const Graph& graph) {
  const uint64_t v_count = graph.num_vertices();
  ReverseAdjacency rev;
  rev.sources.resize(graph.num_edges());
  rev.weights.resize(graph.num_edges());
  std::vector<uint64_t> cursor(graph.in_offsets().begin(),
                               graph.in_offsets().end() - 1);
  std::vector<VertexId> decode;
  for (VertexId v = 0; v < v_count; ++v) {
    const auto targets = graph.OutNeighborsInto(v, &decode);
    const auto weights = graph.out_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const uint64_t slot = cursor[targets[i]]++;
      rev.sources[slot] = v;
      rev.weights[slot] = weights[i];
    }
  }
  return rev;
}

}  // namespace

Result<Graph> ToUndirected(const Graph& graph) {
  const uint64_t v_count = graph.num_vertices();
  // Default-constructed graphs have empty (not size-1) offset arrays;
  // normalize through the builder like the edge-list implementation did.
  if (v_count == 0) return Graph::FromEdges(0, std::vector<Edge>{});
  const bool weighted = graph.is_weighted();

  // Reverse-edge weights come from the parent's in-adjacency, which does
  // not carry weights; scatter (source, weight) pairs once up front for
  // weighted inputs.
  ReverseAdjacency rev;
  if (weighted) rev = ReverseWithWeights(graph);

  // Per-vertex: gather out- and in-neighbors, sort, dedup. The stable
  // sort keeps the first-gathered edge of every unordered pair, so a
  // forward edge's weight wins over its reverse companion's ("first
  // occurrence wins"). Self-loops contribute one candidate only.
  std::vector<uint64_t> offsets(v_count + 1, 0);
  std::vector<VertexId> targets;
  targets.reserve(graph.num_edges() * 2);
  std::vector<float> weights;
  if (weighted) weights.reserve(graph.num_edges() * 2);

  bool any_weight = false;
  if (!weighted) {
    std::vector<VertexId> scratch;
    std::vector<VertexId> decode;
    for (VertexId v = 0; v < v_count; ++v) {
      scratch.clear();
      const auto out = graph.OutNeighborsInto(v, &decode);
      scratch.insert(scratch.end(), out.begin(), out.end());
      graph.ForEachInSource(v, [&](VertexId u) {
        if (u != v) scratch.push_back(u);  // self-loop contributed above
      });
      std::sort(scratch.begin(), scratch.end());
      for (size_t i = 0; i < scratch.size(); ++i) {
        if (i != 0 && scratch[i] == scratch[i - 1]) continue;
        targets.push_back(scratch[i]);
      }
      offsets[v + 1] = targets.size();
    }
  } else {
    std::vector<std::pair<VertexId, float>> scratch;
    std::vector<VertexId> decode;
    for (VertexId v = 0; v < v_count; ++v) {
      scratch.clear();
      const auto out = graph.OutNeighborsInto(v, &decode);
      for (size_t i = 0; i < out.size(); ++i) {
        scratch.emplace_back(out[i], graph.out_weights(v)[i]);
      }
      const uint64_t in_begin = graph.in_offsets()[v];
      const uint64_t in_end = graph.in_offsets()[v + 1];
      for (uint64_t i = in_begin; i < in_end; ++i) {
        if (rev.sources[i] == v) continue;  // self-loop contributed above
        scratch.emplace_back(rev.sources[i], rev.weights[i]);
      }
      std::stable_sort(
          scratch.begin(), scratch.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      for (size_t i = 0; i < scratch.size(); ++i) {
        if (i != 0 && scratch[i].first == scratch[i - 1].first) continue;
        targets.push_back(scratch[i].first);
        weights.push_back(scratch[i].second);
        any_weight |= scratch[i].second != 1.0f;
      }
      offsets[v + 1] = targets.size();
    }
  }
  if (!any_weight) weights.clear();  // all-1.0 survivors: unweighted result

  // The undirected edge set is symmetric and each bucket is sorted, so
  // the in CSR is byte-for-byte the out CSR.
  std::vector<uint64_t> in_offsets = offsets;
  std::vector<VertexId> in_sources = targets;
  return Graph::FromCsr(std::move(offsets), std::move(targets),
                        std::move(weights), std::move(in_offsets),
                        std::move(in_sources));
}

Result<SubgraphResult> InducedSubgraph(const Graph& graph,
                                       const std::vector<VertexId>& vertices) {
  const uint64_t v_count = graph.num_vertices();
  const uint64_t k = vertices.size();
  constexpr VertexId kAbsent = 0xFFFFFFFFu;

  // Dense O(|V|) remap: new_id[old] = position in the sample, or kAbsent.
  std::vector<VertexId> new_id(v_count, kAbsent);
  for (uint64_t i = 0; i < k; ++i) {
    const VertexId v = vertices[i];
    if (v >= v_count) {
      return Status::InvalidArgument("sampled vertex " + std::to_string(v) +
                                     " out of range");
    }
    if (new_id[v] != kAbsent) {
      return Status::InvalidArgument("duplicate vertex " + std::to_string(v) +
                                     " in sample");
    }
    new_id[v] = static_cast<VertexId>(i);
  }

  // Counting pass: per-new-vertex kept out- and in-degrees.
  std::vector<uint64_t> out_offsets(k + 1, 0);
  std::vector<uint64_t> in_offsets(k + 1, 0);
  for (uint64_t i = 0; i < k; ++i) {
    graph.ForEachOutNeighbor(vertices[i], [&](VertexId t) {
      const VertexId j = new_id[t];
      if (j == kAbsent) return;
      out_offsets[i + 1]++;
      in_offsets[j + 1]++;
    });
  }
  for (uint64_t i = 0; i < k; ++i) {
    out_offsets[i + 1] += out_offsets[i];
    in_offsets[i + 1] += in_offsets[i];
  }
  const uint64_t kept = out_offsets[k];

  // Fill pass: write both adjacency directions straight from the parent
  // CSR. Iterating new sources in ascending order makes the in-buckets
  // come out in (new src asc, parent slot order), matching the stable
  // counting sort the edge-list implementation performed.
  const bool parent_weighted = graph.is_weighted();
  std::vector<VertexId> out_targets(kept);
  std::vector<float> out_weights(parent_weighted ? kept : 0);
  std::vector<VertexId> in_sources(kept);
  std::vector<uint64_t> in_cursor(in_offsets.begin(), in_offsets.end() - 1);
  bool any_weight = false;
  uint64_t out_slot = 0;  // out buckets fill contiguously in i order
  std::vector<VertexId> decode;
  for (uint64_t i = 0; i < k; ++i) {
    const VertexId v = vertices[i];
    const auto targets = graph.OutNeighborsInto(v, &decode);
    for (size_t s = 0; s < targets.size(); ++s) {
      const VertexId j = new_id[targets[s]];
      if (j == kAbsent) continue;
      out_targets[out_slot] = j;
      if (parent_weighted) {
        const float w = graph.out_weights(v)[s];
        out_weights[out_slot] = w;
        any_weight |= w != 1.0f;
      }
      ++out_slot;
      in_sources[in_cursor[j]++] = static_cast<VertexId>(i);
    }
  }
  if (!any_weight) out_weights.clear();  // kept edges all weigh 1.0

  SubgraphResult result;
  result.original_id = vertices;
  result.graph = Graph::FromCsr(std::move(out_offsets), std::move(out_targets),
                                std::move(out_weights), std::move(in_offsets),
                                std::move(in_sources));
  return result;
}

Result<Graph> Transpose(const Graph& graph) {
  const uint64_t v_count = graph.num_vertices();
  if (v_count == 0) return Graph::FromEdges(0, std::vector<Edge>{});
  const bool weighted = graph.is_weighted();

  // The transpose's out CSR has the parent's in-degree profile; fill it
  // by scattering parent edges by target in (src asc, slot order) — the
  // order the edge-list implementation generated reversed edges in.
  std::vector<uint64_t> out_offsets(graph.in_offsets().begin(),
                                    graph.in_offsets().end());
  std::vector<VertexId> out_targets(graph.num_edges());
  std::vector<float> out_weights(weighted ? graph.num_edges() : 0);
  std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
  std::vector<VertexId> decode;
  for (VertexId v = 0; v < v_count; ++v) {
    const auto targets = graph.OutNeighborsInto(v, &decode);
    for (size_t s = 0; s < targets.size(); ++s) {
      const uint64_t slot = cursor[targets[s]]++;
      out_targets[slot] = v;
      if (weighted) out_weights[slot] = graph.out_weights(v)[s];
    }
  }

  // The transpose's in CSR is the parent's out CSR verbatim.
  std::vector<uint64_t> in_offsets(graph.out_offsets().begin(),
                                   graph.out_offsets().end());
  std::vector<VertexId> in_sources;
  if (!graph.edges_compressed()) {
    in_sources.assign(graph.out_targets().begin(), graph.out_targets().end());
  } else {
    in_sources.resize(graph.num_edges());
    uint64_t slot = 0;
    for (VertexId v = 0; v < v_count; ++v) {
      graph.ForEachOutNeighbor(v, [&](VertexId t) { in_sources[slot++] = t; });
    }
  }
  return Graph::FromCsr(std::move(out_offsets), std::move(out_targets),
                        std::move(out_weights), std::move(in_offsets),
                        std::move(in_sources));
}

}  // namespace predict
