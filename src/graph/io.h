// Edge-list text I/O.
//
// Format: one edge per line, "src dst [weight]", '#'-prefixed comment
// lines ignored — the format used by SNAP (the source of the paper's
// LiveJournal dataset) and by the WebGraph-derived edge dumps of UK-2002.

#ifndef PREDICT_GRAPH_IO_H_
#define PREDICT_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace predict {

/// Reads a graph from an edge-list text file. `num_vertices` of 0 means
/// "infer as max id + 1".
Result<Graph> ReadEdgeListFile(const std::string& path,
                               VertexId num_vertices = 0);

/// Parses a graph from an in-memory edge-list string (same format).
Result<Graph> ParseEdgeList(const std::string& text, VertexId num_vertices = 0);

/// Writes the graph as an edge-list text file. Weights are emitted only
/// for weighted graphs.
Status WriteEdgeListFile(const Graph& graph, const std::string& path);

/// \brief Compact binary graph format ("PRDG"), for graphs too large to
/// re-parse as text on every run.
///
/// Layout: magic "PRDG" (4 bytes), format version u32, |V| u64, |E| u64,
/// weighted u8, then |E| edges as (src u32, dst u32[, weight f32]).
/// Little-endian; intended as a local cache format, not an interchange
/// format.
Status WriteBinaryGraphFile(const Graph& graph, const std::string& path);

/// Reads a graph written by WriteBinaryGraphFile.
Result<Graph> ReadBinaryGraphFile(const std::string& path);

}  // namespace predict

#endif  // PREDICT_GRAPH_IO_H_
