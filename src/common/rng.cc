#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace predict {

namespace {

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: expands a single seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected time, no O(n) shuffle needed.
  std::vector<uint64_t> out;
  out.reserve(k);
  // For dense k, a partial Fisher-Yates over an index array is faster and
  // still O(n); Floyd suffices for both given our sizes.
  std::vector<bool> seen;
  if (k * 2 >= n) {
    // Partial Fisher-Yates.
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + Uniform(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  seen.assign(n, false);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    if (seen[t]) t = j;
    seen[t] = true;
    out.push_back(t);
  }
  return out;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the current state with the stream id; does not disturb *this.
  uint64_t x = s_[0] ^ (stream_id * 0xD2B74407B1CE6E93ULL + 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(x));
}

double Rng::HashToUnitDouble(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t x = seed;
  x ^= a * 0xFF51AFD7ED558CCDULL;
  x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  x ^= b * 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 29)) * 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace predict
