// Retry policies and deadlines for the prediction pipeline.
//
// RetryPolicy re-attempts transient failures (IOError, Internal,
// ResourceExhausted — never InvalidArgument/NotFound, which retrying
// cannot fix) with deterministic exponential backoff: the backoff of
// attempt k is a pure function of the policy, including its seeded
// jitter, so retry schedules replay bit-for-bit.
//
// Deadline is a monotonic-clock budget shared by every stage of one
// request: each stage boundary checks it before starting, and the retry
// loop refuses to back off past it. An expired deadline surfaces as
// StatusCode::kDeadlineExceeded, which is NOT retryable — waiting longer
// cannot un-expire a deadline.

#ifndef PREDICT_COMMON_RETRY_H_
#define PREDICT_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace predict {

/// \brief A monotonic wall-clock budget. Default-constructed = infinite.
class Deadline {
 public:
  Deadline() = default;

  /// A deadline `seconds` from now (clamped to >= 0).
  static Deadline After(double seconds);
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return infinite_; }
  bool Expired() const;
  /// Seconds left; +infinity when infinite, 0 when expired.
  double RemainingSeconds() const;

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// \brief Bounded re-attempts with deterministic exponential backoff.
struct RetryPolicy {
  /// Total attempts including the first; 1 = no retry (the default, so a
  /// default-constructed pipeline behaves exactly as before).
  int max_attempts = 1;
  /// Backoff slept after the first failed attempt; 0 = no sleep.
  double initial_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.5;
  /// Symmetric jitter as a fraction of the backoff, drawn from a
  /// stateless seeded hash — deterministic per (seed, attempt).
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 0;

  /// Backoff slept after `failed_attempts` (>= 1) failures. Exponential,
  /// clamped to max_backoff_seconds, jittered deterministically.
  double BackoffSeconds(int failed_attempts) const;
};

/// True for error categories a retry can plausibly fix (IOError,
/// Internal, ResourceExhausted); false for everything else, including
/// DeadlineExceeded and OK.
bool IsRetryableStatus(const Status& status);

/// Per-boundary attempt/latency accounting, surfaced per request in
/// PredictionReport::accounting.
struct AttemptAccounting {
  int attempts = 0;
  double backoff_seconds = 0.0;
};

namespace retry_internal {
void SleepForSeconds(double seconds);
}

/// Runs `fn` (returning Result<T> or Status-convertible Result) under
/// `policy` and `deadline`. Retries only retryable failures, sleeping
/// the policy's deterministic backoff between attempts; gives up when
/// attempts are exhausted, the failure is not retryable, or the next
/// backoff would overrun the deadline. `what` labels deadline errors.
template <typename Fn>
auto RunWithRetry(const RetryPolicy& policy, const Deadline& deadline,
                  const char* what, Fn&& fn,
                  AttemptAccounting* accounting = nullptr) -> decltype(fn()) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded(
          std::string(what) + ": deadline expired before attempt " +
          std::to_string(attempt));
    }
    auto result = fn();
    if (accounting != nullptr) ++accounting->attempts;
    if (result.ok() || !IsRetryableStatus(result.status()) ||
        attempt >= max_attempts) {
      return result;
    }
    const double backoff = policy.BackoffSeconds(attempt);
    if (!deadline.infinite() && backoff >= deadline.RemainingSeconds()) {
      return StatusAnnotate(result.status(),
                            std::string(what) + ": giving up after attempt " +
                                std::to_string(attempt) +
                                " (backoff would overrun the deadline)");
    }
    if (backoff > 0.0) {
      retry_internal::SleepForSeconds(backoff);
      if (accounting != nullptr) accounting->backoff_seconds += backoff;
    }
  }
}

}  // namespace predict

#endif  // PREDICT_COMMON_RETRY_H_
