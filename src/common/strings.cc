#include "common/strings.h"

#include <cstdint>
#include <cstdio>

namespace predict {

std::vector<std::string> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(delimiter, start);
    if (end == std::string_view::npos) end = input.size();
    if (end > start) out.emplace_back(input.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  const char* ws = " \t\r\n";
  const size_t begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return {};
  const size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace predict
