// Deterministic fault injection: a process-wide registry of named fail
// points compiled into error-prone sites (history.load, profile.run,
// fit.ols, sample.walk, ...).
//
// A fail point is a named site that can be armed with an activation
// policy; when armed and triggered it makes the site return an injected
// error Status exactly as if the real operation had failed. Policies are
// deterministic so chaos tests and the chaos_gate bench can replay the
// same fault schedule bit-for-bit:
//
//   off                 disarmed
//   once                trigger on the first hit only
//   times:N             trigger on the first N hits
//   every:N             trigger on every Nth hit (N, 2N, ...)
//   prob:P[:seed=S]     trigger with probability P, decided by a
//                       stateless hash (common/rng HashToUnitDouble) of
//                       (S, context, site name) — with a context the
//                       decision is independent of hit order and thread
//                       schedule, which is what makes fault schedules
//                       reproducible through the concurrent service
//   [:code=io|internal|unavailable]  error category of the injection
//
// Configuration comes from tests (Configure), the CLI (--failpoints),
// or the PREDICT_FAILPOINTS environment variable, e.g.
//   PREDICT_FAILPOINTS="profile.run=prob:0.3:seed=7;history.load=once"
//
// Cost when disarmed: one relaxed atomic load (PREDICT_FAIL_POINT
// expands to a branch on fail::AnyActive()); sites pay nothing until a
// fail point anywhere in the process is armed.

#ifndef PREDICT_COMMON_FAILPOINT_H_
#define PREDICT_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace predict::fail {

namespace detail {
/// Number of currently armed fail points; the disarmed fast path.
extern std::atomic<int> g_armed_count;
}  // namespace detail

/// No deterministic context: hit-counter-driven decisions (sequential
/// tests). Sites on concurrent paths should pass a real context instead.
inline constexpr uint64_t kNoContext = ~uint64_t{0};

/// True iff any fail point is armed. Inline relaxed load: the whole cost
/// of fault injection on the zero-fault path.
inline bool AnyActive() {
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Evaluates the fail point `name`. Returns the injected error when the
/// site is armed and its policy fires on this hit, OK otherwise.
/// `context` keys probability decisions to the work item (e.g. a cache
/// key hash) instead of the hit order; pass kNoContext when there is
/// none. Thread-safe.
Status Inject(std::string_view name, uint64_t context = kNoContext);

/// Arms `name` with a policy spec ("once", "times:3", "every:2",
/// "prob:0.3:seed=7:code=io", "off"). InvalidArgument on a bad spec.
Status Configure(const std::string& name, const std::string& spec);

/// Parses "name=spec;name=spec;..." (the CLI/env syntax) and arms each.
Status ConfigureFromString(const std::string& config);

/// Arms from the PREDICT_FAILPOINTS environment variable (no-op when
/// unset/empty). Runs automatically once at process start.
Status ConfigureFromEnv();

/// Disarms one fail point / all fail points.
void Disable(const std::string& name);
void DisableAll();

/// Cumulative per-fail-point accounting (kept across Disable).
struct FailPointStats {
  uint64_t hits = 0;      ///< times an armed site evaluated the policy
  uint64_t triggers = 0;  ///< times the policy injected a failure
};
FailPointStats StatsFor(const std::string& name);

/// FNV-1a hash of a context string, for keying `prob` decisions to a
/// work item (cache key, dataset, request id).
uint64_t HashContext(std::string_view context);

}  // namespace predict::fail

/// Injects at a named site: returns the injected error Status from the
/// enclosing function when the fail point fires. Zero-cost (one relaxed
/// atomic load) when no fail point is armed.
#define PREDICT_FAIL_POINT(name)                                \
  do {                                                          \
    if (::predict::fail::AnyActive()) {                         \
      ::predict::Status _fp_st = ::predict::fail::Inject(name); \
      if (!_fp_st.ok()) return _fp_st;                          \
    }                                                           \
  } while (0)

/// Same, with a deterministic context hash (fail::HashContext) so `prob`
/// policies fire independently of hit order and thread schedule.
#define PREDICT_FAIL_POINT_CTX(name, context_hash)                   \
  do {                                                               \
    if (::predict::fail::AnyActive()) {                              \
      ::predict::Status _fp_st =                                     \
          ::predict::fail::Inject(name, context_hash);               \
      if (!_fp_st.ok()) return _fp_st;                               \
    }                                                                \
  } while (0)

#endif  // PREDICT_COMMON_FAILPOINT_H_
