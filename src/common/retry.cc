#include "common/retry.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/rng.h"

namespace predict {

Deadline Deadline::After(double seconds) {
  Deadline deadline;
  deadline.infinite_ = false;
  deadline.at_ = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(std::max(0.0, seconds)));
  return deadline;
}

bool Deadline::Expired() const {
  if (infinite_) return false;
  return std::chrono::steady_clock::now() >= at_;
}

double Deadline::RemainingSeconds() const {
  if (infinite_) return std::numeric_limits<double>::infinity();
  const auto left = at_ - std::chrono::steady_clock::now();
  return std::max(0.0, std::chrono::duration<double>(left).count());
}

double RetryPolicy::BackoffSeconds(int failed_attempts) const {
  if (failed_attempts < 1 || initial_backoff_seconds <= 0.0) return 0.0;
  double backoff = initial_backoff_seconds;
  for (int i = 1; i < failed_attempts; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_seconds) break;
  }
  backoff = std::min(backoff, max_backoff_seconds);
  if (jitter_fraction > 0.0) {
    // Stateless draw in [-1, 1): same (seed, attempt) -> same jitter.
    const double unit = Rng::HashToUnitDouble(
        jitter_seed, static_cast<uint64_t>(failed_attempts),
        0x7261657472790000ULL);  // "retry" salt
    backoff *= 1.0 + jitter_fraction * (2.0 * unit - 1.0);
  }
  return std::max(0.0, backoff);
}

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

namespace retry_internal {
void SleepForSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}
}  // namespace retry_internal

}  // namespace predict
