// Result<T>: Status-or-value, the return type of fallible factories.
//
// Mirrors arrow::Result / absl::StatusOr. A Result either holds a value of
// type T or an error Status; it never holds both and never holds an OK
// status without a value.

#ifndef PREDICT_COMMON_RESULT_H_
#define PREDICT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace predict {

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, enables `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, enables
  /// `return Status::InvalidArgument(...)`). Must not be an OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the Result. Requires ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define PREDICT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).MoveValue();

#define PREDICT_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define PREDICT_ASSIGN_OR_RETURN_NAME(a, b) PREDICT_ASSIGN_OR_RETURN_CAT(a, b)

#define PREDICT_ASSIGN_OR_RETURN(lhs, rexpr) \
  PREDICT_ASSIGN_OR_RETURN_IMPL(             \
      PREDICT_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

}  // namespace predict

#endif  // PREDICT_COMMON_RESULT_H_
