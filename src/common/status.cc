#include "common/status.h"

namespace predict {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status StatusAnnotate(const Status& status, std::string_view context) {
  if (status.ok()) return status;
  std::string message(context);
  if (!status.message().empty()) {
    message += ": ";
    message += status.message();
  }
  return Status(status.code(), std::move(message));
}

}  // namespace predict
