// Deterministic random number generation.
//
// Every source of randomness in PREDIcT flows through Rng so that graph
// generation, sampling, and simulated-clock noise are reproducible
// bit-for-bit from a seed, independent of platform and thread count.

#ifndef PREDICT_COMMON_RNG_H_
#define PREDICT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace predict {

/// \brief A small, fast, deterministic PRNG (xoshiro256** core).
///
/// Not cryptographically secure; used only for simulation reproducibility.
/// We intentionally avoid std::mt19937 + std::uniform_*_distribution in
/// library code because the distributions are not specified bit-exactly
/// across standard library implementations.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal deviate (Box–Muller, deterministic).
  double NextGaussian();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Returns k distinct indices sampled uniformly without replacement from
  /// [0, n). Requires k <= n. O(n) when k is large, reservoir-free.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Derives an independent child generator; used to give each worker or
  /// superstep its own deterministic stream.
  Rng Fork(uint64_t stream_id) const;

  /// Stateless deterministic hash of (seed, a, b) to a double in [0, 1).
  /// Used by the cost clock so noise depends only on (superstep, worker).
  static double HashToUnitDouble(uint64_t seed, uint64_t a, uint64_t b);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace predict

#endif  // PREDICT_COMMON_RNG_H_
