// Status: error-handling primitive used across all public PREDIcT APIs.
//
// Follows the RocksDB / Apache Arrow convention: functions that can fail
// return a Status (or a Result<T>, see result.h) instead of throwing.
// Exceptions never cross a public API boundary.

#ifndef PREDICT_COMMON_STATUS_H_
#define PREDICT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace predict {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,  ///< e.g. the simulated cluster ran out of memory
  kFailedPrecondition = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kIOError = 9,
  kDeadlineExceeded = 10,  ///< a request or stage ran past its deadline
};

/// \brief Result of an operation that may fail.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message);

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status Internal(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status IOError(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsFailedPrecondition() const { return code_ == StatusCode::kFailedPrecondition; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Human-readable representation, e.g. "InvalidArgument: negative ratio".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Prepends provenance to an error's message, keeping its code: annotating
/// an IOError "cannot open 'x'" with "history.load" and then
/// "profile_stage" yields "IOError: profile_stage: history.load: cannot
/// open 'x'". OK statuses pass through untouched. Use at stage and
/// subsystem boundaries so errors keep their full path to the root cause
/// instead of being replaced by a generic outer message.
Status StatusAnnotate(const Status& status, std::string_view context);

/// Returns `s` from the current function if it is an error.
#define PREDICT_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::predict::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace predict

#endif  // PREDICT_COMMON_STATUS_H_
