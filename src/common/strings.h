// Small string and formatting helpers shared across modules.

#ifndef PREDICT_COMMON_STRINGS_H_
#define PREDICT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace predict {

/// Splits `input` on `delimiter`, dropping empty tokens.
std::vector<std::string> SplitString(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` significant digits (for table output).
std::string FormatDouble(double value, int digits = 4);

/// Formats seconds with adaptive units for human-readable reports
/// (e.g. "43.2 s", "3.1 min").
std::string FormatSeconds(double seconds);

/// Formats a byte count with adaptive units (e.g. "1.4 GB").
std::string FormatBytes(uint64_t bytes);

/// Left-pads `s` with spaces to `width` characters (for table output).
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads `s` with spaces to `width` characters (for table output).
std::string PadRight(const std::string& s, size_t width);

}  // namespace predict

#endif  // PREDICT_COMMON_STRINGS_H_
