#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/strings.h"

namespace predict::fail {

namespace detail {
std::atomic<int> g_armed_count{0};
}  // namespace detail

namespace {

enum class Mode { kOff, kOnce, kTimes, kEveryNth, kProbability };

struct Policy {
  Mode mode = Mode::kOff;
  uint64_t n = 1;          // times:N / every:N
  double p = 0.0;          // prob:P
  uint64_t seed = 0;       // prob seed
  StatusCode code = StatusCode::kInternal;
};

struct Entry {
  Policy policy;
  FailPointStats stats;
  bool armed = false;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Entry, std::less<>> entries;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

const char* CodeLabel(StatusCode code) {
  switch (code) {
    case StatusCode::kIOError:
      return "io";
    case StatusCode::kResourceExhausted:
      return "unavailable";
    default:
      return "internal";
  }
}

Status MakeInjected(std::string_view name, StatusCode code,
                    const std::string& detail) {
  std::string message = "injected fault at '";
  message += name;
  message += "' (";
  message += detail;
  message += ")";
  return Status(code, std::move(message));
}

Result<Policy> ParseSpec(const std::string& spec) {
  Policy policy;
  const std::vector<std::string> parts = SplitString(spec, ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("empty fail-point spec");
  }
  size_t next = 1;
  const std::string& mode = parts[0];
  auto parse_count = [&](const char* what) -> Result<uint64_t> {
    if (next >= parts.size()) {
      return Status::InvalidArgument(std::string(what) +
                                     " needs a count, e.g. '" + what + ":3'");
    }
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(parts[next].c_str(), &end, 10);
    if (end == parts[next].c_str() || *end != '\0' || value == 0) {
      return Status::InvalidArgument("bad count '" + parts[next] + "' in '" +
                                     spec + "'");
    }
    ++next;
    return static_cast<uint64_t>(value);
  };
  if (mode == "off") {
    policy.mode = Mode::kOff;
  } else if (mode == "once") {
    policy.mode = Mode::kOnce;
  } else if (mode == "times") {
    policy.mode = Mode::kTimes;
    PREDICT_ASSIGN_OR_RETURN(policy.n, parse_count("times"));
  } else if (mode == "every") {
    policy.mode = Mode::kEveryNth;
    PREDICT_ASSIGN_OR_RETURN(policy.n, parse_count("every"));
  } else if (mode == "prob") {
    policy.mode = Mode::kProbability;
    if (next >= parts.size()) {
      return Status::InvalidArgument("prob needs a probability, e.g. "
                                     "'prob:0.3'");
    }
    char* end = nullptr;
    policy.p = std::strtod(parts[next].c_str(), &end);
    if (end == parts[next].c_str() || *end != '\0' || policy.p < 0.0 ||
        policy.p > 1.0) {
      return Status::InvalidArgument("bad probability '" + parts[next] +
                                     "' in '" + spec + "' (want [0, 1])");
    }
    ++next;
  } else {
    return Status::InvalidArgument(
        "unknown fail-point mode '" + mode +
        "' (want off|once|times:N|every:N|prob:P)");
  }
  // Trailing key=value options, shared by every mode.
  for (; next < parts.size(); ++next) {
    const std::string& option = parts[next];
    if (StartsWith(option, "seed=")) {
      char* end = nullptr;
      const std::string text = option.substr(5);
      policy.seed = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad seed in '" + spec + "'");
      }
    } else if (option == "code=io") {
      policy.code = StatusCode::kIOError;
    } else if (option == "code=internal") {
      policy.code = StatusCode::kInternal;
    } else if (option == "code=unavailable") {
      policy.code = StatusCode::kResourceExhausted;
    } else {
      return Status::InvalidArgument("unknown fail-point option '" + option +
                                     "' in '" + spec + "'");
    }
  }
  return policy;
}

// Forces env configuration before main() so PREDICT_FAILPOINTS works for
// any binary linking the library, without an explicit init call.
const bool g_env_configured = [] {
  const Status status = ConfigureFromEnv();
  if (!status.ok()) {
    std::fprintf(stderr, "warning: PREDICT_FAILPOINTS ignored: %s\n",
                 status.ToString().c_str());
  }
  return true;
}();

}  // namespace

uint64_t HashContext(std::string_view context) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : context) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV-1a prime
  }
  return hash;
}

Status Inject(std::string_view name, uint64_t context) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.entries.find(name);
  if (it == registry.entries.end() || !it->second.armed) return Status::OK();
  Entry& entry = it->second;
  const uint64_t hit = ++entry.stats.hits;  // 1-based
  const Policy& policy = entry.policy;

  bool fire = false;
  std::string detail;
  switch (policy.mode) {
    case Mode::kOff:
      break;
    case Mode::kOnce:
      fire = hit == 1;
      detail = "once";
      break;
    case Mode::kTimes:
      fire = hit <= policy.n;
      detail = "hit " + std::to_string(hit) + "/" + std::to_string(policy.n);
      break;
    case Mode::kEveryNth:
      fire = hit % policy.n == 0;
      detail = "every " + std::to_string(policy.n) + ", hit " +
               std::to_string(hit);
      break;
    case Mode::kProbability: {
      // Context-keyed decisions depend only on (seed, context, name):
      // independent of hit order, so the same schedule replays through
      // any thread interleaving. Counter-keyed decisions (no context)
      // depend on hit order and suit sequential tests.
      const uint64_t a = context != kNoContext ? context : hit;
      const double draw = Rng::HashToUnitDouble(
          policy.seed, a, HashContext(name) ^ (context != kNoContext));
      fire = draw < policy.p;
      char buf[64];
      if (context != kNoContext) {
        std::snprintf(buf, sizeof(buf), "ctx=%016llx",
                      static_cast<unsigned long long>(context));
      } else {
        std::snprintf(buf, sizeof(buf), "hit %llu",
                      static_cast<unsigned long long>(hit));
      }
      detail = buf;
      break;
    }
  }
  if (!fire) return Status::OK();
  ++entry.stats.triggers;
  detail += ", code=";
  detail += CodeLabel(policy.code);
  return MakeInjected(name, policy.code, detail);
}

Status Configure(const std::string& name, const std::string& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("fail-point name must not be empty");
  }
  PREDICT_ASSIGN_OR_RETURN(const Policy policy, ParseSpec(spec));
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  Entry& entry = registry.entries[name];
  const bool was_armed = entry.armed;
  entry.policy = policy;
  entry.stats = FailPointStats{};  // a fresh arming restarts the schedule
  entry.armed = policy.mode != Mode::kOff;
  if (entry.armed != was_armed) {
    detail::g_armed_count.fetch_add(entry.armed ? 1 : -1,
                                    std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ConfigureFromString(const std::string& config) {
  for (const std::string& assignment : SplitString(config, ';')) {
    const std::string trimmed(TrimWhitespace(assignment));
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    // 'seed=' / 'code=' options also contain '=', so split on the first
    // one only; a missing '=' means a bare name, which is invalid.
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected name=spec, got '" + trimmed +
                                     "'");
    }
    PREDICT_RETURN_NOT_OK(
        Configure(trimmed.substr(0, eq), trimmed.substr(eq + 1)));
  }
  return Status::OK();
}

Status ConfigureFromEnv() {
  const char* config = std::getenv("PREDICT_FAILPOINTS");
  if (config == nullptr || config[0] == '\0') return Status::OK();
  return StatusAnnotate(ConfigureFromString(config), "PREDICT_FAILPOINTS");
}

void Disable(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.entries.find(name);
  if (it == registry.entries.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.policy.mode = Mode::kOff;
  detail::g_armed_count.fetch_add(-1, std::memory_order_relaxed);
}

void DisableAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& [name, entry] : registry.entries) {
    if (!entry.armed) continue;
    entry.armed = false;
    entry.policy.mode = Mode::kOff;
    detail::g_armed_count.fetch_add(-1, std::memory_order_relaxed);
  }
}

FailPointStats StatsFor(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.entries.find(name);
  return it == registry.entries.end() ? FailPointStats{} : it->second.stats;
}

}  // namespace predict::fail
