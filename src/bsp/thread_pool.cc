#include "bsp/thread_pool.h"

namespace predict::bsp {

ThreadPool::ThreadPool(uint32_t num_threads) {
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(uint64_t count,
                             const std::function<void(uint64_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    for (uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  current_fn_ = &fn;
  next_index_ = 0;
  total_count_ = count;
  completed_ = 0;
  ++generation_;
  work_ready_.notify_all();

  // The caller participates too.
  while (true) {
    const uint64_t i = next_index_;
    if (i >= total_count_) break;
    ++next_index_;
    lock.unlock();
    fn(i);
    lock.lock();
    ++completed_;
  }
  work_done_.wait(lock, [this] { return completed_ == total_count_; });
  current_fn_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [&] {
      return shutting_down_ ||
             (current_fn_ != nullptr && generation_ != seen_generation);
    });
    if (shutting_down_) return;
    seen_generation = generation_;
    while (current_fn_ != nullptr) {
      const uint64_t i = next_index_;
      if (i >= total_count_) break;
      ++next_index_;
      const auto* fn = current_fn_;
      lock.unlock();
      (*fn)(i);
      lock.lock();
      ++completed_;
      if (completed_ == total_count_) work_done_.notify_all();
    }
  }
}

}  // namespace predict::bsp
