#include "bsp/thread_pool.h"

#include <algorithm>

namespace predict::bsp {

namespace {

/// Chunks per participant; small enough to amortize the atomic claim,
/// large enough to rebalance when fn(i) costs vary across i (skewed
/// simulated workers).
constexpr uint64_t kChunksPerParticipant = 8;

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunChunks(const std::function<void(uint64_t)>& fn) {
  const uint64_t total = total_count_;
  const uint64_t grain = grain_;
  uint64_t done = 0;
  while (true) {
    const uint64_t begin = next_index_.fetch_add(grain);
    if (begin >= total) break;
    const uint64_t end = std::min(begin + grain, total);
    for (uint64_t i = begin; i < end; ++i) fn(i);
    done += end - begin;
  }
  if (done != 0) completed_.fetch_add(done);
}

void ThreadPool::ParallelFor(uint64_t count,
                             const std::function<void(uint64_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    for (uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const uint64_t participants = threads_.size() + 1;  // caller joins in
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_fn_ = &fn;
    total_count_ = count;
    grain_ = std::max<uint64_t>(1, count / (participants * kChunksPerParticipant));
    next_index_.store(0);
    completed_.store(0);
    ++generation_;
  }
  work_ready_.notify_all();

  RunChunks(fn);

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] {
    return completed_.load() == total_count_ && active_workers_ == 0;
  });
  current_fn_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [&] {
      return shutting_down_ ||
             (current_fn_ != nullptr && generation_ != seen_generation);
    });
    if (shutting_down_) return;
    seen_generation = generation_;
    const auto* fn = current_fn_;
    ++active_workers_;
    lock.unlock();
    RunChunks(*fn);
    lock.lock();
    --active_workers_;
    // Last one out wakes the caller (who may also be waiting for the
    // index space to drain).
    if (active_workers_ == 0 && completed_.load() == total_count_) {
      work_done_.notify_all();
    }
  }
}

}  // namespace predict::bsp
