// The BSP execution engine (the repo's Giraph stand-in).
//
// Executes a VertexProgram over a Graph in supersteps with Pregel
// semantics: messages sent in superstep S are delivered in S+1, vertices
// vote to halt and are reactivated by incoming messages, aggregators
// reduce per superstep, and a master hook can stop the job. Workers are
// simulated: vertices are hash-partitioned across `num_workers` logical
// workers whose Table-1 counters drive the simulated cost clock
// (bsp/cost_profile.h) and the simulated memory model.
//
// Host threads only accelerate the simulation — simulated time, counters
// and results are bit-identical for any thread count.

#ifndef PREDICT_BSP_ENGINE_H_
#define PREDICT_BSP_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bsp/aggregators.h"
#include "bsp/cost_profile.h"
#include "bsp/counters.h"
#include "bsp/thread_pool.h"
#include "bsp/vertex_program.h"
#include "common/result.h"
#include "graph/graph.h"

namespace predict::bsp {

/// Configuration of one BSP job. Matches the paper's assumption (iii)
/// that sample runs and actual runs share the execution framework and
/// system configuration: PREDIcT passes the same EngineOptions to both.
struct EngineOptions {
  /// Simulated workers. The paper's cluster runs 29 workers + 1 master.
  uint32_t num_workers = 29;

  /// Host threads executing the simulation. -1 = one per hardware thread,
  /// 0 = run inline on the caller.
  int num_threads = -1;

  /// Safety stop; hitting it sets HaltReason::kMaxSupersteps.
  int max_supersteps = 500;

  /// Simulated cluster memory. 0 = unlimited. When the per-superstep
  /// footprint (graph + vertex state + buffered messages) exceeds this,
  /// the run fails with ResourceExhausted — Giraph's no-spill OOM
  /// behaviour described in §5 "Memory Limits".
  uint64_t memory_budget_bytes = 0;

  CostProfile cost_profile;
};

/// Bytes of bookkeeping the memory model charges per buffered message
/// (destination id, envelope, allocator slack).
inline constexpr uint64_t kMessageEnvelopeBytes = 16;

namespace internal {

/// All mutable state of a run; VertexContext methods are defined against
/// this so the hot path needs no virtual dispatch except the program's
/// own hooks.
template <typename V, typename M>
class EngineState {
 public:
  EngineState(const Graph& graph, VertexProgram<V, M>* program,
              const EngineOptions& options, ThreadPool* pool)
      : graph_(&graph),
        program_(program),
        options_(options),
        pool_(pool),
        num_workers_(options.num_workers) {}

  Result<RunStats> Run();

  std::vector<V>& values() { return values_; }

 private:
  friend class VertexContext<V, M>;

  struct OutMessage {
    VertexId target;
    M payload;
  };

  WorkerId WorkerOf(VertexId v) const { return v % num_workers_; }

  void ComputeWorker(WorkerId w);
  void DeliverToWorker(WorkerId w);
  uint64_t StateBytesOfWorker(WorkerId w) const;

  const Graph* graph_;
  VertexProgram<V, M>* program_;
  EngineOptions options_;
  ThreadPool* pool_;
  uint32_t num_workers_;

  int superstep_ = 0;
  std::vector<V> values_;
  std::vector<uint8_t> active_;
  std::vector<std::vector<M>> inbox_cur_;
  std::vector<std::vector<M>> inbox_next_;
  std::vector<std::vector<OutMessage>> outbox_;  // [sender * W + dest]
  std::vector<WorkerCounters> counters_;

  std::vector<AggregatorOp> agg_ops_;
  std::vector<std::string> agg_names_;
  std::vector<std::vector<double>> agg_partial_;  // [worker][aggregator]
  std::vector<double> agg_prev_;
  std::vector<double> agg_reduced_;
};

template <typename V, typename M>
void EngineState<V, M>::ComputeWorker(WorkerId w) {
  const uint64_t n = graph_->num_vertices();
  WorkerCounters& counters = counters_[w];
  for (uint64_t v = w; v < n; v += num_workers_) {
    const VertexId vid = static_cast<VertexId>(v);
    std::vector<M>& inbox = inbox_cur_[vid];
    if (!active_[vid] && inbox.empty()) continue;
    active_[vid] = 1;  // receipt of a message reactivates (Pregel rule)
    counters.active_vertices++;
    VertexContext<V, M> ctx(this, w, vid);
    program_->Compute(&ctx, std::span<const M>(inbox.data(), inbox.size()));
    // Release the mailbox eagerly; transient early-superstep bursts (e.g.
    // connected components) would otherwise pin capacity for the whole run.
    std::vector<M>().swap(inbox);
  }
}

template <typename V, typename M>
void EngineState<V, M>::DeliverToWorker(WorkerId w) {
  for (WorkerId sender = 0; sender < num_workers_; ++sender) {
    std::vector<OutMessage>& box = outbox_[sender * num_workers_ + w];
    for (OutMessage& out : box) {
      inbox_next_[out.target].push_back(std::move(out.payload));
    }
    box.clear();
  }
}

template <typename V, typename M>
uint64_t EngineState<V, M>::StateBytesOfWorker(WorkerId w) const {
  const uint64_t n = graph_->num_vertices();
  uint64_t bytes = 0;
  for (uint64_t v = w; v < n; v += num_workers_) {
    bytes += program_->VertexStateBytes(values_[v]);
  }
  return bytes;
}

template <typename V, typename M>
Result<RunStats> EngineState<V, M>::Run() {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t n = graph_->num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (num_workers_ == 0) return Status::InvalidArgument("num_workers == 0");
  if (options_.max_supersteps <= 0) {
    return Status::InvalidArgument("max_supersteps must be positive");
  }

  RunStats stats;
  stats.worker_outbound_edges = PerWorkerOutboundEdges(*graph_, num_workers_);
  stats.static_critical_worker = ArgMaxWorker(stats.worker_outbound_edges);
  stats.setup_seconds = options_.cost_profile.setup_seconds;
  stats.read_seconds =
      options_.cost_profile.ReadSeconds(graph_->MemoryFootprintBytes());

  // Aggregators.
  AggregatorRegistry registry;
  program_->RegisterAggregators(&registry);
  for (const AggregatorDef& def : registry.defs()) {
    agg_ops_.push_back(def.op);
    agg_names_.push_back(def.name);
  }
  agg_prev_.resize(agg_ops_.size());
  agg_reduced_.resize(agg_ops_.size());
  for (size_t i = 0; i < agg_ops_.size(); ++i) {
    agg_prev_[i] = AggregatorIdentity(agg_ops_[i]);
  }

  // State initialization ("setup" + "read" phases of §2.2).
  values_.resize(n);
  active_.assign(n, 1);
  inbox_cur_.resize(n);
  inbox_next_.resize(n);
  outbox_.resize(static_cast<size_t>(num_workers_) * num_workers_);
  counters_.assign(num_workers_, WorkerCounters{});
  agg_partial_.assign(num_workers_, {});
  pool_->ParallelFor(num_workers_, [&](uint64_t w) {
    for (uint64_t v = w; v < n; v += num_workers_) {
      values_[v] = program_->InitialValue(static_cast<VertexId>(v), *graph_);
    }
  });

  const uint64_t graph_bytes = graph_->MemoryFootprintBytes();
  HaltReason halt_reason = HaltReason::kMaxSupersteps;

  for (superstep_ = 0; superstep_ < options_.max_supersteps; ++superstep_) {
    // Reset per-superstep accounting.
    for (WorkerId w = 0; w < num_workers_; ++w) {
      counters_[w] = WorkerCounters{};
      counters_[w].total_vertices = n / num_workers_ + (w < n % num_workers_);
      agg_partial_[w].assign(agg_ops_.size(), 0.0);
      for (size_t i = 0; i < agg_ops_.size(); ++i) {
        agg_partial_[w][i] = AggregatorIdentity(agg_ops_[i]);
      }
    }

    // Compute phase (concurrent across workers).
    pool_->ParallelFor(num_workers_,
                       [&](uint64_t w) { ComputeWorker(static_cast<WorkerId>(w)); });

    // Reduce aggregators deterministically in worker order.
    for (size_t i = 0; i < agg_ops_.size(); ++i) {
      double value = AggregatorIdentity(agg_ops_[i]);
      for (WorkerId w = 0; w < num_workers_; ++w) {
        value = AggregatorReduce(agg_ops_[i], value, agg_partial_[w][i]);
      }
      agg_reduced_[i] = value;
    }

    // Messaging phase: deliver into next-superstep mailboxes.
    pool_->ParallelFor(num_workers_,
                       [&](uint64_t w) { DeliverToWorker(static_cast<WorkerId>(w)); });

    // Superstep accounting.
    SuperstepStats step;
    step.superstep = superstep_;
    step.per_worker = counters_;
    step.simulated_seconds = options_.cost_profile.SuperstepSeconds(
        counters_, superstep_, &step.critical_worker);
    for (size_t i = 0; i < agg_names_.size(); ++i) {
      step.aggregates[agg_names_[i]] = agg_reduced_[i];
    }

    // Memory model: graph + vertex state + messages buffered for the next
    // superstep (payload + envelope).
    uint64_t state_bytes = 0;
    {
      std::vector<uint64_t> per_worker_state(num_workers_, 0);
      pool_->ParallelFor(num_workers_, [&](uint64_t w) {
        per_worker_state[w] = StateBytesOfWorker(static_cast<WorkerId>(w));
      });
      for (const uint64_t b : per_worker_state) state_bytes += b;
    }
    const WorkerCounters totals = step.Totals();
    const uint64_t message_bytes =
        totals.total_message_bytes() +
        totals.total_messages() * kMessageEnvelopeBytes;
    step.memory_bytes = graph_bytes + state_bytes + message_bytes;
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, step.memory_bytes);

    stats.superstep_phase_seconds += step.simulated_seconds;
    stats.supersteps.push_back(std::move(step));

    if (options_.memory_budget_bytes != 0 &&
        stats.peak_memory_bytes > options_.memory_budget_bytes) {
      return Status::ResourceExhausted(
          "superstep " + std::to_string(superstep_) + ": simulated memory " +
          std::to_string(stats.peak_memory_bytes) + " bytes exceeds budget " +
          std::to_string(options_.memory_budget_bytes) +
          " bytes (Giraph cannot spill messages to disk)");
    }

    // Master compute + halting checks.
    uint64_t active_count = 0;
    for (uint64_t v = 0; v < n; ++v) active_count += active_[v];

    MasterContext master(superstep_, n, agg_reduced_, active_count,
                         totals.total_messages());
    program_->MasterCompute(&master);
    if (master.halt_requested()) {
      halt_reason = HaltReason::kMasterHalt;
      break;
    }
    if (active_count == 0 && totals.total_messages() == 0) {
      halt_reason = HaltReason::kConverged;
      break;
    }

    std::swap(inbox_cur_, inbox_next_);
    agg_prev_ = agg_reduced_;
  }

  stats.halt_reason = halt_reason;

  // Write phase: the output graph (vertex states) goes back to HDFS.
  uint64_t out_bytes = 0;
  for (uint64_t v = 0; v < n; ++v) {
    out_bytes += program_->VertexStateBytes(values_[v]);
  }
  stats.write_seconds = options_.cost_profile.WriteSeconds(out_bytes);
  stats.total_seconds = stats.setup_seconds + stats.read_seconds +
                        stats.superstep_phase_seconds + stats.write_seconds;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return stats;
}

}  // namespace internal

/// \brief Runs a VertexProgram over a Graph and returns the run profile.
///
/// The engine owns the final vertex values after Run(); fetch them with
/// vertex_values(). A fresh Engine should be used per run.
template <typename V, typename M>
class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(std::move(options)) {
    int threads = options_.num_threads;
    if (threads < 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
      threads -= 1;  // the ParallelFor caller participates
    }
    pool_ = std::make_unique<ThreadPool>(static_cast<uint32_t>(threads));
  }

  /// Executes the program to completion (or OOM / max supersteps).
  Result<RunStats> Run(const Graph& graph, VertexProgram<V, M>* program) {
    if (program == nullptr) return Status::InvalidArgument("null program");
    internal::EngineState<V, M> state(graph, program, options_, pool_.get());
    auto result = state.Run();
    values_ = std::move(state.values());
    return result;
  }

  /// Final vertex values of the last Run (empty before any run).
  const std::vector<V>& vertex_values() const { return values_; }
  std::vector<V>& mutable_vertex_values() { return values_; }

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<V> values_;
};

// ---------------------------------------------------------------------------
// VertexContext member definitions (need EngineState).

template <typename V, typename M>
inline int VertexContext<V, M>::superstep() const {
  return engine_->superstep_;
}

template <typename V, typename M>
inline uint64_t VertexContext<V, M>::num_vertices() const {
  return engine_->graph_->num_vertices();
}

template <typename V, typename M>
inline V& VertexContext<V, M>::value() {
  return engine_->values_[id_];
}

template <typename V, typename M>
inline const V& VertexContext<V, M>::value() const {
  return engine_->values_[id_];
}

template <typename V, typename M>
inline std::span<const VertexId> VertexContext<V, M>::out_neighbors() const {
  return engine_->graph_->out_neighbors(id_);
}

template <typename V, typename M>
inline std::span<const float> VertexContext<V, M>::out_weights() const {
  return engine_->graph_->out_weights(id_);
}

template <typename V, typename M>
inline uint64_t VertexContext<V, M>::out_degree() const {
  return engine_->graph_->out_degree(id_);
}

template <typename V, typename M>
inline bool VertexContext<V, M>::graph_is_weighted() const {
  return engine_->graph_->is_weighted();
}

template <typename V, typename M>
inline void VertexContext<V, M>::SendMessage(VertexId target, M message) {
  auto* engine = engine_;
  const WorkerId dest_worker = engine->WorkerOf(target);
  const uint64_t bytes = engine->program_->MessageBytes(message);
  WorkerCounters& counters = engine->counters_[worker_];
  if (dest_worker == worker_) {
    counters.local_messages++;
    counters.local_message_bytes += bytes;
  } else {
    counters.remote_messages++;
    counters.remote_message_bytes += bytes;
  }
  engine->outbox_[worker_ * engine->num_workers_ + dest_worker].push_back(
      {target, std::move(message)});
}

template <typename V, typename M>
inline void VertexContext<V, M>::SendMessageToAllNeighbors(const M& message) {
  for (const VertexId target : out_neighbors()) {
    SendMessage(target, message);
  }
}

template <typename V, typename M>
inline void VertexContext<V, M>::VoteToHalt() {
  engine_->active_[id_] = 0;
}

template <typename V, typename M>
inline void VertexContext<V, M>::Aggregate(AggregatorId id, double value) {
  double& slot = engine_->agg_partial_[worker_][id];
  slot = AggregatorReduce(engine_->agg_ops_[id], slot, value);
}

template <typename V, typename M>
inline double VertexContext<V, M>::GetAggregate(AggregatorId id) const {
  return engine_->agg_prev_[id];
}

}  // namespace predict::bsp

#endif  // PREDICT_BSP_ENGINE_H_
