// The BSP execution engine (the repo's Giraph stand-in).
//
// Executes a VertexProgram over a Graph in supersteps with Pregel
// semantics: messages sent in superstep S are delivered in S+1, vertices
// vote to halt and are reactivated by incoming messages, aggregators
// reduce per superstep, and a master hook can stop the job. Workers are
// simulated: vertices are assigned to `num_workers` logical workers by a
// pluggable PartitionMap (bsp/partition.h; hash modulo by default) whose
// Table-1 counters drive the simulated cost clock (bsp/cost_profile.h)
// and the simulated memory model.
//
// The hot path is allocation-free in steady state: messages flow through
// per-worker chunked arenas that are bucket-sorted into contiguous
// CSR-style slabs at the superstep barrier (bsp/message_store.h), and
// each superstep touches only O(active + messaged) vertices via
// per-worker worklists (bsp/worklist.h) instead of scanning all |V|.
//
// Host threads only accelerate the simulation — simulated time, counters
// and results are bit-identical for any thread count. Per vertex,
// messages are delivered ordered by sender worker ascending and, within
// one sender, by send-call order.

#ifndef PREDICT_BSP_ENGINE_H_
#define PREDICT_BSP_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bsp/aggregators.h"
#include "bsp/cost_profile.h"
#include "bsp/counters.h"
#include "bsp/message_store.h"
#include "bsp/partition.h"
#include "bsp/thread_pool.h"
#include "bsp/vertex_program.h"
#include "bsp/worklist.h"
#include "common/result.h"
#include "graph/graph.h"

namespace predict::bsp {

/// How a superstep discovers the vertices it must compute and sorts
/// incoming messages. The two execution paths are bit-identical in
/// results, counters, and simulated time — they differ only in host
/// wall-clock cost:
///
///   * sparse: explicit worklists + messaged-vertex discovery/sort at the
///     barrier. O(active + messaged) per superstep; wins when a small
///     fraction of vertices is live (convergence tails).
///   * dense: flat per-vertex slots indexed by local id — no worklist, no
///     bucket discovery, no sort, no offsets build beyond one flat prefix
///     pass. O(owned + messages) per superstep; wins when (nearly) every
///     vertex is live (PageRank's steady state).
///
/// kAdaptive picks per superstep from the previous superstep's survivor
/// and message counts (the direction-optimizing idea of PR 4's BFS,
/// generalized to the engine); the choice taken is recorded in
/// SuperstepStats::dense_path.
enum class SuperstepPath {
  kAdaptive = 0,
  kSparse = 1,
  kDense = 2,
};

inline const char* SuperstepPathName(SuperstepPath path) {
  switch (path) {
    case SuperstepPath::kAdaptive:
      return "adaptive";
    case SuperstepPath::kSparse:
      return "sparse";
    case SuperstepPath::kDense:
      return "dense";
  }
  return "unknown";
}

/// Configuration of one BSP job. Matches the paper's assumption (iii)
/// that sample runs and actual runs share the execution framework and
/// system configuration: PREDIcT passes the same EngineOptions to both.
struct EngineOptions {
  /// Simulated workers. The paper's cluster runs 29 workers + 1 master.
  uint32_t num_workers = 29;

  /// How vertices are assigned to workers. The default reproduces the
  /// seed engine's hash scheme bit for bit; the alternatives trade
  /// assignment cost for balance (bsp/partition.h).
  PartitionStrategy partition = PartitionStrategy::kHashModulo;

  /// Host threads executing the simulation. -1 = one per hardware thread,
  /// 0 = run inline on the caller.
  int num_threads = -1;

  /// Safety stop; hitting it sets HaltReason::kMaxSupersteps.
  int max_supersteps = 500;

  /// Simulated cluster memory. 0 = unlimited. When the per-superstep
  /// footprint (graph + vertex state + buffered messages) exceeds this,
  /// the run fails with ResourceExhausted — Giraph's no-spill OOM
  /// behaviour described in §5 "Memory Limits".
  uint64_t memory_budget_bytes = 0;

  /// Superstep execution-path policy (see SuperstepPath). kAdaptive
  /// switches per superstep; kSparse/kDense pin one path (used by the
  /// equivalence gates and the micro benches).
  SuperstepPath superstep_path = SuperstepPath::kAdaptive;

  /// kAdaptive goes dense for superstep S+1 when superstep S's
  /// survivors + messages reach this fraction of |V|. Tuned by
  /// bench/micro_substrate.cc (BM_DenseSuperstep vs BM_SparseActivation);
  /// the choice never affects results, only host wall clock.
  double dense_path_threshold = 0.6;

  /// Must match Graph::edges_compressed() of the input graph — the
  /// engine rejects a mismatch rather than silently running a config
  /// whose cache key (EngineOptionsKey) disagrees with the graph
  /// representation actually executed.
  bool compressed_graph = false;

  CostProfile cost_profile;
};

/// Bytes of bookkeeping the memory model charges per buffered message
/// (destination id, envelope, allocator slack).
inline constexpr uint64_t kMessageEnvelopeBytes = 16;

namespace internal {

/// All mutable state of a run; VertexContext methods are defined against
/// this so the hot path needs no virtual dispatch except the program's
/// own hooks.
template <typename V, typename M>
class EngineState {
 public:
  EngineState(const Graph& graph, VertexProgram<V, M>* program,
              const EngineOptions& options, ThreadPool* pool)
      : graph_(&graph),
        program_(program),
        options_(options),
        pool_(pool),
        num_workers_(options.num_workers) {}

  /// `Program` is the concrete program type when the caller has one —
  /// marking the class `final` lets the compiler devirtualize and inline
  /// Compute into the superstep loop (all in-tree algorithms do).
  /// Calling through the VertexProgram<V, M> base keeps today's virtual
  /// dispatch; results are identical either way.
  template <typename Program>
  Result<RunStats> Run(Program* program);

  std::vector<V>& values() { return values_; }

 private:
  friend class VertexContext<V, M>;

  template <typename Program>
  void ComputeWorker(WorkerId w, Program* program);
  template <typename Program>
  void ComputeWorkerDense(WorkerId w, Program* program);
  bool NextSuperstepDense(uint64_t survivors, uint64_t messages) const;

  const Graph* graph_;
  VertexProgram<V, M>* program_;
  EngineOptions options_;
  ThreadPool* pool_;
  uint32_t num_workers_;

  int superstep_ = 0;
  PartitionMap partition_;
  std::vector<V> values_;
  std::vector<uint8_t> active_;
  MessageStore<M> messages_;
  std::vector<WorkerWorklist> worklists_;  // [worker]
  std::vector<WorkerCounters> counters_;
  /// Simulated vertex-state bytes per worker, maintained incrementally:
  /// updated only for vertices whose value was written this superstep
  /// (VertexContext::value() marks the write) instead of re-walking all
  /// owned vertices at every barrier.
  std::vector<uint64_t> state_bytes_;
  /// Cached FixedVertexStateBytes() of the program; non-zero short-
  /// circuits the dirty tracking in VertexContext::value().
  uint64_t fixed_state_bytes_ = 0;
  /// Survivor counts of the last dense-path compute phase (the dense
  /// path maintains no survivor lists; see worklist.h RebuildFromFlags).
  std::vector<uint64_t> dense_survivors_;
  /// Per-worker adjacency decode buffers backing VertexContext::
  /// out_neighbors() on compressed graphs (plain graphs bypass them).
  std::vector<std::vector<VertexId>> out_scratch_;

  std::vector<AggregatorOp> agg_ops_;
  std::vector<std::string> agg_names_;
  std::vector<std::vector<double>> agg_partial_;  // [worker][aggregator]
  std::vector<double> agg_prev_;
  std::vector<double> agg_reduced_;
};

template <typename V, typename M>
template <typename Program>
void EngineState<V, M>::ComputeWorker(WorkerId w, Program* program) {
  WorkerCounters& counters = counters_[w];
  WorkerWorklist& worklist = worklists_[w];
  worklist.BeginSuperstep();
  // Worklist membership == active or messaged, so every entry computes.
  counters.active_vertices += worklist.current().size();
  for (const VertexId vid : worklist.current()) {
    // Receipt of a message reactivates (Pregel rule). Write-avoid: in
    // steady state most computed vertices are already active, and the
    // skipped store keeps their cache lines clean.
    if (active_[vid] == 0) active_[vid] = 1;
    VertexContext<V, M> ctx(this, w, vid);
    program->Compute(&ctx, messages_.MessagesFor(w, vid));
    if (ctx.value_dirty_) {
      // ctx captured the pre-write size at the program's first mutable
      // value() access; unsigned wrap-around keeps negative deltas exact.
      state_bytes_[w] +=
          program->VertexStateBytes(values_[vid]) - ctx.pre_state_bytes_;
    }
    if (active_[vid]) worklist.AddSurvivor(vid);
  }
}

// Dense-path compute: no worklist — every owned vertex is visited in
// ascending order (one running local index, no partition lookups) and
// computes iff it is active or has an inbox. That predicate selects
// exactly the sparse worklist's membership (survivors ∪ messaged: a
// vertex outside its worklist always has active_[v] == 0, and a stamped
// non-empty slab entry == membership in `messaged`), in the same
// ascending order, so Compute sees identical (vertex, inbox) sequences
// and every counter, aggregate, and value write is bit-identical to the
// sparse path.
template <typename V, typename M>
template <typename Program>
void EngineState<V, M>::ComputeWorkerDense(WorkerId w, Program* program) {
  WorkerCounters& counters = counters_[w];
  uint64_t computed = 0;
  uint64_t survivors = 0;
  uint32_t local = 0;
  partition_.ForEachOwned(w, [&](VertexId vid) {
    const uint32_t l = local++;
    const std::span<const M> inbox = messages_.MessagesForLocal(w, l);
    if (active_[vid] == 0) {
      if (inbox.empty()) return;
      active_[vid] = 1;  // receipt of a message reactivates (Pregel rule)
    }
    ++computed;
    VertexContext<V, M> ctx(this, w, vid);
    program->Compute(&ctx, inbox);
    if (ctx.value_dirty_) {
      state_bytes_[w] +=
          program->VertexStateBytes(values_[vid]) - ctx.pre_state_bytes_;
    }
    survivors += active_[vid];
  });
  counters.active_vertices += computed;
  dense_survivors_[w] = survivors;
}

template <typename V, typename M>
bool EngineState<V, M>::NextSuperstepDense(uint64_t survivors,
                                           uint64_t messages) const {
  switch (options_.superstep_path) {
    case SuperstepPath::kSparse:
      return false;
    case SuperstepPath::kDense:
      return true;
    case SuperstepPath::kAdaptive:
      break;
  }
  // survivors + messages upper-bounds the next worklist size (messages
  // may repeat a target or hit a survivor, both of which only overshoot
  // towards dense — which is the cheap mistake: the dense path degrades
  // to O(owned) while the sparse path degrades to a full sort).
  return static_cast<double>(survivors) + static_cast<double>(messages) >=
         options_.dense_path_threshold * static_cast<double>(graph_->num_vertices());
}

template <typename V, typename M>
template <typename Program>
Result<RunStats> EngineState<V, M>::Run(Program* program) {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t n = graph_->num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (num_workers_ == 0) return Status::InvalidArgument("num_workers == 0");
  if (options_.max_supersteps <= 0) {
    return Status::InvalidArgument("max_supersteps must be positive");
  }
  if (options_.compressed_graph != graph_->edges_compressed()) {
    // A silent mismatch would run a representation the cache key
    // (scenario EngineOptionsKey) does not describe; fail loudly instead.
    return Status::InvalidArgument(
        options_.compressed_graph
            ? "EngineOptions.compressed_graph is set but the input graph "
              "stores plain edges"
            : "input graph stores compressed edges but "
              "EngineOptions.compressed_graph is unset");
  }

  // Partition the vertex space ("the read phase assigns partitions").
  partition_ = PartitionMap::Build(options_.partition, num_workers_, *graph_);

  RunStats stats;
  stats.worker_outbound_edges = partition_.OutboundEdges(*graph_);
  stats.static_critical_worker = ArgMaxWorker(stats.worker_outbound_edges);
  stats.setup_seconds = options_.cost_profile.setup_seconds;
  stats.read_seconds =
      options_.cost_profile.ReadSeconds(graph_->MemoryFootprintBytes());

  // Aggregators.
  AggregatorRegistry registry;
  program_->RegisterAggregators(&registry);
  for (const AggregatorDef& def : registry.defs()) {
    agg_ops_.push_back(def.op);
    agg_names_.push_back(def.name);
  }
  agg_prev_.resize(agg_ops_.size());
  agg_reduced_.resize(agg_ops_.size());
  for (size_t i = 0; i < agg_ops_.size(); ++i) {
    agg_prev_[i] = AggregatorIdentity(agg_ops_[i]);
  }

  // State initialization ("setup" + "read" phases of §2.2). Superstep 0
  // computes every vertex, so each worklist seeds with all owned
  // vertices; the state-bytes accumulators start from the initial values.
  values_.resize(n);
  active_.assign(n, 1);
  messages_.Init(&partition_);
  worklists_.clear();
  worklists_.resize(num_workers_);
  state_bytes_.assign(num_workers_, 0);
  dense_survivors_.assign(num_workers_, 0);
  out_scratch_.assign(num_workers_, {});
  counters_.assign(num_workers_, WorkerCounters{});
  agg_partial_.assign(num_workers_, {});
  fixed_state_bytes_ = program->FixedVertexStateBytes();
  pool_->ParallelFor(num_workers_, [&](uint64_t w) {
    worklists_[w].SeedAllOwned(static_cast<WorkerId>(w), partition_);
    uint64_t bytes = 0;
    partition_.ForEachOwned(static_cast<WorkerId>(w), [&](VertexId v) {
      values_[v] = program->InitialValue(v, *graph_);
      bytes += fixed_state_bytes_ != 0 ? fixed_state_bytes_
                                       : program->VertexStateBytes(values_[v]);
    });
    state_bytes_[w] = bytes;
  });

  const uint64_t graph_bytes = graph_->MemoryFootprintBytes();
  HaltReason halt_reason = HaltReason::kMaxSupersteps;

  // Everything is active at superstep 0, so kAdaptive starts dense (the
  // decision rule sees survivors = |V|, messages = 0).
  bool dense_now = NextSuperstepDense(n, 0);

  for (superstep_ = 0; superstep_ < options_.max_supersteps; ++superstep_) {
    const auto superstep_start = std::chrono::steady_clock::now();
    // Reset per-superstep accounting.
    for (WorkerId w = 0; w < num_workers_; ++w) {
      counters_[w] = WorkerCounters{};
      counters_[w].total_vertices = partition_.NumOwned(w);
      agg_partial_[w].assign(agg_ops_.size(), 0.0);
      for (size_t i = 0; i < agg_ops_.size(); ++i) {
        agg_partial_[w][i] = AggregatorIdentity(agg_ops_[i]);
      }
    }

    // Compute phase (concurrent across workers).
    pool_->ParallelFor(num_workers_, [&](uint64_t w) {
      if (dense_now) {
        ComputeWorkerDense(static_cast<WorkerId>(w), program);
      } else {
        ComputeWorker(static_cast<WorkerId>(w), program);
      }
    });

    // Reduce aggregators deterministically in worker order.
    for (size_t i = 0; i < agg_ops_.size(); ++i) {
      double value = AggregatorIdentity(agg_ops_[i]);
      for (WorkerId w = 0; w < num_workers_; ++w) {
        value = AggregatorReduce(agg_ops_[i], value, agg_partial_[w][i]);
      }
      agg_reduced_[i] = value;
    }

    // Post-compute census: survivors (the dense path tallies them per
    // worker; the sparse path keeps explicit lists) and messages sent,
    // which drive both the halting checks and the next path decision.
    uint64_t active_count = 0;
    if (dense_now) {
      for (const uint64_t s : dense_survivors_) active_count += s;
    } else {
      for (const WorkerWorklist& worklist : worklists_) {
        active_count += worklist.num_survivors();
      }
    }
    uint64_t messages_sent = 0;
    for (const WorkerCounters& c : counters_) {
      messages_sent += c.total_messages();
    }
    const bool next_dense = NextSuperstepDense(active_count, messages_sent);

    // Messaging phase: sort outboxes into each worker's incoming slab,
    // shaped for whichever path the NEXT superstep runs. The dense build
    // skips messaged-vertex discovery and the worklist entirely; the
    // sparse build additionally rebuilds the worklist (from survivor
    // lists, or from the active flags when this superstep ran dense).
    pool_->ParallelFor(num_workers_, [&](uint64_t w64) {
      const WorkerId w = static_cast<WorkerId>(w64);
      if (next_dense) {
        messages_.BuildIncomingSlabDense(w);
        return;
      }
      WorkerWorklist& worklist = worklists_[w];
      messages_.BuildIncomingSlab(w, worklist.messaged());
      if (dense_now) {
        worklist.RebuildFromFlags(w, partition_, active_.data());
      } else {
        worklist.Rebuild();
      }
    });

    // Superstep accounting.
    SuperstepStats step;
    step.superstep = superstep_;
    step.per_worker = counters_;
    step.dense_path = dense_now;
    step.host_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - superstep_start)
                            .count();
    step.simulated_seconds = options_.cost_profile.SuperstepSeconds(
        counters_, superstep_, &step.critical_worker);
    for (size_t i = 0; i < agg_names_.size(); ++i) {
      step.aggregates[agg_names_[i]] = agg_reduced_[i];
    }

    // Memory model: graph + vertex state + messages buffered for the next
    // superstep (payload + envelope).
    uint64_t state_bytes = 0;
    for (const uint64_t b : state_bytes_) state_bytes += b;
    const WorkerCounters totals = step.Totals();
    const uint64_t message_bytes =
        totals.total_message_bytes() +
        totals.total_messages() * kMessageEnvelopeBytes;
    step.memory_bytes = graph_bytes + state_bytes + message_bytes;
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, step.memory_bytes);

    stats.superstep_phase_seconds += step.simulated_seconds;
    stats.supersteps.push_back(std::move(step));

    if (options_.memory_budget_bytes != 0 &&
        stats.peak_memory_bytes > options_.memory_budget_bytes) {
      return Status::ResourceExhausted(
          "superstep " + std::to_string(superstep_) + ": simulated memory " +
          std::to_string(stats.peak_memory_bytes) + " bytes exceeds budget " +
          std::to_string(options_.memory_budget_bytes) +
          " bytes (Giraph cannot spill messages to disk)");
    }

    // Master compute + halting checks. A vertex is active after the
    // superstep iff it computed and did not vote to halt — the census
    // taken right after the compute phase above.
    MasterContext master(superstep_, n, agg_reduced_, active_count,
                         messages_sent);
    program_->MasterCompute(&master);
    if (master.halt_requested()) {
      halt_reason = HaltReason::kMasterHalt;
      break;
    }
    if (active_count == 0 && messages_sent == 0) {
      halt_reason = HaltReason::kConverged;
      break;
    }

    agg_prev_ = agg_reduced_;
    dense_now = next_dense;
  }

  stats.halt_reason = halt_reason;

  // Write phase: the output graph (vertex states) goes back to HDFS.
  // The incremental accumulators already hold the exact per-worker
  // sums, so no O(|V|) VertexStateBytes walk is needed.
  uint64_t out_bytes = 0;
  for (const uint64_t b : state_bytes_) out_bytes += b;
  stats.write_seconds = options_.cost_profile.WriteSeconds(out_bytes);
  stats.total_seconds = stats.setup_seconds + stats.read_seconds +
                        stats.superstep_phase_seconds + stats.write_seconds;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return stats;
}

}  // namespace internal

/// \brief Runs a VertexProgram over a Graph and returns the run profile.
///
/// The engine owns the final vertex values after Run(); fetch them with
/// vertex_values(). A fresh Engine should be used per run.
template <typename V, typename M>
class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(std::move(options)) {
    int threads = options_.num_threads;
    if (threads < 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
      threads -= 1;  // the ParallelFor caller participates
    }
    pool_ = std::make_unique<ThreadPool>(static_cast<uint32_t>(threads));
  }

  /// Executes the program to completion (or OOM / max supersteps).
  /// Deduces the concrete program type: in-tree programs are `final`, so
  /// the compiler devirtualizes and inlines Compute into the superstep
  /// loop. Passing a VertexProgram<V, M>* keeps virtual dispatch with
  /// identical results.
  template <typename Program>
    requires std::is_base_of_v<VertexProgram<V, M>, Program>
  Result<RunStats> Run(const Graph& graph, Program* program) {
    if (program == nullptr) return Status::InvalidArgument("null program");
    internal::EngineState<V, M> state(graph, program, options_, pool_.get());
    auto result = state.Run(program);
    values_ = std::move(state.values());
    return result;
  }

  /// Base-pointer overload (also catches a literal nullptr, which cannot
  /// deduce the template): virtual dispatch, identical results.
  Result<RunStats> Run(const Graph& graph, VertexProgram<V, M>* program) {
    return Run<VertexProgram<V, M>>(graph, program);
  }

  /// Final vertex values of the last Run (empty before any run).
  const std::vector<V>& vertex_values() const { return values_; }
  std::vector<V>& mutable_vertex_values() { return values_; }

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<V> values_;
};

// ---------------------------------------------------------------------------
// VertexContext member definitions (need EngineState).

template <typename V, typename M>
inline int VertexContext<V, M>::superstep() const {
  return engine_->superstep_;
}

template <typename V, typename M>
inline uint64_t VertexContext<V, M>::num_vertices() const {
  return engine_->graph_->num_vertices();
}

template <typename V, typename M>
inline V& VertexContext<V, M>::value() {
  // Conservatively marks the state as written so the engine refreshes
  // this vertex's contribution to the simulated memory model; the size
  // before the first (potential) write is captured here, which keeps
  // vertices that never take a mutable reference entirely free of
  // VertexStateBytes calls. Fixed-size programs skip the tracking
  // altogether — their state contribution never changes.
  if (engine_->fixed_state_bytes_ == 0 && !value_dirty_) {
    value_dirty_ = true;
    pre_state_bytes_ = engine_->program_->VertexStateBytes(engine_->values_[id_]);
  }
  return engine_->values_[id_];
}

template <typename V, typename M>
inline const V& VertexContext<V, M>::value() const {
  return engine_->values_[id_];
}

template <typename V, typename M>
inline std::span<const VertexId> VertexContext<V, M>::out_neighbors() const {
  // Plain graphs return the CSR span directly; compressed graphs decode
  // into the worker's scratch buffer (single-writer — each worker's
  // compute phase runs on one thread), so the span is valid until the
  // next out_neighbors() call on this worker. Programs consume it within
  // one Compute invocation, which satisfies that.
  return engine_->graph_->OutNeighborsInto(id_,
                                           &engine_->out_scratch_[worker_]);
}

template <typename V, typename M>
inline std::span<const float> VertexContext<V, M>::out_weights() const {
  return engine_->graph_->out_weights(id_);
}

template <typename V, typename M>
inline uint64_t VertexContext<V, M>::out_degree() const {
  return engine_->graph_->out_degree(id_);
}

template <typename V, typename M>
inline bool VertexContext<V, M>::graph_is_weighted() const {
  return engine_->graph_->is_weighted();
}

template <typename V, typename M>
inline void VertexContext<V, M>::SendMessage(VertexId target, M message) {
  auto* engine = engine_;
  const PartitionMap::Location loc = engine->partition_.Locate(target);
  const uint64_t bytes = engine->program_->MessageBytes(message);
  WorkerCounters& counters = engine->counters_[worker_];
  if (loc.worker == worker_) {
    counters.local_messages++;
    counters.local_message_bytes += bytes;
  } else {
    counters.remote_messages++;
    counters.remote_message_bytes += bytes;
  }
  engine->messages_.Append(worker_, loc.worker, loc.local,
                           std::move(message));
}

template <typename V, typename M>
inline void VertexContext<V, M>::SendMessageToAllNeighbors(const M& message) {
  // Identical copies share one MessageBytes sizing (the oracle is a pure
  // function of the message value), saving a virtual call per edge in
  // broadcast-style programs.
  auto* engine = engine_;
  const Graph& graph = *engine->graph_;
  const PartitionMap& partition = engine->partition_;
  const uint64_t bytes = engine->program_->MessageBytes(message);
  auto* const row = engine->messages_.SenderRow(worker_);
  const WorkerId self = worker_;
  uint64_t local = 0;
  // ForEachOutNeighbor is the block-wise decode path on compressed
  // graphs and a plain span walk otherwise — the scatter loop never
  // materializes the adjacency list.
  if (partition.is_modulo()) {
    // Hash fast path: ownership is two multiplies per edge — the mode
    // check is hoisted out of the loop so the seed scheme keeps its
    // table-free inner loop.
    const internal::FastDiv divider = partition.divider();  // by value
    graph.ForEachOutNeighbor(id_, [&](VertexId target) {
      const uint32_t target_local = divider.Div(target);
      const WorkerId dest_worker = target - target_local * divider.divisor();
      local += (dest_worker == self);
      row[dest_worker].PushBack(target_local, M(message));
    });
  } else {
    graph.ForEachOutNeighbor(id_, [&](VertexId target) {
      const PartitionMap::Location loc = partition.Locate(target);
      local += (loc.worker == self);
      row[loc.worker].PushBack(loc.local, M(message));
    });
  }
  const uint64_t remote = graph.out_degree(id_) - local;
  WorkerCounters& counters = engine->counters_[worker_];
  counters.local_messages += local;
  counters.local_message_bytes += local * bytes;
  counters.remote_messages += remote;
  counters.remote_message_bytes += remote * bytes;
}

template <typename V, typename M>
inline void VertexContext<V, M>::VoteToHalt() {
  engine_->active_[id_] = 0;
}

template <typename V, typename M>
inline void VertexContext<V, M>::Aggregate(AggregatorId id, double value) {
  double& slot = engine_->agg_partial_[worker_][id];
  slot = AggregatorReduce(engine_->agg_ops_[id], slot, value);
}

template <typename V, typename M>
inline double VertexContext<V, M>::GetAggregate(AggregatorId id) const {
  return engine_->agg_prev_[id];
}

}  // namespace predict::bsp

#endif  // PREDICT_BSP_ENGINE_H_
