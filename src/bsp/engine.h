// The BSP execution engine (the repo's Giraph stand-in).
//
// Executes a VertexProgram over a Graph in supersteps with Pregel
// semantics: messages sent in superstep S are delivered in S+1, vertices
// vote to halt and are reactivated by incoming messages, aggregators
// reduce per superstep, and a master hook can stop the job. Workers are
// simulated: vertices are assigned to `num_workers` logical workers by a
// pluggable PartitionMap (bsp/partition.h; hash modulo by default) whose
// Table-1 counters drive the simulated cost clock (bsp/cost_profile.h)
// and the simulated memory model.
//
// The hot path is allocation-free in steady state: messages flow through
// per-worker chunked arenas that are bucket-sorted into contiguous
// CSR-style slabs at the superstep barrier (bsp/message_store.h), and
// each superstep touches only O(active + messaged) vertices via
// per-worker worklists (bsp/worklist.h) instead of scanning all |V|.
//
// Host threads only accelerate the simulation — simulated time, counters
// and results are bit-identical for any thread count. Per vertex,
// messages are delivered ordered by sender worker ascending and, within
// one sender, by send-call order.

#ifndef PREDICT_BSP_ENGINE_H_
#define PREDICT_BSP_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bsp/aggregators.h"
#include "bsp/cost_profile.h"
#include "bsp/counters.h"
#include "bsp/message_store.h"
#include "bsp/partition.h"
#include "bsp/thread_pool.h"
#include "bsp/vertex_program.h"
#include "bsp/worklist.h"
#include "common/result.h"
#include "graph/graph.h"

namespace predict::bsp {

/// Configuration of one BSP job. Matches the paper's assumption (iii)
/// that sample runs and actual runs share the execution framework and
/// system configuration: PREDIcT passes the same EngineOptions to both.
struct EngineOptions {
  /// Simulated workers. The paper's cluster runs 29 workers + 1 master.
  uint32_t num_workers = 29;

  /// How vertices are assigned to workers. The default reproduces the
  /// seed engine's hash scheme bit for bit; the alternatives trade
  /// assignment cost for balance (bsp/partition.h).
  PartitionStrategy partition = PartitionStrategy::kHashModulo;

  /// Host threads executing the simulation. -1 = one per hardware thread,
  /// 0 = run inline on the caller.
  int num_threads = -1;

  /// Safety stop; hitting it sets HaltReason::kMaxSupersteps.
  int max_supersteps = 500;

  /// Simulated cluster memory. 0 = unlimited. When the per-superstep
  /// footprint (graph + vertex state + buffered messages) exceeds this,
  /// the run fails with ResourceExhausted — Giraph's no-spill OOM
  /// behaviour described in §5 "Memory Limits".
  uint64_t memory_budget_bytes = 0;

  CostProfile cost_profile;
};

/// Bytes of bookkeeping the memory model charges per buffered message
/// (destination id, envelope, allocator slack).
inline constexpr uint64_t kMessageEnvelopeBytes = 16;

namespace internal {

/// All mutable state of a run; VertexContext methods are defined against
/// this so the hot path needs no virtual dispatch except the program's
/// own hooks.
template <typename V, typename M>
class EngineState {
 public:
  EngineState(const Graph& graph, VertexProgram<V, M>* program,
              const EngineOptions& options, ThreadPool* pool)
      : graph_(&graph),
        program_(program),
        options_(options),
        pool_(pool),
        num_workers_(options.num_workers) {}

  Result<RunStats> Run();

  std::vector<V>& values() { return values_; }

 private:
  friend class VertexContext<V, M>;

  void ComputeWorker(WorkerId w);
  void BarrierForWorker(WorkerId w);

  const Graph* graph_;
  VertexProgram<V, M>* program_;
  EngineOptions options_;
  ThreadPool* pool_;
  uint32_t num_workers_;

  int superstep_ = 0;
  PartitionMap partition_;
  std::vector<V> values_;
  std::vector<uint8_t> active_;
  MessageStore<M> messages_;
  std::vector<WorkerWorklist> worklists_;  // [worker]
  std::vector<WorkerCounters> counters_;
  /// Simulated vertex-state bytes per worker, maintained incrementally:
  /// updated only for vertices whose value was written this superstep
  /// (VertexContext::value() marks the write) instead of re-walking all
  /// owned vertices at every barrier.
  std::vector<uint64_t> state_bytes_;

  std::vector<AggregatorOp> agg_ops_;
  std::vector<std::string> agg_names_;
  std::vector<std::vector<double>> agg_partial_;  // [worker][aggregator]
  std::vector<double> agg_prev_;
  std::vector<double> agg_reduced_;
};

template <typename V, typename M>
void EngineState<V, M>::ComputeWorker(WorkerId w) {
  WorkerCounters& counters = counters_[w];
  WorkerWorklist& worklist = worklists_[w];
  worklist.BeginSuperstep();
  // Worklist membership == active or messaged, so every entry computes.
  counters.active_vertices += worklist.current().size();
  for (const VertexId vid : worklist.current()) {
    active_[vid] = 1;  // receipt of a message reactivates (Pregel rule)
    VertexContext<V, M> ctx(this, w, vid);
    program_->Compute(&ctx, messages_.MessagesFor(w, vid));
    if (ctx.value_dirty_) {
      // ctx captured the pre-write size at the program's first mutable
      // value() access; unsigned wrap-around keeps negative deltas exact.
      state_bytes_[w] +=
          program_->VertexStateBytes(values_[vid]) - ctx.pre_state_bytes_;
    }
    if (active_[vid]) worklist.AddSurvivor(vid);
  }
}

template <typename V, typename M>
void EngineState<V, M>::BarrierForWorker(WorkerId w) {
  WorkerWorklist& worklist = worklists_[w];
  messages_.BuildIncomingSlab(w, worklist.messaged());
  worklist.Rebuild();
}

template <typename V, typename M>
Result<RunStats> EngineState<V, M>::Run() {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t n = graph_->num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (num_workers_ == 0) return Status::InvalidArgument("num_workers == 0");
  if (options_.max_supersteps <= 0) {
    return Status::InvalidArgument("max_supersteps must be positive");
  }

  // Partition the vertex space ("the read phase assigns partitions").
  partition_ = PartitionMap::Build(options_.partition, num_workers_, *graph_);

  RunStats stats;
  stats.worker_outbound_edges = partition_.OutboundEdges(*graph_);
  stats.static_critical_worker = ArgMaxWorker(stats.worker_outbound_edges);
  stats.setup_seconds = options_.cost_profile.setup_seconds;
  stats.read_seconds =
      options_.cost_profile.ReadSeconds(graph_->MemoryFootprintBytes());

  // Aggregators.
  AggregatorRegistry registry;
  program_->RegisterAggregators(&registry);
  for (const AggregatorDef& def : registry.defs()) {
    agg_ops_.push_back(def.op);
    agg_names_.push_back(def.name);
  }
  agg_prev_.resize(agg_ops_.size());
  agg_reduced_.resize(agg_ops_.size());
  for (size_t i = 0; i < agg_ops_.size(); ++i) {
    agg_prev_[i] = AggregatorIdentity(agg_ops_[i]);
  }

  // State initialization ("setup" + "read" phases of §2.2). Superstep 0
  // computes every vertex, so each worklist seeds with all owned
  // vertices; the state-bytes accumulators start from the initial values.
  values_.resize(n);
  active_.assign(n, 1);
  messages_.Init(&partition_);
  worklists_.clear();
  worklists_.resize(num_workers_);
  state_bytes_.assign(num_workers_, 0);
  counters_.assign(num_workers_, WorkerCounters{});
  agg_partial_.assign(num_workers_, {});
  pool_->ParallelFor(num_workers_, [&](uint64_t w) {
    worklists_[w].SeedAllOwned(static_cast<WorkerId>(w), partition_);
    uint64_t bytes = 0;
    partition_.ForEachOwned(static_cast<WorkerId>(w), [&](VertexId v) {
      values_[v] = program_->InitialValue(v, *graph_);
      bytes += program_->VertexStateBytes(values_[v]);
    });
    state_bytes_[w] = bytes;
  });

  const uint64_t graph_bytes = graph_->MemoryFootprintBytes();
  HaltReason halt_reason = HaltReason::kMaxSupersteps;

  for (superstep_ = 0; superstep_ < options_.max_supersteps; ++superstep_) {
    // Reset per-superstep accounting.
    for (WorkerId w = 0; w < num_workers_; ++w) {
      counters_[w] = WorkerCounters{};
      counters_[w].total_vertices = partition_.NumOwned(w);
      agg_partial_[w].assign(agg_ops_.size(), 0.0);
      for (size_t i = 0; i < agg_ops_.size(); ++i) {
        agg_partial_[w][i] = AggregatorIdentity(agg_ops_[i]);
      }
    }

    // Compute phase (concurrent across workers).
    pool_->ParallelFor(num_workers_,
                       [&](uint64_t w) { ComputeWorker(static_cast<WorkerId>(w)); });

    // Reduce aggregators deterministically in worker order.
    for (size_t i = 0; i < agg_ops_.size(); ++i) {
      double value = AggregatorIdentity(agg_ops_[i]);
      for (WorkerId w = 0; w < num_workers_; ++w) {
        value = AggregatorReduce(agg_ops_[i], value, agg_partial_[w][i]);
      }
      agg_reduced_[i] = value;
    }

    // Messaging phase: bucket-sort outboxes into each worker's incoming
    // slab and rebuild the next worklists (active ∪ messaged).
    pool_->ParallelFor(num_workers_,
                       [&](uint64_t w) { BarrierForWorker(static_cast<WorkerId>(w)); });

    // Superstep accounting.
    SuperstepStats step;
    step.superstep = superstep_;
    step.per_worker = counters_;
    step.simulated_seconds = options_.cost_profile.SuperstepSeconds(
        counters_, superstep_, &step.critical_worker);
    for (size_t i = 0; i < agg_names_.size(); ++i) {
      step.aggregates[agg_names_[i]] = agg_reduced_[i];
    }

    // Memory model: graph + vertex state + messages buffered for the next
    // superstep (payload + envelope).
    uint64_t state_bytes = 0;
    for (const uint64_t b : state_bytes_) state_bytes += b;
    const WorkerCounters totals = step.Totals();
    const uint64_t message_bytes =
        totals.total_message_bytes() +
        totals.total_messages() * kMessageEnvelopeBytes;
    step.memory_bytes = graph_bytes + state_bytes + message_bytes;
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, step.memory_bytes);

    stats.superstep_phase_seconds += step.simulated_seconds;
    stats.supersteps.push_back(std::move(step));

    if (options_.memory_budget_bytes != 0 &&
        stats.peak_memory_bytes > options_.memory_budget_bytes) {
      return Status::ResourceExhausted(
          "superstep " + std::to_string(superstep_) + ": simulated memory " +
          std::to_string(stats.peak_memory_bytes) + " bytes exceeds budget " +
          std::to_string(options_.memory_budget_bytes) +
          " bytes (Giraph cannot spill messages to disk)");
    }

    // Master compute + halting checks. A vertex is active after the
    // superstep iff it computed and did not vote to halt, i.e. iff it is
    // in some worker's survivor list.
    uint64_t active_count = 0;
    for (const WorkerWorklist& worklist : worklists_) {
      active_count += worklist.num_survivors();
    }

    MasterContext master(superstep_, n, agg_reduced_, active_count,
                         totals.total_messages());
    program_->MasterCompute(&master);
    if (master.halt_requested()) {
      halt_reason = HaltReason::kMasterHalt;
      break;
    }
    if (active_count == 0 && totals.total_messages() == 0) {
      halt_reason = HaltReason::kConverged;
      break;
    }

    agg_prev_ = agg_reduced_;
  }

  stats.halt_reason = halt_reason;

  // Write phase: the output graph (vertex states) goes back to HDFS.
  // The incremental accumulators already hold the exact per-worker
  // sums, so no O(|V|) VertexStateBytes walk is needed.
  uint64_t out_bytes = 0;
  for (const uint64_t b : state_bytes_) out_bytes += b;
  stats.write_seconds = options_.cost_profile.WriteSeconds(out_bytes);
  stats.total_seconds = stats.setup_seconds + stats.read_seconds +
                        stats.superstep_phase_seconds + stats.write_seconds;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return stats;
}

}  // namespace internal

/// \brief Runs a VertexProgram over a Graph and returns the run profile.
///
/// The engine owns the final vertex values after Run(); fetch them with
/// vertex_values(). A fresh Engine should be used per run.
template <typename V, typename M>
class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(std::move(options)) {
    int threads = options_.num_threads;
    if (threads < 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
      threads -= 1;  // the ParallelFor caller participates
    }
    pool_ = std::make_unique<ThreadPool>(static_cast<uint32_t>(threads));
  }

  /// Executes the program to completion (or OOM / max supersteps).
  Result<RunStats> Run(const Graph& graph, VertexProgram<V, M>* program) {
    if (program == nullptr) return Status::InvalidArgument("null program");
    internal::EngineState<V, M> state(graph, program, options_, pool_.get());
    auto result = state.Run();
    values_ = std::move(state.values());
    return result;
  }

  /// Final vertex values of the last Run (empty before any run).
  const std::vector<V>& vertex_values() const { return values_; }
  std::vector<V>& mutable_vertex_values() { return values_; }

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<V> values_;
};

// ---------------------------------------------------------------------------
// VertexContext member definitions (need EngineState).

template <typename V, typename M>
inline int VertexContext<V, M>::superstep() const {
  return engine_->superstep_;
}

template <typename V, typename M>
inline uint64_t VertexContext<V, M>::num_vertices() const {
  return engine_->graph_->num_vertices();
}

template <typename V, typename M>
inline V& VertexContext<V, M>::value() {
  // Conservatively marks the state as written so the engine refreshes
  // this vertex's contribution to the simulated memory model; the size
  // before the first (potential) write is captured here, which keeps
  // vertices that never take a mutable reference entirely free of
  // VertexStateBytes calls.
  if (!value_dirty_) {
    value_dirty_ = true;
    pre_state_bytes_ = engine_->program_->VertexStateBytes(engine_->values_[id_]);
  }
  return engine_->values_[id_];
}

template <typename V, typename M>
inline const V& VertexContext<V, M>::value() const {
  return engine_->values_[id_];
}

template <typename V, typename M>
inline std::span<const VertexId> VertexContext<V, M>::out_neighbors() const {
  return engine_->graph_->out_neighbors(id_);
}

template <typename V, typename M>
inline std::span<const float> VertexContext<V, M>::out_weights() const {
  return engine_->graph_->out_weights(id_);
}

template <typename V, typename M>
inline uint64_t VertexContext<V, M>::out_degree() const {
  return engine_->graph_->out_degree(id_);
}

template <typename V, typename M>
inline bool VertexContext<V, M>::graph_is_weighted() const {
  return engine_->graph_->is_weighted();
}

template <typename V, typename M>
inline void VertexContext<V, M>::SendMessage(VertexId target, M message) {
  auto* engine = engine_;
  const PartitionMap::Location loc = engine->partition_.Locate(target);
  const uint64_t bytes = engine->program_->MessageBytes(message);
  WorkerCounters& counters = engine->counters_[worker_];
  if (loc.worker == worker_) {
    counters.local_messages++;
    counters.local_message_bytes += bytes;
  } else {
    counters.remote_messages++;
    counters.remote_message_bytes += bytes;
  }
  engine->messages_.Append(worker_, loc.worker, loc.local,
                           std::move(message));
}

template <typename V, typename M>
inline void VertexContext<V, M>::SendMessageToAllNeighbors(const M& message) {
  // Identical copies share one MessageBytes sizing (the oracle is a pure
  // function of the message value), saving a virtual call per edge in
  // broadcast-style programs.
  auto* engine = engine_;
  const PartitionMap& partition = engine->partition_;
  const uint64_t bytes = engine->program_->MessageBytes(message);
  auto* const row = engine->messages_.SenderRow(worker_);
  const WorkerId self = worker_;
  uint64_t local = 0;
  if (partition.is_modulo()) {
    // Hash fast path: ownership is two multiplies per edge — the mode
    // check is hoisted out of the loop so the seed scheme keeps its
    // table-free inner loop.
    const internal::FastDiv divider = partition.divider();  // by value
    for (const VertexId target : out_neighbors()) {
      const uint32_t target_local = divider.Div(target);
      const WorkerId dest_worker = target - target_local * divider.divisor();
      local += (dest_worker == self);
      row[dest_worker].PushBack(target_local, M(message));
    }
  } else {
    for (const VertexId target : out_neighbors()) {
      const PartitionMap::Location loc = partition.Locate(target);
      local += (loc.worker == self);
      row[loc.worker].PushBack(loc.local, M(message));
    }
  }
  const uint64_t remote = out_neighbors().size() - local;
  WorkerCounters& counters = engine->counters_[worker_];
  counters.local_messages += local;
  counters.local_message_bytes += local * bytes;
  counters.remote_messages += remote;
  counters.remote_message_bytes += remote * bytes;
}

template <typename V, typename M>
inline void VertexContext<V, M>::VoteToHalt() {
  engine_->active_[id_] = 0;
}

template <typename V, typename M>
inline void VertexContext<V, M>::Aggregate(AggregatorId id, double value) {
  double& slot = engine_->agg_partial_[worker_][id];
  slot = AggregatorReduce(engine_->agg_ops_[id], slot, value);
}

template <typename V, typename M>
inline double VertexContext<V, M>::GetAggregate(AggregatorId id) const {
  return engine_->agg_prev_[id];
}

}  // namespace predict::bsp

#endif  // PREDICT_BSP_ENGINE_H_
