#include "bsp/counters.h"

#include <algorithm>

#include "bsp/partition.h"

namespace predict::bsp {

WorkerCounters& WorkerCounters::operator+=(const WorkerCounters& other) {
  active_vertices += other.active_vertices;
  total_vertices += other.total_vertices;
  local_messages += other.local_messages;
  remote_messages += other.remote_messages;
  local_message_bytes += other.local_message_bytes;
  remote_message_bytes += other.remote_message_bytes;
  return *this;
}

WorkerCounters SuperstepStats::Totals() const {
  WorkerCounters totals;
  for (const WorkerCounters& w : per_worker) totals += w;
  return totals;
}

const char* HaltReasonName(HaltReason reason) {
  switch (reason) {
    case HaltReason::kConverged:
      return "converged";
    case HaltReason::kMasterHalt:
      return "master_halt";
    case HaltReason::kMaxSupersteps:
      return "max_supersteps";
  }
  return "unknown";
}

std::vector<uint64_t> PerWorkerOutboundEdges(const Graph& graph,
                                             uint32_t num_workers) {
  return PartitionMap::HashModulo(num_workers, graph.num_vertices())
      .OutboundEdges(graph);
}

WorkerId ArgMaxWorker(const std::vector<uint64_t>& values) {
  if (values.empty()) return 0;
  return static_cast<WorkerId>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace predict::bsp
