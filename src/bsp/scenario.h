// Named cluster deployments ("what-if scenarios").
//
// PREDIcT's §5 evaluates prediction quality across cluster
// configurations, and its cost model is re-trained per cluster. A
// ClusterScenario bundles everything that defines one deployment for the
// simulator — worker count, the generative cost factors (network tier,
// barrier overhead), per-worker speed multipliers for heterogeneous /
// straggler clusters, the memory budget, and the vertex partitioning
// strategy — so the prediction stack can answer "how would this job run
// over there?" for deployments it has never executed on.
//
// Scenarios flow end to end: ToEngineOptions() configures a run,
// pipeline::ProfileStage stamps its artifact with the scenario's
// canonical key, PredictionService keys its profile cache on it (a
// profile measured under one scenario never answers for another), and
// Predictor::PredictAcrossScenarios / PredictionService::PredictScenarios
// sweep one (algorithm, dataset) over many scenarios while reusing the
// sampled subgraph.

#ifndef PREDICT_BSP_SCENARIO_H_
#define PREDICT_BSP_SCENARIO_H_

#include <string>
#include <vector>

#include "bsp/engine.h"
#include "common/result.h"

namespace predict::bsp {

/// One named cluster deployment the simulator can model.
struct ClusterScenario {
  /// Registry key, e.g. "giraph-29". Purely descriptive: cache identity
  /// comes from ScenarioKey(), never from the name.
  std::string name;
  std::string description;

  uint32_t num_workers = 29;
  int max_supersteps = 500;
  /// Total simulated cluster memory; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
  PartitionStrategy partition = PartitionStrategy::kHashModulo;
  /// Cost factors, including the network tier (local/remote costs),
  /// barrier overhead and per-worker speed multipliers.
  CostProfile cost_profile;

  /// Engine configuration for a run on this scenario. `num_threads` is
  /// host-side only (it never affects simulated output) and so is not
  /// part of the scenario.
  EngineOptions ToEngineOptions(int num_threads = -1) const;
};

/// The built-in scenario registry:
///   giraph-29        the paper's cluster (30 tasks = 29 workers + master)
///   giraph-10        a 10-worker slice of the same hardware
///   hetero-straggler giraph-29 with slow workers (runtime-variation case)
///   fast-network-64  64 workers on a 10x network fabric
///   edge-balanced-29 giraph-29 with greedy edge-balanced partitioning
const std::vector<ClusterScenario>& BuiltinScenarios();

/// Names of the built-in scenarios, in registry order.
std::vector<std::string> BuiltinScenarioNames();

/// Looks a built-in scenario up by name; NotFound with the known names
/// otherwise.
Result<ClusterScenario> FindScenario(const std::string& name);

/// Canonical cache-key string over every simulation-relevant field of an
/// EngineOptions (worker count, supersteps cap, memory budget, partition
/// strategy and the full cost profile — num_threads excluded). Two
/// engine configurations with equal keys produce bit-identical runs, so
/// artifact caches keyed on this can never serve one scenario's profile
/// to another.
std::string EngineOptionsKey(const EngineOptions& options);

/// EngineOptionsKey of the scenario's engine configuration.
std::string ScenarioKey(const ClusterScenario& scenario);

}  // namespace predict::bsp

#endif  // PREDICT_BSP_SCENARIO_H_
