// A small persistent thread pool for parallel worker execution.
//
// The BSP engine runs simulated workers on host threads. Simulated time
// comes from the cost clock, never from wall time, so results are
// bit-identical for any thread count (including 0 = inline).
//
// Index claiming is chunked: each participant grabs a grain-sized range
// of indices with one atomic fetch_add instead of taking a mutex per
// index, so wide fan-outs (e.g. 29 simulated workers) do not serialize
// on a lock. The mutex is only used to publish a batch and to park idle
// threads between batches.

#ifndef PREDICT_BSP_THREAD_POOL_H_
#define PREDICT_BSP_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace predict::bsp {

/// Fixed-size pool executing ParallelFor batches.
class ThreadPool {
 public:
  /// `num_threads` of 0 means "run everything inline on the caller".
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes fn(i) for every i in [0, count), distributing chunks of
  /// indices across the pool; blocks until all invocations complete. fn
  /// must be safe to call concurrently for distinct i.
  void ParallelFor(uint64_t count, const std::function<void(uint64_t)>& fn);

  uint32_t num_threads() const { return static_cast<uint32_t>(threads_.size()); }

 private:
  void WorkerLoop();

  /// Claims and executes grain-sized index chunks until the batch's
  /// index space is exhausted; called by pool threads and the caller.
  void RunChunks(const std::function<void(uint64_t)>& fn);

  std::vector<std::thread> threads_;

  // Batch publication (guarded by mutex_). A batch cannot be recycled
  // until every woken worker has left RunChunks (active_workers_ == 0),
  // which keeps the lock-free claims below safe.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(uint64_t)>* current_fn_ = nullptr;
  uint64_t total_count_ = 0;
  uint64_t grain_ = 1;
  uint64_t generation_ = 0;
  uint32_t active_workers_ = 0;
  bool shutting_down_ = false;

  // Lock-free within a batch.
  std::atomic<uint64_t> next_index_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace predict::bsp

#endif  // PREDICT_BSP_THREAD_POOL_H_
