#include "bsp/scenario.h"

#include <cstdio>
#include <vector>

namespace predict::bsp {

namespace {

/// The paper's deployment, shared by most built-ins: Giraph-era
/// hardware, 1 Gbps fabric, Hadoop barriers (the CostProfile defaults),
/// 60-superstep cap and the 300 MiB budget calibrated in
/// datasets/datasets.cc.
ClusterScenario PaperBase() {
  ClusterScenario scenario;
  scenario.num_workers = 29;
  scenario.max_supersteps = 60;
  scenario.memory_budget_bytes = 300ull * 1024 * 1024;
  return scenario;
}

std::vector<ClusterScenario> MakeBuiltins() {
  std::vector<ClusterScenario> scenarios;

  {
    ClusterScenario s = PaperBase();
    s.name = "giraph-29";
    s.description = "the paper's cluster: 29 workers + master, 1 Gbps";
    scenarios.push_back(std::move(s));
  }
  {
    ClusterScenario s = PaperBase();
    s.name = "giraph-10";
    s.description = "10-worker slice of the paper cluster (proportional RAM)";
    s.num_workers = 10;
    s.memory_budget_bytes = PaperBase().memory_budget_bytes * 10 / 29;
    scenarios.push_back(std::move(s));
  }
  {
    ClusterScenario s = PaperBase();
    s.name = "hetero-straggler";
    s.description = "giraph-29 with three degraded workers (stragglers)";
    // Multipliers > 1 slow a worker down. Three degraded machines, the
    // worst at 2.2x — the heterogeneity band reported for shared-cluster
    // runtime variation; everything else runs at paper speed.
    s.cost_profile.worker_speed_factors.assign(s.num_workers, 1.0);
    s.cost_profile.worker_speed_factors[3] = 1.3;
    s.cost_profile.worker_speed_factors[7] = 2.2;
    s.cost_profile.worker_speed_factors[19] = 1.6;
    scenarios.push_back(std::move(s));
  }
  {
    ClusterScenario s = PaperBase();
    s.name = "fast-network-64";
    s.description = "64 workers on a 10x fabric (remote ~ local cost)";
    s.num_workers = 64;
    s.memory_budget_bytes = PaperBase().memory_budget_bytes * 64 / 29;
    // 10 GbE: remote bytes price like a fast interconnect, message
    // initiation cheapens, and the leaner coordination plane syncs
    // faster.
    s.cost_profile.per_remote_byte_seconds = 2e-7;
    s.cost_profile.per_remote_message_seconds = 6e-6;
    s.cost_profile.barrier_seconds = 0.12;
    scenarios.push_back(std::move(s));
  }
  {
    ClusterScenario s = PaperBase();
    s.name = "edge-balanced-29";
    s.description = "giraph-29 with greedy edge-balanced partitioning";
    s.partition = PartitionStrategy::kGreedyEdgeBalanced;
    scenarios.push_back(std::move(s));
  }

  return scenarios;
}

}  // namespace

EngineOptions ClusterScenario::ToEngineOptions(int num_threads) const {
  EngineOptions options;
  options.num_workers = num_workers;
  options.partition = partition;
  options.num_threads = num_threads;
  options.max_supersteps = max_supersteps;
  options.memory_budget_bytes = memory_budget_bytes;
  options.cost_profile = cost_profile;
  return options;
}

const std::vector<ClusterScenario>& BuiltinScenarios() {
  static const std::vector<ClusterScenario> scenarios = MakeBuiltins();
  return scenarios;
}

std::vector<std::string> BuiltinScenarioNames() {
  std::vector<std::string> names;
  for (const ClusterScenario& s : BuiltinScenarios()) names.push_back(s.name);
  return names;
}

Result<ClusterScenario> FindScenario(const std::string& name) {
  for (const ClusterScenario& s : BuiltinScenarios()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const std::string& n : BuiltinScenarioNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("unknown scenario '" + name + "'; known: " + known);
}

std::string EngineOptionsKey(const EngineOptions& options) {
  const CostProfile& cp = options.cost_profile;
  // Formats twice on overflow rather than truncating: a truncated key
  // could make two different deployments share a cache slot — the exact
  // wrong-hit this key exists to prevent (same bounds-checked idiom as
  // SamplerOptionsKey).
  // path/dpt/cg join the key even though neither affects simulated
  // output: profiles are keyed by the exact engine configuration that
  // produced them, so two configs that execute differently must never
  // share a cache slot (the SamplerOptionsKey discipline).
  const auto format = [&](char* out, size_t size) {
    return std::snprintf(
        out, size,
        "w=%u;part=%s;ms=%d;mem=%llu;av=%.17g;lm=%.17g;rm=%.17g;lb=%.17g;"
        "rb=%.17g;bar=%.17g;set=%.17g;rd=%.17g;wr=%.17g;ns=%.17g;seed=%llu;"
        "path=%s;dpt=%.17g;cg=%d",
        options.num_workers, PartitionStrategyName(options.partition),
        options.max_supersteps,
        static_cast<unsigned long long>(options.memory_budget_bytes),
        cp.per_active_vertex_seconds, cp.per_local_message_seconds,
        cp.per_remote_message_seconds, cp.per_local_byte_seconds,
        cp.per_remote_byte_seconds, cp.barrier_seconds, cp.setup_seconds,
        cp.read_bytes_per_second, cp.write_bytes_per_second, cp.noise_sigma,
        static_cast<unsigned long long>(cp.noise_seed),
        SuperstepPathName(options.superstep_path), options.dense_path_threshold,
        options.compressed_graph ? 1 : 0);
  };
  char buf[512];
  std::string key;
  const int needed = format(buf, sizeof(buf));
  if (needed >= 0 && static_cast<size_t>(needed) < sizeof(buf)) {
    key = buf;
  } else {
    std::vector<char> big(static_cast<size_t>(needed) + 1);
    format(big.data(), big.size());
    key = big.data();
  }
  if (!cp.worker_speed_factors.empty()) {
    key += ";speed=";
    for (const double factor : cp.worker_speed_factors) {
      char fbuf[40];  // one %.17g double + separator always fits
      std::snprintf(fbuf, sizeof(fbuf), "%.17g,", factor);
      key += fbuf;
    }
  }
  return key;
}

std::string ScenarioKey(const ClusterScenario& scenario) {
  return EngineOptionsKey(scenario.ToEngineOptions());
}

}  // namespace predict::bsp
