// Active-vertex worklists for the BSP engine.
//
// Pregel runs Compute for every vertex that is active OR has pending
// messages. The engine used to discover that set by scanning all of a
// worker's vertices every superstep — O(V) work even when a handful of
// label improvements trickle through a converged graph (the connected-
// components tail, the paper's 100x inter-iteration variability case).
//
// A WorkerWorklist keeps the set explicitly, so a superstep touches
// O(active + messaged) vertices:
//
//   * during Compute, vertices that did not vote to halt are appended
//     to `survivors` (ascending, because workers compute in ascending
//     vertex order — part of the determinism contract);
//   * at the barrier, the message store reports which owned vertices
//     received messages (`messaged`, sorted ascending);
//   * the next superstep's worklist is the sorted union of the two.
//
// Every list is per worker and only ever touched by the thread running
// that worker's phase, so no synchronization is needed and iteration
// order is identical for any host thread count.

#ifndef PREDICT_BSP_WORKLIST_H_
#define PREDICT_BSP_WORKLIST_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "bsp/counters.h"
#include "bsp/partition.h"
#include "graph/graph.h"

namespace predict::bsp::internal {

/// The set of vertices one worker must run Compute for, maintained
/// across supersteps. All member lists hold global vertex ids, sorted
/// ascending and duplicate-free.
class WorkerWorklist {
 public:
  /// Superstep-0 seed: every vertex starts active, so the worklist is
  /// all vertices the partition map assigns to `w`, ascending.
  void SeedAllOwned(WorkerId w, const PartitionMap& partition) {
    current_.clear();
    current_.reserve(partition.NumOwned(w));
    partition.ForEachOwned(w, [&](VertexId v) { current_.push_back(v); });
    survivors_.clear();
    messaged_.clear();
  }

  /// Vertices to compute this superstep.
  std::span<const VertexId> current() const { return current_; }

  void BeginSuperstep() { survivors_.clear(); }

  /// Records that `v` is still active after Compute. Must be called in
  /// ascending vertex order (the worker's compute order).
  void AddSurvivor(VertexId v) { survivors_.push_back(v); }

  /// Vertices still active after this superstep's Compute phase; the
  /// engine sums these for MasterContext::active_vertices().
  uint64_t num_survivors() const { return survivors_.size(); }

  /// Scratch the message store fills with this worker's messaged
  /// vertices (sorted ascending) at the barrier.
  std::vector<VertexId>* messaged() { return &messaged_; }

  /// Dense-to-sparse transition: the dense compute path maintains no
  /// survivor list (it reads the engine's per-vertex active flags
  /// directly), so when the next superstep goes back to the worklist
  /// path the survivors are reconstructed from those flags. The flags
  /// and the survivor list are provably the same set — a vertex not in
  /// its worker's worklist always has active[v] == 0 — and ForEachOwned
  /// visits ascending, so the rebuilt worklist is bit-identical to the
  /// one the sparse path would have maintained. O(owned), which is fine:
  /// the engine only chose the dense path because the active fraction
  /// was already near 1.
  void RebuildFromFlags(WorkerId w, const PartitionMap& partition,
                        const uint8_t* active) {
    survivors_.clear();
    partition.ForEachOwned(w, [&](VertexId v) {
      if (active[v]) survivors_.push_back(v);
    });
    Rebuild();
  }

  /// Barrier phase: next worklist = survivors ∪ messaged.
  void Rebuild() {
    scratch_.clear();
    scratch_.reserve(survivors_.size() + messaged_.size());
    std::set_union(survivors_.begin(), survivors_.end(), messaged_.begin(),
                   messaged_.end(), std::back_inserter(scratch_));
    current_.swap(scratch_);
  }

 private:
  std::vector<VertexId> current_;
  std::vector<VertexId> survivors_;
  std::vector<VertexId> messaged_;
  std::vector<VertexId> scratch_;
};

}  // namespace predict::bsp::internal

#endif  // PREDICT_BSP_WORKLIST_H_
