// Pluggable vertex partitioning for the BSP engine.
//
// The engine used to hard-code hash partitioning (owner = v %
// num_workers, local index = v / num_workers) in four places: the
// compute loop's seeding, the message store's slab addressing, the
// worklist seeding and the per-worker counter totals. A PartitionMap
// makes the vertex->worker assignment a first-class value those layers
// all consume, so alternative data layouts — and their effect on the
// critical-path worker PREDIcT models — become a scenario knob instead
// of an engine rewrite.
//
// Strategies:
//
//   * kHashModulo       owner = v % W. The seed engine's scheme and the
//                        *fast path*: ownership is pure arithmetic (a
//                        Lemire magic-multiply divide, no tables), and
//                        engine output is bit-identical to the
//                        pre-partitioner engine for every worker/thread
//                        count (pinned by golden fingerprints in
//                        tests/determinism_test.cc).
//   * kContiguousRange  worker w owns a contiguous id range; vertex
//                        counts balanced to within one. Generator-
//                        ordered graphs put early (hub) ids on low
//                        workers, so range partitioning concentrates
//                        edges — the partition-skew regime.
//   * kGreedyEdgeBalanced  vertices sorted by out-degree descending and
//                        greedily placed on the least-loaded worker (by
//                        outbound edges; LPT scheduling). Flattens the
//                        per-worker edge totals that drive the paper's
//                        static critical-path choice.
//
// Local indices are always the rank of a vertex within its owner's
// owned set in ascending global order, so local order == global order
// per worker — the property the message store's barrier sort and the
// worklists' merge rely on for determinism.
//
// Every strategy is a pure function of (strategy, num_workers, graph):
// building a map twice yields identical assignments, and construction
// is sequential, so partitioned runs stay bit-identical for any host
// thread count.

#ifndef PREDICT_BSP_PARTITION_H_
#define PREDICT_BSP_PARTITION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bsp/counters.h"
#include "common/result.h"
#include "graph/graph.h"

namespace predict::bsp {

namespace internal {

/// Division/modulo by a runtime constant via a precomputed magic
/// multiply (Lemire's round-up method; exact for all 32-bit
/// numerators). Hash partitioning divides by num_workers on every send
/// and every inbox lookup, so a hardware divide here is measurable.
class FastDiv {
 public:
  FastDiv() = default;
  explicit FastDiv(uint32_t divisor)
      : divisor_(divisor),
        magic_(divisor > 1 ? ~uint64_t{0} / divisor + 1 : 0) {}

  uint32_t divisor() const { return divisor_; }

  uint32_t Div(uint32_t v) const {
    if (divisor_ == 1) return v;
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(magic_) * v) >> 64);
  }

  uint32_t Mod(uint32_t v) const { return v - Div(v) * divisor_; }

 private:
  uint32_t divisor_ = 1;
  uint64_t magic_ = 0;
};

}  // namespace internal

/// How vertices are assigned to workers.
enum class PartitionStrategy {
  kHashModulo = 0,
  kContiguousRange = 1,
  kGreedyEdgeBalanced = 2,
};

const char* PartitionStrategyName(PartitionStrategy strategy);

/// Parses "hash" | "range" | "edge" (also accepts the full enum names).
Result<PartitionStrategy> ParsePartitionStrategy(const std::string& name);

/// \brief A concrete vertex -> (worker, local index) assignment.
///
/// Immutable after construction; safe to share across threads. The
/// modulo strategy is table-free (pure arithmetic); the others carry
/// O(|V|) lookup tables plus per-worker owned-vertex lists.
class PartitionMap {
 public:
  PartitionMap() = default;

  /// The seed engine's scheme: owner = v % W, local = v / W.
  static PartitionMap HashModulo(uint32_t num_workers, uint64_t num_vertices);

  /// Contiguous ranges, vertex counts balanced to within one (low
  /// workers get the extra vertex, mirroring the modulo counts).
  static PartitionMap ContiguousRange(uint32_t num_workers,
                                      uint64_t num_vertices);

  /// LPT greedy: vertices by out-degree descending (ties: ascending id)
  /// onto the worker with the fewest outbound edges so far (ties:
  /// lowest worker id). Deterministic.
  static PartitionMap GreedyEdgeBalanced(uint32_t num_workers,
                                         const Graph& graph);

  /// Table-backed copy of the modulo assignment. Exercises the general
  /// table path with hash ownership; for tests and the perf gate.
  static PartitionMap HashModuloTable(uint32_t num_workers,
                                      uint64_t num_vertices);

  /// Builds `strategy` over `graph` for `num_workers`.
  static PartitionMap Build(PartitionStrategy strategy, uint32_t num_workers,
                            const Graph& graph);

  uint32_t num_workers() const { return num_workers_; }
  uint64_t num_vertices() const { return num_vertices_; }
  PartitionStrategy strategy() const { return strategy_; }

  /// True when ownership is the table-free modulo arithmetic.
  bool is_modulo() const { return modulo_; }

  /// The magic-multiply divider (modulo mode's arithmetic core).
  const internal::FastDiv& divider() const { return div_; }

  struct Location {
    WorkerId worker;
    uint32_t local;
  };

  /// Owner + local index of `v`; the hot send-path lookup (one
  /// predictable branch, then either two multiplies or two loads).
  Location Locate(VertexId v) const {
    if (modulo_) {
      const uint32_t local = div_.Div(v);
      return {v - local * div_.divisor(), local};
    }
    return {owner_[v], local_[v]};
  }

  WorkerId Owner(VertexId v) const { return Locate(v).worker; }
  uint32_t LocalIndex(VertexId v) const {
    return modulo_ ? div_.Div(v) : local_[v];
  }

  /// Inverse of LocalIndex: the global id of worker `w`'s `local`-th
  /// owned vertex (ascending global order).
  VertexId GlobalId(WorkerId w, uint32_t local) const {
    if (modulo_) {
      return static_cast<VertexId>(local) * num_workers_ + w;
    }
    return owned_[owned_offsets_[w] + local];
  }

  /// Vertices owned by worker `w`.
  uint64_t NumOwned(WorkerId w) const {
    if (modulo_) {
      return num_vertices_ / num_workers_ + (w < num_vertices_ % num_workers_);
    }
    return owned_offsets_[w + 1] - owned_offsets_[w];
  }

  /// Invokes fn(global id) for every vertex owned by `w`, ascending.
  template <typename Fn>
  void ForEachOwned(WorkerId w, Fn&& fn) const {
    if (modulo_) {
      for (uint64_t v = w; v < num_vertices_; v += num_workers_) {
        fn(static_cast<VertexId>(v));
      }
      return;
    }
    const uint64_t begin = owned_offsets_[w];
    const uint64_t end = owned_offsets_[w + 1];
    for (uint64_t i = begin; i < end; ++i) fn(owned_[i]);
  }

  /// Outbound-edge totals per worker under this assignment — the basis
  /// of the paper's static critical-path identification (§3.4).
  std::vector<uint64_t> OutboundEdges(const Graph& graph) const;

 private:
  PartitionMap(PartitionStrategy strategy, uint32_t num_workers,
               uint64_t num_vertices, bool modulo)
      : strategy_(strategy),
        num_workers_(num_workers),
        num_vertices_(num_vertices),
        modulo_(modulo),
        div_(num_workers == 0 ? 1 : num_workers) {}

  /// Derives local_, owned_offsets_ and owned_ from a filled owner_.
  void BuildTablesFromOwners();

  PartitionStrategy strategy_ = PartitionStrategy::kHashModulo;
  uint32_t num_workers_ = 1;
  uint64_t num_vertices_ = 0;
  bool modulo_ = true;
  internal::FastDiv div_;

  // Table mode only.
  std::vector<WorkerId> owner_;          // [vertex]
  std::vector<uint32_t> local_;          // [vertex]
  std::vector<uint64_t> owned_offsets_;  // [worker + 1] CSR into owned_
  std::vector<VertexId> owned_;          // grouped by worker, ascending
};

}  // namespace predict::bsp

#endif  // PREDICT_BSP_PARTITION_H_
