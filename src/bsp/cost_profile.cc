#include "bsp/cost_profile.h"

#include <cmath>

#include "common/rng.h"

namespace predict::bsp {

double CostProfile::WorkerSeconds(const WorkerCounters& c) const {
  return per_active_vertex_seconds * static_cast<double>(c.active_vertices) +
         per_local_message_seconds * static_cast<double>(c.local_messages) +
         per_remote_message_seconds * static_cast<double>(c.remote_messages) +
         per_local_byte_seconds * static_cast<double>(c.local_message_bytes) +
         per_remote_byte_seconds * static_cast<double>(c.remote_message_bytes);
}

double CostProfile::NoiseFactor(int superstep, WorkerId worker) const {
  if (noise_sigma <= 0.0) return 1.0;
  // Two independent uniforms -> one gaussian via Box-Muller, all derived
  // from a stateless hash so the factor depends only on (superstep, worker).
  const double u1 = Rng::HashToUnitDouble(noise_seed, superstep + 1, worker + 1);
  const double u2 =
      Rng::HashToUnitDouble(noise_seed ^ 0xABCDEF1234567890ULL, superstep + 1,
                            worker + 1);
  const double safe_u1 = u1 <= 0.0 ? 0x1.0p-53 : u1;
  const double gaussian =
      std::sqrt(-2.0 * std::log(safe_u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(noise_sigma * gaussian);
}

double CostProfile::SuperstepSeconds(std::span<const WorkerCounters> workers,
                                     int superstep,
                                     WorkerId* critical_worker) const {
  double max_cost = 0.0;
  WorkerId argmax = 0;
  const bool heterogeneous = !worker_speed_factors.empty();
  for (size_t w = 0; w < workers.size(); ++w) {
    double cost = WorkerSeconds(workers[w]);
    if (heterogeneous) cost *= SpeedFactor(static_cast<WorkerId>(w));
    cost *= NoiseFactor(superstep, static_cast<WorkerId>(w));
    if (cost > max_cost) {
      max_cost = cost;
      argmax = static_cast<WorkerId>(w);
    }
  }
  if (critical_worker != nullptr) *critical_worker = argmax;
  return max_cost + barrier_seconds;
}

double CostProfile::ReadSeconds(uint64_t graph_bytes) const {
  if (read_bytes_per_second <= 0.0) return 0.0;
  return static_cast<double>(graph_bytes) / read_bytes_per_second;
}

double CostProfile::WriteSeconds(uint64_t output_bytes) const {
  if (write_bytes_per_second <= 0.0) return 0.0;
  return static_cast<double>(output_bytes) / write_bytes_per_second;
}

}  // namespace predict::bsp
