#include "bsp/partition.h"

#include <algorithm>
#include <queue>

namespace predict::bsp {

const char* PartitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kHashModulo:
      return "hash";
    case PartitionStrategy::kContiguousRange:
      return "range";
    case PartitionStrategy::kGreedyEdgeBalanced:
      return "edge";
  }
  return "unknown";
}

Result<PartitionStrategy> ParsePartitionStrategy(const std::string& name) {
  if (name == "hash" || name == "modulo") return PartitionStrategy::kHashModulo;
  if (name == "range" || name == "contiguous") {
    return PartitionStrategy::kContiguousRange;
  }
  if (name == "edge" || name == "edge-balanced") {
    return PartitionStrategy::kGreedyEdgeBalanced;
  }
  return Status::InvalidArgument("unknown partition strategy '" + name +
                                 "'; known: hash, range, edge");
}

PartitionMap PartitionMap::HashModulo(uint32_t num_workers,
                                      uint64_t num_vertices) {
  return PartitionMap(PartitionStrategy::kHashModulo, num_workers,
                      num_vertices, /*modulo=*/true);
}

void PartitionMap::BuildTablesFromOwners() {
  const uint64_t n = num_vertices_;
  local_.resize(n);
  owned_offsets_.assign(num_workers_ + 1, 0);
  for (uint64_t v = 0; v < n; ++v) owned_offsets_[owner_[v] + 1]++;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    owned_offsets_[w + 1] += owned_offsets_[w];
  }
  owned_.resize(n);
  std::vector<uint64_t> cursor(owned_offsets_.begin(),
                               owned_offsets_.end() - 1);
  // Ascending v => each worker's owned list is ascending, and the local
  // index is the vertex's rank within it.
  for (uint64_t v = 0; v < n; ++v) {
    const WorkerId w = owner_[v];
    local_[v] = static_cast<uint32_t>(cursor[w] - owned_offsets_[w]);
    owned_[cursor[w]++] = static_cast<VertexId>(v);
  }
}

PartitionMap PartitionMap::ContiguousRange(uint32_t num_workers,
                                           uint64_t num_vertices) {
  PartitionMap map(PartitionStrategy::kContiguousRange, num_workers,
                   num_vertices, /*modulo=*/false);
  map.owner_.resize(num_vertices);
  uint64_t v = 0;
  for (uint32_t w = 0; w < num_workers; ++w) {
    const uint64_t count =
        num_vertices / num_workers + (w < num_vertices % num_workers);
    for (uint64_t i = 0; i < count; ++i) map.owner_[v++] = w;
  }
  map.BuildTablesFromOwners();
  return map;
}

PartitionMap PartitionMap::GreedyEdgeBalanced(uint32_t num_workers,
                                              const Graph& graph) {
  const uint64_t n = graph.num_vertices();
  PartitionMap map(PartitionStrategy::kGreedyEdgeBalanced, num_workers, n,
                   /*modulo=*/false);
  map.owner_.resize(n);

  // Vertices by out-degree descending, ties by ascending id: a counting
  // sort over degrees keeps construction O(|V| + max_degree) and exactly
  // reproducible.
  std::vector<VertexId> order(n);
  {
    uint64_t max_degree = 0;
    for (uint64_t v = 0; v < n; ++v) {
      max_degree = std::max(max_degree, graph.out_degree(v));
    }
    std::vector<uint64_t> bucket_starts(max_degree + 2, 0);
    for (uint64_t v = 0; v < n; ++v) {
      bucket_starts[max_degree - graph.out_degree(v) + 1]++;
    }
    for (size_t d = 1; d < bucket_starts.size(); ++d) {
      bucket_starts[d] += bucket_starts[d - 1];
    }
    for (uint64_t v = 0; v < n; ++v) {
      order[bucket_starts[max_degree - graph.out_degree(v)]++] =
          static_cast<VertexId>(v);
    }
  }

  // LPT: each vertex goes to the least-loaded worker; ties break to the
  // lowest worker id, so the heap orders by (load, worker).
  using Load = std::pair<uint64_t, WorkerId>;
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t w = 0; w < num_workers; ++w) heap.push({0, w});
  for (const VertexId v : order) {
    Load load = heap.top();
    heap.pop();
    map.owner_[v] = load.second;
    load.first += graph.out_degree(v);
    heap.push(load);
  }

  map.BuildTablesFromOwners();
  return map;
}

PartitionMap PartitionMap::HashModuloTable(uint32_t num_workers,
                                           uint64_t num_vertices) {
  PartitionMap map(PartitionStrategy::kHashModulo, num_workers, num_vertices,
                   /*modulo=*/false);
  map.owner_.resize(num_vertices);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    map.owner_[v] = static_cast<WorkerId>(v % num_workers);
  }
  map.BuildTablesFromOwners();
  return map;
}

PartitionMap PartitionMap::Build(PartitionStrategy strategy,
                                 uint32_t num_workers, const Graph& graph) {
  switch (strategy) {
    case PartitionStrategy::kHashModulo:
      return HashModulo(num_workers, graph.num_vertices());
    case PartitionStrategy::kContiguousRange:
      return ContiguousRange(num_workers, graph.num_vertices());
    case PartitionStrategy::kGreedyEdgeBalanced:
      return GreedyEdgeBalanced(num_workers, graph);
  }
  return HashModulo(num_workers, graph.num_vertices());
}

std::vector<uint64_t> PartitionMap::OutboundEdges(const Graph& graph) const {
  std::vector<uint64_t> edges(num_workers_, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    edges[Owner(v)] += graph.out_degree(v);
  }
  return edges;
}

}  // namespace predict::bsp
