// The vertex-centric programming API (Pregel/Giraph model, §2.2).
//
// An algorithm is a VertexProgram<V, M>: V is the per-vertex state, M the
// message type. Each superstep the engine calls Compute() for every
// vertex that is active or has incoming messages; a vertex can send
// messages (delivered next superstep), contribute to aggregators, and
// vote to halt. A MasterCompute() hook runs after each superstep and may
// halt the whole computation — this is where the paper's global
// convergence conditions live.

#ifndef PREDICT_BSP_VERTEX_PROGRAM_H_
#define PREDICT_BSP_VERTEX_PROGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bsp/aggregators.h"
#include "bsp/counters.h"
#include "graph/graph.h"

namespace predict::bsp {

namespace internal {
template <typename V, typename M>
class EngineState;  // defined in engine.h
}  // namespace internal

/// Per-vertex view handed to VertexProgram::Compute.
template <typename V, typename M>
class VertexContext {
 public:
  VertexId id() const { return id_; }
  int superstep() const;
  uint64_t num_vertices() const;

  /// Mutable per-vertex state.
  V& value();
  const V& value() const;

  std::span<const VertexId> out_neighbors() const;
  std::span<const float> out_weights() const;
  uint64_t out_degree() const;
  bool graph_is_weighted() const;

  /// Queues a message for delivery at the next superstep.
  void SendMessage(VertexId target, M message);

  /// Sends a copy of `message` to every out-neighbor.
  void SendMessageToAllNeighbors(const M& message);

  /// Deactivates this vertex; a future incoming message reactivates it.
  void VoteToHalt();

  /// Contributes to aggregator `id` (visible from the next superstep).
  void Aggregate(AggregatorId id, double value);

  /// Reduced aggregator value from the previous superstep.
  double GetAggregate(AggregatorId id) const;

 private:
  template <typename, typename>
  friend class internal::EngineState;
  VertexContext(internal::EngineState<V, M>* engine, WorkerId worker,
                VertexId id)
      : engine_(engine), worker_(worker), id_(id) {}

  internal::EngineState<V, M>* engine_;
  WorkerId worker_;
  VertexId id_;
  /// Set when the program takes a mutable reference to the vertex state;
  /// tells the engine to refresh this vertex's simulated state bytes.
  /// The size before the first mutable access is captured alongside so
  /// the engine can charge the delta.
  bool value_dirty_ = false;
  uint64_t pre_state_bytes_ = 0;
};

/// Master view handed to VertexProgram::MasterCompute after superstep S.
class MasterContext {
 public:
  MasterContext(int superstep, uint64_t num_vertices,
                const std::vector<double>& aggregates, uint64_t active,
                uint64_t messages_in_flight)
      : superstep_(superstep),
        num_vertices_(num_vertices),
        aggregates_(aggregates),
        active_vertices_(active),
        messages_in_flight_(messages_in_flight) {}

  /// The superstep that just completed (0-based).
  int superstep() const { return superstep_; }
  uint64_t num_vertices() const { return num_vertices_; }

  /// Aggregator value reduced during the superstep that just completed.
  double GetAggregate(AggregatorId id) const { return aggregates_[id]; }

  /// Vertices still active after the superstep.
  uint64_t active_vertices() const { return active_vertices_; }

  /// Messages queued for delivery in the next superstep.
  uint64_t messages_in_flight() const { return messages_in_flight_; }

  /// Stops the computation: no further superstep is executed.
  void HaltComputation() { halt_ = true; }
  bool halt_requested() const { return halt_; }

 private:
  int superstep_;
  uint64_t num_vertices_;
  const std::vector<double>& aggregates_;
  uint64_t active_vertices_;
  uint64_t messages_in_flight_;
  bool halt_ = false;
};

/// \brief Base class for all BSP algorithms.
///
/// Thread-safety contract: Compute() may be called concurrently for
/// different vertices; it must only touch its own context. The
/// MessageBytes / VertexStateBytes hooks are the engine's serialized-size
/// oracle for the messaging-cost and memory models (Table 1 byte
/// counters).
template <typename V, typename M>
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Registers the program's aggregators (called once before the run).
  virtual void RegisterAggregators(AggregatorRegistry* registry) {
    (void)registry;
  }

  /// Initial per-vertex state, evaluated before superstep 0.
  virtual V InitialValue(VertexId v, const Graph& graph) const = 0;

  /// The per-vertex kernel.
  virtual void Compute(VertexContext<V, M>* ctx,
                       std::span<const M> messages) = 0;

  /// Runs on the master after each superstep; default: never halts.
  virtual void MasterCompute(MasterContext* ctx) { (void)ctx; }

  /// Serialized size of a message, in bytes (drives LocMsgSize/RemMsgSize).
  virtual uint64_t MessageBytes(const M& message) const {
    (void)message;
    return sizeof(M);
  }

  /// In-memory size of a vertex state (drives the memory model).
  virtual uint64_t VertexStateBytes(const V& value) const {
    (void)value;
    return sizeof(V);
  }

  /// Non-zero iff VertexStateBytes is the same for every possible value,
  /// in which case this returns that constant. Lets the engine charge
  /// vertex-state memory once at init and skip the per-vertex dirty
  /// tracking (two VertexStateBytes virtual calls per computed vertex)
  /// entirely — a measurable win on fixed-state kernels like PageRank.
  /// Programs whose state owns heap payloads (top-k lists, clusters)
  /// must leave this at 0.
  virtual uint64_t FixedVertexStateBytes() const { return 0; }
};

}  // namespace predict::bsp

#endif  // PREDICT_BSP_VERTEX_PROGRAM_H_
