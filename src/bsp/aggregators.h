// Named global aggregators, mirroring Giraph/Pregel aggregators.
//
// A vertex contributes values during superstep S; the reduced value is
// visible to vertices and to the master compute hook from superstep S+1
// on (and to master.compute immediately after S completes). Every
// convergence condition in the paper's algorithms — average PageRank
// delta, semi-cluster update ratio, top-k active ratio — is an aggregate
// at the graph level (§3.5) computed through this mechanism.

#ifndef PREDICT_BSP_AGGREGATORS_H_
#define PREDICT_BSP_AGGREGATORS_H_

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>
#include <vector>

namespace predict::bsp {

/// Reduction operator of an aggregator.
enum class AggregatorOp { kSum, kMin, kMax };

/// Handle returned by Register; O(1) contribution at compute time.
using AggregatorId = uint32_t;

/// Definition of one aggregator.
struct AggregatorDef {
  std::string name;
  AggregatorOp op = AggregatorOp::kSum;
};

/// Identity element of an op.
inline double AggregatorIdentity(AggregatorOp op) {
  switch (op) {
    case AggregatorOp::kSum:
      return 0.0;
    case AggregatorOp::kMin:
      return std::numeric_limits<double>::infinity();
    case AggregatorOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline double AggregatorReduce(AggregatorOp op, double a, double b) {
  switch (op) {
    case AggregatorOp::kSum:
      return a + b;
    case AggregatorOp::kMin:
      return std::min(a, b);
    case AggregatorOp::kMax:
      return std::max(a, b);
  }
  return a;
}

/// \brief Registry a VertexProgram fills in RegisterAggregators().
class AggregatorRegistry {
 public:
  /// Registers an aggregator and returns its handle.
  AggregatorId Register(std::string name, AggregatorOp op) {
    defs_.push_back({std::move(name), op});
    return static_cast<AggregatorId>(defs_.size() - 1);
  }

  const std::vector<AggregatorDef>& defs() const { return defs_; }
  size_t size() const { return defs_.size(); }

 private:
  std::vector<AggregatorDef> defs_;
};

}  // namespace predict::bsp

#endif  // PREDICT_BSP_AGGREGATORS_H_
