// Per-worker, per-superstep execution counters.
//
// These are the "key input features" of Table 1 in the paper: PREDIcT's
// whole methodology consumes nothing from the execution engine except
// these counters (profiled per worker per iteration) and the per-
// superstep runtime. The engine's instrumented code path fills them,
// mirroring the paper's instrumentation of each BSP worker (§3.4,
// "Training Methodology").

#ifndef PREDICT_BSP_COUNTERS_H_
#define PREDICT_BSP_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace predict::bsp {

/// Worker index within a BSP job.
using WorkerId = uint32_t;

/// Counters for one worker during one superstep (Table 1 of the paper).
struct WorkerCounters {
  uint64_t active_vertices = 0;      ///< ActVert: vertices that ran Compute
  uint64_t total_vertices = 0;       ///< TotVert: vertices assigned to worker
  uint64_t local_messages = 0;       ///< LocMsg: dest on the same worker
  uint64_t remote_messages = 0;      ///< RemMsg: dest on another worker
  uint64_t local_message_bytes = 0;  ///< LocMsgSize
  uint64_t remote_message_bytes = 0; ///< RemMsgSize

  uint64_t total_messages() const { return local_messages + remote_messages; }
  uint64_t total_message_bytes() const {
    return local_message_bytes + remote_message_bytes;
  }
  /// AvgMsgSize of Table 1 (not extrapolated).
  double average_message_size() const {
    const uint64_t msgs = total_messages();
    return msgs == 0 ? 0.0
                     : static_cast<double>(total_message_bytes()) /
                           static_cast<double>(msgs);
  }

  WorkerCounters& operator+=(const WorkerCounters& other);
};

/// Everything recorded about one superstep of a run.
struct SuperstepStats {
  int superstep = 0;
  std::vector<WorkerCounters> per_worker;
  /// Simulated runtime of this superstep (critical-path worker + barrier).
  double simulated_seconds = 0.0;
  /// Worker with the largest simulated cost this superstep.
  WorkerId critical_worker = 0;
  /// Aggregator values reduced at the end of this superstep.
  std::map<std::string, double> aggregates;
  /// Simulated memory in use at the superstep barrier (state + buffers).
  uint64_t memory_bytes = 0;
  /// True if this superstep ran on the dense per-vertex-slot path instead
  /// of the worklist/mailbox-sort path (engine.h SuperstepPath). Purely
  /// observational: both paths produce bit-identical results and
  /// identical simulated costs; the flag exists so the cost model and
  /// `predict_cli run` can see which path executed.
  bool dense_path = false;
  /// Host wall-clock cost of this superstep (compute + barrier phases).
  /// Like RunStats::wall_seconds this is host profiling output, NOT part
  /// of the simulated-determinism contract — it varies run to run and is
  /// excluded from every result fingerprint. bench/rmat_scale_gate.cc
  /// uses it to compare per-superstep throughput of the two paths with
  /// per-superstep granularity (robust statistics over noisy hosts).
  double host_seconds = 0.0;

  /// Sum of the per-worker counters.
  WorkerCounters Totals() const;
};

/// Why a run stopped.
enum class HaltReason {
  kConverged,      ///< all vertices halted and no messages in flight
  kMasterHalt,     ///< the algorithm's master.compute() stopped the job
  kMaxSupersteps,  ///< hit EngineOptions::max_supersteps
};

const char* HaltReasonName(HaltReason reason);

/// Full profile of one BSP run: per-superstep stats plus the phase
/// breakdown of §2.2 (setup / read / superstep / write).
struct RunStats {
  std::vector<SuperstepStats> supersteps;

  double setup_seconds = 0.0;
  double read_seconds = 0.0;
  double superstep_phase_seconds = 0.0;  ///< sum over supersteps
  double write_seconds = 0.0;
  /// setup + read + superstep phase + write.
  double total_seconds = 0.0;

  /// Host wall-clock time actually spent executing the simulation.
  double wall_seconds = 0.0;

  uint64_t peak_memory_bytes = 0;
  HaltReason halt_reason = HaltReason::kConverged;

  /// The worker that §3.4 designates as the critical path: the one with
  /// the most outbound edges under the static partitioning. Computable
  /// before the superstep phase starts ("piggybacked in the read phase").
  WorkerId static_critical_worker = 0;
  std::vector<uint64_t> worker_outbound_edges;

  int num_supersteps() const { return static_cast<int>(supersteps.size()); }
};

/// Outbound-edge totals per worker for the default vertex-hash
/// partitioning; the basis of the paper's critical-path identification.
/// For an arbitrary assignment use PartitionMap::OutboundEdges
/// (bsp/partition.h), which the engine records in RunStats.
std::vector<uint64_t> PerWorkerOutboundEdges(const Graph& graph,
                                             uint32_t num_workers);

/// Index of the max element (first one on ties).
WorkerId ArgMaxWorker(const std::vector<uint64_t>& values);

}  // namespace predict::bsp

#endif  // PREDICT_BSP_COUNTERS_H_
