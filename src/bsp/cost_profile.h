// The simulated cost clock.
//
// The paper measures wall-clock superstep times on a 10-node Giraph
// cluster. This repo has no cluster, so superstep runtime is *generated*
// by a cost model the prediction machinery is NOT allowed to see: the
// regression in core/cost_model.h must recover these factors from noisy
// per-worker observations, exactly as the paper's cost model must learn
// Giraph's cost factors from profiled runs.
//
// The generative model implements the paper's modeling assumptions
// (§3.1, §3.3): superstep time is determined by the critical-path worker;
// each worker's time is (approximately) linear in its Table-1 counters,
// with distinct local and remote message/byte costs; a fixed barrier
// overhead is added per superstep; multiplicative log-normal noise makes
// the observations realistic.

#ifndef PREDICT_BSP_COST_PROFILE_H_
#define PREDICT_BSP_COST_PROFILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bsp/counters.h"

namespace predict::bsp {

/// Cost factors of the simulated cluster. Defaults are calibrated to
/// Giraph-era hardware (1 Gbps network, Hadoop barrier overheads) scaled
/// to the synthetic dataset sizes used in the benches.
struct CostProfile {
  /// Per-vertex cost of executing the user compute function (network-
  /// intensive algorithms: short, roughly constant per vertex — §3.3).
  double per_active_vertex_seconds = 2e-6;

  /// Message initiation costs (sender side).
  double per_local_message_seconds = 6e-6;
  double per_remote_message_seconds = 2.4e-5;

  /// Byte transfer costs. Remote ~ serialized network transfer; local ~
  /// in-memory handoff, an order of magnitude cheaper. Calibrated so the
  /// superstep phase dominates full-dataset runs (as on the paper's
  /// cluster, where the stand-in datasets would be 50-100x larger) while
  /// sample runs stay overhead-dominated — the Table-3 shape.
  double per_local_byte_seconds = 2e-7;
  double per_remote_byte_seconds = 2e-6;

  /// Synchronization barrier + master coordination per superstep. This is
  /// what the regression's residual term r mostly absorbs.
  double barrier_seconds = 0.25;

  /// One-off phases (§2.2): Hadoop job setup, HDFS read of the input
  /// partition, and writing the output graph back.
  double setup_seconds = 5.0;
  double read_bytes_per_second = 3e6;
  double write_bytes_per_second = 6e6;

  /// Multiplicative log-normal noise, sigma in log space. 0 disables.
  double noise_sigma = 0.03;
  uint64_t noise_seed = 0x5EEDCAFEULL;

  /// Per-worker slowdown multipliers for heterogeneous clusters
  /// (ClusterScenario's straggler knob): worker w's superstep cost is
  /// scaled by factor w. Workers beyond the vector's length run at 1.0;
  /// empty (the default) means a homogeneous cluster and is skipped
  /// entirely on the cost path, keeping homogeneous runs bit-identical
  /// to profiles that predate this field.
  std::vector<double> worker_speed_factors;

  /// Slowdown multiplier of `worker` (1.0 when unset).
  double SpeedFactor(WorkerId worker) const {
    return worker < worker_speed_factors.size() ? worker_speed_factors[worker]
                                                : 1.0;
  }

  /// Deterministic noiseless cost of one worker's superstep.
  double WorkerSeconds(const WorkerCounters& counters) const;

  /// Noise factor for (superstep, worker); deterministic in the seed.
  double NoiseFactor(int superstep, WorkerId worker) const;

  /// Simulated runtime of a superstep: max over workers of noisy worker
  /// cost, plus the barrier. Writes the argmax into `critical_worker` if
  /// non-null.
  double SuperstepSeconds(std::span<const WorkerCounters> workers,
                          int superstep,
                          WorkerId* critical_worker = nullptr) const;

  /// Simulated duration of the read phase for an input of `graph_bytes`.
  double ReadSeconds(uint64_t graph_bytes) const;

  /// Simulated duration of the write phase for `output_bytes` of output.
  double WriteSeconds(uint64_t output_bytes) const;
};

}  // namespace predict::bsp

#endif  // PREDICT_BSP_COST_PROFILE_H_
