// Flat message substrate for the BSP engine.
//
// The engine used to keep a std::vector<M> mailbox per vertex, which
// costs one heap allocation per messaged vertex per superstep and
// scatters the inbox of a worker across the heap. This store replaces
// that with two allocation-free-in-steady-state structures:
//
//  * Outboxes: one append-only chunked arena per (sender worker, dest
//    worker). SendMessage appends to the sender's arena with no locking
//    (each arena is written by exactly one worker) and no reallocation
//    copies (chunks are stable once allocated, and are retained across
//    supersteps).
//
//  * Incoming slabs: at the superstep barrier each destination worker
//    bucket-sorts everything queued for it into one contiguous
//    CSR-style (offsets, payload) slab, so Compute reads a vertex's
//    inbox as a contiguous std::span with zero per-vertex allocation.
//
// Vertex ownership and local addressing come from a bsp::PartitionMap
// (bsp/partition.h): the store is agnostic to the strategy and only
// relies on the map's invariant that local order == ascending global
// order within a worker.
//
// Delivery order is the engine's determinism contract: per vertex,
// messages appear ordered by sender worker ascending, and within one
// sender by send-call order. The bucket sort below is a stable two-pass
// counting sort over the senders in ascending order, which preserves
// exactly that order for any host thread count.
//
// The slab's per-vertex offset entries are epoch-stamped so that only
// O(messaged vertices) entries are touched per superstep: a stale entry
// from an earlier superstep simply fails the stamp check and reads as
// an empty inbox. Nothing here scans all owned vertices.

#ifndef PREDICT_BSP_MESSAGE_STORE_H_
#define PREDICT_BSP_MESSAGE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bsp/counters.h"
#include "bsp/partition.h"
#include "graph/graph.h"

namespace predict::bsp::internal {

/// \brief Per-worker mailbox arenas + barrier-time CSR slabs for one run.
///
/// Within a worker a vertex is addressed by its partition-map local
/// index. Offsets are 32-bit: a single worker receiving >= 2^32 messages
/// in one superstep would first exhaust the simulated memory model by
/// orders of magnitude.
template <typename M>
class MessageStore {
 public:
  /// One queued message: the target's local index on its destination
  /// worker (precomputed at send time, so the barrier-time bucket sort
  /// does no ownership lookups) plus the payload.
  struct OutMessage {
    uint32_t target_local;
    M payload;
  };

  /// One (sender, dest) mailbox: append-only storage in fixed-size
  /// chunks. Unlike std::vector, growth never moves existing elements,
  /// and Clear() keeps both the chunks and the payload elements' own
  /// heap capacity (message types with heap payloads, e.g.
  /// semi-clustering's cluster lists, are re-assigned in place next
  /// superstep). Single-writer; readers only run at phase barriers.
  /// The hot append is a single predictable branch plus one store.
  class Outbox {
   public:
    static constexpr size_t kChunkSize = 1024;

    void PushBack(uint32_t target_local, M payload) {
      if (tail_left_ == 0) AdvanceChunk();
      *tail_++ = {target_local, std::move(payload)};
      --tail_left_;
      ++size_;
    }

    uint64_t size() const { return size_; }

    /// Logically empties the mailbox; chunk storage (and the payload
    /// elements' own heap capacity) is retained.
    void Clear() {
      size_ = 0;
      tail_left_ = 0;
      tail_ = nullptr;
    }

    /// Invokes fn(target_local) in append order.
    template <typename Fn>
    void ForEachLocal(Fn&& fn) {
      size_t remaining = size_;
      for (size_t chunk = 0; remaining != 0; ++chunk) {
        const size_t count = std::min(remaining, kChunkSize);
        const OutMessage* const messages = chunks_[chunk].get();
        for (size_t i = 0; i < count; ++i) fn(messages[i].target_local);
        remaining -= count;
      }
    }

    /// Invokes fn(target_local, payload&) in append order; payloads are
    /// passed by mutable reference so consumers can move them out.
    template <typename Fn>
    void ForEachMessage(Fn&& fn) {
      size_t remaining = size_;
      for (size_t chunk = 0; remaining != 0; ++chunk) {
        const size_t count = std::min(remaining, kChunkSize);
        OutMessage* const messages = chunks_[chunk].get();
        for (size_t i = 0; i < count; ++i) {
          fn(messages[i].target_local, messages[i].payload);
        }
        remaining -= count;
      }
    }

   private:
    void AdvanceChunk() {
      const size_t chunk = size_ / kChunkSize;
      if (chunk == chunks_.size()) {
        chunks_.push_back(std::make_unique<OutMessage[]>(kChunkSize));
      }
      tail_ = chunks_[chunk].get();
      tail_left_ = kChunkSize;
    }

    std::vector<std::unique_ptr<OutMessage[]>> chunks_;
    size_t size_ = 0;
    size_t tail_left_ = 0;
    OutMessage* tail_ = nullptr;
  };

  /// `partition` is borrowed and must outlive the store (the engine owns
  /// both for the duration of one run).
  void Init(const PartitionMap* partition) {
    partition_ = partition;
    num_workers_ = partition->num_workers();
    outboxes_.clear();
    outboxes_.resize(static_cast<size_t>(num_workers_) * num_workers_);
    slabs_.clear();
    slabs_.resize(num_workers_);
    for (WorkerId w = 0; w < num_workers_; ++w) {
      slabs_[w].entries.assign(partition->NumOwned(w), SlabEntry{});
    }
  }

  const PartitionMap& partition() const { return *partition_; }

  /// Queues a message from `sender` to the vertex with local index
  /// `target_local` on worker `dest` (the sender already split the
  /// target id into owner + local index). Called concurrently for
  /// distinct senders, never for the same one.
  void Append(WorkerId sender, WorkerId dest, uint32_t target_local,
              M payload) {
    SenderRow(sender)[dest].PushBack(target_local, std::move(payload));
  }

  /// The sender's row of destination outboxes (indexed by dest worker);
  /// lets tight send loops hoist the row lookup.
  Outbox* SenderRow(WorkerId sender) {
    return outboxes_.data() + static_cast<size_t>(sender) * num_workers_;
  }

  /// Barrier phase: bucket-sorts everything queued for `w` into w's slab
  /// and clears the consumed outboxes. Appends each owned vertex that
  /// received at least one message to *messaged (ascending vertex ids).
  /// Safe to call concurrently for distinct `w`.
  void BuildIncomingSlab(WorkerId w, std::vector<VertexId>* messaged) {
    Slab& slab = slabs_[w];
    SlabEntry* const entries = slab.entries.data();
    const uint32_t stamp = ++slab.stamp;
    messaged->clear();

    // Pass 1: per-vertex counts (accumulated in entry.begin) and
    // first-touch discovery of messaged vertices (as local indices).
    // Only the locals stream is touched.
    uint64_t total = 0;
    for (WorkerId sender = 0; sender < num_workers_; ++sender) {
      Outbox& box = OutboxFor(sender, w);
      box.ForEachLocal([&](uint32_t target_local) {
        SlabEntry& entry = entries[target_local];
        if (entry.epoch != stamp) {
          entry.epoch = stamp;
          entry.begin = 0;
          messaged->push_back(target_local);
        }
        entry.begin++;
      });
      total += box.size();
    }
    // The worklist needs the messaged vertices in ascending order. Local
    // indices sort in the same order as the global ids they map to (the
    // partition map keeps owned lists ascending). When most owned
    // vertices were messaged anyway (dense supersteps, e.g. PageRank), a
    // linear stamp scan beats the comparison sort and is still
    // O(messaged).
    if (messaged->size() >= slab.entries.size() / 4) {
      messaged->clear();
      const uint32_t owned = static_cast<uint32_t>(slab.entries.size());
      for (uint32_t l = 0; l < owned; ++l) {
        if (entries[l].epoch == stamp) messaged->push_back(l);
      }
    } else {
      std::sort(messaged->begin(), messaged->end());
    }

    // Prefix-sum the counts into offsets; `end` doubles as the fill
    // cursor and lands on the true span end after pass 2.
    uint32_t running = 0;
    for (const VertexId l : *messaged) {
      SlabEntry& entry = entries[l];
      const uint32_t count = entry.begin;
      entry.begin = running;
      entry.end = running;
      running += count;
    }
    if (slab.payload.size() < total) slab.payload.resize(total);

    // Pass 2: stable placement. Iterating senders in ascending order and
    // each outbox in append order yields the per-vertex delivery order
    // (sender worker asc, within-sender send order).
    M* const payload_out = slab.payload.data();
    for (WorkerId sender = 0; sender < num_workers_; ++sender) {
      Outbox& box = OutboxFor(sender, w);
      box.ForEachMessage([&](uint32_t target_local, M& payload) {
        payload_out[entries[target_local].end++] = std::move(payload);
      });
      box.Clear();
    }

    // Hand the worklist global vertex ids. The modulo branch keeps the
    // hash fast path free of table loads.
    if (partition_->is_modulo()) {
      for (VertexId& v : *messaged) v = v * num_workers_ + w;
    } else {
      for (VertexId& v : *messaged) v = partition_->GlobalId(w, v);
    }
  }

  /// Dense-superstep variant of BuildIncomingSlab: the next superstep
  /// enumerates owned vertices itself, so no worklist handoff is needed —
  /// and that makes the messaged-vertex SORT unnecessary too. The slab
  /// only requires each messaged vertex to own a disjoint payload range;
  /// the ranges' relative position carries no meaning (per-vertex
  /// delivery order comes from the placement pass iterating senders
  /// ascending in append order, identical to the sparse build). So the
  /// prefix sum walks the first-touch list in discovery order:
  /// O(messages + messaged) with no O(owned) pass and no sort — cheaper
  /// than the sparse build by exactly the bookkeeping the worklist
  /// needs, which is what BM_DenseSuperstep measures. Safe to call
  /// concurrently for distinct `w`.
  void BuildIncomingSlabDense(WorkerId w) {
    Slab& slab = slabs_[w];
    SlabEntry* const entries = slab.entries.data();
    const uint32_t stamp = ++slab.stamp;
    std::vector<uint32_t>& touched = slab.touched;
    touched.clear();

    // Pass 1: per-vertex counts + first-touch discovery (unsorted).
    uint64_t total = 0;
    for (WorkerId sender = 0; sender < num_workers_; ++sender) {
      Outbox& box = OutboxFor(sender, w);
      box.ForEachLocal([&](uint32_t target_local) {
        SlabEntry& entry = entries[target_local];
        if (entry.epoch != stamp) {
          entry.epoch = stamp;
          entry.begin = 0;
          touched.push_back(target_local);
        }
        entry.begin++;
      });
      total += box.size();
    }

    // Prefix sum in discovery order; untouched entries keep a stale
    // epoch and read as empty inboxes via the stamp check.
    uint32_t running = 0;
    for (const uint32_t l : touched) {
      SlabEntry& entry = entries[l];
      const uint32_t count = entry.begin;
      entry.begin = running;
      entry.end = running;
      running += count;
    }
    if (slab.payload.size() < total) slab.payload.resize(total);

    // Stable placement, identical to the sparse build's pass 2.
    M* const payload_out = slab.payload.data();
    for (WorkerId sender = 0; sender < num_workers_; ++sender) {
      Outbox& box = OutboxFor(sender, w);
      box.ForEachMessage([&](uint32_t target_local, M& payload) {
        payload_out[entries[target_local].end++] = std::move(payload);
      });
      box.Clear();
    }
  }

  /// MessagesFor by precomputed local index — the dense compute path
  /// iterates owned vertices with a running local counter, so it skips
  /// the partition-map lookup.
  std::span<const M> MessagesForLocal(WorkerId w, uint32_t local) const {
    const Slab& slab = slabs_[w];
    const SlabEntry& entry = slab.entries[local];
    if (entry.epoch != slab.stamp) return {};
    return {slab.payload.data() + entry.begin,
            slab.payload.data() + entry.end};
  }

  /// Inbox of vertex `v` (owned by `w`) for the current superstep, as a
  /// contiguous span into the worker's slab. Empty if nothing was
  /// delivered this superstep.
  std::span<const M> MessagesFor(WorkerId w, VertexId v) const {
    const Slab& slab = slabs_[w];
    const SlabEntry& entry = slab.entries[partition_->LocalIndex(v)];
    if (entry.epoch != slab.stamp) return {};
    return {slab.payload.data() + entry.begin,
            slab.payload.data() + entry.end};
  }

 private:
  static constexpr uint32_t kNeverStamped = 0xFFFFFFFFu;

  /// Per-local-vertex slab bookkeeping, packed so one superstep's touch
  /// of a vertex hits a single cache line. Offsets are valid only when
  /// `epoch` carries the slab's current stamp; anything else reads as an
  /// empty inbox, which is what makes the barrier O(messaged) instead of
  /// O(owned vertices).
  struct SlabEntry {
    uint32_t epoch = kNeverStamped;  // last stamp that touched this entry
    uint32_t begin = 0;              // payload offsets [begin, end)
    uint32_t end = 0;
  };

  /// One worker's incoming messages, grouped by target vertex. Compute
  /// at superstep S reads the slab built at the end of superstep S-1;
  /// the phases are separated by a ParallelFor barrier, so a single
  /// buffer per worker suffices and is rebuilt in place.
  struct Slab {
    std::vector<M> payload;  // all messages, grouped by local index
    std::vector<SlabEntry> entries;
    /// Dense-build scratch: first-touched locals in discovery order
    /// (capacity retained across supersteps).
    std::vector<uint32_t> touched;
    uint32_t stamp = 0;      // incremented per BuildIncomingSlab
  };

  Outbox& OutboxFor(WorkerId sender, WorkerId dest) {
    return outboxes_[static_cast<size_t>(sender) * num_workers_ + dest];
  }

  const PartitionMap* partition_ = nullptr;
  uint32_t num_workers_ = 0;
  std::vector<Outbox> outboxes_;  // [sender * W + dest]
  std::vector<Slab> slabs_;       // [dest]
};

}  // namespace predict::bsp::internal

#endif  // PREDICT_BSP_MESSAGE_STORE_H_
