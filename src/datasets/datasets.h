// The four evaluation datasets (Table 2 of the paper), rebuilt as
// synthetic stand-ins.
//
// The real LiveJournal / Wikipedia / Twitter / UK-2002 graphs are 1-25 GB
// and not redistributable, so each is replaced by a generator
// configuration that reproduces the property the paper's findings hinge
// on (see DESIGN.md §2):
//   lj   — social graph whose out-degree is log-normal, NOT power-law
//          (the paper's explanation for LJ's poor predictability);
//   wiki — power-law web-ish graph, moderate density;
//   uk   — power-law web crawl, higher density, larger diameter;
//   tw   — power-law social graph, much denser per vertex (the paper's
//          Twitter is ~9x denser than its web graphs; density is what
//          drives both the §5.4 sampling-overhead result and the §5
//          "Memory Limits" OOMs).
// Sizes are scaled to laptop scale; `scale` shrinks them further for
// unit tests.

#ifndef PREDICT_DATASETS_DATASETS_H_
#define PREDICT_DATASETS_DATASETS_H_

#include <string>
#include <vector>

#include "bsp/engine.h"
#include "common/result.h"
#include "graph/graph.h"

namespace predict {

/// Registry metadata for one dataset (the columns of Table 2).
struct DatasetInfo {
  std::string name;        ///< short prefix used in the paper's figures
  std::string description; ///< which real graph this stands in for
  VertexId num_vertices = 0;   ///< at scale 1.0
  uint64_t approx_edges = 0;   ///< at scale 1.0 (generator-dependent)
  bool scale_free = true;      ///< power-law out-degree?
};

/// The four paper datasets, in Table 2 order: lj, wiki, tw, uk.
const std::vector<DatasetInfo>& PaperDatasets();

/// Short names, in Table 2 order.
std::vector<std::string> PaperDatasetNames();

/// Scale-tier datasets: deterministic-by-seed RMAT graphs far beyond the
/// paper stand-ins, built with varint/delta-compressed edges
/// (Graph::edges_compressed()) so they fit simulated memory budgets.
/// Kept out of PaperDatasets() deliberately — the paper suite and every
/// test iterating it stays laptop-fast; the scale tier is exercised by
/// bench/rmat_scale_gate.cc and opt-in CLI runs. "rmat100m" is the
/// PREDICT_SCALE_XL=1 configuration (~100M edges; several GB of host RAM
/// during generation).
const std::vector<DatasetInfo>& ScaleDatasets();

/// Short names of the scale tier, registry order.
std::vector<std::string> ScaleDatasetNames();

/// Builds a dataset by name — the paper stand-ins ("lj", "wiki", "tw",
/// "uk", plain edges) or the scale tier ("rmat10m", "rmat100m",
/// compressed edges). `scale` in (0,1] shrinks the vertex count (tests
/// use 0.05-0.2; benches use 1.0).
Result<Graph> MakeDataset(const std::string& name, double scale = 1.0);

/// EngineOptions matching the paper's cluster: 29 workers and a total
/// memory budget calibrated so that semi-clustering, top-k and
/// neighborhood estimation exhaust memory on "tw" but fit on "uk"
/// (§5 "Memory Limits").
bsp::EngineOptions PaperClusterOptions();

}  // namespace predict

#endif  // PREDICT_DATASETS_DATASETS_H_
