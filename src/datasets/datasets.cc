#include "datasets/datasets.h"

#include <algorithm>
#include <cmath>

#include "bsp/scenario.h"
#include "graph/generators.h"

namespace predict {

namespace {

VertexId Scaled(VertexId base, double scale) {
  const double n = std::max(16.0, std::round(static_cast<double>(base) * scale));
  return static_cast<VertexId>(n);
}

// RMAT's vertex count is 2^scale_log; shrink by whole powers of two so
// `scale` maps onto the generator's natural parameter (floor, so any
// scale < 1 genuinely shrinks; clamped to >= 2^8 vertices).
uint32_t ScaledRmatLog(uint32_t base_log, double scale) {
  const double shrunk = std::log2(scale);  // <= 0 for scale in (0,1]
  const double log = std::floor(static_cast<double>(base_log) + shrunk);
  return static_cast<uint32_t>(std::max(8.0, log));
}

Result<Graph> MakeRmatDataset(uint32_t base_log, uint64_t base_edges,
                              uint64_t seed, double scale) {
  RmatOptions options;
  options.scale = ScaledRmatLog(base_log, scale);
  // Edge draws shrink with the realized vertex shrink (a power of two),
  // keeping average degree roughly constant across scales.
  const double realized =
      std::pow(2.0, static_cast<double>(options.scale) -
                        static_cast<double>(base_log));
  options.num_edges = std::max<uint64_t>(
      1024, static_cast<uint64_t>(std::llround(
                static_cast<double>(base_edges) * realized)));
  options.seed = seed;
  PREDICT_ASSIGN_OR_RETURN(Graph graph, GenerateRmat(options));
  // The scale tier always ships compressed edges — surviving a fixed
  // memory budget is the point of these datasets.
  return Graph::WithCompressedEdges(std::move(graph));
}

}  // namespace

const std::vector<DatasetInfo>& PaperDatasets() {
  static const std::vector<DatasetInfo> datasets = {
      {"lj", "LiveJournal stand-in: log-normal out-degree (not power-law)",
       80000, 1125193, false},
      {"wiki", "Wikipedia stand-in: power-law link graph", 100000, 910971,
       true},
      {"tw", "Twitter stand-in: dense power-law social graph", 80000, 3857894,
       true},
      {"uk", "UK-2002 stand-in: power-law web crawl, higher density", 120000,
       1460775, true},
  };
  return datasets;
}

std::vector<std::string> PaperDatasetNames() {
  std::vector<std::string> names;
  for (const DatasetInfo& info : PaperDatasets()) names.push_back(info.name);
  return names;
}

const std::vector<DatasetInfo>& ScaleDatasets() {
  static const std::vector<DatasetInfo> datasets = {
      {"rmat10m",
       "RMAT scale-17 Graph500-style graph, ~10M unique edges, "
       "compressed CSR",
       131072, 10000000, true},
      {"rmat100m",
       "RMAT scale-20, ~100M unique edges (opt-in: PREDICT_SCALE_XL=1), "
       "compressed CSR",
       1048576, 100000000, true},
  };
  return datasets;
}

std::vector<std::string> ScaleDatasetNames() {
  std::vector<std::string> names;
  for (const DatasetInfo& info : ScaleDatasets()) names.push_back(info.name);
  return names;
}

Result<Graph> MakeDataset(const std::string& name, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  if (name == "lj") {
    LogNormalDegreeOptions options;
    options.num_vertices = Scaled(80000, scale);
    options.log_mean = 2.3;
    options.log_stddev = 0.7;
    // Low reciprocity: reciprocal edges land preferentially on hubs and
    // would re-grow the power-law tail this dataset must NOT have.
    options.reciprocal_p = 0.1;
    options.seed = 11;  // fixed per dataset
    return GenerateLogNormalDegreeGraph(options);
  }
  if (name == "wiki") {
    PreferentialAttachmentOptions options;
    options.num_vertices = Scaled(100000, scale);
    options.out_degree = 8;
    options.reciprocal_p = 0.15;
    options.seed = 22;
    return GeneratePreferentialAttachment(options);
  }
  if (name == "tw") {
    PreferentialAttachmentOptions options;
    options.num_vertices = Scaled(80000, scale);
    options.out_degree = 36;
    options.reciprocal_p = 0.35;
    options.seed = 33;
    return GeneratePreferentialAttachment(options);
  }
  if (name == "uk") {
    CopyModelOptions options;
    options.num_vertices = Scaled(120000, scale);
    options.copy_p = 0.72;
    options.zipf_alpha = 2.05;  // web pages have power-law out-degree too
    options.min_out_degree = 5;
    options.max_out_degree = 4000;
    options.seed = 44;
    return GenerateCopyModelWebGraph(options);
  }
  if (name == "rmat10m") {
    // 14M edge draws dedup to >= 10M unique directed edges at scale 17
    // (average out-degree ~85; the density keeps adjacency gaps small,
    // which is what makes the varint streams beat 0.6x of plain CSR —
    // bench/rmat_scale_gate.cc pins both bounds).
    return MakeRmatDataset(17, 14000000, 55, scale);
  }
  if (name == "rmat100m") {
    return MakeRmatDataset(20, 240000000, 56, scale);
  }
  return Status::NotFound("unknown dataset '" + name +
                          "'; known: lj, wiki, tw, uk, rmat10m, rmat100m");
}

bsp::EngineOptions PaperClusterOptions() {
  // The paper deployment lives in the scenario registry ("giraph-29":
  // 29 workers, 60-superstep cap, and a 300 MiB budget calibrated so
  // that semi-clustering / top-k / neighborhood estimation exhaust
  // memory on "tw" but fit on "uk" — §5 "Memory Limits"); this function
  // is the historical accessor for it.
  return bsp::FindScenario("giraph-29").value().ToEngineOptions();
}

}  // namespace predict
