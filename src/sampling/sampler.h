// Graph sampling techniques (§3.2.1 of the paper).
//
// A sampler picks a vertex subset whose induced subgraph preserves the
// key properties of the original graph (connectivity, in/out degree
// proportionality, effective diameter). PREDIcT's default is Biased
// Random Jump (BRJ), the paper's contribution: Random Jump seeded at the
// k highest-out-degree vertices, trading sampling uniformity for
// connectivity of the sampled "core of the network".

#ifndef PREDICT_SAMPLING_SAMPLER_H_
#define PREDICT_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/transforms.h"

namespace predict {

/// Which sampling technique to use.
enum class SamplerKind {
  kRandomJump,            ///< RJ, Leskovec & Faloutsos
  kBiasedRandomJump,      ///< BRJ, this paper's default (§3.2.1)
  kMetropolisHastingsRW,  ///< MHRW, Gjoka et al. (removes degree bias)
  kForestFire,            ///< FF, Leskovec & Faloutsos (extension)
};

const char* SamplerKindName(SamplerKind kind);

/// Parameters shared by the random-walk samplers.
struct SamplerOptions {
  SamplerKind kind = SamplerKind::kBiasedRandomJump;

  /// Fraction of vertices to sample, in (0, 1].
  double sampling_ratio = 0.1;

  /// Walk restart probability (the paper's p = 0.15).
  double jump_probability = 0.15;

  /// BRJ: seed-set size as a fraction of |V| (the paper's k = 1%).
  double seed_fraction = 0.01;

  /// Forest fire: forward burning probability.
  double forward_burning_p = 0.35;

  uint64_t seed = 1;

  /// RJ/BRJ only: when nonzero, the walk runs as fixed-length segments
  /// of this many steps, segment i drawing from the independent stream
  /// Rng(seed).Fork(i). Each segment's trajectory is then a pure
  /// function of (graph, options, i) — the property incremental
  /// re-sampling (ResampleIncremental) splices unaffected segments
  /// through on. 0 (default) keeps the classic single-stream walk;
  /// nonzero with MHRW/FF is InvalidArgument. Different values sample
  /// different (equally valid) vertex sets, so this is part of the
  /// cache key (";seg=N" suffix, appended only when nonzero).
  uint64_t walk_segment_steps = 0;

  bool operator==(const SamplerOptions& other) const = default;
};

/// Canonical textual form of the options, e.g.
/// "BRJ;ratio=0.1;jump=0.15;seedfrac=0.01;burn=0.35;seed=1". Two options
/// structs produce the same string iff they compare equal; cache keys
/// (PredictionService) and log lines are built on it.
std::string SamplerOptionsKey(const SamplerOptions& options);

/// A sampled vertex set plus its induced subgraph. Self-contained: it
/// records the original graph's size, so the realized ratio stays
/// meaningful when the Sample is cached and consulted without the
/// original graph at hand.
struct Sample {
  /// Vertices of the original graph, in sampling order; position i became
  /// vertex i of `subgraph`.
  std::vector<VertexId> vertices;
  Graph subgraph;
  /// |V| of the graph the sample was drawn from.
  uint64_t original_num_vertices = 0;
  /// |vertices| / |V_original|, the realized sampling ratio. Set once at
  /// sampling time; consumers (transform, reports) must read it from
  /// here rather than recomputing it.
  double realized_ratio = 0.0;
};

/// Runs the sampler described by `options` and returns the sampled
/// vertices together with their induced subgraph.
Result<Sample> SampleGraph(const Graph& graph, const SamplerOptions& options);

/// Returns just the sampled vertex ids (no subgraph extraction).
Result<std::vector<VertexId>> SampleVertices(const Graph& graph,
                                             const SamplerOptions& options);

/// \brief Everything needed to maintain a characterized sample under
/// graph mutation: the full per-segment walk trajectories plus a
/// touched-vertex bitmap, recorded while sampling.
///
/// A segment whose trajectory avoids every mutated vertex walks
/// identically on the mutated graph, so ResampleIncremental replays its
/// recorded trajectory instead of re-walking it.
struct SampleWalkRecord {
  SamplerOptions options;
  /// Graph::Fingerprint() of the graph this record was walked on.
  uint64_t graph_fingerprint = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  /// True iff the walk was segmented (walk_segment_steps > 0, RJ/BRJ);
  /// false means ResampleIncremental always falls back to a full
  /// resample.
  bool supports_incremental = false;
  /// BRJ: the top-out-degree seed set the restarts drew from. Incremental
  /// reuse requires the mutated graph to reproduce it exactly.
  std::vector<VertexId> brj_seeds;
  /// Trajectory of segment i = visits[segment_offsets[i] ..
  /// segment_offsets[i+1]). Every visited vertex appears, in walk order.
  std::vector<uint64_t> segment_offsets;
  std::vector<VertexId> visits;
  /// Dense |V| byte bitmap: 1 iff any segment visited the vertex.
  std::vector<uint8_t> touched;
};

/// SampleGraph, additionally filling `record` (must be non-null) so the
/// sample can later be maintained incrementally. The returned Sample is
/// bit-identical to SampleGraph(graph, options).
Result<Sample> SampleGraphRecorded(const Graph& graph,
                                   const SamplerOptions& options,
                                   SampleWalkRecord* record);

/// Outcome of an incremental re-sample.
struct IncrementalSampleResult {
  Sample sample;
  /// Segments composing the new sample / of those, replayed from the
  /// record without re-walking.
  uint64_t segments_total = 0;
  uint64_t segments_reused = 0;
  /// True when incremental maintenance was impossible (unsegmented
  /// record, |V| changed, or the BRJ seed set shifted) and the sample
  /// was drawn from scratch instead.
  bool full_resample = false;
};

/// \brief Re-derives the sample on a mutated graph, re-walking only
/// segments whose recorded trajectory touched a vertex in `dirty` (the
/// DirtyOutVertices set between the recorded graph and `graph`).
///
/// The result is bit-identical to SampleGraphRecorded(graph,
/// record.options, ...) — a from-scratch resample of the mutated graph —
/// at a fraction of the walk cost when the churn misses most
/// trajectories. `updated` (non-null, distinct from `record`) receives
/// the record for the new graph.
Result<IncrementalSampleResult> ResampleIncremental(
    const Graph& graph, const std::vector<VertexId>& dirty,
    const SampleWalkRecord& record, SampleWalkRecord* updated);

}  // namespace predict

#endif  // PREDICT_SAMPLING_SAMPLER_H_
