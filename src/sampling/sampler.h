// Graph sampling techniques (§3.2.1 of the paper).
//
// A sampler picks a vertex subset whose induced subgraph preserves the
// key properties of the original graph (connectivity, in/out degree
// proportionality, effective diameter). PREDIcT's default is Biased
// Random Jump (BRJ), the paper's contribution: Random Jump seeded at the
// k highest-out-degree vertices, trading sampling uniformity for
// connectivity of the sampled "core of the network".

#ifndef PREDICT_SAMPLING_SAMPLER_H_
#define PREDICT_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/transforms.h"

namespace predict {

/// Which sampling technique to use.
enum class SamplerKind {
  kRandomJump,            ///< RJ, Leskovec & Faloutsos
  kBiasedRandomJump,      ///< BRJ, this paper's default (§3.2.1)
  kMetropolisHastingsRW,  ///< MHRW, Gjoka et al. (removes degree bias)
  kForestFire,            ///< FF, Leskovec & Faloutsos (extension)
};

const char* SamplerKindName(SamplerKind kind);

/// Parameters shared by the random-walk samplers.
struct SamplerOptions {
  SamplerKind kind = SamplerKind::kBiasedRandomJump;

  /// Fraction of vertices to sample, in (0, 1].
  double sampling_ratio = 0.1;

  /// Walk restart probability (the paper's p = 0.15).
  double jump_probability = 0.15;

  /// BRJ: seed-set size as a fraction of |V| (the paper's k = 1%).
  double seed_fraction = 0.01;

  /// Forest fire: forward burning probability.
  double forward_burning_p = 0.35;

  uint64_t seed = 1;

  bool operator==(const SamplerOptions& other) const = default;
};

/// Canonical textual form of the options, e.g.
/// "BRJ;ratio=0.1;jump=0.15;seedfrac=0.01;burn=0.35;seed=1". Two options
/// structs produce the same string iff they compare equal; cache keys
/// (PredictionService) and log lines are built on it.
std::string SamplerOptionsKey(const SamplerOptions& options);

/// A sampled vertex set plus its induced subgraph. Self-contained: it
/// records the original graph's size, so the realized ratio stays
/// meaningful when the Sample is cached and consulted without the
/// original graph at hand.
struct Sample {
  /// Vertices of the original graph, in sampling order; position i became
  /// vertex i of `subgraph`.
  std::vector<VertexId> vertices;
  Graph subgraph;
  /// |V| of the graph the sample was drawn from.
  uint64_t original_num_vertices = 0;
  /// |vertices| / |V_original|, the realized sampling ratio. Set once at
  /// sampling time; consumers (transform, reports) must read it from
  /// here rather than recomputing it.
  double realized_ratio = 0.0;
};

/// Runs the sampler described by `options` and returns the sampled
/// vertices together with their induced subgraph.
Result<Sample> SampleGraph(const Graph& graph, const SamplerOptions& options);

/// Returns just the sampled vertex ids (no subgraph extraction).
Result<std::vector<VertexId>> SampleVertices(const Graph& graph,
                                             const SamplerOptions& options);

}  // namespace predict

#endif  // PREDICT_SAMPLING_SAMPLER_H_
