#include "sampling/quality.h"

#include <cstdio>

#include "graph/stats.h"

namespace predict {

std::string SampleQualityReport::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "D(out)=%.3f D(in)=%.3f diam %.2f->%.2f cc %.3f->%.3f "
                "lcc %.3f->%.3f in/out %.2f->%.2f",
                out_degree_d_statistic, in_degree_d_statistic,
                original_effective_diameter, sample_effective_diameter,
                original_clustering, sample_clustering,
                original_largest_component, sample_largest_component,
                original_in_out_ratio, sample_in_out_ratio);
  return buf;
}

SampleQualityReport EvaluateSampleQuality(const Graph& original,
                                          const Sample& sample,
                                          uint32_t diameter_sources,
                                          uint64_t seed,
                                          bsp::ThreadPool* pool) {
  SampleQualityReport report;
  report.out_degree_d_statistic = KolmogorovSmirnovD(
      OutDegreeSequence(original), OutDegreeSequence(sample.subgraph));
  report.in_degree_d_statistic = KolmogorovSmirnovD(
      InDegreeSequence(original), InDegreeSequence(sample.subgraph));
  report.original_effective_diameter =
      EffectiveDiameter(original, 0.9, diameter_sources, seed, pool);
  report.sample_effective_diameter =
      EffectiveDiameter(sample.subgraph, 0.9, diameter_sources, seed, pool);
  report.original_clustering =
      AverageClusteringCoefficient(original, 500, seed, pool);
  report.sample_clustering =
      AverageClusteringCoefficient(sample.subgraph, 500, seed, pool);
  report.original_largest_component = LargestComponentFraction(original);
  report.sample_largest_component = LargestComponentFraction(sample.subgraph);
  report.original_in_out_ratio = MeanInOutDegreeRatio(original);
  report.sample_in_out_ratio = MeanInOutDegreeRatio(sample.subgraph);
  return report;
}

}  // namespace predict
