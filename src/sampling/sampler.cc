#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/rng.h"

namespace predict {

namespace {

// Common state for the random-walk family: tracks picked vertices in
// insertion order, stops when the target count is reached. Vertex ids
// are compact [0, |V|), so membership is a dense byte bitmap — every
// walk step costs a branch + store instead of a hash probe.
class PickSet {
 public:
  PickSet(uint64_t num_vertices, uint64_t target)
      : target_(target), in_set_(num_vertices, 0) {
    order_.reserve(target);
  }

  // Returns true if v was newly added.
  bool Add(VertexId v) {
    if (in_set_[v]) return false;
    in_set_[v] = 1;
    order_.push_back(v);
    return true;
  }

  bool Contains(VertexId v) const { return in_set_[v] != 0; }
  bool Done() const { return order_.size() >= target_; }
  std::vector<VertexId>& order() { return order_; }

 private:
  uint64_t target_;
  std::vector<uint8_t> in_set_;
  std::vector<VertexId> order_;
};

// One random-walk step along an outgoing edge; returns false if the
// current vertex has no outgoing edges (walk must restart). `scratch`
// backs the adjacency decode on compressed graphs (unused on plain).
bool Step(const Graph& graph, Rng& rng, std::vector<VertexId>& scratch,
          VertexId& current) {
  const auto targets = graph.OutNeighborsInto(current, &scratch);
  if (targets.empty()) return false;
  current = targets[rng.Uniform(targets.size())];
  return true;
}

std::vector<VertexId> TopOutDegreeSeeds(const Graph& graph, uint64_t k) {
  std::vector<VertexId> vertices(graph.num_vertices());
  std::iota(vertices.begin(), vertices.end(), 0);
  k = std::min<uint64_t>(k, vertices.size());
  std::partial_sort(vertices.begin(), vertices.begin() + k, vertices.end(),
                    [&](VertexId a, VertexId b) {
                      const uint64_t da = graph.out_degree(a);
                      const uint64_t db = graph.out_degree(b);
                      return da != db ? da > db : a < b;  // deterministic ties
                    });
  vertices.resize(k);
  return vertices;
}

// RJ and BRJ share the jump-walk skeleton; they differ only in how a
// restart vertex is chosen.
template <typename RestartFn>
std::vector<VertexId> JumpWalk(const Graph& graph, const SamplerOptions& options,
                               uint64_t target, RestartFn restart) {
  Rng rng(options.seed);
  PickSet picks(graph.num_vertices(), target);
  std::vector<VertexId> scratch;
  VertexId current = restart(rng);
  picks.Add(current);
  // Guard against pathological graphs (e.g. no outgoing edges anywhere):
  // cap total steps at a generous multiple of the target.
  const uint64_t max_steps = 200 * target + 1000;
  uint64_t steps = 0;
  while (!picks.Done() && steps < max_steps) {
    ++steps;
    if (rng.NextBool(options.jump_probability) ||
        !Step(graph, rng, scratch, current)) {
      current = restart(rng);
    }
    picks.Add(current);
  }
  // Degenerate structures may starve the walk (§3.5 limitations); fill the
  // remainder uniformly so the requested ratio is honored.
  while (!picks.Done()) {
    picks.Add(static_cast<VertexId>(rng.Uniform(graph.num_vertices())));
  }
  return std::move(picks.order());
}

std::vector<VertexId> RunRandomJump(const Graph& graph,
                                    const SamplerOptions& options,
                                    uint64_t target) {
  const uint64_t n = graph.num_vertices();
  return JumpWalk(graph, options, target, [n](Rng& rng) {
    return static_cast<VertexId>(rng.Uniform(n));
  });
}

std::vector<VertexId> RunBiasedRandomJump(const Graph& graph,
                                          const SamplerOptions& options,
                                          uint64_t target) {
  const uint64_t n = graph.num_vertices();
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(options.seed_fraction *
                                            static_cast<double>(n))));
  const std::vector<VertexId> seeds = TopOutDegreeSeeds(graph, k);
  return JumpWalk(graph, options, target, [&seeds](Rng& rng) {
    return seeds[rng.Uniform(seeds.size())];
  });
}

// Undirected degree used by MHRW's acceptance ratio.
uint64_t UndirectedDegree(const Graph& graph, VertexId v) {
  return graph.out_degree(v) + graph.in_degree(v);
}

// One undirected neighbor pick (walks ignore direction, as in Gjoka et al.).
bool UndirectedStep(const Graph& graph, Rng& rng,
                    std::vector<VertexId>& out_scratch,
                    std::vector<VertexId>& in_scratch, VertexId& current) {
  const uint64_t out_degree = graph.out_degree(current);
  const uint64_t degree = out_degree + graph.in_degree(current);
  if (degree == 0) return false;
  const uint64_t pick = rng.Uniform(degree);
  current = pick < out_degree
                ? graph.OutNeighborsInto(current, &out_scratch)[pick]
                : graph.InSourcesInto(current, &in_scratch)[pick - out_degree];
  return true;
}

std::vector<VertexId> RunMetropolisHastings(const Graph& graph,
                                            const SamplerOptions& options,
                                            uint64_t target) {
  const uint64_t n = graph.num_vertices();
  Rng rng(options.seed);
  PickSet picks(graph.num_vertices(), target);
  std::vector<VertexId> out_scratch, in_scratch;
  VertexId current = static_cast<VertexId>(rng.Uniform(n));
  picks.Add(current);
  const uint64_t max_steps = 400 * target + 1000;
  uint64_t steps = 0;
  while (!picks.Done() && steps < max_steps) {
    ++steps;
    if (rng.NextBool(options.jump_probability)) {
      current = static_cast<VertexId>(rng.Uniform(n));
      picks.Add(current);
      continue;
    }
    VertexId proposal = current;
    if (!UndirectedStep(graph, rng, out_scratch, in_scratch, proposal)) {
      current = static_cast<VertexId>(rng.Uniform(n));
      picks.Add(current);
      continue;
    }
    // MH acceptance removes the walk's bias towards high-degree vertices:
    // accept with probability min(1, deg(current)/deg(proposal)).
    const double ratio = static_cast<double>(UndirectedDegree(graph, current)) /
                         static_cast<double>(UndirectedDegree(graph, proposal));
    if (ratio >= 1.0 || rng.NextDouble() < ratio) current = proposal;
    picks.Add(current);
  }
  while (!picks.Done()) {
    picks.Add(static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(picks.order());
}

std::vector<VertexId> RunForestFire(const Graph& graph,
                                    const SamplerOptions& options,
                                    uint64_t target) {
  const uint64_t n = graph.num_vertices();
  Rng rng(options.seed);
  PickSet picks(graph.num_vertices(), target);
  std::vector<VertexId> frontier;
  std::vector<VertexId> scratch;
  while (!picks.Done()) {
    // Ignite at a random unvisited vertex.
    VertexId seed = static_cast<VertexId>(rng.Uniform(n));
    picks.Add(seed);
    frontier.assign(1, seed);
    while (!frontier.empty() && !picks.Done()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      // Burn a geometric number of untouched out-neighbors.
      for (const VertexId u : graph.OutNeighborsInto(v, &scratch)) {
        if (picks.Done()) break;
        if (!rng.NextBool(options.forward_burning_p)) continue;
        if (picks.Add(u)) frontier.push_back(u);
      }
    }
  }
  return std::move(picks.order());
}

}  // namespace

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kRandomJump:
      return "RJ";
    case SamplerKind::kBiasedRandomJump:
      return "BRJ";
    case SamplerKind::kMetropolisHastingsRW:
      return "MHRW";
    case SamplerKind::kForestFire:
      return "FF";
  }
  return "unknown";
}

std::string SamplerOptionsKey(const SamplerOptions& options) {
  // Cache keys must never truncate: two distinct options differing only
  // past a fixed buffer's end would silently collide. snprintf reports
  // the full untruncated length, so retry with an exact-sized buffer if
  // the stack buffer ever proves too small.
  const auto format = [&](char* out, size_t size) {
    return std::snprintf(
        out, size,
        "%s;ratio=%.17g;jump=%.17g;seedfrac=%.17g;burn=%.17g;seed=%llu",
        SamplerKindName(options.kind), options.sampling_ratio,
        options.jump_probability, options.seed_fraction,
        options.forward_burning_p,
        static_cast<unsigned long long>(options.seed));
  };
  char buf[192];
  const int len = format(buf, sizeof(buf));
  if (len < 0) return SamplerKindName(options.kind);  // cannot happen
  if (static_cast<size_t>(len) < sizeof(buf)) return std::string(buf, len);
  std::string key(static_cast<size_t>(len) + 1, '\0');
  format(key.data(), key.size());
  key.resize(static_cast<size_t>(len));
  return key;
}

Result<std::vector<VertexId>> SampleVertices(const Graph& graph,
                                             const SamplerOptions& options) {
  const uint64_t n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options.sampling_ratio <= 0.0 || options.sampling_ratio > 1.0) {
    return Status::InvalidArgument("sampling_ratio must be in (0, 1]");
  }
  if (options.jump_probability < 0.0 || options.jump_probability > 1.0) {
    return Status::InvalidArgument("jump_probability must be in [0, 1]");
  }
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(options.sampling_ratio * static_cast<double>(n))));

  switch (options.kind) {
    case SamplerKind::kRandomJump:
      return RunRandomJump(graph, options, target);
    case SamplerKind::kBiasedRandomJump:
      return RunBiasedRandomJump(graph, options, target);
    case SamplerKind::kMetropolisHastingsRW:
      return RunMetropolisHastings(graph, options, target);
    case SamplerKind::kForestFire:
      return RunForestFire(graph, options, target);
  }
  return Status::InvalidArgument("unknown sampler kind");
}

Result<Sample> SampleGraph(const Graph& graph, const SamplerOptions& options) {
  PREDICT_ASSIGN_OR_RETURN(std::vector<VertexId> vertices,
                           SampleVertices(graph, options));
  PREDICT_ASSIGN_OR_RETURN(SubgraphResult sub, InducedSubgraph(graph, vertices));
  Sample sample;
  sample.vertices = std::move(sub.original_id);
  sample.subgraph = std::move(sub.graph);
  sample.original_num_vertices = graph.num_vertices();
  sample.realized_ratio = static_cast<double>(sample.vertices.size()) /
                          static_cast<double>(sample.original_num_vertices);
  return sample;
}

}  // namespace predict
