#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/rng.h"

namespace predict {

namespace {

// Common state for the random-walk family: tracks picked vertices in
// insertion order, stops when the target count is reached. Vertex ids
// are compact [0, |V|), so membership is a dense byte bitmap — every
// walk step costs a branch + store instead of a hash probe.
class PickSet {
 public:
  PickSet(uint64_t num_vertices, uint64_t target)
      : target_(target), in_set_(num_vertices, 0) {
    order_.reserve(target);
  }

  // Returns true if v was newly added.
  bool Add(VertexId v) {
    if (in_set_[v]) return false;
    in_set_[v] = 1;
    order_.push_back(v);
    return true;
  }

  bool Contains(VertexId v) const { return in_set_[v] != 0; }
  bool Done() const { return order_.size() >= target_; }
  std::vector<VertexId>& order() { return order_; }

 private:
  uint64_t target_;
  std::vector<uint8_t> in_set_;
  std::vector<VertexId> order_;
};

// One random-walk step along an outgoing edge; returns false if the
// current vertex has no outgoing edges (walk must restart). `scratch`
// backs the adjacency decode on compressed graphs (unused on plain).
bool Step(const Graph& graph, Rng& rng, std::vector<VertexId>& scratch,
          VertexId& current) {
  const auto targets = graph.OutNeighborsInto(current, &scratch);
  if (targets.empty()) return false;
  current = targets[rng.Uniform(targets.size())];
  return true;
}

std::vector<VertexId> TopOutDegreeSeeds(const Graph& graph, uint64_t k) {
  std::vector<VertexId> vertices(graph.num_vertices());
  std::iota(vertices.begin(), vertices.end(), 0);
  k = std::min<uint64_t>(k, vertices.size());
  std::partial_sort(vertices.begin(), vertices.begin() + k, vertices.end(),
                    [&](VertexId a, VertexId b) {
                      const uint64_t da = graph.out_degree(a);
                      const uint64_t db = graph.out_degree(b);
                      return da != db ? da > db : a < b;  // deterministic ties
                    });
  vertices.resize(k);
  return vertices;
}

// RJ and BRJ share the jump-walk skeleton; they differ only in how a
// restart vertex is chosen.
template <typename RestartFn>
std::vector<VertexId> JumpWalk(const Graph& graph, const SamplerOptions& options,
                               uint64_t target, RestartFn restart) {
  Rng rng(options.seed);
  PickSet picks(graph.num_vertices(), target);
  std::vector<VertexId> scratch;
  VertexId current = restart(rng);
  picks.Add(current);
  // Guard against pathological graphs (e.g. no outgoing edges anywhere):
  // cap total steps at a generous multiple of the target.
  const uint64_t max_steps = 200 * target + 1000;
  uint64_t steps = 0;
  while (!picks.Done() && steps < max_steps) {
    ++steps;
    if (rng.NextBool(options.jump_probability) ||
        !Step(graph, rng, scratch, current)) {
      current = restart(rng);
    }
    picks.Add(current);
  }
  // Degenerate structures may starve the walk (§3.5 limitations); fill the
  // remainder uniformly so the requested ratio is honored.
  while (!picks.Done()) {
    picks.Add(static_cast<VertexId>(rng.Uniform(graph.num_vertices())));
  }
  return std::move(picks.order());
}

std::vector<VertexId> RunRandomJump(const Graph& graph,
                                    const SamplerOptions& options,
                                    uint64_t target) {
  const uint64_t n = graph.num_vertices();
  return JumpWalk(graph, options, target, [n](Rng& rng) {
    return static_cast<VertexId>(rng.Uniform(n));
  });
}

// --- Segmented walks (walk_segment_steps > 0, RJ/BRJ only) ---
//
// The classic JumpWalk is one sequential RNG stream: any divergence
// cascades through the rest of the walk, so nothing survives a graph
// mutation. Segmented mode chops the walk into fixed-length segments,
// segment i drawing from the independent stream Rng(seed).Fork(i). A
// segment's trajectory then depends only on the out-rows of the vertices
// it visits — the invariant ResampleIncremental's splicing rests on.

// Stream id for the uniform remainder fill; far above any segment index.
constexpr uint64_t kFillStream = ~uint64_t{0};

// Walks exactly walk_segment_steps steps (plus the starting restart),
// appending every visited vertex to *trajectory.
template <typename RestartFn>
void WalkSegment(const Graph& graph, const SamplerOptions& options,
                 uint64_t segment, RestartFn&& restart,
                 std::vector<VertexId>* trajectory) {
  Rng rng = Rng(options.seed).Fork(segment);
  std::vector<VertexId> scratch;
  VertexId current = restart(rng);
  trajectory->push_back(current);
  for (uint64_t s = 0; s < options.walk_segment_steps; ++s) {
    if (rng.NextBool(options.jump_probability) ||
        !Step(graph, rng, scratch, current)) {
      current = restart(rng);
    }
    trajectory->push_back(current);
  }
}

// Composes segments in order, adding trajectory vertices to the pick set
// until the target is reached; generates segment i only while the step
// budget (the classic walk's max_steps cap) allows. Records full
// trajectories when `record` is non-null.
template <typename RestartFn>
std::vector<VertexId> RunSegmented(const Graph& graph,
                                   const SamplerOptions& options,
                                   uint64_t target, RestartFn restart,
                                   SampleWalkRecord* record) {
  const uint64_t n = graph.num_vertices();
  const uint64_t segment_steps = options.walk_segment_steps;
  const uint64_t max_steps = 200 * target + 1000;
  PickSet picks(n, target);
  std::vector<VertexId> visits;
  std::vector<uint64_t> offsets{0};
  for (uint64_t i = 0; !picks.Done() && i * segment_steps < max_steps; ++i) {
    const size_t begin = visits.size();
    WalkSegment(graph, options, i, restart, &visits);
    offsets.push_back(visits.size());
    for (size_t p = begin; p < visits.size() && !picks.Done(); ++p) {
      picks.Add(visits[p]);
    }
  }
  Rng fill = Rng(options.seed).Fork(kFillStream);
  while (!picks.Done()) {
    picks.Add(static_cast<VertexId>(fill.Uniform(n)));
  }
  if (record != nullptr) {
    record->segment_offsets = std::move(offsets);
    record->touched.assign(n, 0);
    for (const VertexId v : visits) record->touched[v] = 1;
    record->visits = std::move(visits);
  }
  return std::move(picks.order());
}

std::vector<VertexId> BrjSeeds(const Graph& graph,
                               const SamplerOptions& options) {
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(options.seed_fraction *
                          static_cast<double>(graph.num_vertices()))));
  return TopOutDegreeSeeds(graph, k);
}

// Dispatches a segmented RJ/BRJ run; `record`, when non-null, also
// receives the BRJ seed set.
Result<std::vector<VertexId>> RunSegmentedKind(const Graph& graph,
                                               const SamplerOptions& options,
                                               uint64_t target,
                                               SampleWalkRecord* record) {
  const uint64_t n = graph.num_vertices();
  switch (options.kind) {
    case SamplerKind::kRandomJump:
      return RunSegmented(
          graph, options, target,
          [n](Rng& rng) { return static_cast<VertexId>(rng.Uniform(n)); },
          record);
    case SamplerKind::kBiasedRandomJump: {
      const std::vector<VertexId> seeds = BrjSeeds(graph, options);
      auto picked = RunSegmented(
          graph, options, target,
          [&seeds](Rng& rng) { return seeds[rng.Uniform(seeds.size())]; },
          record);
      if (record != nullptr) record->brj_seeds = seeds;
      return picked;
    }
    default:
      return Status::InvalidArgument(
          "walk_segment_steps requires the RJ or BRJ sampler");
  }
}

std::vector<VertexId> RunBiasedRandomJump(const Graph& graph,
                                          const SamplerOptions& options,
                                          uint64_t target) {
  const uint64_t n = graph.num_vertices();
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(options.seed_fraction *
                                            static_cast<double>(n))));
  const std::vector<VertexId> seeds = TopOutDegreeSeeds(graph, k);
  return JumpWalk(graph, options, target, [&seeds](Rng& rng) {
    return seeds[rng.Uniform(seeds.size())];
  });
}

// Undirected degree used by MHRW's acceptance ratio.
uint64_t UndirectedDegree(const Graph& graph, VertexId v) {
  return graph.out_degree(v) + graph.in_degree(v);
}

// One undirected neighbor pick (walks ignore direction, as in Gjoka et al.).
bool UndirectedStep(const Graph& graph, Rng& rng,
                    std::vector<VertexId>& out_scratch,
                    std::vector<VertexId>& in_scratch, VertexId& current) {
  const uint64_t out_degree = graph.out_degree(current);
  const uint64_t degree = out_degree + graph.in_degree(current);
  if (degree == 0) return false;
  const uint64_t pick = rng.Uniform(degree);
  current = pick < out_degree
                ? graph.OutNeighborsInto(current, &out_scratch)[pick]
                : graph.InSourcesInto(current, &in_scratch)[pick - out_degree];
  return true;
}

std::vector<VertexId> RunMetropolisHastings(const Graph& graph,
                                            const SamplerOptions& options,
                                            uint64_t target) {
  const uint64_t n = graph.num_vertices();
  Rng rng(options.seed);
  PickSet picks(graph.num_vertices(), target);
  std::vector<VertexId> out_scratch, in_scratch;
  VertexId current = static_cast<VertexId>(rng.Uniform(n));
  picks.Add(current);
  const uint64_t max_steps = 400 * target + 1000;
  uint64_t steps = 0;
  while (!picks.Done() && steps < max_steps) {
    ++steps;
    if (rng.NextBool(options.jump_probability)) {
      current = static_cast<VertexId>(rng.Uniform(n));
      picks.Add(current);
      continue;
    }
    VertexId proposal = current;
    if (!UndirectedStep(graph, rng, out_scratch, in_scratch, proposal)) {
      current = static_cast<VertexId>(rng.Uniform(n));
      picks.Add(current);
      continue;
    }
    // MH acceptance removes the walk's bias towards high-degree vertices:
    // accept with probability min(1, deg(current)/deg(proposal)).
    const double ratio = static_cast<double>(UndirectedDegree(graph, current)) /
                         static_cast<double>(UndirectedDegree(graph, proposal));
    if (ratio >= 1.0 || rng.NextDouble() < ratio) current = proposal;
    picks.Add(current);
  }
  while (!picks.Done()) {
    picks.Add(static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(picks.order());
}

std::vector<VertexId> RunForestFire(const Graph& graph,
                                    const SamplerOptions& options,
                                    uint64_t target) {
  const uint64_t n = graph.num_vertices();
  Rng rng(options.seed);
  PickSet picks(graph.num_vertices(), target);
  std::vector<VertexId> frontier;
  std::vector<VertexId> scratch;
  while (!picks.Done()) {
    // Ignite at a random unvisited vertex.
    VertexId seed = static_cast<VertexId>(rng.Uniform(n));
    picks.Add(seed);
    frontier.assign(1, seed);
    while (!frontier.empty() && !picks.Done()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      // Burn a geometric number of untouched out-neighbors.
      for (const VertexId u : graph.OutNeighborsInto(v, &scratch)) {
        if (picks.Done()) break;
        if (!rng.NextBool(options.forward_burning_p)) continue;
        if (picks.Add(u)) frontier.push_back(u);
      }
    }
  }
  return std::move(picks.order());
}

}  // namespace

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kRandomJump:
      return "RJ";
    case SamplerKind::kBiasedRandomJump:
      return "BRJ";
    case SamplerKind::kMetropolisHastingsRW:
      return "MHRW";
    case SamplerKind::kForestFire:
      return "FF";
  }
  return "unknown";
}

std::string SamplerOptionsKey(const SamplerOptions& options) {
  // Cache keys must never truncate: two distinct options differing only
  // past a fixed buffer's end would silently collide. snprintf reports
  // the full untruncated length, so retry with an exact-sized buffer if
  // the stack buffer ever proves too small.
  const auto format = [&](char* out, size_t size) {
    return std::snprintf(
        out, size,
        "%s;ratio=%.17g;jump=%.17g;seedfrac=%.17g;burn=%.17g;seed=%llu",
        SamplerKindName(options.kind), options.sampling_ratio,
        options.jump_probability, options.seed_fraction,
        options.forward_burning_p,
        static_cast<unsigned long long>(options.seed));
  };
  char buf[192];
  const int len = format(buf, sizeof(buf));
  if (len < 0) return SamplerKindName(options.kind);  // cannot happen
  std::string key;
  if (static_cast<size_t>(len) < sizeof(buf)) {
    key.assign(buf, static_cast<size_t>(len));
  } else {
    key.assign(static_cast<size_t>(len) + 1, '\0');
    format(key.data(), key.size());
    key.resize(static_cast<size_t>(len));
  }
  // Segmented walks sample a different (equally valid) vertex set, so
  // the segment length is part of the key; the suffix is appended only
  // when the feature is on, keeping classic keys byte-identical.
  if (options.walk_segment_steps != 0) {
    key += ";seg=" + std::to_string(options.walk_segment_steps);
  }
  return key;
}

namespace {

// Shared validation + dispatch behind SampleVertices and the recorded
// variant; `record` non-null captures segment trajectories (segmented
// runs only).
Result<std::vector<VertexId>> SampleVerticesInternal(
    const Graph& graph, const SamplerOptions& options,
    SampleWalkRecord* record) {
  const uint64_t n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (options.sampling_ratio <= 0.0 || options.sampling_ratio > 1.0) {
    return Status::InvalidArgument("sampling_ratio must be in (0, 1]");
  }
  if (options.jump_probability < 0.0 || options.jump_probability > 1.0) {
    return Status::InvalidArgument("jump_probability must be in [0, 1]");
  }
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(options.sampling_ratio * static_cast<double>(n))));

  if (options.walk_segment_steps != 0) {
    return RunSegmentedKind(graph, options, target, record);
  }
  switch (options.kind) {
    case SamplerKind::kRandomJump:
      return RunRandomJump(graph, options, target);
    case SamplerKind::kBiasedRandomJump:
      return RunBiasedRandomJump(graph, options, target);
    case SamplerKind::kMetropolisHastingsRW:
      return RunMetropolisHastings(graph, options, target);
    case SamplerKind::kForestFire:
      return RunForestFire(graph, options, target);
  }
  return Status::InvalidArgument("unknown sampler kind");
}

Sample AssembleSample(const Graph& graph, SubgraphResult sub) {
  Sample sample;
  sample.vertices = std::move(sub.original_id);
  sample.subgraph = std::move(sub.graph);
  sample.original_num_vertices = graph.num_vertices();
  sample.realized_ratio = static_cast<double>(sample.vertices.size()) /
                          static_cast<double>(sample.original_num_vertices);
  return sample;
}

}  // namespace

Result<std::vector<VertexId>> SampleVertices(const Graph& graph,
                                             const SamplerOptions& options) {
  return SampleVerticesInternal(graph, options, nullptr);
}

Result<Sample> SampleGraph(const Graph& graph, const SamplerOptions& options) {
  PREDICT_ASSIGN_OR_RETURN(std::vector<VertexId> vertices,
                           SampleVertices(graph, options));
  PREDICT_ASSIGN_OR_RETURN(SubgraphResult sub, InducedSubgraph(graph, vertices));
  return AssembleSample(graph, std::move(sub));
}

Result<Sample> SampleGraphRecorded(const Graph& graph,
                                   const SamplerOptions& options,
                                   SampleWalkRecord* record) {
  *record = SampleWalkRecord{};
  record->options = options;
  record->graph_fingerprint = graph.Fingerprint();
  record->num_vertices = graph.num_vertices();
  record->num_edges = graph.num_edges();
  record->supports_incremental =
      options.walk_segment_steps != 0 &&
      (options.kind == SamplerKind::kRandomJump ||
       options.kind == SamplerKind::kBiasedRandomJump);
  PREDICT_ASSIGN_OR_RETURN(std::vector<VertexId> vertices,
                           SampleVerticesInternal(graph, options, record));
  PREDICT_ASSIGN_OR_RETURN(SubgraphResult sub, InducedSubgraph(graph, vertices));
  return AssembleSample(graph, std::move(sub));
}

Result<IncrementalSampleResult> ResampleIncremental(
    const Graph& graph, const std::vector<VertexId>& dirty,
    const SampleWalkRecord& record, SampleWalkRecord* updated) {
  const uint64_t n = graph.num_vertices();
  const SamplerOptions& options = record.options;

  const auto full = [&]() -> Result<IncrementalSampleResult> {
    IncrementalSampleResult result;
    PREDICT_ASSIGN_OR_RETURN(result.sample,
                             SampleGraphRecorded(graph, options, updated));
    result.full_resample = true;
    result.segments_total = updated->segment_offsets.empty()
                                ? 0
                                : updated->segment_offsets.size() - 1;
    result.segments_reused = 0;
    return result;
  };

  if (!record.supports_incremental || record.num_vertices != n) return full();

  // BRJ restarts draw from the top-out-degree seed set; the recorded
  // trajectories are only reusable if the mutated graph reproduces it
  // exactly (every segment's restarts would shift otherwise).
  std::vector<VertexId> seeds;
  if (options.kind == SamplerKind::kBiasedRandomJump) {
    seeds = BrjSeeds(graph, options);
    if (seeds != record.brj_seeds) return full();
  }

  std::vector<uint8_t> is_dirty(n, 0);
  for (const VertexId v : dirty) {
    if (v >= n) return Status::InvalidArgument("dirty vertex out of range");
    is_dirty[v] = 1;
  }

  const uint64_t segment_steps = options.walk_segment_steps;
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(options.sampling_ratio * static_cast<double>(n))));
  const uint64_t max_steps = 200 * target + 1000;
  const uint64_t recorded_segments =
      record.segment_offsets.empty() ? 0 : record.segment_offsets.size() - 1;

  const auto restart = [&](Rng& rng) {
    return options.kind == SamplerKind::kBiasedRandomJump
               ? seeds[rng.Uniform(seeds.size())]
               : static_cast<VertexId>(rng.Uniform(n));
  };

  IncrementalSampleResult result;
  PickSet picks(n, target);
  std::vector<VertexId> visits;
  std::vector<uint64_t> offsets{0};
  for (uint64_t i = 0; !picks.Done() && i * segment_steps < max_steps; ++i) {
    const size_t begin = visits.size();
    bool reused = false;
    if (i < recorded_segments) {
      const uint64_t s0 = record.segment_offsets[i];
      const uint64_t s1 = record.segment_offsets[i + 1];
      bool clean = true;
      for (uint64_t p = s0; p < s1; ++p) {
        if (is_dirty[record.visits[p]]) {
          clean = false;
          break;
        }
      }
      if (clean) {
        // No visited vertex's out-row changed, so the segment walks
        // identically on the mutated graph: splice the recording through.
        visits.insert(visits.end(), record.visits.begin() + s0,
                      record.visits.begin() + s1);
        reused = true;
        ++result.segments_reused;
      }
    }
    if (!reused) WalkSegment(graph, options, i, restart, &visits);
    offsets.push_back(visits.size());
    for (size_t p = begin; p < visits.size() && !picks.Done(); ++p) {
      picks.Add(visits[p]);
    }
  }
  Rng fill = Rng(options.seed).Fork(kFillStream);
  while (!picks.Done()) {
    picks.Add(static_cast<VertexId>(fill.Uniform(n)));
  }
  result.segments_total = offsets.size() - 1;

  *updated = SampleWalkRecord{};
  updated->options = options;
  updated->graph_fingerprint = graph.Fingerprint();
  updated->num_vertices = n;
  updated->num_edges = graph.num_edges();
  updated->supports_incremental = true;
  updated->brj_seeds = std::move(seeds);
  updated->segment_offsets = std::move(offsets);
  updated->touched.assign(n, 0);
  for (const VertexId v : visits) updated->touched[v] = 1;
  updated->visits = std::move(visits);

  std::vector<VertexId> vertices = std::move(picks.order());
  PREDICT_ASSIGN_OR_RETURN(SubgraphResult sub,
                           InducedSubgraph(graph, vertices));
  result.sample = AssembleSample(graph, std::move(sub));
  return result;
}

}  // namespace predict
