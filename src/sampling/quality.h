// Sample-quality report: how well a sample preserves the original
// graph's key properties (§3.2.1's requirements, scored with the
// D-statistics of Leskovec & Faloutsos).

#ifndef PREDICT_SAMPLING_QUALITY_H_
#define PREDICT_SAMPLING_QUALITY_H_

#include <string>

#include "graph/graph.h"
#include "sampling/sampler.h"

namespace predict {

namespace bsp {
class ThreadPool;
}  // namespace bsp

/// Property-by-property comparison between a sample and its source graph.
struct SampleQualityReport {
  double out_degree_d_statistic = 0.0;  ///< KS distance, out-degree dists
  double in_degree_d_statistic = 0.0;   ///< KS distance, in-degree dists
  double original_effective_diameter = 0.0;
  double sample_effective_diameter = 0.0;
  double original_clustering = 0.0;
  double sample_clustering = 0.0;
  double original_largest_component = 0.0;  ///< fraction of |V|
  double sample_largest_component = 0.0;
  double original_in_out_ratio = 0.0;
  double sample_in_out_ratio = 0.0;

  /// Rough scalar summary: mean of the two D-statistics (lower = better).
  double MeanDStatistic() const {
    return 0.5 * (out_degree_d_statistic + in_degree_d_statistic);
  }

  std::string ToString() const;
};

/// Computes the report. `diameter_sources` bounds the BFS work. A
/// non-null `pool` parallelizes the diameter and clustering estimates
/// (bit-identical to pool == nullptr for any thread count; see
/// graph/stats.h).
SampleQualityReport EvaluateSampleQuality(const Graph& original,
                                          const Sample& sample,
                                          uint32_t diameter_sources = 32,
                                          uint64_t seed = 42,
                                          bsp::ThreadPool* pool = nullptr);

}  // namespace predict

#endif  // PREDICT_SAMPLING_QUALITY_H_
