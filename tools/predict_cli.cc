// predict_cli — command-line driver for the PREDIcT library.
//
//   predict_cli datasets
//   predict_cli describe  (--dataset NAME | --graph FILE) [--scale S]
//                         [--threads T]
//   predict_cli sample    (--dataset NAME | --graph FILE) [--ratio R]
//                         [--method BRJ|RJ|MHRW|FF] [--seed N] [--threads T]
//   predict_cli run       --algorithm A (--dataset NAME | --graph FILE)
//                         [--config k=v]... [--workers N]
//   predict_cli predict   --algorithm A (--dataset NAME | --graph FILE)
//                         [--ratio R] [--config k=v]... [--workers N]
//                         [--history FILE] [--save-history FILE]
//                         [--verify]
//   predict_cli batch     --algorithms A,B,... --datasets N1,N2,...
//                         [--ratio R] [--method BRJ|RJ|MHRW|FF] [--seed N]
//                         [--scale S] [--workers N] [--threads T]
//                         [--history FILE]
//   predict_cli mutate    (--dataset NAME | --graph FILE) --out FILE
//                         [--churn FRACTION] [--seed N]
//   predict_cli scenarios
//   predict_cli whatif    --algorithm A (--dataset NAME | --graph FILE)
//                         [--scenarios S1,S2,... | all] [--sla SECONDS]
//                         [--confidence C] [--ratio R] [--config k=v]...
//                         [--threads T]
//   predict_cli history   --file FILE [--algorithm A] [--list] [--export FILE2]
//   predict_cli bound     --epsilon E [--damping D]
//
// Engine flags (run/predict/batch): [--scenario NAME] [--workers N]
// [--partition hash|range|edge] [--path adaptive|sparse|dense]
// [--dense-threshold X] — --scenario picks a registry deployment, the
// others override it.
//
// Robustness flags (predict/batch): [--failpoints name=spec;...]
// [--retries N] [--deadline S] [--degraded]; batch adds [--fail-fast]
// (stop at the first failed cell instead of answering them all).
//
// Graph files: edge-list text ("src dst [weight]") or PRDG binary.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algorithms/runner.h"
#include "bsp/scenario.h"
#include "bsp/thread_pool.h"
#include "common/failpoint.h"
#include "common/retry.h"
#include "common/strings.h"
#include "core/bounds.h"
#include "core/history.h"
#include "core/predictor.h"
#include "datasets/datasets.h"
#include "graph/delta.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "sampling/quality.h"
#include "service/prediction_service.h"

namespace {

using namespace predict;

// ------------------------------------------------------------ flag parsing

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> config_pairs;  // repeated --config k=v
  bool ok = true;
  std::string error;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.ok = false;
      flags.error = "unexpected argument '" + arg + "'";
      return flags;
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      value = argv[++i];
    } else if (arg != "verify" && arg != "list" && arg != "degraded" &&
               arg != "fail-fast") {
      flags.ok = false;
      flags.error = "flag --" + arg + " needs a value";
      return flags;
    }
    if (arg == "config") {
      flags.config_pairs.push_back(value);
    } else {
      flags.values[arg] = value;
    }
  }
  return flags;
}

std::string GetFlag(const Flags& flags, const std::string& name,
                    const std::string& fallback = "") {
  const auto it = flags.values.find(name);
  return it == flags.values.end() ? fallback : it->second;
}

// Validated numeric flag parsing. std::atoi silently turns "--workers=abc"
// into 0, which only surfaces as a confusing failure deep inside the
// engine; these helpers reject malformed or out-of-range values at the
// command line with an error naming the flag.

Result<long long> ParseIntegerFlag(const Flags& flags, const std::string& name,
                                   long long fallback, long long min_value,
                                   long long max_value) {
  const std::string text = GetFlag(flags, name);
  if (text.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   text + "'");
  }
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        "--" + name + " must be in [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "], got " + std::to_string(value));
  }
  return value;
}

/// Seeds span the full uint64 range, so they get strtoull (a signed
/// parser would reject seeds above 2^63-1 that older releases accepted).
Result<uint64_t> ParseUint64Flag(const Flags& flags, const std::string& name,
                                 uint64_t fallback) {
  const std::string text = GetFlag(flags, name);
  if (text.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text[0] == '-' || end == text.c_str() || *end != '\0' ||
      errno == ERANGE) {
    return Status::InvalidArgument(
        "--" + name + " expects a non-negative integer below 2^64, got '" +
        text + "'");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseDoubleFlag(const Flags& flags, const std::string& name,
                               double fallback) {
  const std::string text = GetFlag(flags, name);
  if (text.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // strtod happily parses "inf"/"nan", which would sail past validation
  // only to poison comparisons downstream (a NaN SLA disables the SLA
  // check without a word) — reject anything non-finite.
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("--" + name +
                                   " expects a finite number, got '" + text +
                                   "'");
  }
  return value;
}

/// Prints a flag-parsing error and returns the exit code for it.
int FlagError(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 2;
}

SamplerKind ParseSamplerKind(const std::string& name) {
  if (name == "RJ") return SamplerKind::kRandomJump;
  if (name == "MHRW") return SamplerKind::kMetropolisHastingsRW;
  if (name == "FF") return SamplerKind::kForestFire;
  return SamplerKind::kBiasedRandomJump;
}

/// The sampler flag set (--method/--ratio/--seed/--segment-steps) shared
/// by sample/predict/batch/whatif. --segment-steps N turns on segmented
/// walks (RJ/BRJ), the prerequisite for incremental re-sampling across
/// graph versions.
Status ParseSamplerFlags(const Flags& flags, SamplerOptions* options) {
  options->kind = ParseSamplerKind(GetFlag(flags, "method", "BRJ"));
  PREDICT_ASSIGN_OR_RETURN(options->sampling_ratio,
                           ParseDoubleFlag(flags, "ratio", 0.1));
  PREDICT_ASSIGN_OR_RETURN(options->seed, ParseUint64Flag(flags, "seed", 42));
  PREDICT_ASSIGN_OR_RETURN(options->walk_segment_steps,
                           ParseUint64Flag(flags, "segment-steps", 0));
  return Status::OK();
}

/// The robustness flag set shared by predict/batch: --failpoints SPEC
/// arms fault-injection sites ("name=spec;name=spec"; see
/// common/failpoint.h), --retries N retries each failed stage up to N
/// more times, --deadline S bounds the whole request, --degraded enables
/// the degradation ladder (stale profile / history-only) instead of
/// failing the request.
Status ParseRobustnessFlags(const Flags& flags, PredictorOptions* options) {
  const std::string failpoints = GetFlag(flags, "failpoints");
  if (!failpoints.empty()) {
    PREDICT_RETURN_NOT_OK(fail::ConfigureFromString(failpoints));
  }
  PREDICT_ASSIGN_OR_RETURN(const long long retries,
                           ParseIntegerFlag(flags, "retries", 0, 0, 100));
  options->robustness.retry.max_attempts = static_cast<int>(retries) + 1;
  PREDICT_ASSIGN_OR_RETURN(options->robustness.deadline_seconds,
                           ParseDoubleFlag(flags, "deadline", 0.0));
  options->robustness.degraded_fallbacks = flags.values.count("degraded") != 0;
  return Status::OK();
}

/// Loads a history file, surfacing (not hiding) its quarantine note.
Result<HistoryStore> LoadHistoryFile(const std::string& path) {
  std::string note;
  PREDICT_ASSIGN_OR_RETURN(HistoryStore store,
                           HistoryStore::LoadFromFile(path, &note));
  if (!note.empty()) std::fprintf(stderr, "warning: %s\n", note.c_str());
  return store;
}

Result<AlgorithmConfig> ParseConfigPairs(const std::vector<std::string>& pairs) {
  AlgorithmConfig config;
  for (const std::string& pair : pairs) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--config expects k=v, got '" + pair + "'");
    }
    config[pair.substr(0, eq)] = std::atof(pair.c_str() + eq + 1);
  }
  return config;
}

// ------------------------------------------------------------- graph input

Result<Graph> LoadInputGraph(const Flags& flags) {
  const std::string dataset = GetFlag(flags, "dataset");
  const std::string file = GetFlag(flags, "graph");
  PREDICT_ASSIGN_OR_RETURN(const double scale,
                           ParseDoubleFlag(flags, "scale", 1.0));
  if (!dataset.empty() && !file.empty()) {
    return Status::InvalidArgument("pass either --dataset or --graph, not both");
  }
  if (!dataset.empty()) return MakeDataset(dataset, scale);
  if (!file.empty()) {
    // Sniff the PRDG magic; fall back to edge-list text.
    FILE* f = std::fopen(file.c_str(), "rb");
    if (f != nullptr) {
      char magic[4] = {0};
      const size_t got = std::fread(magic, 1, 4, f);
      std::fclose(f);
      if (got == 4 && std::memcmp(magic, "PRDG", 4) == 0) {
        return ReadBinaryGraphFile(file);
      }
    }
    return ReadEdgeListFile(file);
  }
  return Status::InvalidArgument("need --dataset NAME or --graph FILE");
}

// Engine configuration: --scenario picks a registry deployment (default
// the paper cluster), --workers / --partition override it.
Result<bsp::EngineOptions> EngineFromFlags(const Flags& flags) {
  bsp::EngineOptions engine = PaperClusterOptions();
  const std::string scenario_name = GetFlag(flags, "scenario");
  if (!scenario_name.empty()) {
    PREDICT_ASSIGN_OR_RETURN(const bsp::ClusterScenario scenario,
                             bsp::FindScenario(scenario_name));
    engine = scenario.ToEngineOptions();
  }
  // The substrate keeps one outbox per (sender, dest) pair — memory is
  // quadratic in workers — so the bound must stay small enough that the
  // engine can actually allocate it (4096 workers = 16.8M outboxes).
  PREDICT_ASSIGN_OR_RETURN(
      const long long workers,
      ParseIntegerFlag(flags, "workers", engine.num_workers, 1, 4096));
  engine.num_workers = static_cast<uint32_t>(workers);
  const std::string partition = GetFlag(flags, "partition");
  if (!partition.empty()) {
    PREDICT_ASSIGN_OR_RETURN(engine.partition,
                             bsp::ParsePartitionStrategy(partition));
  }
  // Superstep execution path: adaptive (default) switches between the
  // worklist and dense flat-array paths per superstep; sparse/dense pin
  // one path. Results are bit-identical either way — these flags trade
  // host wall clock only.
  const std::string path = GetFlag(flags, "path");
  if (!path.empty()) {
    if (path == "adaptive") {
      engine.superstep_path = bsp::SuperstepPath::kAdaptive;
    } else if (path == "sparse") {
      engine.superstep_path = bsp::SuperstepPath::kSparse;
    } else if (path == "dense") {
      engine.superstep_path = bsp::SuperstepPath::kDense;
    } else {
      return Status::InvalidArgument(
          "--path expects adaptive|sparse|dense, got '" + path + "'");
    }
  }
  PREDICT_ASSIGN_OR_RETURN(
      engine.dense_path_threshold,
      ParseDoubleFlag(flags, "dense-threshold", engine.dense_path_threshold));
  return engine;
}

// --------------------------------------------------------------- commands

int CmdDatasets() {
  const auto print_group = [](const std::vector<DatasetInfo>& group) {
    for (const DatasetInfo& info : group) {
      std::printf("%-8s %-10u %-12llu %-11s %s\n", info.name.c_str(),
                  info.num_vertices,
                  static_cast<unsigned long long>(info.approx_edges),
                  info.scale_free ? "yes" : "no", info.description.c_str());
    }
  };
  std::printf("%-8s %-10s %-12s %-11s %s\n", "name", "#nodes", "~#edges",
              "scale-free", "description");
  print_group(PaperDatasets());
  print_group(ScaleDatasets());
  return 0;
}

// Stats pool for describe/sample: --threads T fans the BFS/clustering
// estimates out over T host threads (0 = inline; results are identical
// either way per the stats determinism contract).
Result<std::unique_ptr<bsp::ThreadPool>> StatsPool(const Flags& flags) {
  PREDICT_ASSIGN_OR_RETURN(const long long threads,
                           ParseIntegerFlag(flags, "threads", 0, 0, 4096));
  if (threads <= 0) return std::unique_ptr<bsp::ThreadPool>();
  return std::make_unique<bsp::ThreadPool>(static_cast<uint32_t>(threads));
}

int CmdDescribe(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto pool = StatsPool(flags);
  if (!pool.ok()) return FlagError(pool.status());
  std::printf("%s\n", DescribeGraph(*graph).c_str());
  std::printf("effective diameter (90%%): %.2f\n",
              EffectiveDiameter(*graph, 0.9, 32, 42, pool->get()));
  std::printf("clustering coefficient:   %.4f\n",
              AverageClusteringCoefficient(*graph, 1000, 42, pool->get()));
  std::printf("weakly connected comps:   %llu\n",
              static_cast<unsigned long long>(
                  CountWeaklyConnectedComponents(*graph)));
  return 0;
}

int CmdSample(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  SamplerOptions options;
  const Status sampler_flags = ParseSamplerFlags(flags, &options);
  if (!sampler_flags.ok()) return FlagError(sampler_flags);
  auto sample = SampleGraph(*graph, options);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }
  std::printf("method %s, ratio %.3f: sample %s\n",
              SamplerKindName(options.kind), sample->realized_ratio,
              sample->subgraph.ToString().c_str());
  auto pool = StatsPool(flags);
  if (!pool.ok()) return FlagError(pool.status());
  const SampleQualityReport quality =
      EvaluateSampleQuality(*graph, *sample, 32, 42, pool->get());
  std::printf("quality: %s\n", quality.ToString().c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string algorithm = GetFlag(flags, "algorithm");
  auto config = ParseConfigPairs(flags.config_pairs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  RunOptions options;
  auto engine = EngineFromFlags(flags);
  if (!engine.ok()) return FlagError(engine.status());
  options.engine = *engine;
  options.config_overrides = *config;
  auto result = RunAlgorithmByName(algorithm, *graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const bsp::RunStats& stats = result->stats;
  std::printf("%s on %s: %d supersteps (%s)\n", algorithm.c_str(),
              graph->ToString().c_str(), stats.num_supersteps(),
              bsp::HaltReasonName(stats.halt_reason));
  std::printf("phases: setup %s, read %s, supersteps %s, write %s\n",
              FormatSeconds(stats.setup_seconds).c_str(),
              FormatSeconds(stats.read_seconds).c_str(),
              FormatSeconds(stats.superstep_phase_seconds).c_str(),
              FormatSeconds(stats.write_seconds).c_str());
  std::printf("total %s simulated (%s wall), peak memory %s\n",
              FormatSeconds(stats.total_seconds).c_str(),
              FormatSeconds(stats.wall_seconds).c_str(),
              FormatBytes(stats.peak_memory_bytes).c_str());
  for (const auto& step : stats.supersteps) {
    const bsp::WorkerCounters totals = step.Totals();
    std::printf("  superstep %2d [%s]: %s, %llu msgs (%s), %llu active\n",
                step.superstep, step.dense_path ? "dense" : "sparse",
                FormatSeconds(step.simulated_seconds).c_str(),
                static_cast<unsigned long long>(totals.total_messages()),
                FormatBytes(totals.total_message_bytes()).c_str(),
                static_cast<unsigned long long>(totals.active_vertices));
  }
  return 0;
}

int CmdPredict(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string algorithm = GetFlag(flags, "algorithm");
  auto config = ParseConfigPairs(flags.config_pairs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  PredictorOptions options;
  const Status sampler_flags = ParseSamplerFlags(flags, &options.sampler);
  auto engine = EngineFromFlags(flags);
  if (!sampler_flags.ok()) return FlagError(sampler_flags);
  if (!engine.ok()) return FlagError(engine.status());
  options.engine = *engine;
  const Status robustness_flags = ParseRobustnessFlags(flags, &options);
  if (!robustness_flags.ok()) return FlagError(robustness_flags);

  std::unique_ptr<HistoryStore> history;
  const std::string history_file = GetFlag(flags, "history");
  if (!history_file.empty()) {
    auto loaded = LoadHistoryFile(history_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    history = std::make_unique<HistoryStore>(std::move(loaded).MoveValue());
    options.history = history.get();
    std::printf("loaded %zu historical profiles from %s\n", history->size(),
                history_file.c_str());
  }

  Predictor predictor(options);
  const std::string dataset_label = GetFlag(flags, "dataset", "input");
  auto report =
      predictor.PredictRuntime(algorithm, *graph, dataset_label, *config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("PREDIcT %s on %s (%s sample, ratio %.3f)\n", algorithm.c_str(),
              graph->ToString().c_str(),
              SamplerKindName(options.sampler.kind),
              report->realized_sampling_ratio);
  if (report->degradation.degraded()) {
    std::printf("  DEGRADED:             %s (%s)\n",
                DegradationRungName(report->degradation.rung),
                report->degradation.cause.c_str());
  }
  if (report->accounting.total_attempts() > 0 &&
      options.robustness.retry.max_attempts > 1) {
    std::printf("  attempts:             %d (%.3fs backoff)\n",
                report->accounting.total_attempts(),
                report->accounting.total_backoff_seconds());
  }
  std::printf("  transform:            %s\n",
              report->transform_description.c_str());
  std::printf("  predicted iterations: %d\n", report->predicted_iterations);
  std::printf("  predicted runtime:    %s (superstep phase)\n",
              FormatSeconds(report->predicted_superstep_seconds).c_str());
  if (!report->distribution.samples.empty()) {
    std::printf("  interval:             p50 %s, p95 %s (%zu bootstrap "
                "replicates)\n",
                FormatSeconds(report->distribution.p50_seconds).c_str(),
                FormatSeconds(report->distribution.p95_seconds).c_str(),
                report->distribution.samples.size());
  }
  std::printf("  model:                %s [%s]\n",
              report->runtime_model_description.c_str(),
              report->model_selection.reason.c_str());
  std::printf("  cost model:           %s\n",
              report->cost_model.ToString().c_str());
  std::printf("  sample-run overhead:  %s simulated, %s wall\n",
              FormatSeconds(report->sample_total_seconds).c_str(),
              FormatSeconds(report->sample_wall_seconds).c_str());

  if (flags.values.count("verify") != 0) {
    RunOptions run_options;
    run_options.engine = options.engine;
    run_options.config_overrides = *config;
    auto actual = RunAlgorithmByName(algorithm, *graph, run_options);
    if (!actual.ok()) {
      std::fprintf(stderr, "verification run failed: %s\n",
                   actual.status().ToString().c_str());
      return 1;
    }
    const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
    std::printf("verification: actual %d iterations, %s; errors: iterations "
                "%+.1f%%, runtime %+.1f%%\n",
                eval.actual_iterations,
                FormatSeconds(eval.actual_superstep_seconds).c_str(),
                100.0 * eval.iterations_error, 100.0 * eval.runtime_error);

    const std::string save = GetFlag(flags, "save-history");
    if (!save.empty()) {
      HistoryStore store;
      if (!history_file.empty() && history != nullptr) store = *history;
      store.Add(ProfileFromRunStats(algorithm, dataset_label,
                                    graph->num_vertices(), graph->num_edges(),
                                    actual->stats));
      const Status saved = store.SaveToFile(save);
      if (!saved.ok()) {
        std::fprintf(stderr, "%s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("saved %zu profiles to %s\n", store.size(), save.c_str());
    }
  }
  return 0;
}

// Fans (algorithm x dataset) what-if requests through the caching
// PredictionService and prints one table row per request.
int CmdBatch(const Flags& flags) {
  const std::vector<std::string> algorithms =
      SplitString(GetFlag(flags, "algorithms"), ',');
  const std::vector<std::string> dataset_names =
      SplitString(GetFlag(flags, "datasets"), ',');
  if (algorithms.empty() || algorithms[0].empty() || dataset_names.empty() ||
      dataset_names[0].empty()) {
    std::fprintf(stderr,
                 "batch needs --algorithms A,B,... and --datasets N1,N2,...\n");
    return 2;
  }
  auto scale = ParseDoubleFlag(flags, "scale", 1.0);
  if (!scale.ok()) return FlagError(scale.status());

  // Graphs must outlive the requests (the service borrows them).
  std::vector<Graph> graphs;
  graphs.reserve(dataset_names.size());
  for (const std::string& name : dataset_names) {
    auto graph = MakeDataset(name, *scale);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::move(graph).MoveValue());
  }

  PredictionServiceOptions options;
  const Status sampler_flags =
      ParseSamplerFlags(flags, &options.predictor.sampler);
  auto engine = EngineFromFlags(flags);
  auto threads = ParseIntegerFlag(flags, "threads", -1, -1, 4096);
  if (!sampler_flags.ok()) return FlagError(sampler_flags);
  if (!engine.ok()) return FlagError(engine.status());
  if (!threads.ok()) return FlagError(threads.status());
  options.predictor.engine = *engine;
  // Serving configuration: parallelism comes from the batch fan-out, not
  // from per-run simulation threads.
  options.predictor.engine.num_threads = 0;
  options.num_threads = static_cast<int>(*threads);
  const Status robustness_flags =
      ParseRobustnessFlags(flags, &options.predictor);
  if (!robustness_flags.ok()) return FlagError(robustness_flags);

  std::unique_ptr<HistoryStore> history;
  const std::string history_file = GetFlag(flags, "history");
  if (!history_file.empty()) {
    auto loaded = LoadHistoryFile(history_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    history = std::make_unique<HistoryStore>(std::move(loaded).MoveValue());
    options.predictor.history = history.get();
  }

  PredictionService service(options);
  std::vector<PredictionRequest> requests;
  for (size_t d = 0; d < graphs.size(); ++d) {
    for (const std::string& algorithm : algorithms) {
      PredictionRequest request;
      request.algorithm = algorithm;
      request.graph = &graphs[d];
      request.dataset = dataset_names[d];
      requests.push_back(std::move(request));
    }
  }

  // --fail-fast runs the cells sequentially and stops at the first
  // failed one (later cells are not attempted); the default answers
  // every cell and reports the failures at the end. Either way a batch
  // with any failed cell exits nonzero.
  const bool fail_fast = flags.values.count("fail-fast") != 0;
  std::vector<Result<PredictionReport>> results;
  size_t attempted = requests.size();
  if (fail_fast) {
    results.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      results.push_back(service.Predict(requests[i]));
      if (!results.back().ok()) {
        attempted = i + 1;
        break;
      }
    }
  } else {
    results = service.PredictBatch(requests);
  }

  std::printf("%-22s %-8s %6s %14s %8s %8s\n", "algorithm", "dataset", "iters",
              "predicted", "R2", "ratio");
  int failures = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-22s %-8s  %s\n", requests[i].algorithm.c_str(),
                  requests[i].dataset.c_str(),
                  results[i].status().ToString().c_str());
      ++failures;
      continue;
    }
    const PredictionReport& report = *results[i];
    std::printf("%-22s %-8s %6d %14s %8.3f %8.3f%s\n",
                requests[i].algorithm.c_str(), requests[i].dataset.c_str(),
                report.predicted_iterations,
                FormatSeconds(report.predicted_superstep_seconds).c_str(),
                report.cost_model.r_squared(), report.realized_sampling_ratio,
                report.degradation.degraded() ? "  [degraded]" : "");
  }
  if (fail_fast && attempted < requests.size()) {
    std::printf("fail-fast: stopped after %zu of %zu cells\n", attempted,
                requests.size());
  }
  const ServiceCacheStats stats = service.cache_stats();
  std::printf("\n%zu requests; sample cache %llu hits / %llu misses, profile "
              "cache %llu hits / %llu misses, %llu stale-profile hits, "
              "%llu history-only fallbacks\n",
              requests.size(),
              static_cast<unsigned long long>(stats.sample_hits),
              static_cast<unsigned long long>(stats.sample_misses),
              static_cast<unsigned long long>(stats.profile_hits),
              static_cast<unsigned long long>(stats.profile_misses),
              static_cast<unsigned long long>(stats.stale_profile_hits),
              static_cast<unsigned long long>(stats.history_only_fallbacks));
  if (stats.incremental_sample_updates > 0) {
    std::printf("incremental sampling: %llu updates, %llu segments reused\n",
                static_cast<unsigned long long>(
                    stats.incremental_sample_updates),
                static_cast<unsigned long long>(
                    stats.incremental_segments_reused));
  }
  return failures == 0 ? 0 : 1;
}

// Applies deterministic seeded churn to a graph through the delta
// overlay (graph/delta.h) and writes the compacted mutated version as
// PRDG binary — the companion to `predict` for exercising incremental
// re-prediction: mutate, then predict the new file.
int CmdMutate(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string out = GetFlag(flags, "out");
  if (out.empty()) {
    std::fprintf(stderr, "mutate needs --out FILE\n");
    return 2;
  }
  auto fraction = ParseDoubleFlag(flags, "churn", 0.01);
  auto seed = ParseUint64Flag(flags, "seed", 42);
  if (!fraction.ok()) return FlagError(fraction.status());
  if (!seed.ok()) return FlagError(seed.status());

  EvolvingGraph evolving(std::move(graph).MoveValue());
  ChurnOptions churn;
  churn.fraction = *fraction;
  churn.seed = *seed;
  auto batch = GenerateChurn(evolving.base(), churn);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  for (const EdgeDelta& delta : *batch) {
    if (delta.op == EdgeDelta::Op::kInsert) {
      ++inserts;
    } else {
      ++deletes;
    }
  }
  std::printf("base:    %s, version %016llx\n",
              evolving.base().ToString().c_str(),
              static_cast<unsigned long long>(evolving.VersionFingerprint()));
  const Status applied = evolving.Apply(*batch);
  if (!applied.ok()) {
    std::fprintf(stderr, "%s\n", applied.ToString().c_str());
    return 1;
  }
  auto current = evolving.Current();
  if (!current.ok()) {
    std::fprintf(stderr, "%s\n", current.status().ToString().c_str());
    return 1;
  }
  const Status written = WriteBinaryGraphFile(**current, out);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("churn:   %llu inserts, %llu deletes (fraction %g, seed %llu)\n",
              static_cast<unsigned long long>(inserts),
              static_cast<unsigned long long>(deletes), *fraction,
              static_cast<unsigned long long>(*seed));
  std::printf("mutated: %s, version %016llx -> %s\n",
              (*current)->ToString().c_str(),
              static_cast<unsigned long long>(evolving.VersionFingerprint()),
              out.c_str());
  return 0;
}

int CmdBound(const Flags& flags) {
  auto epsilon = ParseDoubleFlag(flags, "epsilon", 0.001);
  auto damping = ParseDoubleFlag(flags, "damping", 0.85);
  if (!epsilon.ok()) return FlagError(epsilon.status());
  if (!damping.ok()) return FlagError(damping.status());
  auto bound = PageRankIterationUpperBound(*epsilon, *damping);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("Langville-Meyer PageRank bound (eps=%g, d=%g): %.1f iterations\n",
              *epsilon, *damping, *bound);
  return 0;
}

// ------------------------------------------------------- cluster what-if

int CmdScenarios() {
  std::printf("%-18s %8s %6s %10s %-10s %s\n", "name", "workers", "steps",
              "memory", "partition", "description");
  for (const bsp::ClusterScenario& s : bsp::BuiltinScenarios()) {
    std::printf("%-18s %8u %6d %10s %-10s %s\n", s.name.c_str(), s.num_workers,
                s.max_supersteps, FormatBytes(s.memory_budget_bytes).c_str(),
                PartitionStrategyName(s.partition), s.description.c_str());
  }
  return 0;
}

// Predicts one (algorithm, dataset) across cluster scenarios via the
// caching service (the sample is drawn once and shared) and recommends
// the cheapest deployment, optionally subject to an SLA on the
// predicted superstep phase — the phase PREDIcT predicts (§2.2) and the
// one that differs across deployments. "Cheapest" is worker-seconds:
// predicted superstep seconds x workers, the cluster resources the
// job's iterative phase would occupy.
int CmdWhatIf(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string algorithm = GetFlag(flags, "algorithm");
  auto config = ParseConfigPairs(flags.config_pairs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  std::vector<bsp::ClusterScenario> scenarios;
  const std::string names = GetFlag(flags, "scenarios", "all");
  if (names == "all") {
    scenarios = bsp::BuiltinScenarios();
  } else {
    for (const std::string& name : SplitString(names, ',')) {
      auto scenario = bsp::FindScenario(name);
      if (!scenario.ok()) {
        std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
        return 2;
      }
      scenarios.push_back(std::move(scenario).MoveValue());
    }
  }

  PredictionServiceOptions options;
  const Status sampler_flags =
      ParseSamplerFlags(flags, &options.predictor.sampler);
  auto threads = ParseIntegerFlag(flags, "threads", -1, -1, 4096);
  auto sla = ParseDoubleFlag(flags, "sla", 0.0);
  auto confidence = ParseDoubleFlag(flags, "confidence", 0.5);
  if (!sampler_flags.ok()) return FlagError(sampler_flags);
  if (!threads.ok()) return FlagError(threads.status());
  if (!sla.ok()) return FlagError(sla.status());
  if (!confidence.ok()) return FlagError(confidence.status());
  if (*confidence < 0.0 || *confidence >= 1.0) {
    return FlagError(Status::InvalidArgument(
        "--confidence must be in [0, 1), got " + std::to_string(*confidence)));
  }
  options.predictor.engine.num_threads = 0;
  options.num_threads = static_cast<int>(*threads);

  PredictionService service(options);
  PredictionRequest request;
  request.algorithm = algorithm;
  request.graph = &graph.value();
  request.dataset = GetFlag(flags, "dataset", "input");
  request.overrides = *config;

  const auto results = service.PredictScenarios(request, scenarios);

  std::printf("%s on %s across %zu scenarios (ratio %.3f)\n\n",
              algorithm.c_str(), graph->ToString().c_str(), scenarios.size(),
              options.predictor.sampler.sampling_ratio);
  std::printf("%-18s %8s %6s %14s %14s %14s %s\n", "scenario", "workers",
              "iters", "predicted", "at-conf", "worker-sec",
              *sla > 0 ? "SLA" : "");
  int best = -1;
  double best_cost = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    const bsp::ClusterScenario& scenario = scenarios[i];
    if (!results[i].ok()) {
      std::printf("%-18s %8u  %s\n", scenario.name.c_str(),
                  scenario.num_workers,
                  results[i].status().ToString().c_str());
      continue;
    }
    const PredictionReport& report = *results[i];
    // The SLA check targets the superstep phase — the phase PREDIcT
    // predicts (§2.2) and the one that differs across deployments. At
    // --confidence above 0.5 the check uses the bootstrap quantile,
    // which is never below the point estimate: a deployment admitted at
    // high confidence is always admitted by the point-estimate check.
    const double seconds = report.predicted_superstep_seconds;
    const double bound = report.distribution.PredictedAtConfidence(*confidence);
    const double worker_seconds = seconds * scenario.num_workers;
    const bool meets_sla = *sla <= 0.0 || bound <= *sla;
    std::printf("%-18s %8u %6d %14s %14s %14.0f %s\n", scenario.name.c_str(),
                scenario.num_workers, report.predicted_iterations,
                FormatSeconds(seconds).c_str(), FormatSeconds(bound).c_str(),
                worker_seconds, *sla > 0 ? (meets_sla ? "ok" : "MISS") : "");
    if (meets_sla && (best < 0 || worker_seconds < best_cost)) {
      best = static_cast<int>(i);
      best_cost = worker_seconds;
    }
  }
  const ServiceCacheStats stats = service.cache_stats();
  std::printf("\nsample cache %llu hits / %llu misses (one sample shared "
              "across scenarios)\n",
              static_cast<unsigned long long>(stats.sample_hits),
              static_cast<unsigned long long>(stats.sample_misses));
  if (best >= 0) {
    std::printf("cheapest%s: %s (%.0f worker-seconds)\n",
                *sla > 0 ? " meeting SLA" : "", scenarios[best].name.c_str(),
                best_cost);
  } else {
    std::printf("no scenario%s produced a prediction\n",
                *sla > 0 ? " meets the SLA or" : "");
    return 1;
  }
  return 0;
}

// ------------------------------------------------------- history inspection

// Summarizes a history CSV from the model zoo's point of view: how many
// rows each algorithm has, how many distinct worker configurations they
// span, how spread out the observed runtimes are, and which zoo tier
// that density qualifies the algorithm for (models::TierForConfigs).
int CmdHistory(const Flags& flags) {
  const std::string file = GetFlag(flags, "file");
  if (file.empty()) {
    std::fprintf(stderr, "history needs --file FILE\n");
    return 2;
  }
  auto loaded = LoadHistoryFile(file);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const HistoryStore store = std::move(loaded).MoveValue();
  const std::string only_algorithm = GetFlag(flags, "algorithm");

  const std::vector<RunProfile> profiles = store.profiles();
  std::map<std::string, std::vector<const RunProfile*>> by_algorithm;
  for (const RunProfile& profile : profiles) {
    if (!only_algorithm.empty() && profile.algorithm != only_algorithm) {
      continue;
    }
    by_algorithm[profile.algorithm].push_back(&profile);
  }
  if (by_algorithm.empty()) {
    std::printf("%s: no matching profiles\n", file.c_str());
    return only_algorithm.empty() ? 0 : 1;
  }

  if (flags.values.count("list") != 0) {
    std::printf("%-22s %-10s %12s %12s %8s %6s %12s\n", "algorithm", "dataset",
                "vertices", "edges", "workers", "iters", "runtime");
    for (const auto& [algorithm, profs] : by_algorithm) {
      for (const RunProfile* profile : profs) {
        std::printf("%-22s %-10s %12llu %12llu %8u %6d %12s\n",
                    algorithm.c_str(), profile->dataset.c_str(),
                    static_cast<unsigned long long>(profile->num_vertices),
                    static_cast<unsigned long long>(profile->num_edges),
                    profile->num_workers, profile->num_iterations(),
                    FormatSeconds(profile->total_superstep_seconds()).c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("%-22s %8s %6s %8s %12s %12s %s\n", "algorithm", "profiles",
              "rows", "configs", "mean/iter", "spread", "zoo tier");
  const models::ModelZooOptions zoo;
  for (const auto& [algorithm, profs] : by_algorithm) {
    size_t rows = 0;
    double sum = 0.0;
    std::set<uint32_t> configs;
    for (const RunProfile* profile : profs) {
      configs.insert(profile->num_workers);
      for (const IterationProfile& it : profile->iterations) {
        ++rows;
        sum += it.runtime_seconds;
      }
    }
    const double mean = rows > 0 ? sum / static_cast<double>(rows) : 0.0;
    // Residual spread around the per-algorithm mean: the runtime stddev,
    // a preview of how wide this algorithm's bootstrap intervals will be.
    double var = 0.0;
    for (const RunProfile* profile : profs) {
      for (const IterationProfile& it : profile->iterations) {
        const double d = it.runtime_seconds - mean;
        var += d * d;
      }
    }
    const double spread =
        rows > 1 ? std::sqrt(var / static_cast<double>(rows - 1)) : 0.0;
    const models::ModelTier tier =
        models::TierForConfigs(static_cast<int>(configs.size()), zoo);
    std::printf("%-22s %8zu %6zu %8zu %12s %12s %s\n", algorithm.c_str(),
                profs.size(), rows, configs.size(),
                FormatSeconds(mean).c_str(), FormatSeconds(spread).c_str(),
                models::ModelTierName(tier));
  }

  const std::string export_file = GetFlag(flags, "export");
  if (!export_file.empty()) {
    // Round-trips through the current format, upgrading legacy files
    // (without the num_workers column) in place.
    const Status saved = store.SaveToFile(export_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("\nexported %zu profiles to %s\n", store.size(),
                export_file.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: predict_cli <command> [flags]\n"
      "commands:\n"
      "  datasets   list built-in datasets\n"
      "  describe   (--dataset N | --graph F) [--scale S]\n"
      "  sample     (--dataset N | --graph F) [--ratio R] [--method BRJ|RJ|MHRW|FF]\n"
      "  run        --algorithm A (--dataset N | --graph F) [--config k=v]...\n"
      "  predict    --algorithm A (--dataset N | --graph F) [--ratio R]\n"
      "             [--config k=v]... [--history F] [--verify] [--save-history F]\n"
      "  batch      --algorithms A,B,... --datasets N1,N2,... [--ratio R]\n"
      "             [--threads T] [--workers N] [--scale S] [--history F]\n"
      "             [--fail-fast]\n"
      "  mutate     (--dataset N | --graph F) --out FILE [--churn FRACTION]\n"
      "             [--seed N]   apply seeded edge churn, write PRDG binary\n"
      "robustness flags (predict/batch): [--failpoints name=spec;...]\n"
      "             [--retries N] [--deadline S] [--degraded]\n"
      "  scenarios  list built-in cluster scenarios\n"
      "  whatif     --algorithm A (--dataset N | --graph F)\n"
      "             [--scenarios S1,S2,...|all] [--sla SECONDS]\n"
      "             [--confidence C] [--ratio R]\n"
      "  history    --file F [--algorithm A] [--list] [--export F2]\n"
      "  bound      --epsilon E [--damping D]\n"
      "engine flags (run/predict/batch): [--scenario NAME] [--workers N]\n"
      "             [--partition hash|range|edge] [--path adaptive|sparse|dense]\n"
      "             [--dense-threshold X]\n"
      "algorithms:");
  for (const auto& name : RegisteredAlgorithmNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (!flags.ok) {
    std::fprintf(stderr, "%s\n", flags.error.c_str());
    return 2;
  }
  if (command == "datasets") return CmdDatasets();
  if (command == "describe") return CmdDescribe(flags);
  if (command == "sample") return CmdSample(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "predict") return CmdPredict(flags);
  if (command == "batch") return CmdBatch(flags);
  if (command == "mutate") return CmdMutate(flags);
  if (command == "scenarios") return CmdScenarios();
  if (command == "whatif") return CmdWhatIf(flags);
  if (command == "history") return CmdHistory(flags);
  if (command == "bound") return CmdBound(flags);
  return Usage();
}
