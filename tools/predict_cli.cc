// predict_cli — command-line driver for the PREDIcT library.
//
//   predict_cli datasets
//   predict_cli describe  (--dataset NAME | --graph FILE) [--scale S]
//                         [--threads T]
//   predict_cli sample    (--dataset NAME | --graph FILE) [--ratio R]
//                         [--method BRJ|RJ|MHRW|FF] [--seed N] [--threads T]
//   predict_cli run       --algorithm A (--dataset NAME | --graph FILE)
//                         [--config k=v]... [--workers N]
//   predict_cli predict   --algorithm A (--dataset NAME | --graph FILE)
//                         [--ratio R] [--config k=v]... [--workers N]
//                         [--history FILE] [--save-history FILE]
//                         [--verify]
//   predict_cli batch     --algorithms A,B,... --datasets N1,N2,...
//                         [--ratio R] [--method BRJ|RJ|MHRW|FF] [--seed N]
//                         [--scale S] [--workers N] [--threads T]
//                         [--history FILE]
//   predict_cli bound     --epsilon E [--damping D]
//
// Graph files: edge-list text ("src dst [weight]") or PRDG binary.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/runner.h"
#include "bsp/thread_pool.h"
#include "common/strings.h"
#include "core/bounds.h"
#include "core/history.h"
#include "core/predictor.h"
#include "datasets/datasets.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "sampling/quality.h"
#include "service/prediction_service.h"

namespace {

using namespace predict;

// ------------------------------------------------------------ flag parsing

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> config_pairs;  // repeated --config k=v
  bool ok = true;
  std::string error;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.ok = false;
      flags.error = "unexpected argument '" + arg + "'";
      return flags;
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      value = argv[++i];
    } else if (arg != "verify") {
      flags.ok = false;
      flags.error = "flag --" + arg + " needs a value";
      return flags;
    }
    if (arg == "config") {
      flags.config_pairs.push_back(value);
    } else {
      flags.values[arg] = value;
    }
  }
  return flags;
}

std::string GetFlag(const Flags& flags, const std::string& name,
                    const std::string& fallback = "") {
  const auto it = flags.values.find(name);
  return it == flags.values.end() ? fallback : it->second;
}

Result<AlgorithmConfig> ParseConfigPairs(const std::vector<std::string>& pairs) {
  AlgorithmConfig config;
  for (const std::string& pair : pairs) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--config expects k=v, got '" + pair + "'");
    }
    config[pair.substr(0, eq)] = std::atof(pair.c_str() + eq + 1);
  }
  return config;
}

// ------------------------------------------------------------- graph input

Result<Graph> LoadInputGraph(const Flags& flags) {
  const std::string dataset = GetFlag(flags, "dataset");
  const std::string file = GetFlag(flags, "graph");
  const double scale = std::atof(GetFlag(flags, "scale", "1.0").c_str());
  if (!dataset.empty() && !file.empty()) {
    return Status::InvalidArgument("pass either --dataset or --graph, not both");
  }
  if (!dataset.empty()) return MakeDataset(dataset, scale);
  if (!file.empty()) {
    // Sniff the PRDG magic; fall back to edge-list text.
    FILE* f = std::fopen(file.c_str(), "rb");
    if (f != nullptr) {
      char magic[4] = {0};
      const size_t got = std::fread(magic, 1, 4, f);
      std::fclose(f);
      if (got == 4 && std::memcmp(magic, "PRDG", 4) == 0) {
        return ReadBinaryGraphFile(file);
      }
    }
    return ReadEdgeListFile(file);
  }
  return Status::InvalidArgument("need --dataset NAME or --graph FILE");
}

SamplerKind ParseSamplerKind(const std::string& name) {
  if (name == "RJ") return SamplerKind::kRandomJump;
  if (name == "MHRW") return SamplerKind::kMetropolisHastingsRW;
  if (name == "FF") return SamplerKind::kForestFire;
  return SamplerKind::kBiasedRandomJump;
}

bsp::EngineOptions EngineFromFlags(const Flags& flags) {
  bsp::EngineOptions engine = PaperClusterOptions();
  const std::string workers = GetFlag(flags, "workers");
  if (!workers.empty()) engine.num_workers = std::atoi(workers.c_str());
  return engine;
}

// --------------------------------------------------------------- commands

int CmdDatasets() {
  std::printf("%-6s %-10s %-12s %-11s %s\n", "name", "#nodes", "~#edges",
              "scale-free", "description");
  for (const DatasetInfo& info : PaperDatasets()) {
    std::printf("%-6s %-10u %-12llu %-11s %s\n", info.name.c_str(),
                info.num_vertices,
                static_cast<unsigned long long>(info.approx_edges),
                info.scale_free ? "yes" : "no", info.description.c_str());
  }
  return 0;
}

// Stats pool for describe/sample: --threads T fans the BFS/clustering
// estimates out over T host threads (0 = inline; results are identical
// either way per the stats determinism contract).
std::unique_ptr<bsp::ThreadPool> StatsPool(const Flags& flags) {
  const int threads = std::atoi(GetFlag(flags, "threads", "0").c_str());
  if (threads <= 0) return nullptr;
  return std::make_unique<bsp::ThreadPool>(static_cast<uint32_t>(threads));
}

int CmdDescribe(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<bsp::ThreadPool> pool = StatsPool(flags);
  std::printf("%s\n", DescribeGraph(*graph).c_str());
  std::printf("effective diameter (90%%): %.2f\n",
              EffectiveDiameter(*graph, 0.9, 32, 42, pool.get()));
  std::printf("clustering coefficient:   %.4f\n",
              AverageClusteringCoefficient(*graph, 1000, 42, pool.get()));
  std::printf("weakly connected comps:   %llu\n",
              static_cast<unsigned long long>(
                  CountWeaklyConnectedComponents(*graph)));
  return 0;
}

int CmdSample(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  SamplerOptions options;
  options.kind = ParseSamplerKind(GetFlag(flags, "method", "BRJ"));
  options.sampling_ratio = std::atof(GetFlag(flags, "ratio", "0.1").c_str());
  options.seed = std::strtoull(GetFlag(flags, "seed", "42").c_str(), nullptr, 10);
  auto sample = SampleGraph(*graph, options);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }
  std::printf("method %s, ratio %.3f: sample %s\n",
              SamplerKindName(options.kind), sample->realized_ratio,
              sample->subgraph.ToString().c_str());
  const std::unique_ptr<bsp::ThreadPool> pool = StatsPool(flags);
  const SampleQualityReport quality =
      EvaluateSampleQuality(*graph, *sample, 32, 42, pool.get());
  std::printf("quality: %s\n", quality.ToString().c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string algorithm = GetFlag(flags, "algorithm");
  auto config = ParseConfigPairs(flags.config_pairs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  RunOptions options;
  options.engine = EngineFromFlags(flags);
  options.config_overrides = *config;
  auto result = RunAlgorithmByName(algorithm, *graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const bsp::RunStats& stats = result->stats;
  std::printf("%s on %s: %d supersteps (%s)\n", algorithm.c_str(),
              graph->ToString().c_str(), stats.num_supersteps(),
              bsp::HaltReasonName(stats.halt_reason));
  std::printf("phases: setup %s, read %s, supersteps %s, write %s\n",
              FormatSeconds(stats.setup_seconds).c_str(),
              FormatSeconds(stats.read_seconds).c_str(),
              FormatSeconds(stats.superstep_phase_seconds).c_str(),
              FormatSeconds(stats.write_seconds).c_str());
  std::printf("total %s simulated (%s wall), peak memory %s\n",
              FormatSeconds(stats.total_seconds).c_str(),
              FormatSeconds(stats.wall_seconds).c_str(),
              FormatBytes(stats.peak_memory_bytes).c_str());
  for (const auto& step : stats.supersteps) {
    const bsp::WorkerCounters totals = step.Totals();
    std::printf("  superstep %2d: %s, %llu msgs (%s), %llu active\n",
                step.superstep, FormatSeconds(step.simulated_seconds).c_str(),
                static_cast<unsigned long long>(totals.total_messages()),
                FormatBytes(totals.total_message_bytes()).c_str(),
                static_cast<unsigned long long>(totals.active_vertices));
  }
  return 0;
}

int CmdPredict(const Flags& flags) {
  auto graph = LoadInputGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string algorithm = GetFlag(flags, "algorithm");
  auto config = ParseConfigPairs(flags.config_pairs);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  PredictorOptions options;
  options.sampler.kind = ParseSamplerKind(GetFlag(flags, "method", "BRJ"));
  options.sampler.sampling_ratio =
      std::atof(GetFlag(flags, "ratio", "0.1").c_str());
  options.sampler.seed =
      std::strtoull(GetFlag(flags, "seed", "42").c_str(), nullptr, 10);
  options.engine = EngineFromFlags(flags);

  std::unique_ptr<HistoryStore> history;
  const std::string history_file = GetFlag(flags, "history");
  if (!history_file.empty()) {
    auto loaded = HistoryStore::LoadFromFile(history_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    history = std::make_unique<HistoryStore>(std::move(loaded).MoveValue());
    options.history = history.get();
    std::printf("loaded %zu historical profiles from %s\n", history->size(),
                history_file.c_str());
  }

  Predictor predictor(options);
  const std::string dataset_label = GetFlag(flags, "dataset", "input");
  auto report =
      predictor.PredictRuntime(algorithm, *graph, dataset_label, *config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("PREDIcT %s on %s (%s sample, ratio %.3f)\n", algorithm.c_str(),
              graph->ToString().c_str(), SamplerKindName(options.sampler.kind),
              report->realized_sampling_ratio);
  std::printf("  transform:            %s\n",
              report->transform_description.c_str());
  std::printf("  predicted iterations: %d\n", report->predicted_iterations);
  std::printf("  predicted runtime:    %s (superstep phase)\n",
              FormatSeconds(report->predicted_superstep_seconds).c_str());
  std::printf("  cost model:           %s\n",
              report->cost_model.ToString().c_str());
  std::printf("  sample-run overhead:  %s simulated, %s wall\n",
              FormatSeconds(report->sample_total_seconds).c_str(),
              FormatSeconds(report->sample_wall_seconds).c_str());

  if (flags.values.count("verify") != 0) {
    RunOptions run_options;
    run_options.engine = options.engine;
    run_options.config_overrides = *config;
    auto actual = RunAlgorithmByName(algorithm, *graph, run_options);
    if (!actual.ok()) {
      std::fprintf(stderr, "verification run failed: %s\n",
                   actual.status().ToString().c_str());
      return 1;
    }
    const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
    std::printf("verification: actual %d iterations, %s; errors: iterations "
                "%+.1f%%, runtime %+.1f%%\n",
                eval.actual_iterations,
                FormatSeconds(eval.actual_superstep_seconds).c_str(),
                100.0 * eval.iterations_error, 100.0 * eval.runtime_error);

    const std::string save = GetFlag(flags, "save-history");
    if (!save.empty()) {
      HistoryStore store;
      if (!history_file.empty() && history != nullptr) store = *history;
      store.Add(ProfileFromRunStats(algorithm, dataset_label,
                                    graph->num_vertices(), graph->num_edges(),
                                    actual->stats));
      const Status saved = store.SaveToFile(save);
      if (!saved.ok()) {
        std::fprintf(stderr, "%s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("saved %zu profiles to %s\n", store.size(), save.c_str());
    }
  }
  return 0;
}

// Fans (algorithm x dataset) what-if requests through the caching
// PredictionService and prints one table row per request.
int CmdBatch(const Flags& flags) {
  const std::vector<std::string> algorithms =
      SplitString(GetFlag(flags, "algorithms"), ',');
  const std::vector<std::string> dataset_names =
      SplitString(GetFlag(flags, "datasets"), ',');
  if (algorithms.empty() || algorithms[0].empty() || dataset_names.empty() ||
      dataset_names[0].empty()) {
    std::fprintf(stderr,
                 "batch needs --algorithms A,B,... and --datasets N1,N2,...\n");
    return 2;
  }
  const double scale = std::atof(GetFlag(flags, "scale", "1.0").c_str());

  // Graphs must outlive the requests (the service borrows them).
  std::vector<Graph> graphs;
  graphs.reserve(dataset_names.size());
  for (const std::string& name : dataset_names) {
    auto graph = MakeDataset(name, scale);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::move(graph).MoveValue());
  }

  PredictionServiceOptions options;
  options.predictor.sampler.kind =
      ParseSamplerKind(GetFlag(flags, "method", "BRJ"));
  options.predictor.sampler.sampling_ratio =
      std::atof(GetFlag(flags, "ratio", "0.1").c_str());
  options.predictor.sampler.seed =
      std::strtoull(GetFlag(flags, "seed", "42").c_str(), nullptr, 10);
  options.predictor.engine = EngineFromFlags(flags);
  // Serving configuration: parallelism comes from the batch fan-out, not
  // from per-run simulation threads.
  options.predictor.engine.num_threads = 0;
  options.num_threads = std::atoi(GetFlag(flags, "threads", "-1").c_str());

  std::unique_ptr<HistoryStore> history;
  const std::string history_file = GetFlag(flags, "history");
  if (!history_file.empty()) {
    auto loaded = HistoryStore::LoadFromFile(history_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    history = std::make_unique<HistoryStore>(std::move(loaded).MoveValue());
    options.predictor.history = history.get();
  }

  PredictionService service(options);
  std::vector<PredictionRequest> requests;
  for (size_t d = 0; d < graphs.size(); ++d) {
    for (const std::string& algorithm : algorithms) {
      PredictionRequest request;
      request.algorithm = algorithm;
      request.graph = &graphs[d];
      request.dataset = dataset_names[d];
      requests.push_back(std::move(request));
    }
  }

  const auto results = service.PredictBatch(requests);

  std::printf("%-22s %-8s %6s %14s %8s %8s\n", "algorithm", "dataset", "iters",
              "predicted", "R2", "ratio");
  int failures = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-22s %-8s  %s\n", requests[i].algorithm.c_str(),
                  requests[i].dataset.c_str(),
                  results[i].status().ToString().c_str());
      ++failures;
      continue;
    }
    const PredictionReport& report = *results[i];
    std::printf("%-22s %-8s %6d %14s %8.3f %8.3f\n",
                requests[i].algorithm.c_str(), requests[i].dataset.c_str(),
                report.predicted_iterations,
                FormatSeconds(report.predicted_superstep_seconds).c_str(),
                report.cost_model.r_squared(), report.realized_sampling_ratio);
  }
  const ServiceCacheStats stats = service.cache_stats();
  std::printf("\n%zu requests; sample cache %llu hits / %llu misses, profile "
              "cache %llu hits / %llu misses\n",
              requests.size(),
              static_cast<unsigned long long>(stats.sample_hits),
              static_cast<unsigned long long>(stats.sample_misses),
              static_cast<unsigned long long>(stats.profile_hits),
              static_cast<unsigned long long>(stats.profile_misses));
  return failures == 0 ? 0 : 1;
}

int CmdBound(const Flags& flags) {
  const double epsilon = std::atof(GetFlag(flags, "epsilon", "0.001").c_str());
  const double damping = std::atof(GetFlag(flags, "damping", "0.85").c_str());
  auto bound = PageRankIterationUpperBound(epsilon, damping);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("Langville-Meyer PageRank bound (eps=%g, d=%g): %.1f iterations\n",
              epsilon, damping, *bound);
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: predict_cli <command> [flags]\n"
      "commands:\n"
      "  datasets   list built-in datasets\n"
      "  describe   (--dataset N | --graph F) [--scale S]\n"
      "  sample     (--dataset N | --graph F) [--ratio R] [--method BRJ|RJ|MHRW|FF]\n"
      "  run        --algorithm A (--dataset N | --graph F) [--config k=v]...\n"
      "  predict    --algorithm A (--dataset N | --graph F) [--ratio R]\n"
      "             [--config k=v]... [--history F] [--verify] [--save-history F]\n"
      "  batch      --algorithms A,B,... --datasets N1,N2,... [--ratio R]\n"
      "             [--threads T] [--workers N] [--scale S] [--history F]\n"
      "  bound      --epsilon E [--damping D]\n"
      "algorithms:");
  for (const auto& name : RegisteredAlgorithmNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (!flags.ok) {
    std::fprintf(stderr, "%s\n", flags.error.c_str());
    return 2;
  }
  if (command == "datasets") return CmdDatasets();
  if (command == "describe") return CmdDescribe(flags);
  if (command == "sample") return CmdSample(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "predict") return CmdPredict(flags);
  if (command == "batch") return CmdBatch(flags);
  if (command == "bound") return CmdBound(flags);
  return Usage();
}
