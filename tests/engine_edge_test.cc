// Edge-case and failure-injection tests for the BSP engine and thread
// pool: self-messages, degenerate partitionings, aggregator identities,
// message-burst OOM, weighted-graph contexts, and noise injection.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "bsp/engine.h"
#include "bsp/thread_pool.h"
#include "graph/generators.h"

namespace predict {
namespace {

using bsp::Engine;
using bsp::EngineOptions;
using bsp::VertexContext;

EngineOptions Inline(uint32_t workers) {
  EngineOptions options;
  options.num_workers = workers;
  options.num_threads = 0;
  options.cost_profile.noise_sigma = 0.0;
  options.cost_profile.setup_seconds = 0.0;
  options.cost_profile.read_bytes_per_second = 0.0;
  options.cost_profile.write_bytes_per_second = 0.0;
  return options;
}

// Sends itself `rounds` messages (self-loop messaging is legal and local).
class SelfPingProgram : public bsp::VertexProgram<int, int> {
 public:
  explicit SelfPingProgram(int rounds) : rounds_(rounds) {}
  int InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int, int>* ctx,
               std::span<const int> messages) override {
    for (const int m : messages) ctx->value() += m;
    if (ctx->superstep() < rounds_) ctx->SendMessage(ctx->id(), 1);
    ctx->VoteToHalt();
  }

 private:
  int rounds_;
};

TEST(EngineEdgeTest, SelfMessagesAreLocalAndDelivered) {
  GraphBuilder b(1);
  const Graph g = b.Build().MoveValue();
  Engine<int, int> engine(Inline(1));
  SelfPingProgram program(3);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(engine.vertex_values()[0], 3);
  // All traffic stayed on worker 0.
  for (const auto& step : stats->supersteps) {
    EXPECT_EQ(step.per_worker[0].remote_messages, 0u);
  }
}

TEST(EngineEdgeTest, MoreWorkersThanVertices) {
  const Graph g = GenerateChain(3).MoveValue();
  Engine<int, int> engine(Inline(10));
  SelfPingProgram program(1);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  uint64_t assigned = 0;
  for (const auto& worker : stats->supersteps[0].per_worker) {
    assigned += worker.total_vertices;
  }
  EXPECT_EQ(assigned, 3u);
}

TEST(EngineEdgeTest, SingleWorkerEverythingLocal) {
  const Graph g = GenerateComplete(6).MoveValue();
  Engine<int, int> engine(Inline(1));

  class Broadcast : public bsp::VertexProgram<int, int> {
   public:
    int InitialValue(VertexId, const Graph&) const override { return 0; }
    void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
      if (ctx->superstep() == 0) ctx->SendMessageToAllNeighbors(1);
      ctx->VoteToHalt();
    }
  } program;

  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps[0].per_worker[0].local_messages, 30u);
  EXPECT_EQ(stats->supersteps[0].per_worker[0].remote_messages, 0u);
}

TEST(EngineEdgeTest, AggregatorIdentityWhenNobodyContributes) {
  class Silent : public bsp::VertexProgram<int, int> {
   public:
    void RegisterAggregators(bsp::AggregatorRegistry* registry) override {
      sum_ = registry->Register("s", bsp::AggregatorOp::kSum);
      min_ = registry->Register("m", bsp::AggregatorOp::kMin);
      max_ = registry->Register("x", bsp::AggregatorOp::kMax);
    }
    int InitialValue(VertexId, const Graph&) const override { return 0; }
    void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
      ctx->VoteToHalt();
    }
    bsp::AggregatorId sum_ = 0, min_ = 0, max_ = 0;
  } program;

  const Graph g = GenerateChain(3).MoveValue();
  Engine<int, int> engine(Inline(2));
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  const auto& aggregates = stats->supersteps[0].aggregates;
  EXPECT_DOUBLE_EQ(aggregates.at("s"), 0.0);
  EXPECT_TRUE(std::isinf(aggregates.at("m")));
  EXPECT_GT(aggregates.at("m"), 0.0);
  EXPECT_TRUE(std::isinf(aggregates.at("x")));
  EXPECT_LT(aggregates.at("x"), 0.0);
}

TEST(EngineEdgeTest, WeightedGraphExposedToContext) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.5f);
  const Graph g = b.Build().MoveValue();

  class WeightReader : public bsp::VertexProgram<double, int> {
   public:
    double InitialValue(VertexId, const Graph&) const override { return 0.0; }
    void Compute(VertexContext<double, int>* ctx, std::span<const int>) override {
      if (ctx->graph_is_weighted() && ctx->out_degree() > 0) {
        ctx->value() = ctx->out_weights()[0];
      }
      ctx->VoteToHalt();
    }
  } program;

  Engine<double, int> engine(Inline(1));
  ASSERT_TRUE(engine.Run(g, &program).ok());
  EXPECT_DOUBLE_EQ(engine.vertex_values()[0], 2.5);
}

TEST(EngineEdgeTest, MessagesNotRedelivered) {
  // A message consumed at superstep 1 must not appear again at 2.
  class CountMessages : public bsp::VertexProgram<int, int> {
   public:
    int InitialValue(VertexId, const Graph&) const override { return 0; }
    void Compute(VertexContext<int, int>* ctx,
                 std::span<const int> messages) override {
      ctx->value() += static_cast<int>(messages.size());
      if (ctx->superstep() == 0 && ctx->id() == 0) {
        ctx->SendMessage(1, 9);
      }
      if (ctx->superstep() < 3) return;  // stay active a few supersteps
      ctx->VoteToHalt();
    }
  } program;

  const Graph g = GenerateChain(2).MoveValue();
  Engine<int, int> engine(Inline(1));
  ASSERT_TRUE(engine.Run(g, &program).ok());
  EXPECT_EQ(engine.vertex_values()[1], 1);  // exactly one delivery
}

TEST(EngineEdgeTest, MessageBurstTripsMemoryBudget) {
  // Vertex state is tiny; the superstep-0 all-to-all burst is what blows
  // the budget (the §5 semi-clustering-on-Twitter failure mode).
  class Broadcast : public bsp::VertexProgram<int, int> {
   public:
    int InitialValue(VertexId, const Graph&) const override { return 0; }
    void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
      if (ctx->superstep() == 0) ctx->SendMessageToAllNeighbors(1);
      ctx->VoteToHalt();
    }
    uint64_t MessageBytes(const int&) const override { return 1000; }
  } program;

  const Graph g = GenerateComplete(40).MoveValue();  // 1560 edges
  EngineOptions options = Inline(4);
  options.memory_budget_bytes = 1 << 20;  // 1 MB << 1560 * ~1KB
  Engine<int, int> engine(options);
  EXPECT_TRUE(engine.Run(g, &program).status().IsResourceExhausted());
  options.memory_budget_bytes = 16 << 20;
  Engine<int, int> engine2(options);
  EXPECT_TRUE(engine2.Run(g, &program).ok());
}

TEST(EngineEdgeTest, GetAggregateAtSuperstepZeroIsIdentity) {
  class Check : public bsp::VertexProgram<double, int> {
   public:
    void RegisterAggregators(bsp::AggregatorRegistry* registry) override {
      sum_ = registry->Register("s", bsp::AggregatorOp::kSum);
    }
    double InitialValue(VertexId, const Graph&) const override { return -1.0; }
    void Compute(VertexContext<double, int>* ctx, std::span<const int>) override {
      if (ctx->superstep() == 0) ctx->value() = ctx->GetAggregate(sum_);
      ctx->Aggregate(sum_, 1.0);
      ctx->VoteToHalt();
    }
    bsp::AggregatorId sum_ = 0;
  } program;

  const Graph g = GenerateChain(4).MoveValue();
  Engine<double, int> engine(Inline(2));
  ASSERT_TRUE(engine.Run(g, &program).ok());
  for (const double v : engine.vertex_values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EngineEdgeTest, NoiseChangesSimulatedTimeOnly) {
  const Graph g = GenerateComplete(20).MoveValue();
  bsp::RunStats with_noise, without_noise;
  for (const double sigma : {0.0, 0.2}) {
    EngineOptions options = Inline(4);
    options.cost_profile.noise_sigma = sigma;
    Engine<int, int> engine(options);
    SelfPingProgram program(2);
    auto stats = engine.Run(g, &program);
    ASSERT_TRUE(stats.ok());
    (sigma == 0.0 ? without_noise : with_noise) = std::move(stats).MoveValue();
  }
  EXPECT_NE(with_noise.superstep_phase_seconds,
            without_noise.superstep_phase_seconds);
  // Counters are unaffected by the clock's noise.
  ASSERT_EQ(with_noise.num_supersteps(), without_noise.num_supersteps());
  for (int s = 0; s < with_noise.num_supersteps(); ++s) {
    EXPECT_EQ(with_noise.supersteps[s].Totals().total_messages(),
              without_noise.supersteps[s].Totals().total_messages());
  }
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, InlineModeRunsEverything) {
  bsp::ThreadPool pool(0);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](uint64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
  EXPECT_EQ(pool.num_threads(), 0u);
}

TEST(ThreadPoolTest, MultiThreadedCoversAllIndicesExactlyOnce) {
  bsp::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](uint64_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  bsp::ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(17, [&](uint64_t) { total++; });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  bsp::ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&](uint64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace predict
