// Tests for core/: regression + forward selection, transform rules,
// extrapolation, the cost model, the history store, and analytical
// bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "common/rng.h"

#include "algorithms/pagerank.h"
#include "algorithms/semiclustering.h"
#include "algorithms/topk_ranking.h"
#include "core/bounds.h"
#include "core/cost_model.h"
#include "core/extrapolator.h"
#include "core/features.h"
#include "core/history.h"
#include "core/regression.h"
#include "core/transform.h"
#include "graph/generators.h"

namespace predict {
namespace {

// -------------------------------------------------------------- regression

TEST(RegressionTest, ExactRecoveryOfLinearData) {
  // y = 3*x0 - 2*x2 + 5, no noise.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    const double x0 = i, x1 = (i * 7) % 13, x2 = (i * 3) % 11;
    rows.push_back({x0, x1, x2});
    y.push_back(3.0 * x0 - 2.0 * x2 + 5.0);
  }
  auto model = FitOls(rows, y, {0, 1, 2});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients[0], 3.0, 1e-6);
  EXPECT_NEAR(model->coefficients[1], 0.0, 1e-6);
  EXPECT_NEAR(model->coefficients[2], -2.0, 1e-6);
  EXPECT_NEAR(model->intercept, 5.0, 1e-6);
  EXPECT_NEAR(model->r_squared, 1.0, 1e-9);
}

TEST(RegressionTest, PredictUsesSelectedIndicesOnly) {
  LinearModel model;
  model.feature_indices = {2};
  model.coefficients = {10.0};
  model.intercept = 1.0;
  EXPECT_DOUBLE_EQ(model.Predict({100.0, 200.0, 3.0}), 31.0);
}

TEST(RegressionTest, HandlesBadlyScaledFeatures) {
  // Byte counts ~1e8 next to an intercept: needs column scaling.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    const double bytes = 1e8 * i;
    rows.push_back({bytes});
    y.push_back(9e-8 * bytes + 0.25);
  }
  auto model = FitOls(rows, y, {0});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients[0], 9e-8, 1e-12);
  EXPECT_NEAR(model->intercept, 0.25, 1e-6);
}

TEST(RegressionTest, CollinearFeaturesStillSolvable) {
  // x1 = 2*x0 exactly; ridge keeps the system solvable.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    rows.push_back({static_cast<double>(i), 2.0 * i});
    y.push_back(4.0 * i);
  }
  auto model = FitOls(rows, y, {0, 1});
  ASSERT_TRUE(model.ok());
  // Any split of the coefficient mass is fine; predictions must be right.
  EXPECT_NEAR(model->Predict({10.0, 20.0}), 40.0, 1e-3);
}

TEST(RegressionTest, ErrorsOnEmptyInput) {
  EXPECT_FALSE(FitOls({}, {}, {0}).ok());
  std::vector<std::vector<double>> rows = {{1.0}};
  EXPECT_FALSE(FitOls(rows, {}, {0}).ok());
  EXPECT_TRUE(FitOls(rows, {1.0}, {5}).status().IsOutOfRange());
}

TEST(RegressionTest, InterceptOnlyFitsMean) {
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {10.0, 20.0, 30.0};
  auto model = FitOls(rows, y, {});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->intercept, 20.0, 1e-9);
}

TEST(RegressionTest, ToStringShowsFeatureNames) {
  LinearModel model;
  model.feature_indices = {1};
  model.coefficients = {2.5};
  model.intercept = 0.1;
  model.r_squared = 0.9;
  const std::string s = model.ToString({"a", "RemBytes"});
  EXPECT_NE(s.find("RemBytes"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(ForwardSelectTest, PicksTheTrueFeatures) {
  // y depends on features 1 and 3 out of 5 candidates.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    std::vector<double> row(5);
    for (auto& x : row) x = rng.NextDouble() * 100.0;
    rows.push_back(row);
    y.push_back(7.0 * row[1] - 3.0 * row[3] + 2.0);
  }
  auto model = ForwardSelect(rows, y, 5);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->feature_indices.size(), 2u);
  const std::set<int> selected(model->feature_indices.begin(),
                               model->feature_indices.end());
  EXPECT_TRUE(selected.count(1));
  EXPECT_TRUE(selected.count(3));
  EXPECT_NEAR(model->r_squared, 1.0, 1e-9);
}

TEST(ForwardSelectTest, StopsAtMaxFeatures) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    std::vector<double> row(6);
    for (auto& x : row) x = rng.NextDouble();
    rows.push_back(row);
    // All six features matter a bit.
    double target = 0.0;
    for (int j = 0; j < 6; ++j) target += (j + 1) * row[j];
    y.push_back(target);
  }
  ForwardSelectionOptions options;
  options.max_features = 2;
  auto model = ForwardSelect(rows, y, 6, options);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->feature_indices.size(), 2u);
}

TEST(ForwardSelectTest, PureNoiseSelectsNothing) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 80; ++i) {
    rows.push_back({rng.NextDouble(), rng.NextDouble()});
    y.push_back(5.0);  // constant target
  }
  auto model = ForwardSelect(rows, y, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->feature_indices.empty());
  EXPECT_NEAR(model->intercept, 5.0, 1e-9);
}

TEST(RSquaredTest, PerfectAndMeanPredictions) {
  EXPECT_DOUBLE_EQ(RSquared({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_NEAR(RSquared({2, 2, 2}, {1, 2, 3}), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(RSquared({1, 2}, {1, 2, 3}), 0.0);  // size mismatch
}

// -------------------------------------------------------------- transform

TEST(TransformTest, AbsoluteAggregateScalesTau) {
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 1e-8}};
  auto sample = DefaultTransform::Instance().Apply(PageRankSpec(), config, 0.1);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), 1e-7);        // tau / sr
  EXPECT_DOUBLE_EQ(sample->at("damping"), 0.85);    // ID_Conf
}

TEST(TransformTest, RelativeRatioKeepsTau) {
  const AlgorithmConfig config =
      ResolveConfig(SemiClusteringSpec(), {}).MoveValue();
  auto sample =
      DefaultTransform::Instance().Apply(SemiClusteringSpec(), config, 0.1);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), config.at("tau"));
  EXPECT_DOUBLE_EQ(sample->at("v_max"), config.at("v_max"));
}

TEST(TransformTest, FullRatioIsIdentityEvenForAbsolute) {
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 1e-8}};
  auto sample = DefaultTransform::Instance().Apply(PageRankSpec(), config, 1.0);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), 1e-8);
}

TEST(TransformTest, RejectsBadRatio) {
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 1e-8}};
  EXPECT_FALSE(DefaultTransform::Instance().Apply(PageRankSpec(), config, 0.0).ok());
  EXPECT_FALSE(DefaultTransform::Instance().Apply(PageRankSpec(), config, 1.5).ok());
}

TEST(TransformTest, MissingConvergenceKeyIsError) {
  AlgorithmSpec spec = PageRankSpec();
  spec.convergence_keys = {"not_there"};
  const AlgorithmConfig config = {{"damping", 0.85}};
  EXPECT_TRUE(DefaultTransform::Instance()
                  .Apply(spec, config, 0.1)
                  .status()
                  .IsInvalidArgument());
}

TEST(TransformTest, IdentityTransformNeverScales) {
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 1e-8}};
  auto sample = IdentityTransform::Instance().Apply(PageRankSpec(), config, 0.1);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), 1e-8);
}

TEST(TransformTest, DescribeStringsMentionRule) {
  EXPECT_NE(DefaultTransform::Instance().Describe(PageRankSpec()).find("/ sr"),
            std::string::npos);
  EXPECT_NE(DefaultTransform::Instance()
                .Describe(SemiClusteringSpec())
                .find("tau_S = tau_G"),
            std::string::npos);
}

TEST(TransformTest, DispatcherUsesCustomWhenProvided) {
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 1e-8}};
  const IdentityTransform identity;
  auto sample = TransformConfigForSample(PageRankSpec(), config, 0.1, &identity);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), 1e-8);  // not scaled
}

// ----------------------------------------------------------- extrapolator

TEST(ExtrapolatorTest, FactorsFromGraphSizes) {
  const Graph full = GenerateComplete(20).MoveValue();    // 380 edges
  const Graph sample = GenerateComplete(10).MoveValue();  // 90 edges
  auto factors = ComputeExtrapolationFactors(full, sample);
  ASSERT_TRUE(factors.ok());
  EXPECT_DOUBLE_EQ(factors->vertex_factor, 2.0);
  EXPECT_NEAR(factors->edge_factor, 380.0 / 90.0, 1e-12);
}

TEST(ExtrapolatorTest, EmptySampleRejected) {
  const Graph full = GenerateComplete(20).MoveValue();
  GraphBuilder b(3);
  const Graph no_edges = b.Build().MoveValue();
  EXPECT_FALSE(ComputeExtrapolationFactors(full, no_edges).ok());
}

TEST(ExtrapolatorTest, VertexFeaturesScaleByEv) {
  FeatureVector features{};
  features[static_cast<int>(Feature::kActVert)] = 10.0;
  features[static_cast<int>(Feature::kTotVert)] = 20.0;
  features[static_cast<int>(Feature::kRemMsg)] = 100.0;
  features[static_cast<int>(Feature::kRemMsgSize)] = 1000.0;
  features[static_cast<int>(Feature::kAvgMsgSize)] = 10.0;
  const ExtrapolationFactors factors{3.0, 5.0};
  const FeatureVector scaled = ExtrapolateFeatures(features, factors);
  EXPECT_DOUBLE_EQ(scaled[static_cast<int>(Feature::kActVert)], 30.0);
  EXPECT_DOUBLE_EQ(scaled[static_cast<int>(Feature::kTotVert)], 60.0);
  EXPECT_DOUBLE_EQ(scaled[static_cast<int>(Feature::kRemMsg)], 500.0);
  EXPECT_DOUBLE_EQ(scaled[static_cast<int>(Feature::kRemMsgSize)], 5000.0);
  // AvgMsgSize must NOT scale (Table 1).
  EXPECT_DOUBLE_EQ(scaled[static_cast<int>(Feature::kAvgMsgSize)], 10.0);
}

TEST(ExtrapolatorTest, ProfileScalesIterationByIteration) {
  RunProfile profile;
  profile.num_vertices = 10;
  profile.num_edges = 20;
  for (int i = 0; i < 3; ++i) {
    IterationProfile it;
    it.iteration = i;
    it.critical_features[static_cast<int>(Feature::kRemMsg)] = 10.0 * (i + 1);
    it.runtime_seconds = 1.0;
    profile.iterations.push_back(it);
  }
  const RunProfile scaled = ExtrapolateProfile(profile, {2.0, 4.0});
  ASSERT_EQ(scaled.iterations.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(
        scaled.iterations[i].critical_features[static_cast<int>(Feature::kRemMsg)],
        40.0 * (i + 1));
    EXPECT_DOUBLE_EQ(scaled.iterations[i].runtime_seconds, 0.0);
  }
  EXPECT_EQ(scaled.num_vertices, 20u);
  EXPECT_EQ(scaled.num_edges, 80u);
}

// --------------------------------------------------------------- features

TEST(FeaturesTest, FromCountersMapsEveryField) {
  bsp::WorkerCounters counters;
  counters.active_vertices = 1;
  counters.total_vertices = 2;
  counters.local_messages = 3;
  counters.remote_messages = 4;
  counters.local_message_bytes = 30;
  counters.remote_message_bytes = 40;
  const FeatureVector f = FeaturesFromCounters(counters);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kActVert)], 1.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kTotVert)], 2.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kLocMsg)], 3.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kRemMsg)], 4.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kLocMsgSize)], 30.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kRemMsgSize)], 40.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kAvgMsgSize)], 10.0);
}

TEST(FeaturesTest, FeatureNamesMatchTable1) {
  EXPECT_STREQ(FeatureName(Feature::kActVert), "ActVert");
  EXPECT_STREQ(FeatureName(Feature::kRemMsgSize), "RemMsgSize");
  EXPECT_STREQ(FeatureName(Feature::kAvgMsgSize), "AvgMsgSize");
}

TEST(FeaturesTest, ProfileFromRunStatsUsesCriticalWorker) {
  bsp::RunStats stats;
  stats.static_critical_worker = 1;
  bsp::SuperstepStats step;
  step.superstep = 0;
  step.per_worker.resize(2);
  step.per_worker[0].remote_messages = 5;
  step.per_worker[1].remote_messages = 77;
  step.simulated_seconds = 2.5;
  stats.supersteps.push_back(step);
  const RunProfile profile = ProfileFromRunStats("alg", "ds", 100, 200, stats);
  ASSERT_EQ(profile.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(
      profile.iterations[0].critical_features[static_cast<int>(Feature::kRemMsg)],
      77.0);
  EXPECT_DOUBLE_EQ(profile.iterations[0].runtime_seconds, 2.5);
  EXPECT_DOUBLE_EQ(profile.total_superstep_seconds(), 2.5);
}

// -------------------------------------------------------------- cost model

std::vector<TrainingRow> SyntheticCostRows(int n, uint64_t seed) {
  // Ground truth: runtime = 2e-6*RemMsg + 1e-7*RemMsgSize + 0.25.
  std::vector<TrainingRow> rows;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    TrainingRow row;
    const double rem_msgs = rng.NextDouble() * 1e6;
    const double rem_bytes = rem_msgs * (10.0 + rng.NextDouble() * 100.0);
    row.features[static_cast<int>(Feature::kActVert)] = rng.NextDouble() * 1e4;
    row.features[static_cast<int>(Feature::kRemMsg)] = rem_msgs;
    row.features[static_cast<int>(Feature::kRemMsgSize)] = rem_bytes;
    row.runtime_seconds = 2e-6 * rem_msgs + 1e-7 * rem_bytes + 0.25;
    rows.push_back(row);
  }
  return rows;
}

TEST(CostModelTest, RecoversGroundTruthCostFactors) {
  auto model = CostModel::Train(SyntheticCostRows(100, 3));
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->r_squared(), 0.999);
  // Both true features selected, the irrelevant one not.
  const auto selected = model->selected_features();
  const std::set<Feature> set(selected.begin(), selected.end());
  EXPECT_TRUE(set.count(Feature::kRemMsg));
  EXPECT_TRUE(set.count(Feature::kRemMsgSize));
  EXPECT_FALSE(set.count(Feature::kActVert));
}

TEST(CostModelTest, PredictionExtrapolatesBeyondTrainingRange) {
  auto model = CostModel::Train(SyntheticCostRows(100, 4));
  ASSERT_TRUE(model.ok());
  FeatureVector features{};
  features[static_cast<int>(Feature::kRemMsg)] = 1e8;    // 100x training max
  features[static_cast<int>(Feature::kRemMsgSize)] = 5e9;
  const double expected = 2e-6 * 1e8 + 1e-7 * 5e9 + 0.25;
  EXPECT_NEAR(model->PredictIterationSeconds(features), expected,
              expected * 0.02);
}

TEST(CostModelTest, NegativePredictionsClampedToZero) {
  std::vector<TrainingRow> rows;
  for (int i = 1; i <= 10; ++i) {
    TrainingRow row;
    row.features[0] = i;
    row.runtime_seconds = i - 5.0;  // intercept about -5
    rows.push_back(row);
  }
  CostModelOptions options;
  options.use_feature_selection = false;
  auto model = CostModel::Train(rows, options);
  ASSERT_TRUE(model.ok());
  FeatureVector zero{};
  EXPECT_GE(model->PredictIterationSeconds(zero), 0.0);
}

TEST(CostModelTest, NoSelectionUsesAllFeatures) {
  CostModelOptions options;
  options.use_feature_selection = false;
  auto model = CostModel::Train(SyntheticCostRows(50, 5), options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->model().feature_indices.size(),
            static_cast<size_t>(kNumFeatures));
}

TEST(CostModelTest, EmptyTrainingFails) {
  EXPECT_FALSE(CostModel::Train({}).ok());
}

TEST(CostModelTest, ToStringListsSelectedFeatureNames) {
  auto model = CostModel::Train(SyntheticCostRows(100, 6));
  ASSERT_TRUE(model.ok());
  EXPECT_NE(model->ToString().find("RemMsg"), std::string::npos);
}

TEST(CostModelTest, PredictProfileOneValuePerIteration) {
  auto model = CostModel::Train(SyntheticCostRows(50, 7));
  ASSERT_TRUE(model.ok());
  RunProfile profile;
  profile.iterations.resize(4);
  EXPECT_EQ(model->PredictProfile(profile).size(), 4u);
}

// ----------------------------------------------------------------- history

RunProfile MakeProfile(const std::string& algorithm, const std::string& dataset,
                       int iterations, double base_runtime) {
  RunProfile profile;
  profile.algorithm = algorithm;
  profile.dataset = dataset;
  profile.num_vertices = 1000;
  profile.num_edges = 5000;
  for (int i = 0; i < iterations; ++i) {
    IterationProfile it;
    it.iteration = i;
    it.critical_features[static_cast<int>(Feature::kRemMsg)] = 100.0 * (i + 1);
    it.runtime_seconds = base_runtime * (i + 1);
    profile.iterations.push_back(it);
  }
  return profile;
}

TEST(HistoryTest, TrainingRowsFilterByAlgorithm) {
  HistoryStore store;
  store.Add(MakeProfile("pagerank", "lj", 3, 1.0));
  store.Add(MakeProfile("semiclustering", "lj", 2, 2.0));
  EXPECT_EQ(store.TrainingRowsFor("pagerank").size(), 3u);
  EXPECT_EQ(store.TrainingRowsFor("semiclustering").size(), 2u);
  EXPECT_EQ(store.TrainingRowsFor("unknown").size(), 0u);
}

TEST(HistoryTest, ExcludesNamedDataset) {
  HistoryStore store;
  store.Add(MakeProfile("pagerank", "lj", 3, 1.0));
  store.Add(MakeProfile("pagerank", "uk", 4, 1.0));
  EXPECT_EQ(store.TrainingRowsExcluding("pagerank", "lj").size(), 4u);
  EXPECT_EQ(store.TrainingRowsExcluding("pagerank", "uk").size(), 3u);
  EXPECT_EQ(store.TrainingRowsExcluding("pagerank", "").size(), 7u);
}

TEST(HistoryTest, CsvRoundTrip) {
  HistoryStore store;
  store.Add(MakeProfile("pagerank", "lj", 3, 1.5));
  store.Add(MakeProfile("topk_ranking", "uk", 2, 0.75));
  const std::string path =
      (std::filesystem::temp_directory_path() / "predict_history_test.csv")
          .string();
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = HistoryStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  const auto rows = loaded->TrainingRowsFor("pagerank");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[1].runtime_seconds, 3.0);
  EXPECT_DOUBLE_EQ(rows[1].features[static_cast<int>(Feature::kRemMsg)], 200.0);
  std::filesystem::remove(path);
}

TEST(HistoryTest, LoadMissingFileFails) {
  EXPECT_TRUE(
      HistoryStore::LoadFromFile("/no/such/file.csv").status().IsIOError());
}

// ------------------------------------------------------------------ bounds

TEST(BoundsTest, LangvilleMeyerFormulaValues) {
  // The paper (§5.1): eps=0.001, d=0.85 -> ~42 iterations.
  auto bound = PageRankIterationUpperBound(0.001, 0.85);
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(*bound, 42.5, 0.5);
  // eps = 0.1 -> ~14.
  EXPECT_NEAR(PageRankIterationUpperBound(0.1, 0.85).value(), 14.2, 0.5);
}

TEST(BoundsTest, RejectsOutOfRangeParameters) {
  EXPECT_FALSE(PageRankIterationUpperBound(0.0, 0.85).ok());
  EXPECT_FALSE(PageRankIterationUpperBound(1.5, 0.85).ok());
  EXPECT_FALSE(PageRankIterationUpperBound(0.01, 0.0).ok());
  EXPECT_FALSE(PageRankIterationUpperBound(0.01, 1.0).ok());
}

TEST(BoundsTest, CcBoundIsVertexCount) {
  EXPECT_DOUBLE_EQ(ConnectedComponentsIterationUpperBound(1234), 1234.0);
}

}  // namespace
}  // namespace predict
