// Property-style parameterized sweeps over the whole stack: counter
// conservation laws in the engine, extrapolation identities, transform
// round-trips, and predictor invariants across sampling ratios, worker
// counts and seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/pagerank.h"
#include "algorithms/runner.h"
#include "core/predictor.h"
#include "core/transform.h"
#include "graph/generators.h"

namespace predict {
namespace {

// ----------------------------- engine counter conservation across workers

class WorkerSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WorkerSweep, CounterConservationLaws) {
  const uint32_t workers = GetParam();
  const Graph g = GeneratePreferentialAttachment({4000, 6, 0.3, 17}).MoveValue();
  bsp::EngineOptions options;
  options.num_workers = workers;
  options.num_threads = 0;
  options.max_supersteps = 4;
  PageRankProgram program(ResolveConfig(PageRankSpec(), {}).MoveValue());
  bsp::Engine<PageRankValue, double> engine(options);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  for (const auto& step : stats->supersteps) {
    const bsp::WorkerCounters totals = step.Totals();
    // Every vertex is assigned exactly once.
    EXPECT_EQ(totals.total_vertices, g.num_vertices());
    // PageRank: every vertex computes every superstep; every edge carries
    // exactly one message (no dangling vertices in PA graphs).
    EXPECT_EQ(totals.active_vertices, g.num_vertices());
    EXPECT_EQ(totals.total_messages(), g.num_edges());
    // Bytes = 12 per message (the program's MessageBytes).
    EXPECT_EQ(totals.total_message_bytes(), 12 * g.num_edges());
    // With one worker nothing is remote; with W workers the expected
    // remote fraction is (W-1)/W, so for W >= 4 remote dominates.
    if (workers == 1) {
      EXPECT_EQ(totals.remote_messages, 0u);
    } else {
      EXPECT_GT(totals.remote_messages, 0u);
      if (workers >= 4) {
        EXPECT_GT(totals.remote_messages, totals.local_messages);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(1u, 2u, 7u, 29u, 64u));

// --------------------------------------- extrapolation identity at sr = 1

TEST(PropertyTest, FullSampleExtrapolationIsIdentity) {
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.3, 19}).MoveValue();
  auto factors = ComputeExtrapolationFactors(g, g);
  ASSERT_TRUE(factors.ok());
  EXPECT_DOUBLE_EQ(factors->vertex_factor, 1.0);
  EXPECT_DOUBLE_EQ(factors->edge_factor, 1.0);
  FeatureVector features{};
  for (int i = 0; i < kNumFeatures; ++i) features[i] = i * 3.7;
  const FeatureVector scaled = ExtrapolateFeatures(features, *factors);
  for (int i = 0; i < kNumFeatures; ++i) {
    EXPECT_DOUBLE_EQ(scaled[i], features[i]);
  }
}

// ----------------------------- transform scaling is multiplicative in sr

class TransformSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransformSweep, TauScalesExactlyByInverseRatio) {
  const double ratio = GetParam();
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 3e-9}};
  auto sample = DefaultTransform::Instance().Apply(PageRankSpec(), config, ratio);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), 3e-9 / ratio);
  // Applying the inverse recovers the original.
  EXPECT_NEAR(sample->at("tau") * ratio, 3e-9, 1e-24);
}

INSTANTIATE_TEST_SUITE_P(Ratios, TransformSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5, 1.0));

// --------------------------------------------- predictor invariant sweeps

struct PredictorCase {
  double ratio;
  uint64_t seed;
};

class PredictorSweep : public ::testing::TestWithParam<PredictorCase> {};

TEST_P(PredictorSweep, ReportsAreWellFormed) {
  const PredictorCase& c = GetParam();
  const Graph g = GeneratePreferentialAttachment({12000, 6, 0.3, 23}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = c.ratio;
  options.sampler.seed = c.seed;
  options.engine.num_workers = 8;
  Predictor predictor(options);
  const AlgorithmConfig config = {
      {"tau", 0.001 / static_cast<double>(g.num_vertices())}};
  auto report = predictor.PredictRuntime("pagerank", g, "sweep", config);
  ASSERT_TRUE(report.ok());

  // Invariants that must hold at every ratio and seed:
  EXPECT_GT(report->predicted_iterations, 0);
  EXPECT_EQ(report->per_iteration_seconds.size(),
            static_cast<size_t>(report->predicted_iterations));
  for (const double s : report->per_iteration_seconds) EXPECT_GE(s, 0.0);
  EXPECT_NEAR(report->realized_sampling_ratio, c.ratio, 0.01);
  EXPECT_NEAR(report->factors.vertex_factor, 1.0 / c.ratio, 0.15 / c.ratio);
  EXPECT_GE(report->factors.edge_factor, report->factors.vertex_factor);
  // Extrapolated TotVert of iteration 0 equals the full graph's
  // per-worker share (TotVert_S * eV = (V_S/W) * (V_G/V_S) = V_G/W).
  const double tot_vert =
      report->extrapolated_profile.iterations[0]
          .critical_features[static_cast<int>(Feature::kTotVert)];
  EXPECT_NEAR(tot_vert, static_cast<double>(g.num_vertices()) / 8.0,
              static_cast<double>(g.num_vertices()) / 8.0 * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndSeeds, PredictorSweep,
    ::testing::Values(PredictorCase{0.05, 1}, PredictorCase{0.05, 2},
                      PredictorCase{0.10, 1}, PredictorCase{0.10, 2},
                      PredictorCase{0.20, 1}, PredictorCase{0.25, 3}));

// ------------------------------------------ sample run respects transform

class SampleTauSweep : public ::testing::TestWithParam<double> {};

TEST_P(SampleTauSweep, SampleRunUsesScaledThreshold) {
  const double ratio = GetParam();
  const Graph g = GeneratePreferentialAttachment({10000, 6, 0.3, 29}).MoveValue();
  const double tau = 0.001 / static_cast<double>(g.num_vertices());
  PredictorOptions options;
  options.sampler.sampling_ratio = ratio;
  options.engine.num_workers = 4;
  Predictor predictor(options);
  auto report = predictor.PredictRuntime("pagerank", g, "", {{"tau", tau}});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->sample_config.at("tau"),
              tau / report->realized_sampling_ratio, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Ratios, SampleTauSweep,
                         ::testing::Values(0.05, 0.1, 0.2));

// -------------------------------- per-iteration runtimes are predictions
// for the *matching* iteration (variable-runtime algorithms)

TEST(PropertyTest, PerIterationPredictionsTrackActualShape) {
  // Connected components: first iterations heavy, tail light. The
  // prediction vector must reproduce that decaying shape, not just the
  // total (the paper's core claim for variable-runtime algorithms).
  const Graph g = GeneratePreferentialAttachment({30000, 6, 0.3, 31}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.15;
  options.engine.num_workers = 8;
  Predictor predictor(options);
  auto report = predictor.PredictRuntime("connected_components", g, "", {});
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->per_iteration_seconds.size(), 3u);
  // Superstep 0 floods all edges: it must be predicted as the (or near
  // the) most expensive iteration; the last must be cheaper.
  const double first = report->per_iteration_seconds.front();
  const double last = report->per_iteration_seconds.back();
  EXPECT_GT(first, last);
}

}  // namespace
}  // namespace predict
