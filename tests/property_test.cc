// Property-style parameterized sweeps over the whole stack: counter
// conservation laws in the engine, extrapolation identities, transform
// round-trips, and predictor invariants across sampling ratios, worker
// counts and seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/pagerank.h"
#include "algorithms/runner.h"
#include "core/predictor.h"
#include "core/transform.h"
#include "common/rng.h"
#include "graph/delta.h"
#include "graph/generators.h"

namespace predict {
namespace {

// ----------------------------- engine counter conservation across workers

class WorkerSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WorkerSweep, CounterConservationLaws) {
  const uint32_t workers = GetParam();
  const Graph g = GeneratePreferentialAttachment({4000, 6, 0.3, 17}).MoveValue();
  bsp::EngineOptions options;
  options.num_workers = workers;
  options.num_threads = 0;
  options.max_supersteps = 4;
  PageRankProgram program(ResolveConfig(PageRankSpec(), {}).MoveValue());
  bsp::Engine<PageRankValue, double> engine(options);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  for (const auto& step : stats->supersteps) {
    const bsp::WorkerCounters totals = step.Totals();
    // Every vertex is assigned exactly once.
    EXPECT_EQ(totals.total_vertices, g.num_vertices());
    // PageRank: every vertex computes every superstep; every edge carries
    // exactly one message (no dangling vertices in PA graphs).
    EXPECT_EQ(totals.active_vertices, g.num_vertices());
    EXPECT_EQ(totals.total_messages(), g.num_edges());
    // Bytes = 12 per message (the program's MessageBytes).
    EXPECT_EQ(totals.total_message_bytes(), 12 * g.num_edges());
    // With one worker nothing is remote; with W workers the expected
    // remote fraction is (W-1)/W, so for W >= 4 remote dominates.
    if (workers == 1) {
      EXPECT_EQ(totals.remote_messages, 0u);
    } else {
      EXPECT_GT(totals.remote_messages, 0u);
      if (workers >= 4) {
        EXPECT_GT(totals.remote_messages, totals.local_messages);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(1u, 2u, 7u, 29u, 64u));

// --------------------------------------- extrapolation identity at sr = 1

TEST(PropertyTest, FullSampleExtrapolationIsIdentity) {
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.3, 19}).MoveValue();
  auto factors = ComputeExtrapolationFactors(g, g);
  ASSERT_TRUE(factors.ok());
  EXPECT_DOUBLE_EQ(factors->vertex_factor, 1.0);
  EXPECT_DOUBLE_EQ(factors->edge_factor, 1.0);
  FeatureVector features{};
  for (int i = 0; i < kNumFeatures; ++i) features[i] = i * 3.7;
  const FeatureVector scaled = ExtrapolateFeatures(features, *factors);
  for (int i = 0; i < kNumFeatures; ++i) {
    EXPECT_DOUBLE_EQ(scaled[i], features[i]);
  }
}

// ----------------------------- transform scaling is multiplicative in sr

class TransformSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransformSweep, TauScalesExactlyByInverseRatio) {
  const double ratio = GetParam();
  const AlgorithmConfig config = {{"damping", 0.85}, {"tau", 3e-9}};
  auto sample = DefaultTransform::Instance().Apply(PageRankSpec(), config, ratio);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->at("tau"), 3e-9 / ratio);
  // Applying the inverse recovers the original.
  EXPECT_NEAR(sample->at("tau") * ratio, 3e-9, 1e-24);
}

INSTANTIATE_TEST_SUITE_P(Ratios, TransformSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5, 1.0));

// --------------------------------------------- predictor invariant sweeps

struct PredictorCase {
  double ratio;
  uint64_t seed;
};

class PredictorSweep : public ::testing::TestWithParam<PredictorCase> {};

TEST_P(PredictorSweep, ReportsAreWellFormed) {
  const PredictorCase& c = GetParam();
  const Graph g = GeneratePreferentialAttachment({12000, 6, 0.3, 23}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = c.ratio;
  options.sampler.seed = c.seed;
  options.engine.num_workers = 8;
  Predictor predictor(options);
  const AlgorithmConfig config = {
      {"tau", 0.001 / static_cast<double>(g.num_vertices())}};
  auto report = predictor.PredictRuntime("pagerank", g, "sweep", config);
  ASSERT_TRUE(report.ok());

  // Invariants that must hold at every ratio and seed:
  EXPECT_GT(report->predicted_iterations, 0);
  EXPECT_EQ(report->per_iteration_seconds.size(),
            static_cast<size_t>(report->predicted_iterations));
  for (const double s : report->per_iteration_seconds) EXPECT_GE(s, 0.0);
  EXPECT_NEAR(report->realized_sampling_ratio, c.ratio, 0.01);
  EXPECT_NEAR(report->factors.vertex_factor, 1.0 / c.ratio, 0.15 / c.ratio);
  EXPECT_GE(report->factors.edge_factor, report->factors.vertex_factor);
  // Extrapolated TotVert of iteration 0 equals the full graph's
  // per-worker share (TotVert_S * eV = (V_S/W) * (V_G/V_S) = V_G/W).
  const double tot_vert =
      report->extrapolated_profile.iterations[0]
          .critical_features[static_cast<int>(Feature::kTotVert)];
  EXPECT_NEAR(tot_vert, static_cast<double>(g.num_vertices()) / 8.0,
              static_cast<double>(g.num_vertices()) / 8.0 * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndSeeds, PredictorSweep,
    ::testing::Values(PredictorCase{0.05, 1}, PredictorCase{0.05, 2},
                      PredictorCase{0.10, 1}, PredictorCase{0.10, 2},
                      PredictorCase{0.20, 1}, PredictorCase{0.25, 3}));

// ------------------------------------------ sample run respects transform

class SampleTauSweep : public ::testing::TestWithParam<double> {};

TEST_P(SampleTauSweep, SampleRunUsesScaledThreshold) {
  const double ratio = GetParam();
  const Graph g = GeneratePreferentialAttachment({10000, 6, 0.3, 29}).MoveValue();
  const double tau = 0.001 / static_cast<double>(g.num_vertices());
  PredictorOptions options;
  options.sampler.sampling_ratio = ratio;
  options.engine.num_workers = 4;
  Predictor predictor(options);
  auto report = predictor.PredictRuntime("pagerank", g, "", {{"tau", tau}});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->sample_config.at("tau"),
              tau / report->realized_sampling_ratio, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Ratios, SampleTauSweep,
                         ::testing::Values(0.05, 0.1, 0.2));

// -------------------------------- per-iteration runtimes are predictions
// for the *matching* iteration (variable-runtime algorithms)

TEST(PropertyTest, PerIterationPredictionsTrackActualShape) {
  // Connected components: first iterations heavy, tail light. The
  // prediction vector must reproduce that decaying shape, not just the
  // total (the paper's core claim for variable-runtime algorithms).
  const Graph g = GeneratePreferentialAttachment({30000, 6, 0.3, 31}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.15;
  options.engine.num_workers = 8;
  Predictor predictor(options);
  auto report = predictor.PredictRuntime("connected_components", g, "", {});
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->per_iteration_seconds.size(), 3u);
  // Superstep 0 floods all edges: it must be predicted as the (or near
  // the) most expensive iteration; the last must be cheaper.
  const double first = report->per_iteration_seconds.front();
  const double last = report->per_iteration_seconds.back();
  EXPECT_GT(first, last);
}

// ------------------------------------- delta versioning soundness sweep

// The version-fingerprint contract: across ANY interleaving of insert
// batches, delete batches and compactions, two reached states have equal
// VersionFingerprints iff their compacted edge multisets are equal. Each
// random walk snapshots (canonical edge list, fingerprint) after every
// batch — compacting a *copy* so the original keeps its overlay state —
// then all snapshots from all walks are cross-compared.
TEST(DeltaVersioningProperty, FingerprintEqualsEdgeSetAcrossInterleavings) {
  const Graph base =
      GeneratePreferentialAttachment({120, 4, 0.3, 71}).MoveValue();
  struct Snapshot {
    std::vector<Edge> edges;  // canonical (sorted) — multiset identity
    uint64_t fp = 0;
  };
  std::vector<Snapshot> snapshots;

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    EvolvingGraph g(base);
    Rng rng(seed * 977);
    for (int step = 0; step < 25; ++step) {
      const uint64_t kind = rng.Uniform(10);
      if (kind == 0) {
        ASSERT_TRUE(g.Compact().ok());
      } else {
        EdgeDeltaBatch batch;
        const uint64_t batch_size = 1 + rng.Uniform(4);
        for (uint64_t i = 0; i < batch_size; ++i) {
          if (kind < 6 || g.num_edges() == 0) {
            batch.push_back(EdgeDelta::Insert(
                static_cast<VertexId>(rng.Uniform(g.num_vertices())),
                static_cast<VertexId>(rng.Uniform(g.num_vertices()))));
          } else {
            // Delete a random currently-present edge (sampled off a
            // compacted copy so the pick is valid for the live graph).
            EvolvingGraph copy = g;
            auto current = copy.Current();
            ASSERT_TRUE(current.ok());
            const std::vector<Edge> edges = (*current)->ToEdgeList();
            const Edge& victim = edges[rng.Uniform(edges.size())];
            batch.push_back(EdgeDelta::Delete(victim.src, victim.dst));
          }
          // One mutation per batch when deleting: a second delete of the
          // same pick could over-delete and invalidate the batch.
          if (kind >= 6) break;
        }
        ASSERT_TRUE(g.Apply(batch).ok());
      }
      EvolvingGraph copy = g;
      auto current = copy.Current();
      ASSERT_TRUE(current.ok());
      Snapshot snap;
      snap.edges = (*current)->ToEdgeList();
      snap.fp = g.VersionFingerprint();
      // Compaction preserves the version, and the version always equals
      // the compacted edge set's hash.
      EXPECT_EQ(copy.VersionFingerprint(), snap.fp);
      EXPECT_EQ((*current)->EdgeSetHash(), snap.fp);
      snapshots.push_back(std::move(snap));
    }
  }

  int equal_pairs = 0;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    for (size_t j = i + 1; j < snapshots.size(); ++j) {
      const bool same_edges = snapshots[i].edges == snapshots[j].edges;
      const bool same_fp = snapshots[i].fp == snapshots[j].fp;
      EXPECT_EQ(same_edges, same_fp)
          << "snapshot " << i << " vs " << j << ": edge sets "
          << (same_edges ? "equal" : "differ") << " but fingerprints "
          << (same_fp ? "equal" : "differ");
      equal_pairs += same_edges ? 1 : 0;
    }
  }
  // The walks share a base and revisit states (insert then delete), so
  // the iff has to have been exercised in both directions.
  EXPECT_GT(equal_pairs, 0);
}

// Insert-then-delete of the same edge is a version no-op even when a
// compaction lands between the two mutations.
TEST(DeltaVersioningProperty, CancellationSurvivesInterposedCompaction) {
  const Graph base =
      GeneratePreferentialAttachment({80, 3, 0.3, 73}).MoveValue();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    EvolvingGraph g(base);
    Rng rng(seed);
    const auto src = static_cast<VertexId>(rng.Uniform(80));
    const auto dst = static_cast<VertexId>(rng.Uniform(80));
    const uint64_t fp0 = g.VersionFingerprint();
    ASSERT_TRUE(g.Apply({EdgeDelta::Insert(src, dst)}).ok());
    if (seed % 2 == 0) ASSERT_TRUE(g.Compact().ok());
    ASSERT_TRUE(g.Apply({EdgeDelta::Delete(src, dst)}).ok());
    EXPECT_EQ(g.VersionFingerprint(), fp0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace predict
