// Tests for core/history.h persistence and concurrency: the num_workers
// column round-trips, pre-column legacy files still load (num_workers =
// 0, one "unknown" configuration), and Add may race the training-row
// readers (the PredictionService shares one store across in-flight
// predictions).

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/features.h"
#include "core/history.h"
#include "core/models/model_selector.h"

namespace predict {
namespace {

RunProfile WorkerProfile(const std::string& dataset, uint32_t num_workers,
                         int iterations) {
  RunProfile profile;
  profile.algorithm = "pagerank";
  profile.dataset = dataset;
  profile.num_vertices = 1000;
  profile.num_edges = 5000;
  profile.num_workers = num_workers;
  for (int i = 0; i < iterations; ++i) {
    IterationProfile it;
    it.iteration = i;
    it.critical_features[static_cast<int>(Feature::kRemMsg)] = 50.0 * (i + 1);
    it.runtime_seconds = 0.5 * (i + 1) * 8.0 / num_workers;
    profile.iterations.push_back(it);
  }
  return profile;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(HistoryPersistenceTest, NumWorkersRoundTrips) {
  HistoryStore store;
  store.Add(WorkerProfile("lj", 8, 3));
  store.Add(WorkerProfile("uk", 29, 2));
  const std::string path = TempPath("predict_history_workers.csv");
  ASSERT_TRUE(store.SaveToFile(path).ok());

  auto loaded = HistoryStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<RunProfile> profiles = loaded->profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].num_workers, 8u);
  EXPECT_EQ(profiles[1].num_workers, 29u);

  // The worker count must reach the model zoo via TrainingRow::scale_out.
  const std::vector<TrainingRow> rows = loaded->TrainingRowsFor("pagerank");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows[0].scale_out, 8.0);
  EXPECT_DOUBLE_EQ(rows[4].scale_out, 29.0);

  // Save -> load -> save is byte-stable (no drift across generations).
  const std::string path2 = TempPath("predict_history_workers2.csv");
  ASSERT_TRUE(loaded->SaveToFile(path2).ok());
  std::ifstream a(path), b(path2);
  std::string text_a((std::istreambuf_iterator<char>(a)),
                     std::istreambuf_iterator<char>());
  std::string text_b((std::istreambuf_iterator<char>(b)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(text_a, text_b);
  std::filesystem::remove(path);
  std::filesystem::remove(path2);
}

TEST(HistoryPersistenceTest, LegacyFileWithoutWorkersColumnLoads) {
  // A file written before the num_workers column existed: 5 leading
  // fields instead of 6. It must load with num_workers = 0 ("unknown"),
  // which the selector treats as one legacy configuration -> paper tier.
  const std::string path = TempPath("predict_history_legacy.csv");
  {
    std::ofstream out(path);
    out << "algorithm,dataset,num_vertices,num_edges,iteration,ActVert,"
           "TotVert,LocMsg,RemMsg,LocMsgSize,RemMsgSize,AvgMsgSize,"
           "runtime_seconds\n";
    out << "pagerank,lj,1000,5000,0,10,100,5,50,40,400,8,0.5\n";
    out << "pagerank,lj,1000,5000,1,20,100,10,100,80,800,8,1\n";
  }
  auto loaded = HistoryStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->profiles()[0].num_workers, 0u);

  const std::vector<TrainingRow> rows = loaded->TrainingRowsFor("pagerank");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].scale_out, 0.0);
  EXPECT_DOUBLE_EQ(rows[1].runtime_seconds, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].features[static_cast<int>(Feature::kRemMsg)], 100.0);

  // One unknown configuration keeps the zoo on the paper tier.
  std::set<double> configs;
  for (const TrainingRow& row : rows) configs.insert(row.scale_out);
  EXPECT_EQ(models::TierForConfigs(static_cast<int>(configs.size()), {}),
            models::ModelTier::kPaper);
  std::filesystem::remove(path);
}

TEST(HistoryPersistenceTest, MalformedRowsAreQuarantinedNotFatal) {
  // A corrupted row (partial write, manual edit) must not take down the
  // rest of the history: well-formed rows load, the bad ones are counted
  // in the quarantine note.
  HistoryStore store;
  store.Add(WorkerProfile("lj", 8, 2));
  const std::string path = TempPath("predict_history_malformed.csv");
  ASSERT_TRUE(store.SaveToFile(path).ok());
  {
    std::ofstream out(path, std::ios::app);
    out << "pagerank,lj,1000,5000,0,1,2\n";  // too few fields
    out << "garbage row\n";
  }

  std::string note;
  auto loaded = HistoryStore::LoadFromFile(path, &note);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);  // the intact profile survived
  EXPECT_EQ(loaded->TrainingRowsFor("pagerank").size(), 2u);
  EXPECT_NE(note.find("quarantined 2 malformed history rows"),
            std::string::npos)
      << note;
  EXPECT_NE(note.find("pagerank,lj,1000,5000,0,1,2"), std::string::npos);

  // A clean file leaves the note empty.
  ASSERT_TRUE(store.SaveToFile(path).ok());
  note = "stale";
  ASSERT_TRUE(HistoryStore::LoadFromFile(path, &note).ok());
  EXPECT_TRUE(note.empty());
  std::filesystem::remove(path);
}

TEST(HistoryPersistenceTest, FailedSaveLeavesThePreviousFileIntact) {
  // Crash-safety contract: SaveToFile writes a temp file and renames it
  // into place, so a failure mid-save (injected at the history.save fail
  // point, just before the rename) must leave the previous generation
  // readable and no half-written temp file behind.
  fail::DisableAll();
  HistoryStore first;
  first.Add(WorkerProfile("lj", 8, 2));
  const std::string path = TempPath("predict_history_crashsafe.csv");
  ASSERT_TRUE(first.SaveToFile(path).ok());

  HistoryStore second;
  second.Add(WorkerProfile("uk", 16, 3));
  second.Add(WorkerProfile("tw", 32, 3));
  ASSERT_TRUE(fail::Configure("history.save", "once:code=io").ok());
  const Status failed = second.SaveToFile(path);
  fail::DisableAll();
  EXPECT_TRUE(failed.IsIOError());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  auto loaded = HistoryStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);  // still the first generation
  EXPECT_EQ(loaded->profiles()[0].dataset, "lj");

  // Without the fault the same save goes through.
  ASSERT_TRUE(second.SaveToFile(path).ok());
  auto reloaded = HistoryStore::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), 2u);
  std::filesystem::remove(path);
}

TEST(HistoryPersistenceTest, LoadFailPointSurfacesAsTheLoadError) {
  fail::DisableAll();
  HistoryStore store;
  store.Add(WorkerProfile("lj", 8, 1));
  const std::string path = TempPath("predict_history_loadfault.csv");
  ASSERT_TRUE(store.SaveToFile(path).ok());
  ASSERT_TRUE(fail::Configure("history.load", "once:code=io").ok());
  const auto loaded = HistoryStore::LoadFromFile(path);
  fail::DisableAll();
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  EXPECT_NE(loaded.status().message().find("history.load"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(HistoryConcurrencyTest, AddRacesTrainingRowReaders) {
  // One writer appends profiles while readers snapshot training rows and
  // save to disk; under TSan/ASan this is the proof the store's locking
  // holds. Readers must always observe complete profiles (row counts are
  // multiples of the per-profile iteration count).
  constexpr int kProfiles = 64;
  constexpr int kIterations = 4;
  HistoryStore store;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int i = 0; i < kProfiles; ++i) {
      store.Add(WorkerProfile("d" + std::to_string(i % 8),
                              8 + 4 * (i % 6), kIterations));
    }
    done.store(true);
  });

  size_t max_rows = 0;
  bool sizes_consistent = true;
  while (!done.load()) {
    const std::vector<TrainingRow> rows = store.TrainingRowsFor("pagerank");
    if (rows.size() % kIterations != 0) sizes_consistent = false;
    if (rows.size() > max_rows) max_rows = rows.size();
  }
  writer.join();

  EXPECT_TRUE(sizes_consistent);
  EXPECT_EQ(store.TrainingRowsFor("pagerank").size(),
            static_cast<size_t>(kProfiles * kIterations));
  EXPECT_EQ(store.size(), static_cast<size_t>(kProfiles));
}

TEST(HistoryConcurrencyTest, ConcurrentSaveAndAddProduceLoadableFiles) {
  HistoryStore store;
  store.Add(WorkerProfile("seed", 8, 2));
  const std::string path = TempPath("predict_history_concurrent.csv");
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int i = 0; i < 32; ++i) {
      store.Add(WorkerProfile("d" + std::to_string(i), 8 + i, 2));
    }
    done.store(true);
  });
  while (!done.load()) {
    ASSERT_TRUE(store.SaveToFile(path).ok());
  }
  writer.join();
  ASSERT_TRUE(store.SaveToFile(path).ok());

  auto loaded = HistoryStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 33u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace predict
