// End-to-end tests of the Predictor (Figure 1 pipeline) and the SLA
// feasibility layer, on generated scale-free graphs.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/runner.h"
#include "core/predictor.h"
#include "core/sla.h"
#include "graph/generators.h"

namespace predict {
namespace {

Graph TestGraph(VertexId n = 20000, uint64_t seed = 77) {
  return GeneratePreferentialAttachment({n, 8, 0.3, seed}).MoveValue();
}

bsp::EngineOptions TestEngine() {
  bsp::EngineOptions options;
  options.num_workers = 8;
  options.cost_profile.setup_seconds = 2.0;
  options.max_supersteps = 100;
  return options;
}

PredictorOptions TestOptions(double ratio = 0.1) {
  PredictorOptions options;
  options.sampler.sampling_ratio = ratio;
  options.sampler.seed = 5;
  options.engine = TestEngine();
  return options;
}

double PageRankTau(const Graph& g, double epsilon = 0.001) {
  return epsilon / static_cast<double>(g.num_vertices());
}

// -------------------------------------------------------------- happy path

TEST(PredictorTest, PageRankIterationsWithinPaperErrorBand) {
  const Graph g = TestGraph();
  Predictor predictor(TestOptions());
  const AlgorithmConfig config = {{"tau", PageRankTau(g)}};
  auto report = predictor.PredictRuntime("pagerank", g, "test", config);
  ASSERT_TRUE(report.ok());

  RunOptions run_options;
  run_options.engine = TestEngine();
  run_options.config_overrides = config;
  auto actual = RunAlgorithmByName("pagerank", g, run_options);
  ASSERT_TRUE(actual.ok());

  const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
  // The paper reports <=20% iteration error at 10% sampling for
  // scale-free graphs; allow some slack for the small synthetic graph.
  EXPECT_LE(std::abs(eval.iterations_error), 0.35)
      << "predicted " << report->predicted_iterations << " actual "
      << eval.actual_iterations;
}

TEST(PredictorTest, TopKRuntimeWithinPaperErrorBand) {
  const Graph g = TestGraph(20000, 78);
  Predictor predictor(TestOptions());
  auto report = predictor.PredictRuntime("topk_ranking", g, "test", {});
  ASSERT_TRUE(report.ok());

  RunOptions run_options;
  run_options.engine = TestEngine();
  auto actual = RunAlgorithmByName("topk_ranking", g, run_options);
  ASSERT_TRUE(actual.ok());

  const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
  EXPECT_LE(std::abs(eval.runtime_error), 0.6)
      << "predicted " << report->predicted_superstep_seconds << " actual "
      << eval.actual_superstep_seconds;
}

TEST(PredictorTest, ReportFieldsPopulated) {
  const Graph g = TestGraph();
  Predictor predictor(TestOptions());
  auto report =
      predictor.PredictRuntime("pagerank", g, "ds", {{"tau", PageRankTau(g)}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "pagerank");
  EXPECT_EQ(report->dataset, "ds");
  EXPECT_GT(report->predicted_iterations, 0);
  EXPECT_EQ(report->per_iteration_seconds.size(),
            static_cast<size_t>(report->predicted_iterations));
  EXPECT_GT(report->predicted_superstep_seconds, 0.0);
  EXPECT_NEAR(report->realized_sampling_ratio, 0.1, 0.01);
  EXPECT_GT(report->factors.vertex_factor, 5.0);
  EXPECT_GT(report->factors.edge_factor, 1.0);
  EXPECT_GT(report->sample_total_seconds, 0.0);
  EXPECT_EQ(report->sample_profile.num_iterations(),
            report->predicted_iterations);
  EXPECT_NE(report->transform_description.find("tau_S = tau_G / sr"),
            std::string::npos);
  // The sample run's tau was scaled by 1/sr.
  EXPECT_NEAR(report->sample_config.at("tau"),
              PageRankTau(g) / report->realized_sampling_ratio,
              PageRankTau(g) * 0.2);
}

TEST(PredictorTest, PredictedSuperstepSecondsIsSumOfIterations) {
  const Graph g = TestGraph();
  Predictor predictor(TestOptions());
  auto report =
      predictor.PredictRuntime("pagerank", g, "", {{"tau", PageRankTau(g)}});
  ASSERT_TRUE(report.ok());
  double sum = 0.0;
  for (const double s : report->per_iteration_seconds) sum += s;
  EXPECT_DOUBLE_EQ(report->predicted_superstep_seconds, sum);
}

TEST(PredictorTest, DeterministicForFixedSeeds) {
  const Graph g = TestGraph();
  Predictor predictor(TestOptions());
  const AlgorithmConfig config = {{"tau", PageRankTau(g)}};
  auto a = predictor.PredictRuntime("pagerank", g, "", config);
  auto b = predictor.PredictRuntime("pagerank", g, "", config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->predicted_iterations, b->predicted_iterations);
  EXPECT_DOUBLE_EQ(a->predicted_superstep_seconds,
                   b->predicted_superstep_seconds);
}

// ------------------------------------------------------- transform ablation

TEST(PredictorTest, TransformAblationChangesIterations) {
  // Figure 2's lesson: without tau scaling, the sample run keeps
  // iterating past the point where the actual run would have converged,
  // over-predicting iterations. With the default rule the counts align.
  const Graph g = TestGraph(30000, 80);
  const AlgorithmConfig config = {{"tau", PageRankTau(g)}};

  PredictorOptions with_transform = TestOptions();
  PredictorOptions without_transform = TestOptions();
  const IdentityTransform identity;
  without_transform.transform = &identity;

  auto scaled = Predictor(with_transform).PredictRuntime("pagerank", g, "", config);
  auto unscaled =
      Predictor(without_transform).PredictRuntime("pagerank", g, "", config);
  ASSERT_TRUE(scaled.ok());
  ASSERT_TRUE(unscaled.ok());
  EXPECT_GT(unscaled->predicted_iterations, scaled->predicted_iterations);
}

// ------------------------------------------------------------------ history

TEST(PredictorTest, HistoryImprovesCostModelFit) {
  const Graph g = TestGraph(20000, 81);
  // Build history from an actual run on a *different* dataset.
  const Graph other = TestGraph(15000, 99);
  RunOptions run_options;
  run_options.engine = TestEngine();
  auto other_run = RunAlgorithmByName("topk_ranking", other, run_options);
  ASSERT_TRUE(other_run.ok());
  HistoryStore history;
  history.Add(ProfileFromRunStats("topk_ranking", "other",
                                  other.num_vertices(), other.num_edges(),
                                  other_run->stats));

  PredictorOptions without = TestOptions();
  PredictorOptions with = TestOptions();
  with.history = &history;

  auto report_without =
      Predictor(without).PredictRuntime("topk_ranking", g, "test", {});
  auto report_with =
      Predictor(with).PredictRuntime("topk_ranking", g, "test", {});
  ASSERT_TRUE(report_without.ok());
  ASSERT_TRUE(report_with.ok());
  // With full-scale observations in training, R^2 should not degrade.
  EXPECT_GE(report_with->cost_model.r_squared() + 0.05,
            report_without->cost_model.r_squared());
}

TEST(PredictorTest, HistoryExcludesSameDataset) {
  const Graph g = TestGraph(15000, 82);
  HistoryStore history;
  RunProfile profile;
  profile.algorithm = "pagerank";
  profile.dataset = "mine";
  IterationProfile poisoned;
  poisoned.runtime_seconds = 1e9;  // absurd row that would wreck the fit
  profile.iterations.push_back(poisoned);
  history.Add(profile);

  PredictorOptions options = TestOptions();
  options.history = &history;
  auto report = Predictor(options).PredictRuntime("pagerank", g, "mine",
                                                  {{"tau", PageRankTau(g)}});
  ASSERT_TRUE(report.ok());
  // The poisoned same-dataset row must have been excluded.
  EXPECT_LT(report->predicted_superstep_seconds, 1e6);
}

// ------------------------------------------------------------------ errors

TEST(PredictorTest, UnknownAlgorithmFails) {
  const Graph g = TestGraph(1000, 83);
  Predictor predictor(TestOptions());
  EXPECT_TRUE(
      predictor.PredictRuntime("kmeans", g, "", {}).status().IsNotFound());
}

TEST(PredictorTest, BadOverrideKeyFails) {
  const Graph g = TestGraph(1000, 84);
  Predictor predictor(TestOptions());
  EXPECT_TRUE(predictor.PredictRuntime("pagerank", g, "", {{"zzz", 1.0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(PredictorTest, EmptyGraphFails) {
  GraphBuilder b(0);
  const Graph g = b.Build().MoveValue();
  Predictor predictor(TestOptions());
  EXPECT_FALSE(predictor.PredictRuntime("pagerank", g, "", {}).ok());
}

// --------------------------------------------------------------- evaluation

TEST(EvaluatePredictionTest, SignedErrorsComputed) {
  PredictionReport report;
  report.predicted_iterations = 12;
  report.predicted_superstep_seconds = 90.0;
  bsp::RunStats actual;
  actual.superstep_phase_seconds = 100.0;
  bsp::SuperstepStats step;
  step.per_worker.resize(1);
  step.per_worker[0].remote_message_bytes = 1000;
  for (int i = 0; i < 10; ++i) actual.supersteps.push_back(step);
  const PredictionEvaluation eval = EvaluatePrediction(report, actual);
  EXPECT_DOUBLE_EQ(eval.iterations_error, 0.2);   // 12 vs 10
  EXPECT_DOUBLE_EQ(eval.runtime_error, -0.1);     // 90 vs 100
  EXPECT_EQ(eval.actual_iterations, 10);
}

// --------------------------------------------------------------------- SLA

TEST(SlaTest, FeasibleAndInfeasibleJobs) {
  const Graph g = TestGraph(15000, 85);
  std::vector<JobRequest> jobs(2);
  jobs[0].job_name = "nightly-ranking";
  jobs[0].algorithm = "pagerank";
  jobs[0].graph = &g;
  jobs[0].dataset_name = "g";
  jobs[0].overrides = {{"tau", PageRankTau(g)}};
  jobs[0].deadline_seconds = 1e9;  // generous: feasible
  jobs[1] = jobs[0];
  jobs[1].job_name = "instant-ranking";
  jobs[1].deadline_seconds = 1e-9;  // impossible: infeasible

  auto report = AnalyzeFeasibility(jobs, TestOptions());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->jobs.size(), 2u);
  EXPECT_TRUE(report->jobs[0].feasible);
  EXPECT_FALSE(report->jobs[1].feasible);
  EXPECT_FALSE(report->all_feasible);
  EXPECT_GT(report->jobs[0].headroom_seconds, 0.0);
  EXPECT_LT(report->jobs[1].headroom_seconds, 0.0);
  const std::string text = report->ToString();
  EXPECT_NE(text.find("VIOLATES"), std::string::npos);
  EXPECT_NE(text.find("INFEASIBLE"), std::string::npos);
}

TEST(SlaTest, ConfidenceOnlyTightensTheVerdict) {
  // The interval contract at the SLA layer: a job admitted at high
  // confidence is admitted by the point-estimate path too, never the
  // reverse — raising confidence can only flip feasible -> infeasible.
  const Graph g = TestGraph(15000, 85);
  JobRequest base;
  base.job_name = "ranking";
  base.algorithm = "pagerank";
  base.graph = &g;
  base.dataset_name = "g";
  base.overrides = {{"tau", PageRankTau(g)}};
  base.deadline_seconds = 1e9;

  std::vector<JobRequest> jobs(3, base);
  jobs[0].confidence = 0.5;
  jobs[1].confidence = 0.95;
  jobs[2].confidence = 0.99;

  // Straggler spread widens the interval above the point estimate.
  PredictorOptions options = TestOptions();
  options.engine.cost_profile.worker_speed_factors = {2.0, 1.5};

  auto report = AnalyzeFeasibility(jobs, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->jobs.size(), 3u);
  const JobFeasibility& point = report->jobs[0];
  EXPECT_DOUBLE_EQ(point.predicted_at_confidence_seconds,
                   point.predicted_seconds);
  double previous = point.predicted_at_confidence_seconds;
  for (size_t i = 1; i < report->jobs.size(); ++i) {
    const JobFeasibility& job = report->jobs[i];
    // All three predictions are the same run; only the checked bound moves.
    EXPECT_DOUBLE_EQ(job.predicted_seconds, point.predicted_seconds);
    EXPECT_GE(job.predicted_at_confidence_seconds, previous);
    previous = job.predicted_at_confidence_seconds;
    EXPECT_LE(job.headroom_seconds, point.headroom_seconds);
    // Admitted at confidence implies admitted at the point estimate.
    if (job.feasible) EXPECT_TRUE(point.feasible);
  }
  EXPECT_GT(report->jobs[2].predicted_at_confidence_seconds,
            point.predicted_seconds);

  // A deadline between the point estimate and the high-confidence bound
  // is exactly the case confidence checking exists for: the point path
  // admits, the 99% path must refuse.
  std::vector<JobRequest> tight(2, base);
  tight[0].confidence = 0.5;
  tight[1].confidence = 0.99;
  tight[0].deadline_seconds = tight[1].deadline_seconds =
      (point.predicted_at_confidence_seconds +
       report->jobs[2].predicted_at_confidence_seconds) /
      2.0;
  auto tight_report = AnalyzeFeasibility(tight, options);
  ASSERT_TRUE(tight_report.ok());
  EXPECT_TRUE(tight_report->jobs[0].feasible);
  EXPECT_FALSE(tight_report->jobs[1].feasible);
}

TEST(SlaTest, NullGraphRejected) {
  std::vector<JobRequest> jobs(1);
  jobs[0].job_name = "broken";
  jobs[0].algorithm = "pagerank";
  jobs[0].graph = nullptr;
  EXPECT_TRUE(
      AnalyzeFeasibility(jobs, TestOptions()).status().IsInvalidArgument());
}

}  // namespace
}  // namespace predict
