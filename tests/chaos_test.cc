// Fault-injection and robustness tests: fail-point policies and
// configuration, retry/backoff/deadline determinism, stage-boundary
// error provenance, and the degradation ladder (Predictor history-only
// rung, service stale-profile rung) — including the invariant that the
// zero-fault path with robustness options configured stays bit-identical
// to the plain pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/predictor.h"
#include "core/sla.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "pipeline/stages.h"
#include "service/prediction_service.h"

namespace predict {
namespace {

Graph TestGraph(VertexId n, uint64_t seed) {
  return GeneratePreferentialAttachment({n, 6, 0.3, seed}).MoveValue();
}

PredictorOptions TestPredictorOptions() {
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.1;
  options.sampler.seed = 5;
  options.engine.num_workers = 4;
  options.engine.num_threads = 0;
  return options;
}

// A history store with `runs` actual runs of `algorithm`, spread over
// the given worker counts (cycled).
HistoryStore TestHistory(const std::string& algorithm,
                         const std::vector<uint32_t>& worker_counts,
                         int runs = 0) {
  HistoryStore store;
  const int total = runs > 0 ? runs : static_cast<int>(worker_counts.size());
  for (int r = 0; r < total; ++r) {
    RunProfile profile;
    profile.algorithm = algorithm;
    profile.dataset = "hist_ds" + std::to_string(r);
    profile.num_vertices = 1000 + 100 * static_cast<uint64_t>(r);
    profile.num_edges = 6000;
    profile.num_workers = worker_counts[r % worker_counts.size()];
    for (int i = 0; i < 5; ++i) {
      IterationProfile it;
      it.iteration = i;
      it.critical_features[0] = 100.0 + i;
      it.runtime_seconds =
          1.0 + 4.0 / profile.num_workers + 0.01 * i;  // scale-out shape
      profile.iterations.push_back(it);
    }
    store.Add(profile);
  }
  return store;
}

// Everything deterministic in a report, as one comparable string.
// Excludes sample_wall_seconds and accounting (host-execution timing).
std::string Canonical(const Result<PredictionReport>& result) {
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  const PredictionReport& r = *result;
  char buf[64];
  std::string out = r.algorithm + "|" + r.dataset + "|" + r.scenario + "|";
  out += DegradationRungName(r.degradation.rung);
  out += "|" + r.degradation.cause + "|";
  out += std::to_string(r.predicted_iterations) + "|";
  for (const double s : r.per_iteration_seconds) {
    std::snprintf(buf, sizeof(buf), "%.17g,", s);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "|%.17g", r.predicted_superstep_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf), "|%.17g|%.17g",
                r.distribution.p50_seconds, r.distribution.p95_seconds);
  out += buf;
  out += "|" + r.runtime_model_description;
  out += "|" + r.transform_description;
  return out;
}

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisableAll(); }
  void TearDown() override { fail::DisableAll(); }
};

// ------------------------------------------------------------ fail points

TEST_F(FailPointTest, DisarmedInjectsNothing) {
  EXPECT_FALSE(fail::AnyActive());
  EXPECT_TRUE(fail::Inject("never.configured").ok());
  EXPECT_TRUE(fail::Inject("profile.run").ok());
}

TEST_F(FailPointTest, OnceFiresOnFirstHitOnly) {
  ASSERT_TRUE(fail::Configure("t.once", "once").ok());
  EXPECT_TRUE(fail::AnyActive());
  const Status first = fail::Inject("t.once");
  EXPECT_FALSE(first.ok());
  EXPECT_TRUE(first.IsInternal());  // default code
  EXPECT_NE(first.message().find("t.once"), std::string::npos);
  EXPECT_TRUE(fail::Inject("t.once").ok());
  EXPECT_TRUE(fail::Inject("t.once").ok());
}

TEST_F(FailPointTest, TimesFiresFirstNHits) {
  ASSERT_TRUE(fail::Configure("t.times", "times:3").ok());
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(fail::Inject("t.times").ok());
  EXPECT_TRUE(fail::Inject("t.times").ok());
  const fail::FailPointStats stats = fail::StatsFor("t.times");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.triggers, 3u);
}

TEST_F(FailPointTest, EveryNthFiresOnMultiples) {
  ASSERT_TRUE(fail::Configure("t.every", "every:3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!fail::Inject("t.every").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailPointTest, ProbabilityIsDeterministicAndContextKeyed) {
  // Same (seed, context) -> same decision, no matter how many other hits
  // happened in between: the property that makes concurrent chaos
  // schedules replayable.
  ASSERT_TRUE(fail::Configure("t.prob", "prob:0.3:seed=7").ok());
  const uint64_t ctx = fail::HashContext("pagerank|ds1");
  const bool first = !fail::Inject("t.prob", ctx).ok();
  for (int i = 0; i < 50; ++i) {
    fail::Inject("t.prob", fail::HashContext("noise" + std::to_string(i)));
  }
  EXPECT_EQ(!fail::Inject("t.prob", ctx).ok(), first);

  // The trigger fraction over many distinct contexts approximates p.
  int fires = 0;
  const int kContexts = 2000;
  for (int i = 0; i < kContexts; ++i) {
    if (!fail::Inject("t.prob", fail::HashContext("c" + std::to_string(i)))
             .ok()) {
      ++fires;
    }
  }
  const double fraction = static_cast<double>(fires) / kContexts;
  EXPECT_GT(fraction, 0.2);
  EXPECT_LT(fraction, 0.4);
}

TEST_F(FailPointTest, ProbabilityZeroAndOneAreExact) {
  ASSERT_TRUE(fail::Configure("t.p0", "prob:0").ok());
  ASSERT_TRUE(fail::Configure("t.p1", "prob:1").ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fail::Inject("t.p0", fail::HashContext(std::to_string(i)))
                    .ok());
    EXPECT_FALSE(fail::Inject("t.p1", fail::HashContext(std::to_string(i)))
                     .ok());
  }
}

TEST_F(FailPointTest, ErrorCodeOptionSelectsCategory) {
  ASSERT_TRUE(fail::Configure("t.io", "once:code=io").ok());
  ASSERT_TRUE(fail::Configure("t.unavail", "once:code=unavailable").ok());
  EXPECT_TRUE(fail::Inject("t.io").IsIOError());
  EXPECT_EQ(fail::Inject("t.unavail").code(),
            StatusCode::kResourceExhausted);
}

TEST_F(FailPointTest, ConfigureFromStringArmsEachAssignment) {
  ASSERT_TRUE(
      fail::ConfigureFromString("t.a=once; t.b=times:2:code=io").ok());
  EXPECT_FALSE(fail::Inject("t.a").ok());
  EXPECT_TRUE(fail::Inject("t.b").IsIOError());
}

TEST_F(FailPointTest, BadSpecsAreRejected) {
  EXPECT_TRUE(fail::Configure("x", "bogus").IsInvalidArgument());
  EXPECT_TRUE(fail::Configure("x", "times:0").IsInvalidArgument());
  EXPECT_TRUE(fail::Configure("x", "prob:1.5").IsInvalidArgument());
  EXPECT_TRUE(fail::Configure("x", "once:wat=1").IsInvalidArgument());
  EXPECT_TRUE(fail::Configure("", "once").IsInvalidArgument());
  EXPECT_TRUE(fail::ConfigureFromString("justaname").IsInvalidArgument());
  EXPECT_FALSE(fail::AnyActive());  // nothing armed by the failures
}

TEST_F(FailPointTest, RearmingRestartsTheSchedule) {
  ASSERT_TRUE(fail::Configure("t.re", "once").ok());
  EXPECT_FALSE(fail::Inject("t.re").ok());
  EXPECT_TRUE(fail::Inject("t.re").ok());
  ASSERT_TRUE(fail::Configure("t.re", "once").ok());
  EXPECT_FALSE(fail::Inject("t.re").ok());  // fires again after re-arm
}

TEST_F(FailPointTest, DisableDisarmsAndOffSpecDisarms) {
  ASSERT_TRUE(fail::Configure("t.off", "every:1").ok());
  EXPECT_FALSE(fail::Inject("t.off").ok());
  fail::Disable("t.off");
  EXPECT_TRUE(fail::Inject("t.off").ok());
  ASSERT_TRUE(fail::Configure("t.off", "every:1").ok());
  ASSERT_TRUE(fail::Configure("t.off", "off").ok());
  EXPECT_TRUE(fail::Inject("t.off").ok());
  EXPECT_FALSE(fail::AnyActive());
}

// ------------------------------------------------------- retry / deadline

TEST(RetryPolicyTest, BackoffIsExponentialClampedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.5;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 0.2);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.4);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4), 0.5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(10), 0.5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0), 0.0);

  policy.jitter_fraction = 0.5;
  policy.jitter_seed = 42;
  const double jittered = policy.BackoffSeconds(2);
  EXPECT_GE(jittered, 0.1);   // 0.2 * (1 - 0.5)
  EXPECT_LE(jittered, 0.3);   // 0.2 * (1 + 0.5)
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), jittered);  // same seed+attempt
  policy.jitter_seed = 43;
  EXPECT_NE(policy.BackoffSeconds(2), jittered);  // different stream
}

TEST(RetryPolicyTest, RetryableCodes) {
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("x")));
  EXPECT_TRUE(IsRetryableStatus(Status::Internal("x")));
  EXPECT_TRUE(IsRetryableStatus(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
}

TEST(RetryTest, RecoversFromTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  AttemptAccounting accounting;
  auto result = RunWithRetry(
      policy, Deadline::Infinite(), "test",
      [&]() -> Result<int> {
        ++calls;
        if (calls < 3) return Status::Internal("transient");
        return 42;
      },
      &accounting);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(accounting.attempts, 3);
}

TEST(RetryTest, NonRetryableErrorStopsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  auto result = RunWithRetry(policy, Deadline::Infinite(), "test",
                             [&]() -> Result<int> {
                               ++calls;
                               return Status::InvalidArgument("config bug");
                             });
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExhaustedAttemptsReturnLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  AttemptAccounting accounting;
  auto result = RunWithRetry(
      policy, Deadline::Infinite(), "test",
      [&]() -> Result<int> {
        ++calls;
        return Status::IOError("still broken " + std::to_string(calls));
      },
      &accounting);
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_NE(result.status().message().find("still broken 3"),
            std::string::npos);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(accounting.attempts, 3);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline deadline = Deadline::Infinite();
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(std::isinf(deadline.RemainingSeconds()));
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  const Deadline deadline = Deadline::After(0.0);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingSeconds(), 0.0);
  EXPECT_TRUE(Deadline::After(-5.0).Expired());  // clamped, not UB
}

TEST(DeadlineTest, GenerousBudgetHasNotExpired) {
  const Deadline deadline = Deadline::After(3600.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 3500.0);
  EXPECT_LE(deadline.RemainingSeconds(), 3600.0);
}

TEST(RetryTest, ExpiredDeadlineShortCircuitsBeforeTheFirstAttempt) {
  int calls = 0;
  auto result = RunWithRetry(RetryPolicy{}, Deadline::After(0.0), "stage_x",
                             [&]() -> Result<int> {
                               ++calls;
                               return 1;
                             });
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_NE(result.status().message().find("stage_x"), std::string::npos);
  EXPECT_EQ(calls, 0);
}

TEST(RetryTest, RefusesBackoffThatWouldOverrunTheDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_seconds = 60.0;  // far past the budget
  policy.max_backoff_seconds = 60.0;      // don't let the clamp rescue it
  int calls = 0;
  auto result = RunWithRetry(policy, Deadline::After(1.0), "stage_y",
                             [&]() -> Result<int> {
                               ++calls;
                               return Status::Internal("transient");
                             });
  EXPECT_EQ(calls, 1);  // no sleep, no second attempt
  EXPECT_TRUE(result.status().IsInternal());  // original cause survives
  EXPECT_NE(result.status().message().find("giving up after attempt 1"),
            std::string::npos);
}

// --------------------------------------------------------- status annotate

TEST(StatusAnnotateTest, PrependsContextAndKeepsCode) {
  const Status annotated =
      StatusAnnotate(Status::IOError("disk on fire"), "profile_stage");
  EXPECT_TRUE(annotated.IsIOError());
  EXPECT_EQ(annotated.message(), "profile_stage: disk on fire");
}

TEST(StatusAnnotateTest, OkPassesThroughAndEmptyMessageGetsContextOnly) {
  EXPECT_TRUE(StatusAnnotate(Status::OK(), "ctx").ok());
  const Status empty = StatusAnnotate(Status(StatusCode::kInternal, ""), "ctx");
  EXPECT_EQ(empty.message(), "ctx");
}

// ------------------------------------------------------- stage boundaries

class ChaosStageTest : public FailPointTest {};

TEST_F(ChaosStageTest, StageErrorsCarryTheStageName) {
  ASSERT_TRUE(fail::Configure("sample.walk", "once:code=io").ok());
  const Graph g = TestGraph(1500, 11);
  pipeline::SampleStage stage(TestPredictorOptions().sampler);
  const auto result = stage.Run(g);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(result.status().message().rfind("sample_stage: ", 0), 0u)
      << result.status().message();
  EXPECT_NE(result.status().message().find("sample.walk"), std::string::npos);
}

TEST_F(ChaosStageTest, ExpiredDeadlineStopsAStageBeforeItRuns) {
  const Graph g = TestGraph(1500, 11);
  pipeline::SampleStage stage(TestPredictorOptions().sampler);
  pipeline::StageContext ctx;
  ctx.deadline = Deadline::After(0.0);
  const auto result = stage.Run(g, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_EQ(result.status().message().rfind("sample_stage", 0), 0u);
}

TEST_F(ChaosStageTest, StageRetryRecoversFromAnInjectedFault) {
  ASSERT_TRUE(fail::Configure("sample.walk", "once").ok());
  const Graph g = TestGraph(1500, 11);
  pipeline::SampleStage stage(TestPredictorOptions().sampler);
  pipeline::StageContext ctx;
  ctx.retry.max_attempts = 2;
  AttemptAccounting accounting;
  ctx.accounting = &accounting;
  const auto result = stage.Run(g, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(accounting.attempts, 2);
  EXPECT_EQ(fail::StatsFor("sample.walk").triggers, 1u);
}

// ----------------------------------------------- Predictor ladder (chaos)

class ChaosPredictorTest : public FailPointTest {};

TEST_F(ChaosPredictorTest, ZeroFaultPathIsBitIdenticalWithRobustnessOn) {
  const Graph g = TestGraph(2000, 17);
  PredictorOptions plain = TestPredictorOptions();
  PredictorOptions robust = plain;
  robust.robustness.retry.max_attempts = 3;
  robust.robustness.deadline_seconds = 3600.0;
  robust.robustness.degraded_fallbacks = true;

  auto baseline = Predictor(plain).PredictRuntime("pagerank", g, "ds");
  auto hardened = Predictor(robust).PredictRuntime("pagerank", g, "ds");
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(hardened.ok());
  EXPECT_EQ(Canonical(baseline), Canonical(hardened));
  EXPECT_FALSE(hardened->degradation.degraded());
}

TEST_F(ChaosPredictorTest, ProfileFailureFallsBackToHistoryOnly) {
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  const Graph g = TestGraph(2000, 17);
  const HistoryStore history = TestHistory("pagerank", {2, 4, 8});
  PredictorOptions options = TestPredictorOptions();
  options.history = &history;
  options.robustness.degraded_fallbacks = true;

  auto report = Predictor(options).PredictRuntime("pagerank", g, "ds");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->degradation.rung, DegradationRung::kHistoryOnly);
  EXPECT_NE(report->degradation.cause.find("profile_stage"),
            std::string::npos);
  EXPECT_EQ(report->predicted_iterations, 5);  // mean of history runs
  EXPECT_GT(report->predicted_superstep_seconds, 0.0);
  // 3 distinct worker configs -> the Ernest member fits the fallback.
  EXPECT_EQ(report->model_selection.tier, models::ModelTier::kErnest);
}

TEST_F(ChaosPredictorTest, SingleConfigHistoryFallsBackToMeanModel) {
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  const Graph g = TestGraph(2000, 17);
  const HistoryStore history = TestHistory("pagerank", {4}, 2);
  PredictorOptions options = TestPredictorOptions();
  options.history = &history;
  options.robustness.degraded_fallbacks = true;

  auto report = Predictor(options).PredictRuntime("pagerank", g, "ds");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->model_selection.tier, models::ModelTier::kMean);
}

TEST_F(ChaosPredictorTest, NoUsableHistoryIsAnExplicitError) {
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  const Graph g = TestGraph(2000, 17);
  PredictorOptions options = TestPredictorOptions();  // no history at all
  options.robustness.degraded_fallbacks = true;

  auto report = Predictor(options).PredictRuntime("pagerank", g, "ds");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("history-only fallback unavailable"),
            std::string::npos);
  // The original cause rides along in the annotated error.
  EXPECT_NE(report.status().message().find("profile_stage"),
            std::string::npos);
}

TEST_F(ChaosPredictorTest, FallbacksOffMeansFailuresSurface) {
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  const Graph g = TestGraph(2000, 17);
  const HistoryStore history = TestHistory("pagerank", {2, 4});
  PredictorOptions options = TestPredictorOptions();
  options.history = &history;  // available, but fallbacks not enabled

  auto report = Predictor(options).PredictRuntime("pagerank", g, "ds");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().message().rfind("profile_stage: ", 0), 0u);
}

TEST_F(ChaosPredictorTest, ValidationFailuresNeverDegrade) {
  const Graph g = TestGraph(1500, 17);
  const HistoryStore history = TestHistory("pagerank", {2, 4});
  PredictorOptions options = TestPredictorOptions();
  options.history = &history;
  options.robustness.degraded_fallbacks = true;

  auto report = Predictor(options).PredictRuntime("no_such_algorithm", g, "ds");
  EXPECT_TRUE(report.status().IsNotFound());
}

TEST_F(ChaosPredictorTest, RetriesRecoverWithoutDegrading) {
  ASSERT_TRUE(fail::Configure("profile.run", "once").ok());
  const Graph g = TestGraph(2000, 17);
  PredictorOptions options = TestPredictorOptions();
  options.robustness.retry.max_attempts = 2;
  options.robustness.degraded_fallbacks = true;

  auto report = Predictor(options).PredictRuntime("pagerank", g, "ds");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->degradation.degraded());
  EXPECT_EQ(report->accounting.profile.attempts, 2);

  // Bit-identical to the never-faulted run: a retried success is a
  // success, not a different prediction.
  fail::DisableAll();
  auto clean = Predictor(TestPredictorOptions()).PredictRuntime("pagerank", g,
                                                                "ds");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(Canonical(report), Canonical(clean));
}

class ChaosSlaTest : public FailPointTest {};

TEST_F(ChaosSlaTest, RequireFullQualityVetoesDegradedPredictions) {
  // The SLA layer can refuse to admit a job on a degraded prediction:
  // same workload, same generous deadline — the job flips from feasible
  // to rejected purely because the answer came from a fallback rung.
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  const Graph g = TestGraph(2000, 19);
  const HistoryStore history = TestHistory("pagerank", {2, 4, 8});
  PredictorOptions options = TestPredictorOptions();
  options.history = &history;
  options.robustness.degraded_fallbacks = true;

  JobRequest job;
  job.job_name = "nightly_pagerank";
  job.algorithm = "pagerank";
  job.graph = &g;
  job.dataset_name = "ds";
  job.deadline_seconds = 1e9;  // the deadline itself is never the problem

  auto tolerant = AnalyzeFeasibility({job}, options);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  ASSERT_EQ(tolerant->jobs.size(), 1u);
  EXPECT_TRUE(tolerant->jobs[0].feasible);
  EXPECT_FALSE(tolerant->jobs[0].rejected_degraded);
  EXPECT_EQ(tolerant->jobs[0].degradation.rung, DegradationRung::kHistoryOnly);
  EXPECT_NE(tolerant->ToString().find("[degraded]"), std::string::npos);

  job.require_full_quality = true;
  auto strict = AnalyzeFeasibility({job}, options);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_FALSE(strict->jobs[0].feasible);
  EXPECT_TRUE(strict->jobs[0].rejected_degraded);
  EXPECT_FALSE(strict->all_feasible);
  EXPECT_NE(strict->ToString().find("DEGRADED (rejected)"), std::string::npos);

  // Full-quality predictions are untouched by the flag.
  fail::DisableAll();
  auto clean = AnalyzeFeasibility({job}, options);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->jobs[0].feasible);
  EXPECT_FALSE(clean->jobs[0].rejected_degraded);
}

// ----------------------------------------------- service ladder + replay

class ChaosServiceTest : public FailPointTest {};

PredictionRequest PageRankRequest(const Graph& graph) {
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.graph = &graph;
  request.dataset = "ds1";
  return request;
}

TEST_F(ChaosServiceTest, StaleProfileAnswersAcrossCacheEpochs) {
  const Graph g = TestGraph(2000, 23);
  PredictionServiceOptions options;
  options.predictor = TestPredictorOptions();
  options.predictor.robustness.degraded_fallbacks = true;
  options.num_threads = 0;
  PredictionService service(options);

  // Epoch 1: clean run populates the last-good-profile map.
  auto first = service.Predict(PageRankRequest(g));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->degradation.degraded());

  // "Restart": caches drop, then every fresh profile run fails.
  service.ClearCaches();
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  auto second = service.Predict(PageRankRequest(g));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->degradation.rung, DegradationRung::kStaleProfile);
  EXPECT_NE(second->degradation.cause.find("profile.run"), std::string::npos);
  EXPECT_EQ(service.cache_stats().stale_profile_hits, 1u);

  // The stale profile is the same artifact, so the prediction numbers
  // match the clean epoch exactly.
  EXPECT_EQ(first->per_iteration_seconds, second->per_iteration_seconds);
  EXPECT_EQ(first->predicted_superstep_seconds,
            second->predicted_superstep_seconds);
}

TEST_F(ChaosServiceTest, LadderPrefersStaleProfileOverHistoryOnly) {
  const Graph g = TestGraph(2000, 23);
  const HistoryStore history = TestHistory("pagerank", {2, 4});
  PredictionServiceOptions options;
  options.predictor = TestPredictorOptions();
  options.predictor.history = &history;
  options.predictor.robustness.degraded_fallbacks = true;
  options.num_threads = 0;
  PredictionService service(options);

  // No prior profile for this key: history-only is the only rung left.
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  auto cold = service.Predict(PageRankRequest(g));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->degradation.rung, DegradationRung::kHistoryOnly);
  EXPECT_EQ(service.cache_stats().history_only_fallbacks, 1u);

  // Once a clean run exists, the same failure degrades only one rung.
  fail::DisableAll();
  auto clean = service.Predict(PageRankRequest(g));
  ASSERT_TRUE(clean.ok());
  service.ClearCaches();
  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  auto warm = service.Predict(PageRankRequest(g));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->degradation.rung, DegradationRung::kStaleProfile);
}

TEST_F(ChaosServiceTest, ZeroFaultServiceMatchesPredictorWithRobustnessOn) {
  const Graph g = TestGraph(2000, 29);
  PredictionServiceOptions options;
  options.predictor = TestPredictorOptions();
  options.predictor.robustness.retry.max_attempts = 3;
  options.predictor.robustness.deadline_seconds = 3600.0;
  options.predictor.robustness.degraded_fallbacks = true;
  options.num_threads = 2;
  PredictionService service(options);

  auto served = service.Predict(PageRankRequest(g));
  auto direct = Predictor(TestPredictorOptions()).PredictRuntime("pagerank", g,
                                                                 "ds1");
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Canonical(served), Canonical(direct));
}

TEST_F(ChaosServiceTest, SameFaultScheduleReplaysByteIdentically) {
  // Two fresh services, same concurrent batch, same probabilistic fault
  // schedule: context-keyed decisions make the outcome — successes,
  // degradations, and errors alike — identical byte for byte.
  const Graph g1 = TestGraph(2000, 31);
  const Graph g2 = TestGraph(1500, 37);
  const HistoryStore history = TestHistory("pagerank", {2, 4, 8});

  auto run_schedule = [&]() -> std::vector<std::string> {
    fail::DisableAll();
    EXPECT_TRUE(
        fail::ConfigureFromString("profile.run=prob:0.5:seed=9").ok());
    PredictionServiceOptions options;
    options.predictor = TestPredictorOptions();
    options.predictor.history = &history;
    options.predictor.robustness.degraded_fallbacks = true;
    options.num_threads = 4;
    PredictionService service(options);

    std::vector<PredictionRequest> requests;
    for (const Graph* graph : {&g1, &g2}) {
      for (const char* algorithm :
           {"pagerank", "connected_components", "topk_ranking",
            "neighborhood"}) {
        PredictionRequest request;
        request.algorithm = algorithm;
        request.graph = graph;
        request.dataset = graph == &g1 ? "ds1" : "ds2";
        requests.push_back(std::move(request));
      }
    }
    const auto results = service.PredictBatch(requests);
    std::vector<std::string> canonical;
    for (const auto& result : results) canonical.push_back(Canonical(result));
    return canonical;
  };

  const std::vector<std::string> first = run_schedule();
  const std::vector<std::string> second = run_schedule();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "request " << i;
  }
  // The schedule actually injected something (p=0.5 over 8 contexts).
  EXPECT_GT(fail::StatsFor("profile.run").triggers, 0u);
}

// ------------------------------------- delta compaction under injection

class ChaosDeltaCompactionTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisableAll(); }
  void TearDown() override { fail::DisableAll(); }

  static std::vector<Edge> MergedEdges(const EvolvingGraph& g) {
    std::vector<Edge> edges;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      g.ForEachOutEdge(v, [&](VertexId dst, float w) {
        edges.push_back({v, dst, w});
      });
    }
    return edges;
  }
};

TEST_F(ChaosDeltaCompactionTest, ExplicitCompactFaultIsStrongExceptionSafe) {
  EvolvingGraph g(TestGraph(200, 43));
  g.set_compaction_threshold(1e9);
  ASSERT_TRUE(g.Apply({EdgeDelta::Insert(0, 7), EdgeDelta::Insert(3, 9)}).ok());
  const uint64_t fp = g.VersionFingerprint();
  const uint64_t base_fp = g.base().Fingerprint();
  const std::vector<Edge> before = MergedEdges(g);

  ASSERT_TRUE(fail::Configure("graph.compact", "once").ok());
  const Status faulted = g.Compact();
  EXPECT_FALSE(faulted.ok());
  EXPECT_NE(faulted.message().find("graph_compact"), std::string::npos)
      << faulted.message();
  // Nothing changed: base untouched, overlay intact, version stable.
  EXPECT_TRUE(g.dirty());
  EXPECT_EQ(g.base().Fingerprint(), base_fp);
  EXPECT_EQ(g.VersionFingerprint(), fp);
  EXPECT_EQ(MergedEdges(g), before);

  // The retry (fail point consumed) folds the same overlay in cleanly.
  ASSERT_TRUE(g.Compact().ok());
  EXPECT_FALSE(g.dirty());
  EXPECT_EQ(g.VersionFingerprint(), fp);
  EXPECT_EQ(g.base().EdgeSetHash(), fp);
  EXPECT_EQ(MergedEdges(g), before);
}

TEST_F(ChaosDeltaCompactionTest, FaultedAutoCompactionKeepsBatchApplied) {
  EvolvingGraph g(TestGraph(100, 47));
  g.set_compaction_threshold(0.0);  // every Apply trips auto-compaction
  ASSERT_TRUE(fail::Configure("graph.compact", "once").ok());

  EdgeDeltaBatch batch;
  for (VertexId v = 0; v < 70; ++v) batch.push_back(EdgeDelta::Insert(v, 99));
  const Status faulted = g.Apply(batch);
  EXPECT_FALSE(faulted.ok());
  // The batch is fully applied (version + merged view reflect it); only
  // the fold into a fresh CSR is pending.
  EXPECT_TRUE(g.dirty());
  EXPECT_EQ(g.overlay_edges(), 70u);
  uint64_t in99 = 0;
  for (VertexId v = 0; v < 70; ++v) {
    g.ForEachOutNeighbor(v, [&](VertexId d) { in99 += d == 99 ? 1 : 0; });
  }
  EXPECT_GE(in99, 70u);
  const uint64_t fp = g.VersionFingerprint();

  // Retry through Current(): compacts, preserving the version.
  auto current = g.Current();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(g.VersionFingerprint(), fp);
  EXPECT_EQ((*current)->EdgeSetHash(), fp);
}

TEST_F(ChaosDeltaCompactionTest, CachesKeyedOnVersionNeverSeeTornState) {
  // A cache keyed on VersionFingerprint is sound iff every read of a
  // given version yields identical bytes, no matter how many faulted
  // compactions happen in between. Walk the graph through mutate ->
  // faulted compact -> read -> retry -> read and demand one consistent
  // edge list per version.
  EvolvingGraph g(TestGraph(150, 53));
  g.set_compaction_threshold(1e9);
  std::unordered_map<uint64_t, std::vector<Edge>> cache;
  const auto observe = [&](const EvolvingGraph& graph) {
    const std::vector<Edge> edges = MergedEdges(graph);
    const auto [it, inserted] =
        cache.emplace(graph.VersionFingerprint(), edges);
    if (!inserted) {
      EXPECT_EQ(it->second, edges)
          << "two reads of version " << graph.VersionFingerprint()
          << " observed different edge sets";
    }
  };

  observe(g);
  ASSERT_TRUE(g.Apply({EdgeDelta::Insert(1, 2), EdgeDelta::Insert(5, 8)}).ok());
  observe(g);

  ASSERT_TRUE(fail::Configure("graph.compact", "times:2").ok());
  EXPECT_FALSE(g.Compact().ok());
  observe(g);  // post-fault read: same version, same bytes
  EXPECT_FALSE(g.Compact().ok());
  observe(g);
  ASSERT_TRUE(g.Compact().ok());  // third attempt succeeds
  observe(g);  // compacted read of the same version: same bytes

  ASSERT_TRUE(g.Apply({EdgeDelta::Delete(1, 2)}).ok());
  observe(g);
  EXPECT_EQ(cache.size(), 3u);  // 3 distinct versions were reached
}

}  // namespace
}  // namespace predict
