// Cold-path equivalence suite: the CSR-native transforms, bitmap
// sampler, and parallel statistics must be bit-identical to the
// original (seed) implementations, frozen in coldpath_reference.h. Also pins the two cold-path contracts that are not plain
// equivalence: Graph::Fingerprint() memoization (the full-CSR scan runs
// exactly once per Graph across arbitrarily many SampleKey
// constructions) and SamplerOptionsKey never truncating.
//
// The parallel statistics are additionally checked across thread counts
// {0, 1, 2, 8}: host threads only accelerate the computation, never
// change the result (the repo's standing determinism contract).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bsp/thread_pool.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "graph/transforms.h"
#include "pipeline/stages.h"
#include "sampling/sampler.h"
#include "tests/coldpath_reference.h"

namespace predict {
namespace {

// The frozen seed implementations live in tests/coldpath_reference.h
// (shared with bench/cold_path.cc so the equivalence suite and the
// speedup gate pin against one baseline).
namespace refimpl = ::predict::coldpath_reference;

// ===================================================================
// Helpers and fixtures
// ===================================================================

// Bit-level graph equality: structure, weights, fingerprint, and the
// derived in-CSR (order included — algorithms iterate it).
void ExpectGraphsIdentical(const Graph& actual, const Graph& expected) {
  ASSERT_EQ(actual.num_vertices(), expected.num_vertices());
  ASSERT_EQ(actual.num_edges(), expected.num_edges());
  EXPECT_EQ(actual.is_weighted(), expected.is_weighted());
  EXPECT_EQ(actual.Fingerprint(), expected.Fingerprint());
  const auto actual_edges = actual.ToEdgeList();
  const auto expected_edges = expected.ToEdgeList();
  ASSERT_EQ(actual_edges.size(), expected_edges.size());
  for (size_t i = 0; i < actual_edges.size(); ++i) {
    ASSERT_EQ(actual_edges[i], expected_edges[i]) << "edge " << i;
  }
  for (VertexId v = 0; v < actual.num_vertices(); ++v) {
    const auto a_in = actual.in_neighbors(v);
    const auto e_in = expected.in_neighbors(v);
    ASSERT_EQ(a_in.size(), e_in.size()) << "in-degree of " << v;
    for (size_t i = 0; i < a_in.size(); ++i) {
      ASSERT_EQ(a_in[i], e_in[i]) << "in-neighbor " << i << " of " << v;
    }
  }
}

// A messy directed multigraph: parallel edges, self-loops, sinks.
Graph MessyGraph(VertexId n, uint64_t num_edges, uint64_t seed,
                 bool weighted) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const auto src = static_cast<VertexId>(rng.Uniform(n));
    // Bias towards low ids so parallel edges and self-loops occur.
    const auto dst = static_cast<VertexId>(rng.Uniform(n / 4 + 1));
    const float w =
        weighted ? 0.25f * static_cast<float>(1 + rng.Uniform(8)) : 1.0f;
    edges.push_back({src, dst, w});
  }
  return Graph::FromEdges(n, std::move(edges)).MoveValue();
}

// Weighted graph whose unordered pairs carry one weight in both
// directions, so ToUndirected's duplicate resolution cannot be
// order-sensitive.
Graph SymmetricWeightGraph(VertexId n, uint64_t num_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < num_edges; ++i) {
    const auto a = static_cast<VertexId>(rng.Uniform(n));
    const auto b = static_cast<VertexId>(rng.Uniform(n));
    const float w =
        0.5f * static_cast<float>(1 + (std::min(a, b) + std::max(a, b)) % 7);
    edges.push_back({a, b, w});
    if (rng.NextBool(0.4)) edges.push_back({b, a, w});
  }
  return Graph::FromEdges(n, std::move(edges)).MoveValue();
}

std::vector<std::pair<std::string, Graph>> EquivalenceGraphs() {
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back(
      "pa", GeneratePreferentialAttachment({2000, 6, 0.3, 7}).MoveValue());
  graphs.emplace_back("copy", GenerateCopyModelWebGraph(
                                  {1500, 12, 0.7, 0.0, 4, 2000, 11})
                                  .MoveValue());
  graphs.emplace_back("er", GenerateErdosRenyi({1200, 6000, 5}).MoveValue());
  graphs.emplace_back("rmat",
                      GenerateRmat({10, 8192, 0.57, 0.19, 0.19, 3}).MoveValue());
  graphs.emplace_back("chain", GenerateChain(101).MoveValue());
  graphs.emplace_back("star", GenerateStar(64, true).MoveValue());
  graphs.emplace_back("complete", GenerateComplete(12).MoveValue());
  graphs.emplace_back("messy", MessyGraph(300, 2500, 13, false));
  graphs.emplace_back("messy_weighted", MessyGraph(300, 2500, 17, true));
  return graphs;
}

// A deterministic sampled vertex subset in shuffled (non-monotonic)
// order — sampling order defines the subgraph's ids, so it must be
// exercised, not normalized away.
std::vector<VertexId> ShuffledSubset(const Graph& graph, double ratio,
                                     uint64_t seed) {
  Rng rng(seed);
  const uint64_t n = graph.num_vertices();
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(ratio * static_cast<double>(n))));
  const auto picks = rng.SampleWithoutReplacement(n, std::min(k, n));
  return {picks.begin(), picks.end()};
}

// ===================================================================
// Transforms
// ===================================================================

TEST(ColdPathTransforms, InducedSubgraphMatchesReference) {
  for (const auto& [name, graph] : EquivalenceGraphs()) {
    SCOPED_TRACE(name);
    for (const double ratio : {0.1, 0.5, 1.0}) {
      SCOPED_TRACE(ratio);
      const auto vertices = ShuffledSubset(graph, ratio, 99);
      auto actual = InducedSubgraph(graph, vertices);
      auto expected = refimpl::InducedSubgraph(graph, vertices);
      ASSERT_TRUE(actual.ok());
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(actual->original_id, expected->original_id);
      ExpectGraphsIdentical(actual->graph, expected->graph);
    }
  }
}

TEST(ColdPathTransforms, InducedSubgraphRejectsBadInputLikeReference) {
  const Graph g = GenerateChain(10).MoveValue();
  EXPECT_TRUE(InducedSubgraph(g, {1, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(refimpl::InducedSubgraph(g, {1, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(InducedSubgraph(g, {3, 42}).status().IsInvalidArgument());
  EXPECT_TRUE(
      refimpl::InducedSubgraph(g, {3, 42}).status().IsInvalidArgument());
}

TEST(ColdPathTransforms, InducedSubgraphDropsWeightsWhenKeptEdgesUnweighted) {
  // Parent is weighted, but the only surviving edge weighs 1.0; the
  // edge-list implementation rebuilt is_weighted from the kept edges.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(2, 3, 7.0f);
  const Graph g = b.Build().MoveValue();
  ASSERT_TRUE(g.is_weighted());
  auto actual = InducedSubgraph(g, {0, 1});
  auto expected = refimpl::InducedSubgraph(g, {0, 1});
  ASSERT_TRUE(actual.ok());
  EXPECT_FALSE(actual->graph.is_weighted());
  ExpectGraphsIdentical(actual->graph, expected->graph);
}

TEST(ColdPathTransforms, DefaultConstructedGraphHandledLikeReference) {
  // A default Graph has empty (not size-1) offset arrays; transforms
  // must normalize it exactly as the edge-list implementations did.
  const Graph empty;
  ExpectGraphsIdentical(ToUndirected(empty).MoveValue(),
                        refimpl::ToUndirected(empty).MoveValue());
  ExpectGraphsIdentical(Transpose(empty).MoveValue(),
                        refimpl::Transpose(empty).MoveValue());
  auto actual = InducedSubgraph(empty, {});
  auto expected = refimpl::InducedSubgraph(empty, {});
  ASSERT_TRUE(actual.ok());
  ASSERT_TRUE(expected.ok());
  ExpectGraphsIdentical(actual->graph, expected->graph);
}

TEST(ColdPathTransforms, TransposeMatchesReference) {
  for (const auto& [name, graph] : EquivalenceGraphs()) {
    SCOPED_TRACE(name);
    auto actual = Transpose(graph);
    auto expected = refimpl::Transpose(graph);
    ASSERT_TRUE(actual.ok());
    ASSERT_TRUE(expected.ok());
    ExpectGraphsIdentical(*actual, *expected);
  }
}

TEST(ColdPathTransforms, ToUndirectedMatchesReference) {
  for (const auto& [name, graph] : EquivalenceGraphs()) {
    if (graph.is_weighted()) continue;  // covered below with symmetric weights
    SCOPED_TRACE(name);
    auto actual = ToUndirected(graph);
    auto expected = refimpl::ToUndirected(graph);
    ASSERT_TRUE(actual.ok());
    ASSERT_TRUE(expected.ok());
    ExpectGraphsIdentical(*actual, *expected);
  }
}

TEST(ColdPathTransforms, ToUndirectedMatchesReferenceOnSymmetricWeights) {
  // Weighted equivalence needs pair-symmetric weights: when (u,v) and
  // (v,u) disagree, the seed's non-stable sort left the surviving weight
  // unspecified (the rewrite fixes it to "forward edge wins").
  const Graph g = SymmetricWeightGraph(200, 1500, 23);
  ASSERT_TRUE(g.is_weighted());
  auto actual = ToUndirected(g);
  auto expected = refimpl::ToUndirected(g);
  ASSERT_TRUE(actual.ok());
  ASSERT_TRUE(expected.ok());
  ExpectGraphsIdentical(*actual, *expected);
}

TEST(ColdPathTransforms, ToUndirectedForwardWeightWinsOverReverse) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(1, 0, 5.0f);
  auto und = ToUndirected(b.Build().MoveValue());
  ASSERT_TRUE(und.ok());
  ASSERT_EQ(und->num_edges(), 2u);
  // Each direction keeps its own forward edge's weight.
  EXPECT_EQ(und->out_weights(0)[0], 2.0f);
  EXPECT_EQ(und->out_weights(1)[0], 5.0f);
}

TEST(ColdPathTransforms, BuilderDedupMatchesReferenceSort) {
  for (const uint64_t seed : {29ull, 31ull}) {
    SCOPED_TRACE(seed);
    const Graph messy = MessyGraph(150, 4000, seed, false);
    std::vector<Edge> edges = messy.ToEdgeList();

    GraphBuilder b(150);
    b.AddEdges(edges);
    b.set_dedup_parallel_edges(true);
    const Graph actual = b.Build().MoveValue();

    // Reference: the seed's whole-list comparator sort + unique.
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
    const Graph expected = Graph::FromEdges(150, std::move(edges)).MoveValue();
    ExpectGraphsIdentical(actual, expected);
  }
}

TEST(ColdPathTransforms, BuilderDedupKeepsFirstAddedWeight) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(0, 1, 3.0f);
  b.set_dedup_parallel_edges(true);
  const Graph g = b.Build().MoveValue();
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_weights(0)[0], 2.0f);
}

// ===================================================================
// Samplers (bitmap PickSet vs. the seed's hash set)
// ===================================================================

TEST(ColdPathSamplers, SampleVerticesMatchesReference) {
  const Graph pa = GeneratePreferentialAttachment({2000, 6, 0.3, 7}).MoveValue();
  const Graph er = GenerateErdosRenyi({1200, 6000, 5}).MoveValue();
  for (const Graph* graph : {&pa, &er}) {
    for (const SamplerKind kind :
         {SamplerKind::kRandomJump, SamplerKind::kBiasedRandomJump,
          SamplerKind::kMetropolisHastingsRW, SamplerKind::kForestFire}) {
      for (const uint64_t seed : {1ull, 42ull}) {
        SamplerOptions options;
        options.kind = kind;
        options.sampling_ratio = 0.1;
        options.seed = seed;
        SCOPED_TRACE(std::string(SamplerKindName(kind)) + " seed=" +
                     std::to_string(seed));
        auto actual = SampleVertices(*graph, options);
        ASSERT_TRUE(actual.ok());
        EXPECT_EQ(*actual, refimpl::SampleVertices(*graph, options));
      }
    }
  }
}

// ===================================================================
// Parallel statistics: seed-equivalent and thread-count invariant
// ===================================================================

TEST(ColdPathStats, EffectiveDiameterBitIdenticalAcrossThreadCounts) {
  for (const auto& [name, graph] : EquivalenceGraphs()) {
    SCOPED_TRACE(name);
    const double expected = refimpl::EffectiveDiameter(graph, 0.9, 24, 7);
    EXPECT_EQ(EffectiveDiameter(graph, 0.9, 24, 7), expected) << "no pool";
    for (const uint32_t threads : {0u, 1u, 2u, 8u}) {
      bsp::ThreadPool pool(threads);
      EXPECT_EQ(EffectiveDiameter(graph, 0.9, 24, 7, &pool), expected)
          << "threads=" << threads;
    }
  }
}

TEST(ColdPathStats, ClusteringBitIdenticalAcrossThreadCounts) {
  for (const auto& [name, graph] : EquivalenceGraphs()) {
    SCOPED_TRACE(name);
    // Sampled estimate and the exhaustive (num_samples >= |V|) path.
    for (const uint32_t samples : {150u, 1u << 20}) {
      SCOPED_TRACE(samples);
      const double expected =
          refimpl::AverageClusteringCoefficient(graph, samples, 7);
      EXPECT_EQ(AverageClusteringCoefficient(graph, samples, 7), expected)
          << "no pool";
      for (const uint32_t threads : {0u, 1u, 2u, 8u}) {
        bsp::ThreadPool pool(threads);
        EXPECT_EQ(AverageClusteringCoefficient(graph, samples, 7, &pool),
                  expected)
            << "threads=" << threads;
      }
    }
  }
}

// ===================================================================
// Fingerprint memoization
// ===================================================================

TEST(ColdPathFingerprint, SampleKeyHashesCsrExactlyOncePerGraph) {
  const Graph g = GeneratePreferentialAttachment({1000, 5, 0.3, 3}).MoveValue();
  SamplerOptions options;

  const uint64_t before = Graph::FingerprintComputationsForTest();
  const uint64_t fp = g.Fingerprint();
  // Many SampleKey constructions — the per-request cache-key path in
  // PredictionService — must all serve from the memoized value.
  for (int i = 0; i < 100; ++i) {
    const auto key = pipeline::SampleKey::For(g, options);
    ASSERT_EQ(key.graph_fingerprint, fp);
  }
  EXPECT_EQ(g.Fingerprint(), fp);
  EXPECT_EQ(Graph::FingerprintComputationsForTest() - before, 1u);
}

TEST(ColdPathFingerprint, CopiesAndMovesCarryTheCache) {
  const Graph g = GenerateErdosRenyi({500, 2000, 9}).MoveValue();
  const uint64_t fp = g.Fingerprint();

  const uint64_t before = Graph::FingerprintComputationsForTest();
  Graph copy = g;
  EXPECT_EQ(copy.Fingerprint(), fp);
  Graph moved = std::move(copy);
  EXPECT_EQ(moved.Fingerprint(), fp);
  Graph assigned;
  assigned = moved;
  EXPECT_EQ(assigned.Fingerprint(), fp);
  EXPECT_EQ(Graph::FingerprintComputationsForTest(), before);

  // A structurally identical graph built fresh recomputes — and matches.
  const Graph rebuilt = GenerateErdosRenyi({500, 2000, 9}).MoveValue();
  EXPECT_EQ(rebuilt.Fingerprint(), fp);
  EXPECT_EQ(Graph::FingerprintComputationsForTest(), before + 1);
}

// ===================================================================
// SamplerOptionsKey formatting
// ===================================================================

TEST(ColdPathSamplerKey, NeverTruncatesWideValues) {
  SamplerOptions options;
  // Worst-case %.17g widths: subnormals print 17 significand digits
  // plus a 3-digit exponent.
  options.sampling_ratio = 5e-324;
  options.jump_probability = 1.0 / 3.0;
  options.seed_fraction = 0.12345678901234567;
  options.forward_burning_p = 6.2831853071795864e-301;
  options.seed = UINT64_MAX;

  const std::string key = SamplerOptionsKey(options);
  char expected[1024];
  std::snprintf(expected, sizeof(expected),
                "%s;ratio=%.17g;jump=%.17g;seedfrac=%.17g;burn=%.17g;seed=%llu",
                SamplerKindName(options.kind), options.sampling_ratio,
                options.jump_probability, options.seed_fraction,
                options.forward_burning_p,
                static_cast<unsigned long long>(options.seed));
  EXPECT_EQ(key, expected);

  // The discriminating suffix survives: options differing only in the
  // final field produce distinct keys.
  SamplerOptions other = options;
  other.seed = UINT64_MAX - 1;
  EXPECT_NE(SamplerOptionsKey(other), key);
}

}  // namespace
}  // namespace predict
