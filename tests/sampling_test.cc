// Tests for sampling/: RJ, BRJ, MHRW, FF and the sample-quality report.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "sampling/quality.h"
#include "sampling/sampler.h"

namespace predict {
namespace {

Graph ScaleFree(VertexId n = 20000, uint64_t seed = 5) {
  return GeneratePreferentialAttachment({n, 8, 0.3, seed}).MoveValue();
}

SamplerOptions Options(SamplerKind kind, double ratio, uint64_t seed = 1) {
  SamplerOptions options;
  options.kind = kind;
  options.sampling_ratio = ratio;
  options.seed = seed;
  return options;
}

// -------------------------------------------------------------- validation

TEST(SamplerTest, RejectsBadRatio) {
  const Graph g = ScaleFree(1000);
  EXPECT_TRUE(SampleVertices(g, Options(SamplerKind::kRandomJump, 0.0))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SampleVertices(g, Options(SamplerKind::kRandomJump, 1.5))
                  .status()
                  .IsInvalidArgument());
}

TEST(SamplerTest, RejectsEmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.Build().MoveValue();
  EXPECT_TRUE(SampleVertices(g, Options(SamplerKind::kRandomJump, 0.1))
                  .status()
                  .IsInvalidArgument());
}

TEST(SamplerTest, RejectsBadJumpProbability) {
  const Graph g = ScaleFree(1000);
  SamplerOptions options = Options(SamplerKind::kRandomJump, 0.1);
  options.jump_probability = 2.0;
  EXPECT_TRUE(SampleVertices(g, options).status().IsInvalidArgument());
}

TEST(SamplerTest, KindNames) {
  EXPECT_STREQ(SamplerKindName(SamplerKind::kRandomJump), "RJ");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kBiasedRandomJump), "BRJ");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kMetropolisHastingsRW), "MHRW");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kForestFire), "FF");
}

// ---------------------------------------------- ratio honored, all kinds

class RatioSweep
    : public ::testing::TestWithParam<std::tuple<SamplerKind, double>> {};

TEST_P(RatioSweep, SampleSizeMatchesRatioAndIsDistinct) {
  const auto [kind, ratio] = GetParam();
  const Graph g = ScaleFree(10000);
  auto vertices = SampleVertices(g, Options(kind, ratio));
  ASSERT_TRUE(vertices.ok());
  const uint64_t expected =
      static_cast<uint64_t>(std::llround(ratio * 10000.0));
  EXPECT_EQ(vertices->size(), expected);
  std::set<VertexId> unique(vertices->begin(), vertices->end());
  EXPECT_EQ(unique.size(), vertices->size());
  for (const VertexId v : *vertices) EXPECT_LT(v, 10000u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRatios, RatioSweep,
    ::testing::Combine(::testing::Values(SamplerKind::kRandomJump,
                                         SamplerKind::kBiasedRandomJump,
                                         SamplerKind::kMetropolisHastingsRW,
                                         SamplerKind::kForestFire),
                       ::testing::Values(0.01, 0.1, 0.25)));

TEST(SamplerTest, FullRatioReturnsEveryVertex) {
  const Graph g = ScaleFree(500);
  auto vertices =
      SampleVertices(g, Options(SamplerKind::kBiasedRandomJump, 1.0));
  ASSERT_TRUE(vertices.ok());
  EXPECT_EQ(vertices->size(), 500u);
}

TEST(SamplerTest, DeterministicForSeed) {
  const Graph g = ScaleFree(5000);
  auto a = SampleVertices(g, Options(SamplerKind::kBiasedRandomJump, 0.1, 3));
  auto b = SampleVertices(g, Options(SamplerKind::kBiasedRandomJump, 0.1, 3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SamplerTest, DifferentSeedsDiffer) {
  const Graph g = ScaleFree(5000);
  auto a = SampleVertices(g, Options(SamplerKind::kRandomJump, 0.1, 3));
  auto b = SampleVertices(g, Options(SamplerKind::kRandomJump, 0.1, 4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

// ------------------------------------------------------------------- BRJ

TEST(BrjTest, SeedsAreHighOutDegreeVertices) {
  // Star graph: vertex 0 has out-degree n-1, everyone else 0. BRJ must
  // start from vertex 0 and reach spokes; RJ may start anywhere.
  const Graph g = GenerateStar(1000).MoveValue();
  SamplerOptions options = Options(SamplerKind::kBiasedRandomJump, 0.05, 1);
  options.seed_fraction = 0.001;  // exactly 1 seed = the hub
  auto vertices = SampleVertices(g, options);
  ASSERT_TRUE(vertices.ok());
  EXPECT_EQ((*vertices)[0], 0u);  // the hub is the first pick
}

TEST(BrjTest, BetterConnectivityThanRjAtSmallRatios) {
  // On a scale-free graph, hub-seeded samples should keep a larger
  // connected fraction than uniform-restart samples.
  const Graph g = ScaleFree(20000, 9);
  double brj_lcc = 0.0, rj_lcc = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto brj = SampleGraph(g, Options(SamplerKind::kBiasedRandomJump, 0.05, seed));
    auto rj = SampleGraph(g, Options(SamplerKind::kRandomJump, 0.05, seed));
    ASSERT_TRUE(brj.ok());
    ASSERT_TRUE(rj.ok());
    brj_lcc += LargestComponentFraction(brj->subgraph);
    rj_lcc += LargestComponentFraction(rj->subgraph);
  }
  EXPECT_GE(brj_lcc, rj_lcc);
}

// ----------------------------------------------------------- sample graph

TEST(SampleGraphTest, InducedSubgraphAndRatio) {
  const Graph g = ScaleFree(10000);
  auto sample = SampleGraph(g, Options(SamplerKind::kBiasedRandomJump, 0.1));
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->subgraph.num_vertices(), 1000u);
  EXPECT_NEAR(sample->realized_ratio, 0.1, 1e-9);
  EXPECT_GT(sample->subgraph.num_edges(), 0u);
  EXPECT_EQ(sample->vertices.size(), 1000u);
}

TEST(SampleGraphTest, SampleEdgesExistInOriginal) {
  const Graph g = ScaleFree(2000);
  auto sample = SampleGraph(g, Options(SamplerKind::kRandomJump, 0.2));
  ASSERT_TRUE(sample.ok());
  for (VertexId s = 0; s < sample->subgraph.num_vertices(); ++s) {
    const VertexId orig_src = sample->vertices[s];
    for (const VertexId t : sample->subgraph.out_neighbors(s)) {
      const VertexId orig_dst = sample->vertices[t];
      const auto neighbors = g.out_neighbors(orig_src);
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), orig_dst),
                neighbors.end());
    }
  }
}

TEST(SamplerTest, ChainDoesNotStarve) {
  // Degenerate structure (§3.5): the walk starves, but the sampler must
  // still honor the requested ratio via uniform fill.
  const Graph g = GenerateChain(1000).MoveValue();
  auto vertices = SampleVertices(g, Options(SamplerKind::kRandomJump, 0.2));
  ASSERT_TRUE(vertices.ok());
  EXPECT_EQ(vertices->size(), 200u);
}

// ---------------------------------------------------------------- quality

TEST(QualityTest, IdenticalSampleScoresPerfectly) {
  const Graph g = ScaleFree(2000);
  Sample sample;
  sample.vertices.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) sample.vertices[v] = v;
  sample.subgraph = ScaleFree(2000);
  sample.realized_ratio = 1.0;
  const SampleQualityReport report = EvaluateSampleQuality(g, sample, 16);
  EXPECT_NEAR(report.out_degree_d_statistic, 0.0, 1e-9);
  EXPECT_NEAR(report.in_degree_d_statistic, 0.0, 1e-9);
  EXPECT_NEAR(report.MeanDStatistic(), 0.0, 1e-9);
}

TEST(QualityTest, BrjSampleTracksDegreeShape) {
  const Graph g = ScaleFree(20000);
  auto sample = SampleGraph(g, Options(SamplerKind::kBiasedRandomJump, 0.1));
  ASSERT_TRUE(sample.ok());
  const SampleQualityReport report = EvaluateSampleQuality(g, *sample, 16);
  // Loose bound: degree D-statistics under 0.5 for a reasonable sampler.
  EXPECT_LT(report.MeanDStatistic(), 0.5);
  EXPECT_GT(report.sample_largest_component, 0.3);
}

TEST(QualityTest, ToStringContainsFields) {
  SampleQualityReport report;
  report.out_degree_d_statistic = 0.25;
  EXPECT_NE(report.ToString().find("D(out)=0.250"), std::string::npos);
}

// --------------------------------------------------------- segmented walks

SamplerOptions SegmentedOptions(SamplerKind kind, double ratio,
                                uint64_t segment_steps, uint64_t seed = 1) {
  SamplerOptions options = Options(kind, ratio, seed);
  options.walk_segment_steps = segment_steps;
  return options;
}

TEST(SegmentedSamplerTest, DeterministicForSeed) {
  const Graph g = ScaleFree(6000);
  const SamplerOptions options =
      SegmentedOptions(SamplerKind::kRandomJump, 0.1, 128);
  auto a = SampleVertices(g, options);
  auto b = SampleVertices(g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), 600u);
}

TEST(SegmentedSamplerTest, SegmentLengthIsPartOfTheCacheKey) {
  SamplerOptions classic = Options(SamplerKind::kRandomJump, 0.1);
  EXPECT_EQ(SamplerOptionsKey(classic).find(";seg="), std::string::npos);
  SamplerOptions segmented =
      SegmentedOptions(SamplerKind::kRandomJump, 0.1, 128);
  EXPECT_NE(SamplerOptionsKey(segmented).find(";seg=128"), std::string::npos);
  EXPECT_NE(SamplerOptionsKey(classic), SamplerOptionsKey(segmented));
}

TEST(SegmentedSamplerTest, RejectsNonJumpSamplers) {
  const Graph g = ScaleFree(2000);
  for (const SamplerKind kind :
       {SamplerKind::kMetropolisHastingsRW, SamplerKind::kForestFire}) {
    EXPECT_TRUE(SampleVertices(g, SegmentedOptions(kind, 0.1, 64))
                    .status()
                    .IsInvalidArgument());
  }
}

TEST(SegmentedSamplerTest, RecordedSampleMatchesPlainSample) {
  const Graph g = ScaleFree(6000);
  for (const SamplerKind kind :
       {SamplerKind::kRandomJump, SamplerKind::kBiasedRandomJump}) {
    const SamplerOptions options = SegmentedOptions(kind, 0.1, 200);
    SampleWalkRecord record;
    auto recorded = SampleGraphRecorded(g, options, &record);
    auto plain = SampleGraph(g, options);
    ASSERT_TRUE(recorded.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(recorded->vertices, plain->vertices);
    EXPECT_EQ(recorded->subgraph.Fingerprint(), plain->subgraph.Fingerprint());
    EXPECT_TRUE(record.supports_incremental);
    EXPECT_EQ(record.graph_fingerprint, g.Fingerprint());
    ASSERT_GT(record.segment_offsets.size(), 1u);
    EXPECT_EQ(record.segment_offsets.back(), record.visits.size());
    // Every recorded visit is marked touched.
    for (const VertexId v : record.visits) EXPECT_TRUE(record.touched[v]);
    if (kind == SamplerKind::kBiasedRandomJump) {
      EXPECT_FALSE(record.brj_seeds.empty());
    }
  }
}

TEST(SegmentedSamplerTest, ClassicRecordDoesNotSupportIncremental) {
  const Graph g = ScaleFree(2000);
  SampleWalkRecord record;
  auto sample =
      SampleGraphRecorded(g, Options(SamplerKind::kRandomJump, 0.1), &record);
  ASSERT_TRUE(sample.ok());
  EXPECT_FALSE(record.supports_incremental);
}

// ----------------------------------------------------- incremental resample

// Applies deterministic churn to `base` and returns (mutated graph,
// dirty vertex set). `base` must already be canonical.
std::pair<Graph, std::vector<VertexId>> Mutate(const Graph& base,
                                               double fraction,
                                               uint64_t seed) {
  EvolvingGraph evolving(base);
  auto batch = GenerateChurn(evolving.base(),
                             {.fraction = fraction, .seed = seed});
  EXPECT_TRUE(batch.ok());
  EXPECT_TRUE(evolving.Apply(*batch).ok());
  auto current = evolving.Current();
  EXPECT_TRUE(current.ok());
  Graph mutated = **current;
  std::vector<VertexId> dirty = DirtyOutVertices(base, mutated);
  return {std::move(mutated), std::move(dirty)};
}

TEST(IncrementalSampleTest, BitIdenticalToColdResampleOnMutatedGraph) {
  const Graph base = EvolvingGraph::Canonicalize(ScaleFree(8000));
  const SamplerOptions options =
      SegmentedOptions(SamplerKind::kRandomJump, 0.1, 256);
  SampleWalkRecord record;
  auto original = SampleGraphRecorded(base, options, &record);
  ASSERT_TRUE(original.ok());

  // Surgical churn: mutate the out-row of (a) the least-visited walked
  // vertex — only the few segments that stepped on it must re-walk — and
  // (b) an unvisited vertex, which no segment needs to care about.
  std::vector<uint64_t> visit_count(base.num_vertices(), 0);
  for (const VertexId v : record.visits) ++visit_count[v];
  VertexId rare = 0;
  uint64_t rare_count = ~uint64_t{0};
  VertexId unvisited = 0;
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    if (visit_count[v] != 0 && visit_count[v] < rare_count) {
      rare = v;
      rare_count = visit_count[v];
    }
    if (!record.touched[v]) unvisited = v;
  }
  ASSERT_FALSE(record.touched[unvisited]);
  EvolvingGraph evolving(base);
  ASSERT_TRUE(evolving
                  .Apply({EdgeDelta::Insert(rare, unvisited),
                          EdgeDelta::Insert(unvisited, rare)})
                  .ok());
  auto current = evolving.Current();
  ASSERT_TRUE(current.ok());
  const Graph mutated = **current;
  const std::vector<VertexId> dirty = DirtyOutVertices(base, mutated);
  ASSERT_FALSE(dirty.empty());

  SampleWalkRecord updated;
  auto incremental = ResampleIncremental(mutated, dirty, record, &updated);
  ASSERT_TRUE(incremental.ok());
  EXPECT_FALSE(incremental->full_resample);
  EXPECT_GT(incremental->segments_reused, 0u);
  EXPECT_LE(incremental->segments_reused, incremental->segments_total);

  SampleWalkRecord cold_record;
  auto cold = SampleGraphRecorded(mutated, options, &cold_record);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(incremental->sample.vertices, cold->vertices);
  EXPECT_EQ(incremental->sample.subgraph.Fingerprint(),
            cold->subgraph.Fingerprint());
  EXPECT_EQ(incremental->sample.realized_ratio, cold->realized_ratio);
  // The updated record must be exactly what a cold recorded walk writes:
  // it is the splice source for the *next* mutation.
  EXPECT_EQ(updated.graph_fingerprint, cold_record.graph_fingerprint);
  EXPECT_EQ(updated.segment_offsets, cold_record.segment_offsets);
  EXPECT_EQ(updated.visits, cold_record.visits);
  EXPECT_EQ(updated.touched, cold_record.touched);
}

TEST(IncrementalSampleTest, BrjReusesWhenSeedSetIsStable) {
  // Scale-free hubs have a wide degree margin: sub-percent churn does
  // not reorder the top-degree seed set, so BRJ stays incremental.
  const Graph base = EvolvingGraph::Canonicalize(ScaleFree(8000, 11));
  const SamplerOptions options =
      SegmentedOptions(SamplerKind::kBiasedRandomJump, 0.1, 256);
  SampleWalkRecord record;
  ASSERT_TRUE(SampleGraphRecorded(base, options, &record).ok());

  auto [mutated, dirty] = Mutate(base, 0.001, 13);
  SampleWalkRecord updated;
  auto incremental = ResampleIncremental(mutated, dirty, record, &updated);
  ASSERT_TRUE(incremental.ok());

  SampleWalkRecord cold_record;
  auto cold = SampleGraphRecorded(mutated, options, &cold_record);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(incremental->sample.vertices, cold->vertices);
  EXPECT_EQ(incremental->sample.subgraph.Fingerprint(),
            cold->subgraph.Fingerprint());
  EXPECT_EQ(updated.brj_seeds, cold_record.brj_seeds);
}

TEST(IncrementalSampleTest, BrjSeedShiftForcesFullResample) {
  // 200 vertices, BRJ keeps k = 2 seeds. Vertices 0 and 1 are the hubs;
  // the churn promotes vertex 5 past both, shifting the seed set.
  std::vector<Edge> edges;
  for (VertexId d = 10; d < 60; ++d) edges.push_back({0, d, 1.0f});
  for (VertexId d = 10; d < 50; ++d) edges.push_back({1, d, 1.0f});
  for (VertexId v = 2; v < 199; ++v) edges.push_back({v, v + 1, 1.0f});
  const Graph base = EvolvingGraph::Canonicalize(
      Graph::FromEdges(200, std::move(edges)).MoveValue());

  const SamplerOptions options =
      SegmentedOptions(SamplerKind::kBiasedRandomJump, 0.2, 64);
  SampleWalkRecord record;
  ASSERT_TRUE(SampleGraphRecorded(base, options, &record).ok());

  EvolvingGraph evolving(base);
  EdgeDeltaBatch batch;
  for (VertexId d = 100; d < 180; ++d) batch.push_back(EdgeDelta::Insert(5, d));
  ASSERT_TRUE(evolving.Apply(batch).ok());
  auto current = evolving.Current();
  ASSERT_TRUE(current.ok());
  const Graph& mutated = **current;
  const std::vector<VertexId> dirty = DirtyOutVertices(base, mutated);

  SampleWalkRecord updated;
  auto incremental = ResampleIncremental(mutated, dirty, record, &updated);
  ASSERT_TRUE(incremental.ok());
  EXPECT_TRUE(incremental->full_resample);
  auto cold = SampleGraph(mutated, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(incremental->sample.vertices, cold->vertices);
}

TEST(IncrementalSampleTest, UnsegmentedRecordFallsBackToFullResample) {
  const Graph base = EvolvingGraph::Canonicalize(ScaleFree(2000));
  const SamplerOptions options = Options(SamplerKind::kRandomJump, 0.1);
  SampleWalkRecord record;
  ASSERT_TRUE(SampleGraphRecorded(base, options, &record).ok());

  auto [mutated, dirty] = Mutate(base, 0.01, 3);
  SampleWalkRecord updated;
  auto incremental = ResampleIncremental(mutated, dirty, record, &updated);
  ASSERT_TRUE(incremental.ok());
  EXPECT_TRUE(incremental->full_resample);
  EXPECT_EQ(incremental->segments_reused, 0u);
  auto cold = SampleGraph(mutated, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(incremental->sample.vertices, cold->vertices);
}

TEST(IncrementalSampleTest, RejectsOutOfRangeDirtyVertex) {
  const Graph base = EvolvingGraph::Canonicalize(ScaleFree(2000));
  const SamplerOptions options =
      SegmentedOptions(SamplerKind::kRandomJump, 0.1, 128);
  SampleWalkRecord record;
  ASSERT_TRUE(SampleGraphRecorded(base, options, &record).ok());
  SampleWalkRecord updated;
  EXPECT_TRUE(ResampleIncremental(base, {99999}, record, &updated)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace predict
