// Tests for sampling/: RJ, BRJ, MHRW, FF and the sample-quality report.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "graph/stats.h"
#include "sampling/quality.h"
#include "sampling/sampler.h"

namespace predict {
namespace {

Graph ScaleFree(VertexId n = 20000, uint64_t seed = 5) {
  return GeneratePreferentialAttachment({n, 8, 0.3, seed}).MoveValue();
}

SamplerOptions Options(SamplerKind kind, double ratio, uint64_t seed = 1) {
  SamplerOptions options;
  options.kind = kind;
  options.sampling_ratio = ratio;
  options.seed = seed;
  return options;
}

// -------------------------------------------------------------- validation

TEST(SamplerTest, RejectsBadRatio) {
  const Graph g = ScaleFree(1000);
  EXPECT_TRUE(SampleVertices(g, Options(SamplerKind::kRandomJump, 0.0))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SampleVertices(g, Options(SamplerKind::kRandomJump, 1.5))
                  .status()
                  .IsInvalidArgument());
}

TEST(SamplerTest, RejectsEmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.Build().MoveValue();
  EXPECT_TRUE(SampleVertices(g, Options(SamplerKind::kRandomJump, 0.1))
                  .status()
                  .IsInvalidArgument());
}

TEST(SamplerTest, RejectsBadJumpProbability) {
  const Graph g = ScaleFree(1000);
  SamplerOptions options = Options(SamplerKind::kRandomJump, 0.1);
  options.jump_probability = 2.0;
  EXPECT_TRUE(SampleVertices(g, options).status().IsInvalidArgument());
}

TEST(SamplerTest, KindNames) {
  EXPECT_STREQ(SamplerKindName(SamplerKind::kRandomJump), "RJ");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kBiasedRandomJump), "BRJ");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kMetropolisHastingsRW), "MHRW");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kForestFire), "FF");
}

// ---------------------------------------------- ratio honored, all kinds

class RatioSweep
    : public ::testing::TestWithParam<std::tuple<SamplerKind, double>> {};

TEST_P(RatioSweep, SampleSizeMatchesRatioAndIsDistinct) {
  const auto [kind, ratio] = GetParam();
  const Graph g = ScaleFree(10000);
  auto vertices = SampleVertices(g, Options(kind, ratio));
  ASSERT_TRUE(vertices.ok());
  const uint64_t expected =
      static_cast<uint64_t>(std::llround(ratio * 10000.0));
  EXPECT_EQ(vertices->size(), expected);
  std::set<VertexId> unique(vertices->begin(), vertices->end());
  EXPECT_EQ(unique.size(), vertices->size());
  for (const VertexId v : *vertices) EXPECT_LT(v, 10000u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndRatios, RatioSweep,
    ::testing::Combine(::testing::Values(SamplerKind::kRandomJump,
                                         SamplerKind::kBiasedRandomJump,
                                         SamplerKind::kMetropolisHastingsRW,
                                         SamplerKind::kForestFire),
                       ::testing::Values(0.01, 0.1, 0.25)));

TEST(SamplerTest, FullRatioReturnsEveryVertex) {
  const Graph g = ScaleFree(500);
  auto vertices =
      SampleVertices(g, Options(SamplerKind::kBiasedRandomJump, 1.0));
  ASSERT_TRUE(vertices.ok());
  EXPECT_EQ(vertices->size(), 500u);
}

TEST(SamplerTest, DeterministicForSeed) {
  const Graph g = ScaleFree(5000);
  auto a = SampleVertices(g, Options(SamplerKind::kBiasedRandomJump, 0.1, 3));
  auto b = SampleVertices(g, Options(SamplerKind::kBiasedRandomJump, 0.1, 3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SamplerTest, DifferentSeedsDiffer) {
  const Graph g = ScaleFree(5000);
  auto a = SampleVertices(g, Options(SamplerKind::kRandomJump, 0.1, 3));
  auto b = SampleVertices(g, Options(SamplerKind::kRandomJump, 0.1, 4));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

// ------------------------------------------------------------------- BRJ

TEST(BrjTest, SeedsAreHighOutDegreeVertices) {
  // Star graph: vertex 0 has out-degree n-1, everyone else 0. BRJ must
  // start from vertex 0 and reach spokes; RJ may start anywhere.
  const Graph g = GenerateStar(1000).MoveValue();
  SamplerOptions options = Options(SamplerKind::kBiasedRandomJump, 0.05, 1);
  options.seed_fraction = 0.001;  // exactly 1 seed = the hub
  auto vertices = SampleVertices(g, options);
  ASSERT_TRUE(vertices.ok());
  EXPECT_EQ((*vertices)[0], 0u);  // the hub is the first pick
}

TEST(BrjTest, BetterConnectivityThanRjAtSmallRatios) {
  // On a scale-free graph, hub-seeded samples should keep a larger
  // connected fraction than uniform-restart samples.
  const Graph g = ScaleFree(20000, 9);
  double brj_lcc = 0.0, rj_lcc = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto brj = SampleGraph(g, Options(SamplerKind::kBiasedRandomJump, 0.05, seed));
    auto rj = SampleGraph(g, Options(SamplerKind::kRandomJump, 0.05, seed));
    ASSERT_TRUE(brj.ok());
    ASSERT_TRUE(rj.ok());
    brj_lcc += LargestComponentFraction(brj->subgraph);
    rj_lcc += LargestComponentFraction(rj->subgraph);
  }
  EXPECT_GE(brj_lcc, rj_lcc);
}

// ----------------------------------------------------------- sample graph

TEST(SampleGraphTest, InducedSubgraphAndRatio) {
  const Graph g = ScaleFree(10000);
  auto sample = SampleGraph(g, Options(SamplerKind::kBiasedRandomJump, 0.1));
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->subgraph.num_vertices(), 1000u);
  EXPECT_NEAR(sample->realized_ratio, 0.1, 1e-9);
  EXPECT_GT(sample->subgraph.num_edges(), 0u);
  EXPECT_EQ(sample->vertices.size(), 1000u);
}

TEST(SampleGraphTest, SampleEdgesExistInOriginal) {
  const Graph g = ScaleFree(2000);
  auto sample = SampleGraph(g, Options(SamplerKind::kRandomJump, 0.2));
  ASSERT_TRUE(sample.ok());
  for (VertexId s = 0; s < sample->subgraph.num_vertices(); ++s) {
    const VertexId orig_src = sample->vertices[s];
    for (const VertexId t : sample->subgraph.out_neighbors(s)) {
      const VertexId orig_dst = sample->vertices[t];
      const auto neighbors = g.out_neighbors(orig_src);
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), orig_dst),
                neighbors.end());
    }
  }
}

TEST(SamplerTest, ChainDoesNotStarve) {
  // Degenerate structure (§3.5): the walk starves, but the sampler must
  // still honor the requested ratio via uniform fill.
  const Graph g = GenerateChain(1000).MoveValue();
  auto vertices = SampleVertices(g, Options(SamplerKind::kRandomJump, 0.2));
  ASSERT_TRUE(vertices.ok());
  EXPECT_EQ(vertices->size(), 200u);
}

// ---------------------------------------------------------------- quality

TEST(QualityTest, IdenticalSampleScoresPerfectly) {
  const Graph g = ScaleFree(2000);
  Sample sample;
  sample.vertices.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) sample.vertices[v] = v;
  sample.subgraph = ScaleFree(2000);
  sample.realized_ratio = 1.0;
  const SampleQualityReport report = EvaluateSampleQuality(g, sample, 16);
  EXPECT_NEAR(report.out_degree_d_statistic, 0.0, 1e-9);
  EXPECT_NEAR(report.in_degree_d_statistic, 0.0, 1e-9);
  EXPECT_NEAR(report.MeanDStatistic(), 0.0, 1e-9);
}

TEST(QualityTest, BrjSampleTracksDegreeShape) {
  const Graph g = ScaleFree(20000);
  auto sample = SampleGraph(g, Options(SamplerKind::kBiasedRandomJump, 0.1));
  ASSERT_TRUE(sample.ok());
  const SampleQualityReport report = EvaluateSampleQuality(g, *sample, 16);
  // Loose bound: degree D-statistics under 0.5 for a reasonable sampler.
  EXPECT_LT(report.MeanDStatistic(), 0.5);
  EXPECT_GT(report.sample_largest_component, 0.3);
}

TEST(QualityTest, ToStringContainsFields) {
  SampleQualityReport report;
  report.out_degree_d_statistic = 0.25;
  EXPECT_NE(report.ToString().find("D(out)=0.250"), std::string::npos);
}

}  // namespace
}  // namespace predict
