// PredictionService tests: cache hit/miss accounting, and the
// determinism contract — PredictBatch output is bit-identical to
// sequential Predictor::PredictRuntime calls for any thread count and
// any cache temperature (wall-clock fields excluded; they report host
// timing).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/predictor.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "sampling/sampler.h"
#include "service/prediction_service.h"

namespace predict {
namespace {

Graph TestGraph(VertexId n, uint64_t seed) {
  return GeneratePreferentialAttachment({n, 6, 0.3, seed}).MoveValue();
}

PredictorOptions TestPredictorOptions() {
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.1;
  options.sampler.seed = 5;
  options.engine.num_workers = 4;
  // Inline simulation: the batch fan-out supplies the parallelism.
  options.engine.num_threads = 0;
  return options;
}

PredictionServiceOptions TestServiceOptions(int num_threads = 0) {
  PredictionServiceOptions options;
  options.predictor = TestPredictorOptions();
  options.num_threads = num_threads;
  return options;
}

double PageRankTau(const Graph& g) {
  return 0.001 / static_cast<double>(g.num_vertices());
}

// The 8-request batch of the acceptance criteria: 4 algorithms x 2
// datasets, sharing one sample per dataset.
std::vector<PredictionRequest> TestBatch(const Graph& g1, const Graph& g2) {
  std::vector<PredictionRequest> requests;
  for (const Graph* graph : {&g1, &g2}) {
    const std::string dataset = graph == &g1 ? "ds1" : "ds2";
    for (const std::string& algorithm :
         {std::string("pagerank"), std::string("connected_components"),
          std::string("topk_ranking"), std::string("neighborhood")}) {
      PredictionRequest request;
      request.algorithm = algorithm;
      request.graph = graph;
      request.dataset = dataset;
      if (algorithm == "pagerank") {
        request.overrides = {{"tau", PageRankTau(*graph)}};
      }
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

void ExpectProfilesIdentical(const RunProfile& a, const RunProfile& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.num_edges, b.num_edges);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].iteration, b.iterations[i].iteration);
    EXPECT_EQ(a.iterations[i].runtime_seconds, b.iterations[i].runtime_seconds);
    for (int f = 0; f < kNumFeatures; ++f) {
      EXPECT_EQ(a.iterations[i].critical_features[f],
                b.iterations[i].critical_features[f])
          << "iteration " << i << " feature " << f;
    }
  }
}

// Bit-identical comparison of everything the prediction derives.
// sample_wall_seconds is the one host-timing field and is excluded.
void ExpectReportsIdentical(const PredictionReport& a,
                            const PredictionReport& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.predicted_iterations, b.predicted_iterations);
  EXPECT_EQ(a.per_iteration_seconds, b.per_iteration_seconds);
  EXPECT_EQ(a.predicted_superstep_seconds, b.predicted_superstep_seconds);
  EXPECT_EQ(a.sample_config, b.sample_config);
  EXPECT_EQ(a.transform_description, b.transform_description);
  EXPECT_EQ(a.factors.vertex_factor, b.factors.vertex_factor);
  EXPECT_EQ(a.factors.edge_factor, b.factors.edge_factor);
  EXPECT_EQ(a.realized_sampling_ratio, b.realized_sampling_ratio);
  EXPECT_EQ(a.sample_total_seconds, b.sample_total_seconds);
  EXPECT_EQ(a.cost_model.model().feature_indices,
            b.cost_model.model().feature_indices);
  EXPECT_EQ(a.cost_model.model().coefficients,
            b.cost_model.model().coefficients);
  EXPECT_EQ(a.cost_model.model().intercept, b.cost_model.model().intercept);
  EXPECT_EQ(a.cost_model.model().r_squared, b.cost_model.model().r_squared);
  ExpectProfilesIdentical(a.sample_profile, b.sample_profile);
  ExpectProfilesIdentical(a.extrapolated_profile, b.extrapolated_profile);
}

// ----------------------------------------------------------------- errors

TEST(PredictionServiceTest, NullGraphRejected) {
  PredictionService service(TestServiceOptions());
  PredictionRequest request;
  request.algorithm = "pagerank";
  EXPECT_TRUE(service.Predict(request).status().IsInvalidArgument());
}

TEST(PredictionServiceTest, UnknownAlgorithmFailsFastWithoutSampling) {
  const Graph g = TestGraph(2000, 31);
  PredictionService service(TestServiceOptions());
  PredictionRequest request;
  request.algorithm = "kmeans";
  request.graph = &g;
  EXPECT_TRUE(service.Predict(request).status().IsNotFound());
  // The doomed request never sampled nor touched the caches.
  EXPECT_EQ(service.cache_stats().sample_misses, 0u);
  request.algorithm = "connected_components";
  request.overrides = {{"zzz", 1.0}};
  EXPECT_TRUE(service.Predict(request).status().IsInvalidArgument());
  EXPECT_EQ(service.cache_stats().sample_misses, 0u);
  // A good request pays the one sampling.
  request.overrides = {};
  EXPECT_TRUE(service.Predict(request).ok());
  EXPECT_EQ(service.cache_stats().sample_misses, 1u);
  EXPECT_EQ(service.cache_stats().sample_hits, 0u);
}

// ------------------------------------------------------- cache accounting

TEST(PredictionServiceTest, CacheHitMissAccounting) {
  const Graph g = TestGraph(3000, 32);
  PredictionService service(TestServiceOptions());
  PredictionRequest request;
  request.algorithm = "connected_components";
  request.graph = &g;
  request.dataset = "ds";

  ASSERT_TRUE(service.Predict(request).ok());
  ServiceCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.sample_misses, 1u);
  EXPECT_EQ(stats.sample_hits, 0u);
  EXPECT_EQ(stats.profile_misses, 1u);
  EXPECT_EQ(stats.profile_hits, 0u);

  // Same request again: both caches hit.
  ASSERT_TRUE(service.Predict(request).ok());
  stats = service.cache_stats();
  EXPECT_EQ(stats.sample_misses, 1u);
  EXPECT_EQ(stats.sample_hits, 1u);
  EXPECT_EQ(stats.profile_misses, 1u);
  EXPECT_EQ(stats.profile_hits, 1u);

  // Different algorithm on the same graph: sample hit, profile miss.
  request.algorithm = "neighborhood";
  ASSERT_TRUE(service.Predict(request).ok());
  stats = service.cache_stats();
  EXPECT_EQ(stats.sample_misses, 1u);
  EXPECT_EQ(stats.sample_hits, 2u);
  EXPECT_EQ(stats.profile_misses, 2u);
  EXPECT_EQ(stats.profile_hits, 1u);
}

TEST(PredictionServiceTest, BatchAccountsOneSampleMissPerDistinctGraph) {
  const Graph g1 = TestGraph(3000, 33);
  const Graph g2 = TestGraph(3500, 34);
  PredictionService service(TestServiceOptions(4));
  const std::vector<PredictionRequest> requests = TestBatch(g1, g2);
  const auto results = service.PredictBatch(requests);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << "request " << i << ": "
                                 << results[i].status().ToString();
  }
  const ServiceCacheStats stats = service.cache_stats();
  // 8 requests over 2 graphs: exactly 2 sample computations, no
  // duplicated work even with concurrent first requests.
  EXPECT_EQ(stats.sample_misses, 2u);
  EXPECT_EQ(stats.sample_hits, 6u);
  EXPECT_EQ(stats.profile_misses, 8u);  // all (algorithm, dataset) distinct
  EXPECT_EQ(stats.profile_hits, 0u);
}

TEST(PredictionServiceTest, DisabledCachesAlwaysMiss) {
  const Graph g = TestGraph(2000, 35);
  PredictionServiceOptions options = TestServiceOptions();
  options.enable_sample_cache = false;
  options.enable_profile_cache = false;
  PredictionService service(options);
  PredictionRequest request;
  request.algorithm = "connected_components";
  request.graph = &g;
  ASSERT_TRUE(service.Predict(request).ok());
  ASSERT_TRUE(service.Predict(request).ok());
  const ServiceCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.sample_misses, 2u);
  EXPECT_EQ(stats.sample_hits, 0u);
  EXPECT_EQ(stats.profile_misses, 2u);
  EXPECT_EQ(stats.profile_hits, 0u);
}

TEST(PredictionServiceTest, ClearCachesForcesRecomputation) {
  const Graph g = TestGraph(2000, 36);
  PredictionService service(TestServiceOptions());
  PredictionRequest request;
  request.algorithm = "connected_components";
  request.graph = &g;
  ASSERT_TRUE(service.Predict(request).ok());
  service.ClearCaches();
  ASSERT_TRUE(service.Predict(request).ok());
  const ServiceCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.sample_misses, 2u);
  EXPECT_EQ(stats.profile_misses, 2u);
}

// ------------------------------------------------------------ determinism

TEST(PredictionServiceTest, PredictMatchesPredictorBitIdentically) {
  const Graph g = TestGraph(4000, 37);
  PredictionService service(TestServiceOptions());
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.graph = &g;
  request.dataset = "ds";
  request.overrides = {{"tau", PageRankTau(g)}};

  auto served = service.Predict(request);
  ASSERT_TRUE(served.ok());
  Predictor predictor(TestPredictorOptions());
  auto direct = predictor.PredictRuntime("pagerank", g, "ds", request.overrides);
  ASSERT_TRUE(direct.ok());
  ExpectReportsIdentical(*served, *direct);

  // Warm repeat (both caches hit): still bit-identical.
  auto warm = service.Predict(request);
  ASSERT_TRUE(warm.ok());
  ExpectReportsIdentical(*warm, *direct);
}

TEST(PredictionServiceTest, BatchBitIdenticalToSequentialForAnyThreadCount) {
  const Graph g1 = TestGraph(4000, 38);
  const Graph g2 = TestGraph(4500, 39);
  const std::vector<PredictionRequest> requests = TestBatch(g1, g2);

  // Sequential cold baseline through the uncached Predictor.
  Predictor predictor(TestPredictorOptions());
  std::vector<PredictionReport> baseline;
  for (const PredictionRequest& request : requests) {
    auto report = predictor.PredictRuntime(
        request.algorithm, *request.graph, request.dataset, request.overrides);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    baseline.push_back(std::move(report).MoveValue());
  }

  for (const int threads : {0, 1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PredictionService service(TestServiceOptions(threads));
    // Cold pass, then a fully warm pass: both must match the baseline.
    for (int pass = 0; pass < 2; ++pass) {
      SCOPED_TRACE("pass=" + std::to_string(pass));
      const auto results = service.PredictBatch(requests);
      ASSERT_EQ(results.size(), requests.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << "request " << i << ": "
                                     << results[i].status().ToString();
        ExpectReportsIdentical(*results[i], baseline[i]);
      }
    }
  }
}

// Cache hygiene under failure: a failed stage must never populate a
// cache (no poisoning), and a failure observed by concurrent requests
// must not latch — the next request for the same key re-attempts.
class ServiceFailureTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisableAll(); }
  void TearDown() override { fail::DisableAll(); }
};

TEST_F(ServiceFailureTest, FailedProfileIsNotCachedAndTheNextRequestRetries) {
  const Graph g = TestGraph(4000, 41);
  PredictionService service(TestServiceOptions(0));
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.graph = &g;
  request.dataset = "ds";
  request.overrides = {{"tau", PageRankTau(g)}};

  ASSERT_TRUE(fail::Configure("profile.run", "once").ok());
  auto failed = service.Predict(request);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("profile.run"), std::string::npos);
  EXPECT_EQ(service.cache_stats().profile_misses, 1u);

  // The 'once' fault is consumed; the retry must recompute (a second
  // miss, not a poisoned hit) and succeed.
  auto retried = service.Predict(request);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(service.cache_stats().profile_misses, 2u);
  EXPECT_EQ(service.cache_stats().profile_hits, 0u);
  // The sample succeeded the first time and stayed cached.
  EXPECT_EQ(service.cache_stats().sample_misses, 1u);
  EXPECT_EQ(service.cache_stats().sample_hits, 1u);

  // And the recovered artifact serves bit-identical full-quality reports.
  auto direct = Predictor(TestPredictorOptions())
                    .PredictRuntime("pagerank", g, "ds", request.overrides);
  ASSERT_TRUE(direct.ok());
  ExpectReportsIdentical(*retried, *direct);
}

TEST_F(ServiceFailureTest, FailedSampleIsNotCachedAndTheNextRequestRetries) {
  const Graph g = TestGraph(4000, 42);
  PredictionService service(TestServiceOptions(0));
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.graph = &g;
  request.dataset = "ds";
  request.overrides = {{"tau", PageRankTau(g)}};

  ASSERT_TRUE(fail::Configure("sample.walk", "once").ok());
  auto failed = service.Predict(request);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("sample.walk"), std::string::npos);
  EXPECT_EQ(service.cache_stats().sample_misses, 1u);

  auto retried = service.Predict(request);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(service.cache_stats().sample_misses, 2u);
  EXPECT_EQ(service.cache_stats().sample_hits, 0u);
  EXPECT_FALSE(retried->degradation.degraded());
}

TEST_F(ServiceFailureTest, PersistentFailuresNeverLatchAcrossABatch) {
  // Every profile run fails for a whole concurrent batch (duplicate
  // keys included); once the fault clears, the very same requests
  // succeed — nothing was latched or poisoned in between.
  const Graph g = TestGraph(4000, 43);
  PredictionService service(TestServiceOptions(4));
  std::vector<PredictionRequest> requests(6);
  for (auto& request : requests) {
    request.algorithm = "pagerank";
    request.graph = &g;
    request.dataset = "ds";
    request.overrides = {{"tau", PageRankTau(g)}};
  }

  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  for (const auto& result : service.PredictBatch(requests)) {
    EXPECT_FALSE(result.ok());
  }
  const ServiceCacheStats after_failures = service.cache_stats();

  fail::DisableAll();
  for (const auto& result : service.PredictBatch(requests)) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->degradation.degraded());
  }
  // All six post-recovery requests were answered by one computation:
  // exactly one more miss (the recomputation) and five joins/hits.
  const ServiceCacheStats after_recovery = service.cache_stats();
  EXPECT_EQ(after_recovery.profile_misses - after_failures.profile_misses, 1u);
  EXPECT_EQ(after_recovery.profile_hits - after_failures.profile_hits, 5u);
}

TEST_F(ServiceFailureTest, DegradedAnswersDoNotPoisonTheFullQualityPath) {
  // A request answered from the history-only rung must leave the caches
  // exactly as a failure would: the next request (fault cleared) runs
  // the full pipeline, not a cached degraded artifact.
  const Graph g = TestGraph(4000, 44);
  HistoryStore history;
  for (uint32_t workers : {2u, 4u}) {
    RunProfile profile;
    profile.algorithm = "pagerank";
    profile.dataset = "hist" + std::to_string(workers);
    profile.num_vertices = 1000;
    profile.num_edges = 5000;
    profile.num_workers = workers;
    IterationProfile it;
    it.iteration = 0;
    it.critical_features[0] = 10.0;
    it.runtime_seconds = 1.0 + 4.0 / workers;
    profile.iterations.push_back(it);
    profile.iterations.push_back(it);
    history.Add(profile);
  }
  PredictionServiceOptions options = TestServiceOptions(0);
  options.predictor.history = &history;
  options.predictor.robustness.degraded_fallbacks = true;
  PredictionService service(options);
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.graph = &g;
  request.dataset = "ds";
  request.overrides = {{"tau", PageRankTau(g)}};

  ASSERT_TRUE(fail::Configure("profile.run", "prob:1").ok());
  auto degraded = service.Predict(request);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->degradation.rung, DegradationRung::kHistoryOnly);
  EXPECT_EQ(service.cache_stats().history_only_fallbacks, 1u);

  fail::DisableAll();
  auto full = service.Predict(request);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->degradation.degraded());
  // Full-quality recovery matches the uncached Predictor bit for bit.
  PredictorOptions plain = TestPredictorOptions();
  plain.history = &history;
  auto direct = Predictor(plain).PredictRuntime("pagerank", g, "ds",
                                                request.overrides);
  ASSERT_TRUE(direct.ok());
  ExpectReportsIdentical(*full, *direct);
}

// ------------------------------------ evolving graphs / staleness tracking

PredictionServiceOptions IncrementalServiceOptions() {
  PredictionServiceOptions options = TestServiceOptions();
  options.predictor.sampler.kind = SamplerKind::kRandomJump;
  options.predictor.sampler.walk_segment_steps = 256;
  return options;
}

// Mutates `base` only at vertices the walk record never touched: the
// graph version changes but a re-walk reproduces the identical sample.
Graph MutateOutsideSample(const Graph& base, const SamplerOptions& sampler) {
  SampleWalkRecord record;
  auto sample = SampleGraphRecorded(base, sampler, &record);
  EXPECT_TRUE(sample.ok());
  std::vector<VertexId> untouched;
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    if (!record.touched[v]) untouched.push_back(v);
  }
  EXPECT_GE(untouched.size(), 2u);
  EvolvingGraph evolving(base);
  EXPECT_TRUE(evolving
                  .Apply({EdgeDelta::Insert(untouched[0], untouched[1]),
                          EdgeDelta::Insert(untouched[1], untouched[0])})
                  .ok());
  auto current = evolving.Current();
  EXPECT_TRUE(current.ok());
  return **current;
}

TEST(ServiceStalenessTest, ReportsCountReusedStages) {
  const Graph g = TestGraph(4000, 61);
  PredictionService service(TestServiceOptions());
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.graph = &g;
  request.dataset = "ds";
  request.overrides = {{"tau", PageRankTau(g)}};

  auto cold = service.Predict(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stages_reused, 0);
  EXPECT_EQ(cold->stages_recomputed, 5);

  auto warm = service.Predict(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stages_reused, 2);  // sample + profile from cache
  EXPECT_EQ(warm->stages_recomputed, 3);
  ExpectReportsIdentical(*cold, *warm);
}

TEST(ServiceStalenessTest, ProfileCacheSurvivesChurnOutsideTheSample) {
  const PredictionServiceOptions options = IncrementalServiceOptions();
  const Graph base = EvolvingGraph::Canonicalize(TestGraph(4000, 67));
  const Graph mutated = MutateOutsideSample(base, options.predictor.sampler);
  ASSERT_NE(base.Fingerprint(), mutated.Fingerprint());

  PredictionService service(options);
  PredictionRequest request;
  request.algorithm = "pagerank";
  request.dataset = "ds";
  request.overrides = {{"tau", PageRankTau(base)}};

  request.graph = &base;
  auto before = service.Predict(request);
  ASSERT_TRUE(before.ok());

  request.graph = &mutated;
  auto after = service.Predict(request);
  ASSERT_TRUE(after.ok());
  // The graph version changed, so the sample was recomputed (a cache
  // miss) — but it came out content-identical, so the profile (and
  // everything downstream of it) was served from cache.
  const ServiceCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.sample_misses, 2u);
  EXPECT_EQ(stats.profile_misses, 1u);
  EXPECT_EQ(stats.profile_hits, 1u);
  EXPECT_EQ(after->stages_reused, 1);
  EXPECT_EQ(after->stages_recomputed, 4);
  // And the re-walk itself was incremental: every segment replayed.
  EXPECT_EQ(stats.incremental_sample_updates, 1u);
  EXPECT_GT(stats.incremental_segments_reused, 0u);
}

TEST(ServiceStalenessTest, IncrementalDisabledStillPredictsIdentically) {
  PredictionServiceOptions options = IncrementalServiceOptions();
  const Graph base = EvolvingGraph::Canonicalize(TestGraph(3000, 71));
  const Graph mutated = MutateOutsideSample(base, options.predictor.sampler);

  PredictionRequest request;
  request.algorithm = "connected_components";
  request.dataset = "ds";

  std::vector<PredictionReport> reports;
  for (const bool enabled : {true, false}) {
    options.enable_incremental_sampling = enabled;
    PredictionService service(options);
    request.graph = &base;
    ASSERT_TRUE(service.Predict(request).ok());
    request.graph = &mutated;
    auto report = service.Predict(request);
    ASSERT_TRUE(report.ok());
    const ServiceCacheStats stats = service.cache_stats();
    EXPECT_EQ(stats.incremental_sample_updates, enabled ? 1u : 0u);
    reports.push_back(*report);
  }
  ExpectReportsIdentical(reports[0], reports[1]);
}

TEST(ServiceStalenessTest, ClearCachesReportsEvictions) {
  const Graph g1 = TestGraph(3000, 73);
  const Graph g2 = TestGraph(3000, 74);
  PredictionService service(IncrementalServiceOptions());
  const auto batch = TestBatch(g1, g2);
  const auto results = service.PredictBatch(batch);
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  const ServiceCacheEvictions evicted = service.ClearCaches();
  EXPECT_EQ(evicted.sample_entries, 2u);   // one sample per graph
  EXPECT_EQ(evicted.profile_entries, 8u);  // one per request
  EXPECT_EQ(evicted.incremental_states, 1u);

  const ServiceCacheEvictions again = service.ClearCaches();
  EXPECT_EQ(again.sample_entries, 0u);
  EXPECT_EQ(again.profile_entries, 0u);
  EXPECT_EQ(again.incremental_states, 0u);
}

}  // namespace
}  // namespace predict
