// Tests for the dataset registry: the four stand-ins exist, have the
// shape properties the paper's findings depend on, and the paper-cluster
// engine options reproduce the §5 "Memory Limits" OOM pattern.

#include <gtest/gtest.h>

#include "algorithms/runner.h"
#include "datasets/datasets.h"
#include "graph/stats.h"

namespace predict {
namespace {

TEST(DatasetsTest, RegistryHasFourInTable2Order) {
  const auto names = PaperDatasetNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "lj");
  EXPECT_EQ(names[1], "wiki");
  EXPECT_EQ(names[2], "tw");
  EXPECT_EQ(names[3], "uk");
}

TEST(DatasetsTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(MakeDataset("facebook").status().IsNotFound());
}

TEST(DatasetsTest, BadScaleRejected) {
  EXPECT_TRUE(MakeDataset("lj", 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeDataset("lj", 2.0).status().IsInvalidArgument());
}

TEST(DatasetsTest, ScaleShrinksVertexCount) {
  auto small = MakeDataset("wiki", 0.05);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->num_vertices(), 5000u);
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  auto a = MakeDataset("uk", 0.05);
  auto b = MakeDataset("uk", 0.05);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(a->out_degree(v), b->out_degree(v));
  }
}

TEST(DatasetsTest, AllConnected) {
  for (const auto& name : PaperDatasetNames()) {
    auto g = MakeDataset(name, 0.1);
    ASSERT_TRUE(g.ok()) << name;
    EXPECT_GT(LargestComponentFraction(*g), 0.99) << name;
  }
}

TEST(DatasetsTest, TwitterIsTheDensest) {
  // The paper's §5.4 overhead result hinges on Twitter's density.
  double tw_density = 0.0, max_other = 0.0;
  for (const auto& name : PaperDatasetNames()) {
    auto g = MakeDataset(name, 0.1);
    ASSERT_TRUE(g.ok());
    const double density = static_cast<double>(g->num_edges()) /
                           static_cast<double>(g->num_vertices());
    if (name == "tw") {
      tw_density = density;
    } else {
      max_other = std::max(max_other, density);
    }
  }
  EXPECT_GT(tw_density, 2.0 * max_other);
}

TEST(DatasetsTest, OnlyLjIsNotScaleFree) {
  // Footnote 7 of the paper: LiveJournal's out-degree distribution does
  // not follow a power law; the registry metadata and the measured
  // distribution must agree.
  for (const auto& info : PaperDatasets()) {
    auto g = MakeDataset(info.name, info.name == "tw" ? 0.35 : 0.35);
    ASSERT_TRUE(g.ok());
    const PowerLawFit fit = FitOutDegreePowerLaw(*g);
    EXPECT_EQ(fit.plausible, info.scale_free)
        << info.name << ": R2=" << fit.r_squared << " curv=" << fit.curvature;
  }
}

TEST(DatasetsTest, PaperClusterOptionsMatchPaperSetup) {
  const bsp::EngineOptions options = PaperClusterOptions();
  EXPECT_EQ(options.num_workers, 29u);  // 30 tasks = 29 workers + 1 master
  EXPECT_GT(options.memory_budget_bytes, 0u);
}

TEST(DatasetsTest, MemoryLimitsReproducePaperOomPattern) {
  // §5 "Memory Limits": semi-clustering, top-k and neighborhood
  // estimation exhaust memory on Twitter; everything runs on wiki-scale
  // graphs. Run at reduced scale with a proportionally reduced budget to
  // keep the test fast.
  const double scale = 0.25;
  auto tw = MakeDataset("tw", scale);
  ASSERT_TRUE(tw.ok());
  bsp::EngineOptions engine = PaperClusterOptions();
  engine.memory_budget_bytes = static_cast<uint64_t>(
      static_cast<double>(engine.memory_budget_bytes) * scale);
  engine.cost_profile.noise_sigma = 0.0;

  RunOptions run_options;
  run_options.engine = engine;
  // PageRank and connected components fit on tw.
  run_options.config_overrides = {{"tau", 0.001 / tw->num_vertices()}};
  EXPECT_TRUE(RunAlgorithmByName("pagerank", *tw, run_options).ok());
  run_options.config_overrides = {};
  EXPECT_TRUE(RunAlgorithmByName("connected_components", *tw, run_options).ok());
  // The message-heavy three do not.
  EXPECT_TRUE(RunAlgorithmByName("semiclustering", *tw, run_options)
                  .status()
                  .IsResourceExhausted());
  EXPECT_TRUE(RunAlgorithmByName("topk_ranking", *tw, run_options)
                  .status()
                  .IsResourceExhausted());
  EXPECT_TRUE(RunAlgorithmByName("neighborhood", *tw, run_options)
                  .status()
                  .IsResourceExhausted());
}

TEST(DatasetsTest, DescriptionsNonEmpty) {
  for (const auto& info : PaperDatasets()) {
    EXPECT_FALSE(info.description.empty());
    EXPECT_GT(info.num_vertices, 0u);
    EXPECT_GT(info.approx_edges, 0u);
  }
}

// -------------------------------------------------------- scale tier

TEST(ScaleDatasetsTest, RegistryListsRmatTier) {
  const auto names = ScaleDatasetNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "rmat10m");
  EXPECT_EQ(names[1], "rmat100m");
  for (const auto& info : ScaleDatasets()) {
    EXPECT_FALSE(info.description.empty());
    EXPECT_GE(info.approx_edges, 10000000u);
  }
}

TEST(ScaleDatasetsTest, RmatTierShipsCompressedAndDeterministic) {
  // Scale far down for the unit suite: representation and determinism
  // are scale-independent, the 10M-edge count is pinned by the
  // rmat_scale_gate bench at scale 1.
  auto a = MakeDataset("rmat10m", 0.01);
  auto b = MakeDataset("rmat10m", 0.01);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->edges_compressed());
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
  EXPECT_GT(a->num_edges(), 0u);
  // 2^17 vertices at scale 1, shrunk by whole powers of two.
  EXPECT_LT(a->num_vertices(), 131072u);
}

TEST(ScaleDatasetsTest, ScaleTierRunsEndToEnd) {
  // A tiny slice of the compressed RMAT graph must flow through the
  // stock runner path (sampling + engine) like any paper dataset.
  auto g = MakeDataset("rmat10m", 0.002);
  ASSERT_TRUE(g.ok());
  RunOptions run_options;
  run_options.engine = PaperClusterOptions();
  run_options.engine.memory_budget_bytes = 0;  // not the OOM test
  run_options.config_overrides = {{"tau", 1e-4}};
  EXPECT_TRUE(RunAlgorithmByName("pagerank", *g, run_options).ok());
  run_options.config_overrides = {};
  EXPECT_TRUE(RunAlgorithmByName("connected_components", *g, run_options).ok());
}

}  // namespace
}  // namespace predict
