// FNV-1a fingerprints over everything the BSP simulation derives.
//
// A run fingerprint folds the complete RunStats (halt reason, memory
// model, per-superstep simulated seconds, critical workers, the full
// per-worker Table-1 counters and the reduced aggregates) and, where the
// algorithm produces flat output, the bit patterns of the final vertex
// values. Two runs with the same fingerprint are bit-identical in every
// field the determinism contract covers (host wall time excluded).
//
// The golden constants in tests/determinism_test.cc were captured from
// the seed engine (the pre-partitioner modulo scheme); the hash
// Partitioner must keep reproducing them forever.

#ifndef PREDICT_TESTS_RUN_FINGERPRINT_H_
#define PREDICT_TESTS_RUN_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "bsp/counters.h"

namespace predict::testing {

inline uint64_t FnvMixBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t FnvMix(uint64_t h, uint64_t x) {
  return FnvMixBytes(h, &x, sizeof(x));
}

inline uint64_t FnvMixDouble(uint64_t h, double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return FnvMix(h, u);
}

inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/// Order-sensitive digest of a RunStats (wall time excluded).
inline uint64_t FingerprintRunStats(const bsp::RunStats& stats,
                                    uint64_t h = kFnvOffsetBasis) {
  h = FnvMix(h, static_cast<uint64_t>(stats.halt_reason));
  h = FnvMix(h, stats.peak_memory_bytes);
  h = FnvMixDouble(h, stats.superstep_phase_seconds);
  h = FnvMixDouble(h, stats.setup_seconds);
  h = FnvMixDouble(h, stats.read_seconds);
  h = FnvMixDouble(h, stats.write_seconds);
  h = FnvMixDouble(h, stats.total_seconds);
  h = FnvMix(h, stats.static_critical_worker);
  for (const uint64_t e : stats.worker_outbound_edges) h = FnvMix(h, e);
  for (const bsp::SuperstepStats& step : stats.supersteps) {
    h = FnvMix(h, static_cast<uint64_t>(step.superstep));
    h = FnvMixDouble(h, step.simulated_seconds);
    h = FnvMix(h, step.critical_worker);
    h = FnvMix(h, step.memory_bytes);
    for (const bsp::WorkerCounters& c : step.per_worker) {
      h = FnvMix(h, c.active_vertices);
      h = FnvMix(h, c.total_vertices);
      h = FnvMix(h, c.local_messages);
      h = FnvMix(h, c.remote_messages);
      h = FnvMix(h, c.local_message_bytes);
      h = FnvMix(h, c.remote_message_bytes);
    }
    for (const auto& [name, value] : step.aggregates) {
      h = FnvMixBytes(h, name.data(), name.size());
      h = FnvMixDouble(h, value);
    }
  }
  return h;
}

/// Folds final vertex values into a digest (bit patterns, not rounded).
inline uint64_t FingerprintDoubles(std::span<const double> values,
                                   uint64_t h = kFnvOffsetBasis) {
  for (const double v : values) h = FnvMixDouble(h, v);
  return h;
}

inline uint64_t FingerprintIds(std::span<const uint32_t> values,
                               uint64_t h = kFnvOffsetBasis) {
  for (const uint32_t v : values) h = FnvMix(h, v);
  return h;
}

}  // namespace predict::testing

#endif  // PREDICT_TESTS_RUN_FINGERPRINT_H_
