// Tests for the runtime-model zoo (core/models/), the variance-aware
// prediction distribution (core/distribution.h), the NNLS solver behind
// the Ernest member, and the hardened degenerate-input contracts of
// core/regression.h.

#include <array>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/distribution.h"
#include "core/features.h"
#include "core/models/model_selector.h"
#include "core/models/paper_model.h"
#include "core/models/scaleout_models.h"
#include "core/regression.h"

namespace predict {
namespace {

// ------------------------------------------------------------------- nnls

TEST(NnlsTest, RecoversNonNegativeSolution) {
  // y = 2*a + 3*b, both coefficients positive: NNLS == OLS here.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 8; ++i) {
    const double a = 1.0 + i;
    const double b = 5.0 + 2.0 * i;
    rows.push_back({a, b});
    y.push_back(2.0 * a + 3.0 * b);
  }
  auto x = FitNnls(rows, y);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  ASSERT_EQ(x->size(), 2u);
  EXPECT_NEAR((*x)[0], 2.0, 1e-8);
  EXPECT_NEAR((*x)[1], 3.0, 1e-8);
}

TEST(NnlsTest, ClampsNegativeComponentToZero) {
  // y = 5*a - 2*b: the unconstrained solution has a negative coefficient,
  // so NNLS must pin b's coefficient at exactly zero and refit a.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    const double a = 1.0 + i;
    const double b = 0.1 * i * i;  // not collinear with a, small enough
    rows.push_back({a, b});       // that y stays positive and a-driven
    y.push_back(5.0 * a - 2.0 * b);
  }
  auto x = FitNnls(rows, y);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ((*x)[1], 0.0);
  EXPECT_GT((*x)[0], 0.0);
}

TEST(NnlsTest, DeterministicAcrossCalls) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    const double w = 2.0 + i;
    rows.push_back({1.0, 1.0 / w, std::log(w), w});
    y.push_back(0.4 + 30.0 / w + 0.05 * std::log(w));
  }
  auto a = FitNnls(rows, y);
  auto b = FitNnls(rows, y);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);  // bit-identical, not just close
}

TEST(NnlsTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitNnls({}, {}).ok());
  EXPECT_FALSE(FitNnls({{1.0, 2.0}}, {1.0, 2.0}).ok());  // size mismatch
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(FitNnls({{1.0}, {nan}}, {1.0, 2.0}).ok());
}

// ------------------------------------------------- regression hardening

TEST(RegressionHardeningTest, NonFiniteInputIsInvalidArgument) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  EXPECT_TRUE(FitOls(rows, {1.0, inf, 3.0}, {0}).status().IsInvalidArgument());
  rows[1][0] = inf;
  EXPECT_TRUE(FitOls(rows, {1.0, 2.0, 3.0}, {0}).status().IsInvalidArgument());
}

TEST(RegressionHardeningTest, UnderdeterminedIsInvalidArgument) {
  // Two coefficients (one feature + intercept) need at least two rows.
  EXPECT_TRUE(FitOls({{1.0, 2.0}}, {1.0}, {0, 1}).status().IsInvalidArgument());
}

TEST(RegressionHardeningTest, ZeroVarianceTargetsWithFeaturesFail) {
  const std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {3.0}};
  const std::vector<double> constant = {4.0, 4.0, 4.0};
  EXPECT_TRUE(FitOls(rows, constant, {0}).status().IsFailedPrecondition());
  // An intercept-only fit of a constant is still legitimate.
  auto intercept_only = FitOls(rows, constant, {});
  ASSERT_TRUE(intercept_only.ok());
  EXPECT_DOUBLE_EQ(intercept_only->intercept, 4.0);
}

TEST(RegressionHardeningTest, AllIdenticalRowsFail) {
  const std::vector<std::vector<double>> rows = {{2.0, 5.0}, {2.0, 5.0},
                                                 {2.0, 5.0}};
  EXPECT_TRUE(
      FitOls(rows, {1.0, 2.0, 3.0}, {0, 1}).status().IsFailedPrecondition());
}

TEST(RegressionHardeningTest, ForwardSelectSkipsDegenerateCandidates) {
  // Candidate 0 is constant (degenerate alone); candidate 1 carries the
  // signal. Selection must land on candidate 1 without erroring out.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({7.0, static_cast<double>(i)});
    y.push_back(3.0 * i + 1.0);
  }
  auto model = ForwardSelect(rows, y, 2);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_EQ(model->feature_indices.size(), 1u);
  EXPECT_EQ(model->feature_indices[0], 1);
}

// ---------------------------------------------------------- zoo members

std::vector<models::ScaleOutObservation> ErnestCurve(
    const std::vector<double>& workers) {
  std::vector<models::ScaleOutObservation> points;
  for (const double w : workers) {
    points.push_back({w, 0.5 + 24.0 / w + 0.1 * std::log(w) + 0.01 * w});
  }
  return points;
}

TEST(MeanModelTest, PredictsTheMeanEverywhere) {
  auto model = models::MeanModel::Fit({{8, 2.0}, {16, 4.0}, {32, 6.0}});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->mean_seconds(), 4.0);
  FeatureVector features{};
  EXPECT_DOUBLE_EQ(model->PredictIterationSeconds(features, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(model->PredictIterationSeconds(features, 1000.0), 4.0);
  EXPECT_FALSE(models::MeanModel::Fit({}).ok());
}

TEST(ErnestModelTest, RecoversTheCurveAndExtrapolates) {
  auto model = models::ErnestModel::Fit(ErnestCurve({4, 8, 16, 32}));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  FeatureVector features{};
  for (const double w : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    const double expected = 0.5 + 24.0 / w + 0.1 * std::log(w) + 0.01 * w;
    EXPECT_NEAR(model->PredictIterationSeconds(features, w), expected,
                0.02 * expected)
        << "w=" << w;
  }
  for (const double c : model->coefficients()) EXPECT_GE(c, 0.0);
}

TEST(ErnestModelTest, NeedsTwoDistinctWorkerCounts) {
  EXPECT_FALSE(models::ErnestModel::Fit({{8, 1.0}}).ok());
  EXPECT_FALSE(models::ErnestModel::Fit({{8, 1.0}, {8, 1.1}}).ok());
  EXPECT_TRUE(models::ErnestModel::Fit({{8, 2.0}, {16, 1.0}}).ok());
}

TEST(InterpolationModelTest, InterpolatesInRangeErnestOutOfRange) {
  auto model = models::InterpolationModel::Fit(
      {{8, 4.0}, {8, 6.0}, {16, 3.0}, {32, 2.0}});
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Duplicate observations at w=8 collapse to their mean knot.
  ASSERT_EQ(model->knots().size(), 3u);
  EXPECT_DOUBLE_EQ(model->knots()[0].runtime_seconds, 5.0);
  FeatureVector features{};
  // Exact at the knots, linear between them.
  EXPECT_DOUBLE_EQ(model->PredictIterationSeconds(features, 16.0), 3.0);
  EXPECT_DOUBLE_EQ(model->PredictIterationSeconds(features, 12.0), 4.0);
  EXPECT_DOUBLE_EQ(model->PredictIterationSeconds(features, 24.0), 2.5);
  // Out of range: the embedded Ernest extrapolator takes over (only
  // sanity-check it, the fit is the Ernest member's own test's job).
  EXPECT_GE(model->PredictIterationSeconds(features, 64.0), 0.0);
  EXPECT_GE(model->PredictIterationSeconds(features, 2.0), 0.0);
}

// ------------------------------------------------------------- selection

TEST(ModelSelectorTest, TierAtEachDensityThreshold) {
  const models::ModelZooOptions zoo;  // mean<=2, ernest<=5
  EXPECT_EQ(models::TierForConfigs(0, zoo), models::ModelTier::kPaper);
  EXPECT_EQ(models::TierForConfigs(1, zoo), models::ModelTier::kPaper);
  EXPECT_EQ(models::TierForConfigs(2, zoo), models::ModelTier::kMean);
  EXPECT_EQ(models::TierForConfigs(3, zoo), models::ModelTier::kErnest);
  EXPECT_EQ(models::TierForConfigs(5, zoo), models::ModelTier::kErnest);
  EXPECT_EQ(models::TierForConfigs(6, zoo), models::ModelTier::kInterpolation);

  models::ModelZooOptions off;
  off.enable_zoo = false;
  EXPECT_EQ(models::TierForConfigs(100, off), models::ModelTier::kPaper);
}

// History rows spanning `configs` distinct worker counts, with a clean
// linear feature -> runtime relationship so the paper OLS always fits.
std::vector<TrainingRow> HistoryRows(int configs, int rows_per_config) {
  std::vector<TrainingRow> rows;
  for (int c = 0; c < configs; ++c) {
    const double workers = 8.0 + 4.0 * c;
    for (int i = 0; i < rows_per_config; ++i) {
      TrainingRow row;
      row.features[static_cast<int>(Feature::kRemMsg)] = 100.0 * (i + 1);
      row.features[static_cast<int>(Feature::kRemMsgSize)] = 900.0 * (i + 1);
      row.runtime_seconds =
          (0.01 * row.features[static_cast<int>(Feature::kRemMsg)] + 0.5) *
          (8.0 / workers);
      row.scale_out = workers;
      rows.push_back(row);
    }
  }
  return rows;
}

TEST(ModelSelectorTest, FitWalksTheDensityLadder) {
  const models::ModelZooOptions zoo;
  const std::vector<models::ModelTier> expected = {
      models::ModelTier::kPaper,  models::ModelTier::kMean,
      models::ModelTier::kErnest, models::ModelTier::kErnest,
      models::ModelTier::kErnest, models::ModelTier::kInterpolation};
  for (int configs = 1; configs <= 6; ++configs) {
    auto fit =
        models::FitModelZoo({}, HistoryRows(configs, 6), CostModelOptions{}, zoo);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    EXPECT_EQ(fit->selection.tier, expected[configs - 1]) << configs;
    EXPECT_EQ(fit->selection.unique_configurations, configs);
    EXPECT_FALSE(fit->selection.reason.empty());
    // Residuals: one per training row of the selected member.
    const size_t rows = static_cast<size_t>(configs) * 6u;
    EXPECT_EQ(fit->residuals.size(), rows);
  }
}

TEST(ModelSelectorTest, SingleConfigMatchesZooDisabledBitForBit) {
  // The bit-identity contract: with <= 1 unique configuration the zoo
  // selects the paper member trained exactly as the pre-zoo FitStage
  // trained its CostModel, so enabling the zoo must not move a single
  // coefficient or prediction.
  const std::vector<TrainingRow> sample = HistoryRows(1, 5);
  const std::vector<TrainingRow> history = HistoryRows(1, 7);
  models::ModelZooOptions off;
  off.enable_zoo = false;
  auto with_zoo = models::FitModelZoo(sample, history, CostModelOptions{}, {});
  auto without = models::FitModelZoo(sample, history, CostModelOptions{}, off);
  ASSERT_TRUE(with_zoo.ok() && without.ok());
  EXPECT_EQ(with_zoo->selection.tier, models::ModelTier::kPaper);
  const auto& a =
      static_cast<const models::PaperModel&>(*with_zoo->model).cost_model();
  const auto& b =
      static_cast<const models::PaperModel&>(*without->model).cost_model();
  EXPECT_EQ(a.model().feature_indices, b.model().feature_indices);
  EXPECT_EQ(a.model().coefficients, b.model().coefficients);
  EXPECT_EQ(a.model().intercept, b.model().intercept);
  FeatureVector features{};
  features[static_cast<int>(Feature::kRemMsg)] = 450.0;
  EXPECT_EQ(with_zoo->model->PredictIterationSeconds(features, 29.0),
            b.PredictIterationSeconds(features));
}

TEST(ModelSelectorTest, ScaleOutTiersIgnoreSampleRows) {
  // Sample rows are 10x cheaper than actual-run rows; a scale-out fit
  // that ingested them would learn garbage. The mean tier makes the
  // leak observable: the mean must cover history rows only.
  std::vector<TrainingRow> sample(4);
  for (auto& row : sample) row.runtime_seconds = 0.001;
  std::vector<TrainingRow> history;
  for (const double w : {8.0, 16.0}) {
    TrainingRow row;
    row.runtime_seconds = 10.0;
    row.scale_out = w;
    history.push_back(row);
  }
  auto fit = models::FitModelZoo(sample, history, CostModelOptions{}, {});
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  ASSERT_EQ(fit->selection.tier, models::ModelTier::kMean);
  FeatureVector features{};
  EXPECT_DOUBLE_EQ(fit->model->PredictIterationSeconds(features, 12.0), 10.0);
  EXPECT_EQ(fit->residuals.size(), history.size());
}

TEST(ModelSelectorTest, DegenerateScaleOutFitFallsBackToPaper) {
  // Three distinct configs select Ernest, but every runtime is NaN-free
  // zero-variance... make Ernest itself fail: one row per config is fine
  // for Ernest, so poison it with a non-finite runtime instead.
  std::vector<TrainingRow> history = HistoryRows(3, 4);
  history[0].runtime_seconds = std::numeric_limits<double>::quiet_NaN();
  // Keep the paper fallback trainable: drop the poisoned row's influence
  // by overwriting it with a clean duplicate of another row *after* the
  // scale-out observations are extracted — not possible from outside, so
  // instead poison only the scale-out axis via an infinite worker count.
  history[0].runtime_seconds = 1.0;
  history[0].scale_out = std::numeric_limits<double>::infinity();
  auto fit = models::FitModelZoo({}, history, CostModelOptions{}, {});
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_EQ(fit->selection.tier, models::ModelTier::kPaper);
  EXPECT_NE(fit->selection.reason.find("fallback"), std::string::npos)
      << fit->selection.reason;
}

TEST(ModelSelectorTest, ConfigKeysDistinguishOptions) {
  std::set<std::string> keys;
  models::ModelZooOptions zoo;
  keys.insert(zoo.ConfigKey());
  zoo.enable_zoo = false;
  keys.insert(zoo.ConfigKey());
  zoo.enable_zoo = true;
  zoo.ernest_max_configs = 9;
  keys.insert(zoo.ConfigKey());
  EXPECT_EQ(keys.size(), 3u);

  CostModelOptions cost;
  const std::string base = models::ModelConfigKey(cost, zoo);
  cost.use_feature_selection = !cost.use_feature_selection;
  EXPECT_NE(models::ModelConfigKey(cost, zoo), base);

  std::set<std::string> boot_keys;
  BootstrapOptions boot;
  boot_keys.insert(boot.ConfigKey());
  boot.num_samples += 1;
  boot_keys.insert(boot.ConfigKey());
  boot.seed += 1;
  boot_keys.insert(boot.ConfigKey());
  EXPECT_EQ(boot_keys.size(), 3u);
}

// ----------------------------------------------------------- distribution

TEST(DistributionTest, DeterministicForFixedSeed) {
  const std::vector<double> per_iteration = {1.0, 2.0, 3.0};
  const std::vector<double> residuals = {-0.2, 0.0, 0.1, 0.3};
  BootstrapOptions options;
  const PredictionDistribution a =
      BootstrapDistribution(per_iteration, residuals, 0.2, options);
  const PredictionDistribution b =
      BootstrapDistribution(per_iteration, residuals, 0.2, options);
  ASSERT_EQ(a.samples.size(), static_cast<size_t>(options.num_samples));
  EXPECT_EQ(a.samples, b.samples);
  options.seed += 1;
  const PredictionDistribution c =
      BootstrapDistribution(per_iteration, residuals, 0.2, options);
  EXPECT_NE(a.samples, c.samples);
}

TEST(DistributionTest, SamplesSortedAndQuantilesOrdered) {
  const PredictionDistribution d = BootstrapDistribution(
      {1.0, 2.0, 3.0}, {-0.5, -0.1, 0.2, 0.4, 0.9}, 0.3, {});
  EXPECT_TRUE(std::is_sorted(d.samples.begin(), d.samples.end()));
  EXPECT_DOUBLE_EQ(d.point_seconds, 6.0);
  EXPECT_LE(d.QuantileSeconds(0.05), d.p50_seconds);
  EXPECT_LE(d.p50_seconds, d.p95_seconds);
  EXPECT_DOUBLE_EQ(d.QuantileSeconds(0.0), d.samples.front());
  EXPECT_DOUBLE_EQ(d.QuantileSeconds(1.0), d.samples.back());
  for (const double s : d.samples) EXPECT_GE(s, 0.0);
}

TEST(DistributionTest, DisabledOrResidualFreeDegeneratesToPoint) {
  BootstrapOptions off;
  off.enabled = false;
  const PredictionDistribution disabled =
      BootstrapDistribution({1.0, 2.0}, {0.5}, 0.1, off);
  EXPECT_TRUE(disabled.samples.empty());
  EXPECT_DOUBLE_EQ(disabled.p50_seconds, 3.0);
  EXPECT_DOUBLE_EQ(disabled.p95_seconds, 3.0);
  EXPECT_DOUBLE_EQ(disabled.QuantileSeconds(0.95), 3.0);

  const PredictionDistribution no_residuals =
      BootstrapDistribution({1.0, 2.0}, {}, 0.1, {});
  EXPECT_TRUE(no_residuals.samples.empty());
  EXPECT_DOUBLE_EQ(no_residuals.p95_seconds, 3.0);
}

TEST(DistributionTest, ConfidenceIsMonotoneAndNeverBelowPoint) {
  // The SLA contract: PredictedAtConfidence can only tighten a decision.
  // A job admitted at confidence c is admitted at every c' < c, and
  // confidence <= 0.5 reproduces the point-estimate path exactly.
  const PredictionDistribution d = BootstrapDistribution(
      {1.0, 2.0, 3.0}, {-0.8, -0.3, 0.1, 0.4, 1.0}, 0.25, {});
  EXPECT_DOUBLE_EQ(d.PredictedAtConfidence(0.0), d.point_seconds);
  EXPECT_DOUBLE_EQ(d.PredictedAtConfidence(0.5), d.point_seconds);
  double previous = 0.0;
  for (const double c : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    const double bound = d.PredictedAtConfidence(c);
    EXPECT_GE(bound, d.point_seconds) << c;
    EXPECT_GE(bound, previous) << c;
    previous = bound;
  }
  // Degenerate distributions answer the point estimate at any confidence.
  PredictionDistribution empty;
  empty.point_seconds = empty.p50_seconds = empty.p95_seconds = 7.0;
  EXPECT_DOUBLE_EQ(empty.PredictedAtConfidence(0.99), 7.0);
}

TEST(DistributionTest, StragglerSpreadWidensTheTail) {
  const std::vector<double> per_iteration = {2.0, 2.0, 2.0};
  const std::vector<double> residuals = {-0.1, 0.0, 0.1};
  const PredictionDistribution uniform =
      BootstrapDistribution(per_iteration, residuals, 0.0, {});
  const PredictionDistribution skewed =
      BootstrapDistribution(per_iteration, residuals, 0.5, {});
  EXPECT_GT(skewed.p95_seconds, uniform.p95_seconds);
}

}  // namespace
}  // namespace predict
