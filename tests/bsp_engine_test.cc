// Tests for the BSP engine: Pregel semantics (message delivery, vote to
// halt, reactivation), Table-1 counters, aggregators, the simulated cost
// clock, the memory model, and determinism across thread counts.

#include <gtest/gtest.h>

#include "bsp/engine.h"
#include "graph/generators.h"

namespace predict {
namespace {

using bsp::AggregatorOp;
using bsp::Engine;
using bsp::EngineOptions;
using bsp::HaltReason;
using bsp::MasterContext;
using bsp::RunStats;
using bsp::VertexContext;
using bsp::WorkerCounters;

EngineOptions FastOptions(uint32_t workers = 3) {
  EngineOptions options;
  options.num_workers = workers;
  options.num_threads = 0;  // inline
  options.cost_profile.noise_sigma = 0.0;
  options.cost_profile.setup_seconds = 0.0;
  options.cost_profile.read_bytes_per_second = 0.0;   // skip read phase
  options.cost_profile.write_bytes_per_second = 0.0;  // skip write phase
  return options;
}

// Forwards a counter to all neighbors for a fixed number of rounds.
class RelayProgram : public bsp::VertexProgram<int, int> {
 public:
  explicit RelayProgram(int rounds) : rounds_(rounds) {}

  int InitialValue(VertexId v, const Graph&) const override {
    return static_cast<int>(v);
  }

  void Compute(VertexContext<int, int>* ctx,
               std::span<const int> messages) override {
    for (const int m : messages) ctx->value() += m;
    if (ctx->superstep() < rounds_) {
      ctx->SendMessageToAllNeighbors(1);
    } else {
      ctx->VoteToHalt();
    }
  }

 private:
  int rounds_;
};

// Counts how many times Compute ran for each vertex.
class ComputeCountProgram : public bsp::VertexProgram<int, int> {
 public:
  int InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
    ctx->value()++;
    ctx->VoteToHalt();
  }
};

// Vertex 0 pings vertex `target` once at superstep 0; everyone halts.
class PingProgram : public bsp::VertexProgram<int, int> {
 public:
  explicit PingProgram(VertexId target) : target_(target) {}
  int InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int, int>* ctx,
               std::span<const int> messages) override {
    for (const int m : messages) ctx->value() += m;
    if (ctx->superstep() == 0 && ctx->id() == 0) {
      ctx->SendMessage(target_, 41);
    }
    ctx->VoteToHalt();
  }

 private:
  VertexId target_;
};

TEST(BspEngineTest, EmptyGraphRejected) {
  GraphBuilder b(0);
  const Graph g = b.Build().MoveValue();
  Engine<int, int> engine(FastOptions());
  RelayProgram program(1);
  EXPECT_TRUE(engine.Run(g, &program).status().IsInvalidArgument());
}

TEST(BspEngineTest, NullProgramRejected) {
  const Graph g = GenerateChain(3).MoveValue();
  Engine<int, int> engine(FastOptions());
  EXPECT_TRUE(engine.Run(g, nullptr).status().IsInvalidArgument());
}

TEST(BspEngineTest, ZeroWorkersRejected) {
  const Graph g = GenerateChain(3).MoveValue();
  EngineOptions options = FastOptions(0);
  Engine<int, int> engine(options);
  RelayProgram program(1);
  EXPECT_TRUE(engine.Run(g, &program).status().IsInvalidArgument());
}

TEST(BspEngineTest, HaltsWhenAllVoteAndNoMessages) {
  const Graph g = GenerateChain(4).MoveValue();
  Engine<int, int> engine(FastOptions());
  ComputeCountProgram program;
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_supersteps(), 1);
  EXPECT_EQ(stats->halt_reason, HaltReason::kConverged);
  for (const int count : engine.vertex_values()) EXPECT_EQ(count, 1);
}

TEST(BspEngineTest, MessageDeliveredNextSuperstepAndReactivates) {
  const Graph g = GenerateChain(5).MoveValue();
  Engine<int, int> engine(FastOptions());
  PingProgram program(3);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  // Superstep 0: all compute, halt; message in flight. Superstep 1: only
  // vertex 3 is woken up by the ping.
  EXPECT_EQ(stats->num_supersteps(), 2);
  EXPECT_EQ(engine.vertex_values()[3], 41);
  EXPECT_EQ(engine.vertex_values()[2], 0);
  const WorkerCounters totals = stats->supersteps[1].Totals();
  EXPECT_EQ(totals.active_vertices, 1u);
}

TEST(BspEngineTest, RelayRunsExactlyRequestedRounds) {
  const Graph g = GenerateChain(5).MoveValue();
  Engine<int, int> engine(FastOptions());
  RelayProgram program(3);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  // Supersteps 0..2 send; superstep 3 consumes the superstep-2 messages,
  // sends nothing, and everyone votes to halt.
  EXPECT_EQ(stats->num_supersteps(), 4);
  EXPECT_EQ(stats->halt_reason, HaltReason::kConverged);
}

TEST(BspEngineTest, MaxSuperstepsCapsRun) {
  const Graph g = GenerateChain(5).MoveValue();
  EngineOptions options = FastOptions();
  options.max_supersteps = 2;
  Engine<int, int> engine(options);
  RelayProgram program(1000);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_supersteps(), 2);
  EXPECT_EQ(stats->halt_reason, HaltReason::kMaxSupersteps);
}

// --------------------------------------------------------------- counters

TEST(BspEngineTest, LocalVsRemoteMessageAttribution) {
  // 2 workers; vertex 0 and 2 live on worker 0, vertex 1 on worker 1.
  // Edges 0->2 (local: both on worker 0) and 0->1 (remote).
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(0, 1);
  const Graph g = b.Build().MoveValue();
  Engine<int, int> engine(FastOptions(2));
  RelayProgram sender(1);  // superstep 0: everyone sends once, then halts
  auto stats = engine.Run(g, &sender);
  ASSERT_TRUE(stats.ok());
  const WorkerCounters& w0 = stats->supersteps[0].per_worker[0];
  EXPECT_EQ(w0.local_messages, 1u);   // 0 -> 2
  EXPECT_EQ(w0.remote_messages, 1u);  // 0 -> 1
  EXPECT_EQ(w0.local_message_bytes, sizeof(int));
  EXPECT_EQ(w0.remote_message_bytes, sizeof(int));
}

TEST(BspEngineTest, TotalVerticesSplitAcrossWorkers) {
  const Graph g = GenerateChain(7).MoveValue();
  Engine<int, int> engine(FastOptions(3));
  ComputeCountProgram program;
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  const auto& workers = stats->supersteps[0].per_worker;
  // 7 vertices on 3 workers: 3, 2, 2.
  EXPECT_EQ(workers[0].total_vertices, 3u);
  EXPECT_EQ(workers[1].total_vertices, 2u);
  EXPECT_EQ(workers[2].total_vertices, 2u);
}

TEST(BspEngineTest, ActiveVertexCountsPerSuperstep) {
  const Graph g = GenerateChain(6).MoveValue();
  Engine<int, int> engine(FastOptions(2));
  RelayProgram program(2);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps[0].Totals().active_vertices, 6u);
  EXPECT_EQ(stats->supersteps[1].Totals().active_vertices, 6u);
}

TEST(BspEngineTest, MessageCountsMatchEdges) {
  const Graph g = GenerateComplete(6).MoveValue();  // 30 edges
  Engine<int, int> engine(FastOptions(3));
  RelayProgram program(1);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps[0].Totals().total_messages(), 30u);
}

TEST(BspEngineTest, AverageMessageSize) {
  WorkerCounters counters;
  counters.local_messages = 2;
  counters.remote_messages = 2;
  counters.local_message_bytes = 8;
  counters.remote_message_bytes = 24;
  EXPECT_DOUBLE_EQ(counters.average_message_size(), 8.0);
  WorkerCounters empty;
  EXPECT_DOUBLE_EQ(empty.average_message_size(), 0.0);
}

TEST(BspEngineTest, PerWorkerOutboundEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 0);
  b.AddEdge(2, 0);
  b.AddEdge(3, 0);
  const Graph g = b.Build().MoveValue();
  const auto edges = bsp::PerWorkerOutboundEdges(g, 2);
  // Worker 0 owns {0, 2}: 2 + 1 = 3 outbound. Worker 1 owns {1, 3}: 2.
  EXPECT_EQ(edges[0], 3u);
  EXPECT_EQ(edges[1], 2u);
  EXPECT_EQ(bsp::ArgMaxWorker(edges), 0u);
}

TEST(BspEngineTest, StaticCriticalWorkerRecorded) {
  const Graph g = GenerateStar(10).MoveValue();  // all edges from vertex 0
  Engine<int, int> engine(FastOptions(3));
  ComputeCountProgram program;
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->static_critical_worker, 0u);  // vertex 0 -> worker 0
  EXPECT_EQ(stats->worker_outbound_edges[0], 9u);
}

// ------------------------------------------------------------- aggregators

class AggregatingProgram : public bsp::VertexProgram<int, int> {
 public:
  void RegisterAggregators(bsp::AggregatorRegistry* registry) override {
    sum_ = registry->Register("sum", AggregatorOp::kSum);
    max_ = registry->Register("max", AggregatorOp::kMax);
    min_ = registry->Register("min", AggregatorOp::kMin);
  }
  int InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
    const double x = static_cast<double>(ctx->id());
    ctx->Aggregate(sum_, x);
    ctx->Aggregate(max_, x);
    ctx->Aggregate(min_, x);
    if (ctx->superstep() == 1) {
      // Aggregates from superstep 0 must be visible here.
      seen_sum_ = ctx->GetAggregate(sum_);
    }
    if (ctx->superstep() >= 1) ctx->VoteToHalt();
  }
  void MasterCompute(MasterContext* ctx) override {
    last_master_sum_ = ctx->GetAggregate(sum_);
    last_master_max_ = ctx->GetAggregate(max_);
    last_master_min_ = ctx->GetAggregate(min_);
  }

  bsp::AggregatorId sum_ = 0, max_ = 0, min_ = 0;
  double seen_sum_ = -1.0;
  double last_master_sum_ = -1.0;
  double last_master_max_ = -1.0;
  double last_master_min_ = -1.0;
};

TEST(BspEngineTest, AggregatorsReduceAcrossWorkers) {
  const Graph g = GenerateChain(5).MoveValue();  // ids 0..4
  Engine<int, int> engine(FastOptions(3));
  AggregatingProgram program;
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(program.last_master_sum_, 10.0);  // 0+1+2+3+4
  EXPECT_DOUBLE_EQ(program.last_master_max_, 4.0);
  EXPECT_DOUBLE_EQ(program.last_master_min_, 0.0);
  // Superstep-0 aggregate visible to vertices at superstep 1.
  EXPECT_DOUBLE_EQ(program.seen_sum_, 10.0);
}

TEST(BspEngineTest, AggregatesSnapshottedInStats) {
  const Graph g = GenerateChain(4).MoveValue();
  Engine<int, int> engine(FastOptions(2));
  AggregatingProgram program;
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->supersteps[0].aggregates.at("sum"), 6.0);
  EXPECT_DOUBLE_EQ(stats->supersteps[0].aggregates.at("max"), 3.0);
}

class HaltAtProgram : public bsp::VertexProgram<int, int> {
 public:
  explicit HaltAtProgram(int superstep) : halt_at_(superstep) {}
  int InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
    ctx->SendMessageToAllNeighbors(1);
  }
  void MasterCompute(MasterContext* ctx) override {
    if (ctx->superstep() >= halt_at_) ctx->HaltComputation();
  }

 private:
  int halt_at_;
};

TEST(BspEngineTest, MasterHaltStopsRun) {
  const Graph g = GenerateComplete(4).MoveValue();
  Engine<int, int> engine(FastOptions(2));
  HaltAtProgram program(2);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_supersteps(), 3);  // supersteps 0, 1, 2
  EXPECT_EQ(stats->halt_reason, HaltReason::kMasterHalt);
}

// -------------------------------------------------------------- cost clock

TEST(CostProfileTest, WorkerSecondsIsLinearInCounters) {
  bsp::CostProfile profile;
  profile.per_active_vertex_seconds = 1.0;
  profile.per_local_message_seconds = 10.0;
  profile.per_remote_message_seconds = 100.0;
  profile.per_local_byte_seconds = 1000.0;
  profile.per_remote_byte_seconds = 10000.0;
  WorkerCounters counters;
  counters.active_vertices = 1;
  counters.local_messages = 2;
  counters.remote_messages = 3;
  counters.local_message_bytes = 4;
  counters.remote_message_bytes = 5;
  EXPECT_DOUBLE_EQ(profile.WorkerSeconds(counters),
                   1.0 + 20.0 + 300.0 + 4000.0 + 50000.0);
}

TEST(CostProfileTest, SuperstepTakesMaxWorkerPlusBarrier) {
  bsp::CostProfile profile;
  profile.noise_sigma = 0.0;
  profile.barrier_seconds = 5.0;
  profile.per_active_vertex_seconds = 1.0;
  WorkerCounters slow, fast;
  slow.active_vertices = 10;
  fast.active_vertices = 2;
  const std::vector<WorkerCounters> workers = {fast, slow};
  bsp::WorkerId critical = 99;
  const double seconds = profile.SuperstepSeconds(workers, 0, &critical);
  EXPECT_DOUBLE_EQ(seconds, 15.0);
  EXPECT_EQ(critical, 1u);
}

TEST(CostProfileTest, NoiseIsDeterministicAndBounded) {
  bsp::CostProfile profile;
  profile.noise_sigma = 0.05;
  const double f1 = profile.NoiseFactor(3, 7);
  EXPECT_DOUBLE_EQ(f1, profile.NoiseFactor(3, 7));
  EXPECT_NE(f1, profile.NoiseFactor(3, 8));
  for (int s = 0; s < 50; ++s) {
    for (bsp::WorkerId w = 0; w < 10; ++w) {
      const double f = profile.NoiseFactor(s, w);
      EXPECT_GT(f, 0.7);
      EXPECT_LT(f, 1.4);
    }
  }
}

TEST(CostProfileTest, ZeroSigmaMeansNoNoise) {
  bsp::CostProfile profile;
  profile.noise_sigma = 0.0;
  EXPECT_DOUBLE_EQ(profile.NoiseFactor(1, 1), 1.0);
}

TEST(CostProfileTest, ReadWritePhases) {
  bsp::CostProfile profile;
  profile.read_bytes_per_second = 100.0;
  profile.write_bytes_per_second = 50.0;
  EXPECT_DOUBLE_EQ(profile.ReadSeconds(1000), 10.0);
  EXPECT_DOUBLE_EQ(profile.WriteSeconds(1000), 20.0);
  profile.read_bytes_per_second = 0.0;
  EXPECT_DOUBLE_EQ(profile.ReadSeconds(1000), 0.0);
}

TEST(BspEngineTest, PhaseBreakdownSumsToTotal) {
  const Graph g = GenerateComplete(5).MoveValue();
  EngineOptions options = FastOptions(2);
  options.cost_profile.setup_seconds = 3.0;
  options.cost_profile.read_bytes_per_second = 1e6;
  options.cost_profile.write_bytes_per_second = 1e6;
  Engine<int, int> engine(options);
  RelayProgram program(1);
  auto stats = engine.Run(g, &program);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->total_seconds,
                   stats->setup_seconds + stats->read_seconds +
                       stats->superstep_phase_seconds + stats->write_seconds);
  EXPECT_DOUBLE_EQ(stats->setup_seconds, 3.0);
  EXPECT_GT(stats->read_seconds, 0.0);
}

// ------------------------------------------------------------ memory model

class BigStateProgram : public bsp::VertexProgram<int, int> {
 public:
  int InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int, int>* ctx, std::span<const int>) override {
    ctx->VoteToHalt();
  }
  uint64_t VertexStateBytes(const int&) const override { return 1 << 20; }
};

TEST(BspEngineTest, MemoryBudgetExceededIsResourceExhausted) {
  const Graph g = GenerateChain(100).MoveValue();  // 100 MB of state
  EngineOptions options = FastOptions(2);
  options.memory_budget_bytes = 10 << 20;
  Engine<int, int> engine(options);
  BigStateProgram program;
  EXPECT_TRUE(engine.Run(g, &program).status().IsResourceExhausted());
}

TEST(BspEngineTest, UnlimitedBudgetNeverOoms) {
  const Graph g = GenerateChain(100).MoveValue();
  EngineOptions options = FastOptions(2);
  options.memory_budget_bytes = 0;
  Engine<int, int> engine(options);
  BigStateProgram program;
  EXPECT_TRUE(engine.Run(g, &program).ok());
}

TEST(BspEngineTest, PeakMemoryIncludesMessages) {
  const Graph g = GenerateComplete(10).MoveValue();
  Engine<int, int> engine(FastOptions(2));
  RelayProgram send(1);
  auto with_messages = engine.Run(g, &send);
  ASSERT_TRUE(with_messages.ok());
  Engine<int, int> engine2(FastOptions(2));
  ComputeCountProgram silent;
  auto without_messages = engine2.Run(g, &silent);
  ASSERT_TRUE(without_messages.ok());
  EXPECT_GT(with_messages->peak_memory_bytes,
            without_messages->peak_memory_bytes);
}

// ------------------------------------------------------------- determinism

TEST(BspEngineTest, SimulatedTimeIndependentOfThreadCount) {
  const Graph g = GeneratePreferentialAttachment({3000, 5, 0.3, 11}).MoveValue();
  RunStats results[3];
  const int thread_counts[3] = {0, 1, 4};
  for (int i = 0; i < 3; ++i) {
    EngineOptions options = FastOptions(7);
    options.cost_profile.noise_sigma = 0.02;  // noise on: still deterministic
    options.num_threads = thread_counts[i];
    Engine<int, int> engine(options);
    RelayProgram program(3);
    auto stats = engine.Run(g, &program);
    ASSERT_TRUE(stats.ok());
    results[i] = std::move(stats).MoveValue();
  }
  for (int i = 1; i < 3; ++i) {
    ASSERT_EQ(results[i].num_supersteps(), results[0].num_supersteps());
    EXPECT_DOUBLE_EQ(results[i].superstep_phase_seconds,
                     results[0].superstep_phase_seconds);
    for (int s = 0; s < results[0].num_supersteps(); ++s) {
      const auto& a = results[0].supersteps[s];
      const auto& b = results[i].supersteps[s];
      EXPECT_EQ(a.Totals().total_messages(), b.Totals().total_messages());
      EXPECT_EQ(a.critical_worker, b.critical_worker);
      for (size_t w = 0; w < a.per_worker.size(); ++w) {
        EXPECT_EQ(a.per_worker[w].remote_message_bytes,
                  b.per_worker[w].remote_message_bytes);
      }
    }
  }
}

TEST(BspEngineTest, VertexValuesIndependentOfThreadCount) {
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.3, 13}).MoveValue();
  std::vector<int> baseline;
  for (const int threads : {0, 4}) {
    EngineOptions options = FastOptions(5);
    options.num_threads = threads;
    Engine<int, int> engine(options);
    RelayProgram program(2);
    ASSERT_TRUE(engine.Run(g, &program).ok());
    if (baseline.empty()) {
      baseline = engine.vertex_values();
    } else {
      EXPECT_EQ(baseline, engine.vertex_values());
    }
  }
}

TEST(BspEngineTest, HaltReasonNames) {
  EXPECT_STREQ(bsp::HaltReasonName(HaltReason::kConverged), "converged");
  EXPECT_STREQ(bsp::HaltReasonName(HaltReason::kMasterHalt), "master_halt");
  EXPECT_STREQ(bsp::HaltReasonName(HaltReason::kMaxSupersteps),
               "max_supersteps");
}

}  // namespace
}  // namespace predict
