// Tests for graph/stats: the sampling-quality property toolbox.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/stats.h"

namespace predict {
namespace {

Graph Chain(VertexId n) { return GenerateChain(n).MoveValue(); }

TEST(DegreeStatsTest, ChainOutDegrees) {
  const Graph g = Chain(5);  // degrees: 1,1,1,1,0
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_DOUBLE_EQ(s.mean, 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(DegreeStatsTest, StarInDegrees) {
  const Graph g = GenerateStar(5).MoveValue();
  const DegreeStats s = ComputeInDegreeStats(g);
  EXPECT_DOUBLE_EQ(s.max, 1.0);  // each spoke has in-degree 1
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_DOUBLE_EQ(out.max, 4.0);  // the hub
}

TEST(DegreeStatsTest, GiniZeroForRegularGraph) {
  const Graph g = GenerateComplete(6).MoveValue();
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
}

TEST(DegreeStatsTest, GiniPositiveForSkewedGraph) {
  const Graph g = GenerateStar(50).MoveValue();
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_GT(s.gini, 0.9);
}

TEST(MeanInOutRatioTest, CompleteGraphBalanced) {
  const Graph g = GenerateComplete(5).MoveValue();
  // in=4, out=4 for all: ratio 4/5 per vertex.
  EXPECT_NEAR(MeanInOutDegreeRatio(g), 4.0 / 5.0, 1e-9);
}

// ------------------------------------------------------------------- WCC

TEST(WccTest, SingleComponent) {
  const Graph g = Chain(10);
  EXPECT_EQ(CountWeaklyConnectedComponents(g), 1u);
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 1.0);
}

TEST(WccTest, TwoComponents) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  const Graph g = b.Build().MoveValue();  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(CountWeaklyConnectedComponents(g), 3u);
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 0.5);
}

TEST(WccTest, LabelsEqualWithinComponent) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);  // weak connectivity via reverse direction
  b.AddEdge(3, 4);
  const auto labels = WeaklyConnectedComponents(b.Build().MoveValue());
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(WccTest, IsolatedVerticesAreOwnComponents) {
  GraphBuilder b(4);
  const Graph g = b.Build().MoveValue();
  EXPECT_EQ(CountWeaklyConnectedComponents(g), 4u);
}

// -------------------------------------------------------------- diameter

TEST(EffectiveDiameterTest, ChainHasLargeDiameter) {
  // In a 101-vertex path the 90th-percentile pairwise distance is large.
  const double d = EffectiveDiameter(Chain(101), 0.9, 101, 1);
  EXPECT_GT(d, 20.0);
}

TEST(EffectiveDiameterTest, CompleteGraphIsOne) {
  const double d = EffectiveDiameter(GenerateComplete(20).MoveValue(), 0.9, 20, 1);
  EXPECT_NEAR(d, 1.0, 0.2);
}

TEST(EffectiveDiameterTest, StarIsAboutTwo) {
  const double d = EffectiveDiameter(GenerateStar(50).MoveValue(), 0.9, 50, 1);
  EXPECT_GT(d, 1.0);
  EXPECT_LE(d, 2.0);
}

TEST(EffectiveDiameterTest, DeterministicForFixedSeed) {
  const Graph g = GeneratePreferentialAttachment({2000, 4, 0.3, 5}).MoveValue();
  EXPECT_DOUBLE_EQ(EffectiveDiameter(g, 0.9, 16, 7),
                   EffectiveDiameter(g, 0.9, 16, 7));
}

TEST(EffectiveDiameterTest, EmptyGraphIsZero) {
  GraphBuilder b(3);
  EXPECT_DOUBLE_EQ(EffectiveDiameter(b.Build().MoveValue()), 0.0);
}

// ------------------------------------------------------------ clustering

TEST(ClusteringTest, TriangleIsFullyClustered) {
  GraphBuilder b(3);
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(1, 2);
  b.AddUndirectedEdge(0, 2);
  EXPECT_NEAR(AverageClusteringCoefficient(b.Build().MoveValue(), 100), 1.0,
              1e-9);
}

TEST(ClusteringTest, ChainHasNoTriangles) {
  EXPECT_NEAR(AverageClusteringCoefficient(Chain(20), 100), 0.0, 1e-9);
}

TEST(ClusteringTest, CompleteGraphFullyClustered) {
  EXPECT_NEAR(AverageClusteringCoefficient(GenerateComplete(8).MoveValue(), 100),
              1.0, 1e-9);
}

TEST(ClusteringTest, DirectionIgnored) {
  // A directed triangle is a triangle for clustering purposes.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  EXPECT_NEAR(AverageClusteringCoefficient(b.Build().MoveValue(), 100), 1.0,
              1e-9);
}

// -------------------------------------------------------------------- KS

TEST(KsTest, IdenticalSamplesHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovD({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(KsTest, DisjointSamplesHaveDistanceOne) {
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovD({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsTest, HalfShiftedSamples) {
  // {1,2} vs {2,3}: ECDFs differ by at most 0.5.
  EXPECT_NEAR(KolmogorovSmirnovD({1, 2}, {2, 3}), 0.5, 1e-9);
}

TEST(KsTest, EmptySampleIsMaximallyDistant) {
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovD({}, {1.0}), 1.0);
}

TEST(KsTest, SymmetricInArguments) {
  const std::vector<double> a = {1, 5, 7, 9}, b = {2, 5, 6};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovD(a, b), KolmogorovSmirnovD(b, a));
}

TEST(KsTest, SameDistributionLowDistance) {
  // Two large samples from the same generator have small D.
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(i % 97);
    b.push_back((i * 13) % 97);
  }
  EXPECT_LT(KolmogorovSmirnovD(a, b), 0.05);
}

// -------------------------------------------------------------- powerlaw

TEST(PowerLawTest, PreferentialAttachmentIsPlausible) {
  const Graph g =
      GeneratePreferentialAttachment({30000, 8, 0.4, 3}).MoveValue();
  const PowerLawFit fit = FitOutDegreePowerLaw(g);
  EXPECT_TRUE(fit.plausible) << "R2=" << fit.r_squared
                             << " curv=" << fit.curvature;
  EXPECT_LT(fit.exponent, -0.5);
}

TEST(PowerLawTest, LogNormalGraphIsNotPlausible) {
  LogNormalDegreeOptions options;
  options.num_vertices = 30000;
  options.log_mean = 2.3;
  options.log_stddev = 0.7;
  options.reciprocal_p = 0.1;
  options.seed = 3;
  const Graph g = GenerateLogNormalDegreeGraph(options).MoveValue();
  const PowerLawFit fit = FitOutDegreePowerLaw(g);
  EXPECT_FALSE(fit.plausible) << "R2=" << fit.r_squared
                              << " curv=" << fit.curvature;
  EXPECT_LT(fit.curvature, -0.3);  // log-normal signature: concave ccdf
}

TEST(PowerLawTest, RegularGraphHasTooFewTailPoints) {
  const Graph g = GenerateComplete(50).MoveValue();
  const PowerLawFit fit = FitOutDegreePowerLaw(g);
  EXPECT_FALSE(fit.plausible);
}

TEST(DescribeGraphTest, MentionsKeyNumbers) {
  const Graph g = Chain(10);
  const std::string desc = DescribeGraph(g);
  EXPECT_NE(desc.find("|V|=10"), std::string::npos);
  EXPECT_NE(desc.find("|E|=9"), std::string::npos);
}

}  // namespace
}  // namespace predict
