// Tests for graph/generators: shape properties, determinism, options
// validation. Parameterized sweeps check invariants across sizes/seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "graph/generators.h"
#include "graph/stats.h"

namespace predict {
namespace {

// ------------------------------------------------- preferential attachment

TEST(PreferentialAttachmentTest, RespectsVertexCount) {
  const Graph g = GeneratePreferentialAttachment({5000, 6, 0.3, 1}).MoveValue();
  EXPECT_EQ(g.num_vertices(), 5000u);
  EXPECT_GT(g.num_edges(), 5000u * 5);
}

TEST(PreferentialAttachmentTest, DeterministicForSeed) {
  const Graph a = GeneratePreferentialAttachment({2000, 5, 0.3, 9}).MoveValue();
  const Graph b = GeneratePreferentialAttachment({2000, 5, 0.3, 9}).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(a.out_degree(v), b.out_degree(v));
  }
}

TEST(PreferentialAttachmentTest, DifferentSeedsDiffer) {
  const Graph a = GeneratePreferentialAttachment({2000, 5, 0.3, 9}).MoveValue();
  const Graph b = GeneratePreferentialAttachment({2000, 5, 0.3, 10}).MoveValue();
  EXPECT_NE(a.num_edges(), b.num_edges());
}

TEST(PreferentialAttachmentTest, ConnectedByConstruction) {
  const Graph g = GeneratePreferentialAttachment({3000, 4, 0.3, 2}).MoveValue();
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 1.0);
}

TEST(PreferentialAttachmentTest, HubsExist) {
  const Graph g = GeneratePreferentialAttachment({20000, 8, 0.3, 4}).MoveValue();
  const DegreeStats in = ComputeInDegreeStats(g);
  EXPECT_GT(in.max, 50 * in.mean);  // heavy tail
}

TEST(PreferentialAttachmentTest, RejectsBadOptions) {
  EXPECT_TRUE(GeneratePreferentialAttachment({1, 4, 0.3, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GeneratePreferentialAttachment({100, 0, 0.3, 1})
                  .status()
                  .IsInvalidArgument());
}

TEST(PreferentialAttachmentTest, NoSelfLoops) {
  const Graph g = GeneratePreferentialAttachment({2000, 6, 0.5, 7}).MoveValue();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) EXPECT_NE(u, v);
  }
}

// -------------------------------------------------------------- copy model

TEST(CopyModelTest, FixedOutDegree) {
  CopyModelOptions options;
  options.num_vertices = 3000;
  options.out_degree = 12;
  options.seed = 5;
  const Graph g = GenerateCopyModelWebGraph(options).MoveValue();
  // Dedup can only reduce; most pages should still have close to 12.
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_LE(out.max, 12.0 + 12.0);  // seed clique vertices can exceed
  EXPECT_GT(out.mean, 6.0);
}

TEST(CopyModelTest, ZipfOutDegreeHasHeavyTail) {
  CopyModelOptions options;
  options.num_vertices = 30000;
  options.zipf_alpha = 2.0;
  options.min_out_degree = 4;
  options.seed = 5;
  const Graph g = GenerateCopyModelWebGraph(options).MoveValue();
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_GT(out.max, 20 * out.mean);
  EXPECT_TRUE(FitOutDegreePowerLaw(g).plausible);
}

TEST(CopyModelTest, CopyingCreatesPopularPages) {
  CopyModelOptions options;
  options.num_vertices = 20000;
  options.out_degree = 10;
  options.copy_p = 0.8;
  options.seed = 6;
  const Graph g = GenerateCopyModelWebGraph(options).MoveValue();
  const DegreeStats in = ComputeInDegreeStats(g);
  EXPECT_GT(in.max, 30 * in.mean);
}

TEST(CopyModelTest, RejectsBadCopyP) {
  CopyModelOptions options;
  options.copy_p = 1.5;
  EXPECT_TRUE(GenerateCopyModelWebGraph(options).status().IsInvalidArgument());
}

TEST(CopyModelTest, Deterministic) {
  CopyModelOptions options;
  options.num_vertices = 2000;
  options.seed = 8;
  const Graph a = GenerateCopyModelWebGraph(options).MoveValue();
  const Graph b = GenerateCopyModelWebGraph(options).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

// --------------------------------------------------------------- lognormal

TEST(LogNormalTest, MeanDegreeTracksParameters) {
  LogNormalDegreeOptions options;
  options.num_vertices = 20000;
  options.log_mean = 2.0;
  options.log_stddev = 0.5;
  options.reciprocal_p = 0.0;
  options.seed = 3;
  const Graph g = GenerateLogNormalDegreeGraph(options).MoveValue();
  // E[lognormal(2.0, 0.5)] = exp(2.125) ~ 8.4; dedup trims slightly.
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_NEAR(out.mean, 8.4, 1.5);
}

TEST(LogNormalTest, RejectsNegativeSigma) {
  LogNormalDegreeOptions options;
  options.log_stddev = -1.0;
  EXPECT_TRUE(
      GenerateLogNormalDegreeGraph(options).status().IsInvalidArgument());
}

TEST(LogNormalTest, Deterministic) {
  LogNormalDegreeOptions options;
  options.num_vertices = 2000;
  options.seed = 4;
  const Graph a = GenerateLogNormalDegreeGraph(options).MoveValue();
  const Graph b = GenerateLogNormalDegreeGraph(options).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

// ------------------------------------------------------------- erdos-renyi

TEST(ErdosRenyiTest, EdgeCountApproximatelyHonored) {
  const Graph g = GenerateErdosRenyi({10000, 50000, 1}).MoveValue();
  // Dedup removes a few collisions.
  EXPECT_GT(g.num_edges(), 49000u);
  EXPECT_LE(g.num_edges(), 50000u);
}

TEST(ErdosRenyiTest, NotScaleFree) {
  const Graph g = GenerateErdosRenyi({20000, 160000, 2}).MoveValue();
  EXPECT_FALSE(FitOutDegreePowerLaw(g, 2).plausible);
}

// ------------------------------------------------------------------- rmat

TEST(RmatTest, VertexCountIsPowerOfTwo) {
  const Graph g = GenerateRmat({10, 5000, 0.57, 0.19, 0.19, 1}).MoveValue();
  EXPECT_EQ(g.num_vertices(), 1024u);
}

TEST(RmatTest, SkewedQuadrantsProduceHubs) {
  const Graph g = GenerateRmat({14, 130000, 0.57, 0.19, 0.19, 3}).MoveValue();
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_GT(out.max, 40 * std::max(1.0, out.mean));
}

TEST(RmatTest, ByteIdenticalForSeed) {
  // The scale-tier datasets lean on this: regenerating an RMAT graph
  // from its seed must reproduce every CSR array bit-identically (the
  // generator is single-threaded by design, so host thread count cannot
  // perturb it either).
  const Graph a = GenerateRmat({14, 500000, 0.57, 0.19, 0.19, 55}).MoveValue();
  const Graph b = GenerateRmat({14, 500000, 0.57, 0.19, 0.19, 55}).MoveValue();
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.out_offsets().begin(), a.out_offsets().end(),
                         b.out_offsets().begin(), b.out_offsets().end()));
  EXPECT_TRUE(std::equal(a.out_targets().begin(), a.out_targets().end(),
                         b.out_targets().begin(), b.out_targets().end()));
  EXPECT_TRUE(std::equal(a.in_sources().begin(), a.in_sources().end(),
                         b.in_sources().begin(), b.in_sources().end()));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(RmatTest, DifferentSeedsDiffer) {
  const Graph a = GenerateRmat({12, 100000, 0.57, 0.19, 0.19, 55}).MoveValue();
  const Graph b = GenerateRmat({12, 100000, 0.57, 0.19, 0.19, 56}).MoveValue();
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(RmatTest, TopOnePercentHoldsScaleFreeShare) {
  // Scale-free-ish skew check: with the Graph500 quadrant weights the
  // top 1% of vertices by out-degree must hold far more than their
  // uniform 1% share of edges, but not literally all of them.
  const Graph g = GenerateRmat({14, 500000, 0.57, 0.19, 0.19, 7}).MoveValue();
  std::vector<uint64_t> degrees;
  degrees.reserve(g.num_vertices());
  uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(g.out_degree(v));
    total += g.out_degree(v);
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<uint64_t>());
  const size_t top = std::max<size_t>(1, degrees.size() / 100);
  uint64_t held = 0;
  for (size_t i = 0; i < top; ++i) held += degrees[i];
  const double share =
      static_cast<double>(held) / static_cast<double>(total);
  EXPECT_GT(share, 0.10);  // far above the uniform 0.01
  EXPECT_LT(share, 0.90);  // but hubs do not own the whole graph
}

TEST(RmatTest, RejectsBadProbabilities) {
  EXPECT_TRUE(GenerateRmat({10, 100, 0.6, 0.3, 0.3, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRmat({0, 100, 0.5, 0.2, 0.2, 1})
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------- small structures

TEST(SmallGraphsTest, Chain) {
  const Graph g = GenerateChain(5).MoveValue();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(4), 0u);
}

TEST(SmallGraphsTest, Complete) {
  const Graph g = GenerateComplete(5).MoveValue();
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(SmallGraphsTest, StarDirectedAndBidirectional) {
  EXPECT_EQ(GenerateStar(5, false).MoveValue().num_edges(), 4u);
  EXPECT_EQ(GenerateStar(5, true).MoveValue().num_edges(), 8u);
}

TEST(SmallGraphsTest, EmptyRejected) {
  EXPECT_FALSE(GenerateChain(0).ok());
  EXPECT_FALSE(GenerateComplete(0).ok());
  EXPECT_FALSE(GenerateStar(0).ok());
}

// -------------------------------------------- parameterized shape sweeps

struct ShapeCase {
  VertexId num_vertices;
  uint32_t out_degree;
  uint64_t seed;
};

class PaShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(PaShapeSweep, ConnectedScaleFreeAndSized) {
  const ShapeCase& c = GetParam();
  PreferentialAttachmentOptions options;
  options.num_vertices = c.num_vertices;
  options.out_degree = c.out_degree;
  options.seed = c.seed;
  const Graph g = GeneratePreferentialAttachment(options).MoveValue();
  EXPECT_EQ(g.num_vertices(), c.num_vertices);
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 1.0);
  // Average out-degree at least the attachment parameter (reciprocal
  // edges add more, dedup removes few).
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_GT(out.mean, 0.8 * c.out_degree);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PaShapeSweep,
    ::testing::Values(ShapeCase{1000, 4, 1}, ShapeCase{1000, 4, 99},
                      ShapeCase{5000, 8, 1}, ShapeCase{20000, 4, 7},
                      ShapeCase{5000, 16, 3}));

}  // namespace
}  // namespace predict
