// Tests for graph/generators: shape properties, determinism, options
// validation. Parameterized sweeps check invariants across sizes/seeds.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"

namespace predict {
namespace {

// ------------------------------------------------- preferential attachment

TEST(PreferentialAttachmentTest, RespectsVertexCount) {
  const Graph g = GeneratePreferentialAttachment({5000, 6, 0.3, 1}).MoveValue();
  EXPECT_EQ(g.num_vertices(), 5000u);
  EXPECT_GT(g.num_edges(), 5000u * 5);
}

TEST(PreferentialAttachmentTest, DeterministicForSeed) {
  const Graph a = GeneratePreferentialAttachment({2000, 5, 0.3, 9}).MoveValue();
  const Graph b = GeneratePreferentialAttachment({2000, 5, 0.3, 9}).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(a.out_degree(v), b.out_degree(v));
  }
}

TEST(PreferentialAttachmentTest, DifferentSeedsDiffer) {
  const Graph a = GeneratePreferentialAttachment({2000, 5, 0.3, 9}).MoveValue();
  const Graph b = GeneratePreferentialAttachment({2000, 5, 0.3, 10}).MoveValue();
  EXPECT_NE(a.num_edges(), b.num_edges());
}

TEST(PreferentialAttachmentTest, ConnectedByConstruction) {
  const Graph g = GeneratePreferentialAttachment({3000, 4, 0.3, 2}).MoveValue();
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 1.0);
}

TEST(PreferentialAttachmentTest, HubsExist) {
  const Graph g = GeneratePreferentialAttachment({20000, 8, 0.3, 4}).MoveValue();
  const DegreeStats in = ComputeInDegreeStats(g);
  EXPECT_GT(in.max, 50 * in.mean);  // heavy tail
}

TEST(PreferentialAttachmentTest, RejectsBadOptions) {
  EXPECT_TRUE(GeneratePreferentialAttachment({1, 4, 0.3, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GeneratePreferentialAttachment({100, 0, 0.3, 1})
                  .status()
                  .IsInvalidArgument());
}

TEST(PreferentialAttachmentTest, NoSelfLoops) {
  const Graph g = GeneratePreferentialAttachment({2000, 6, 0.5, 7}).MoveValue();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) EXPECT_NE(u, v);
  }
}

// -------------------------------------------------------------- copy model

TEST(CopyModelTest, FixedOutDegree) {
  CopyModelOptions options;
  options.num_vertices = 3000;
  options.out_degree = 12;
  options.seed = 5;
  const Graph g = GenerateCopyModelWebGraph(options).MoveValue();
  // Dedup can only reduce; most pages should still have close to 12.
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_LE(out.max, 12.0 + 12.0);  // seed clique vertices can exceed
  EXPECT_GT(out.mean, 6.0);
}

TEST(CopyModelTest, ZipfOutDegreeHasHeavyTail) {
  CopyModelOptions options;
  options.num_vertices = 30000;
  options.zipf_alpha = 2.0;
  options.min_out_degree = 4;
  options.seed = 5;
  const Graph g = GenerateCopyModelWebGraph(options).MoveValue();
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_GT(out.max, 20 * out.mean);
  EXPECT_TRUE(FitOutDegreePowerLaw(g).plausible);
}

TEST(CopyModelTest, CopyingCreatesPopularPages) {
  CopyModelOptions options;
  options.num_vertices = 20000;
  options.out_degree = 10;
  options.copy_p = 0.8;
  options.seed = 6;
  const Graph g = GenerateCopyModelWebGraph(options).MoveValue();
  const DegreeStats in = ComputeInDegreeStats(g);
  EXPECT_GT(in.max, 30 * in.mean);
}

TEST(CopyModelTest, RejectsBadCopyP) {
  CopyModelOptions options;
  options.copy_p = 1.5;
  EXPECT_TRUE(GenerateCopyModelWebGraph(options).status().IsInvalidArgument());
}

TEST(CopyModelTest, Deterministic) {
  CopyModelOptions options;
  options.num_vertices = 2000;
  options.seed = 8;
  const Graph a = GenerateCopyModelWebGraph(options).MoveValue();
  const Graph b = GenerateCopyModelWebGraph(options).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

// --------------------------------------------------------------- lognormal

TEST(LogNormalTest, MeanDegreeTracksParameters) {
  LogNormalDegreeOptions options;
  options.num_vertices = 20000;
  options.log_mean = 2.0;
  options.log_stddev = 0.5;
  options.reciprocal_p = 0.0;
  options.seed = 3;
  const Graph g = GenerateLogNormalDegreeGraph(options).MoveValue();
  // E[lognormal(2.0, 0.5)] = exp(2.125) ~ 8.4; dedup trims slightly.
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_NEAR(out.mean, 8.4, 1.5);
}

TEST(LogNormalTest, RejectsNegativeSigma) {
  LogNormalDegreeOptions options;
  options.log_stddev = -1.0;
  EXPECT_TRUE(
      GenerateLogNormalDegreeGraph(options).status().IsInvalidArgument());
}

TEST(LogNormalTest, Deterministic) {
  LogNormalDegreeOptions options;
  options.num_vertices = 2000;
  options.seed = 4;
  const Graph a = GenerateLogNormalDegreeGraph(options).MoveValue();
  const Graph b = GenerateLogNormalDegreeGraph(options).MoveValue();
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

// ------------------------------------------------------------- erdos-renyi

TEST(ErdosRenyiTest, EdgeCountApproximatelyHonored) {
  const Graph g = GenerateErdosRenyi({10000, 50000, 1}).MoveValue();
  // Dedup removes a few collisions.
  EXPECT_GT(g.num_edges(), 49000u);
  EXPECT_LE(g.num_edges(), 50000u);
}

TEST(ErdosRenyiTest, NotScaleFree) {
  const Graph g = GenerateErdosRenyi({20000, 160000, 2}).MoveValue();
  EXPECT_FALSE(FitOutDegreePowerLaw(g, 2).plausible);
}

// ------------------------------------------------------------------- rmat

TEST(RmatTest, VertexCountIsPowerOfTwo) {
  const Graph g = GenerateRmat({10, 5000, 0.57, 0.19, 0.19, 1}).MoveValue();
  EXPECT_EQ(g.num_vertices(), 1024u);
}

TEST(RmatTest, SkewedQuadrantsProduceHubs) {
  const Graph g = GenerateRmat({14, 130000, 0.57, 0.19, 0.19, 3}).MoveValue();
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_GT(out.max, 40 * std::max(1.0, out.mean));
}

TEST(RmatTest, RejectsBadProbabilities) {
  EXPECT_TRUE(GenerateRmat({10, 100, 0.6, 0.3, 0.3, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRmat({0, 100, 0.5, 0.2, 0.2, 1})
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------- small structures

TEST(SmallGraphsTest, Chain) {
  const Graph g = GenerateChain(5).MoveValue();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(4), 0u);
}

TEST(SmallGraphsTest, Complete) {
  const Graph g = GenerateComplete(5).MoveValue();
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(SmallGraphsTest, StarDirectedAndBidirectional) {
  EXPECT_EQ(GenerateStar(5, false).MoveValue().num_edges(), 4u);
  EXPECT_EQ(GenerateStar(5, true).MoveValue().num_edges(), 8u);
}

TEST(SmallGraphsTest, EmptyRejected) {
  EXPECT_FALSE(GenerateChain(0).ok());
  EXPECT_FALSE(GenerateComplete(0).ok());
  EXPECT_FALSE(GenerateStar(0).ok());
}

// -------------------------------------------- parameterized shape sweeps

struct ShapeCase {
  VertexId num_vertices;
  uint32_t out_degree;
  uint64_t seed;
};

class PaShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(PaShapeSweep, ConnectedScaleFreeAndSized) {
  const ShapeCase& c = GetParam();
  PreferentialAttachmentOptions options;
  options.num_vertices = c.num_vertices;
  options.out_degree = c.out_degree;
  options.seed = c.seed;
  const Graph g = GeneratePreferentialAttachment(options).MoveValue();
  EXPECT_EQ(g.num_vertices(), c.num_vertices);
  EXPECT_DOUBLE_EQ(LargestComponentFraction(g), 1.0);
  // Average out-degree at least the attachment parameter (reciprocal
  // edges add more, dedup removes few).
  const DegreeStats out = ComputeOutDegreeStats(g);
  EXPECT_GT(out.mean, 0.8 * c.out_degree);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PaShapeSweep,
    ::testing::Values(ShapeCase{1000, 4, 1}, ShapeCase{1000, 4, 99},
                      ShapeCase{5000, 8, 1}, ShapeCase{20000, 4, 7},
                      ShapeCase{5000, 16, 3}));

}  // namespace
}  // namespace predict
