// Tests for the extension surface: RWR proximity (§5.3's "random walks
// with restart"), binary graph I/O, and prediction of the extended-
// version algorithms (CC, NH) end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "algorithms/rwr_proximity.h"
#include "algorithms/runner.h"
#include "core/predictor.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace predict {
namespace {

bsp::EngineOptions FastEngine(uint32_t workers = 4) {
  bsp::EngineOptions options;
  options.num_workers = workers;
  options.num_threads = 0;
  options.cost_profile.noise_sigma = 0.0;
  options.cost_profile.setup_seconds = 0.0;
  options.cost_profile.read_bytes_per_second = 0.0;
  options.cost_profile.write_bytes_per_second = 0.0;
  return options;
}

// ------------------------------------------------------------------- RWR

TEST(RwrTest, ScoresSumToRoughlyOne) {
  // No dangling vertices in PA graphs, so the personalized PageRank mass
  // is conserved up to the convergence tolerance.
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.4, 3}).MoveValue();
  auto result = RunRwrProximity(g, {{"tau", 1e-12}}, FastEngine());
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const double s : result->scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(RwrTest, SourceHasHighestScore) {
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.4, 5}).MoveValue();
  auto result = RunRwrProximity(g, {{"tau", 1e-10}}, FastEngine());
  ASSERT_TRUE(result.ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == result->source) continue;
    EXPECT_GT(result->scores[result->source], result->scores[v]);
  }
}

TEST(RwrTest, AutoSourceIsMaxOutDegree) {
  const Graph g = GenerateStar(50).MoveValue();  // hub = vertex 0
  auto result = RunRwrProximity(g, {}, FastEngine());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source, 0u);
}

TEST(RwrTest, ExplicitSourceRespected) {
  const Graph g = GenerateComplete(10).MoveValue();
  auto result = RunRwrProximity(g, {{"source", 7.0}}, FastEngine());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source, 7u);
}

TEST(RwrTest, ProximityDecaysWithDistance) {
  // Chain with the source forced at vertex 0: score must strictly decay
  // along the chain.
  const Graph g = GenerateChain(10).MoveValue();
  auto result = RunRwrProximity(g, {{"source", 0.0}, {"tau", 1e-14}},
                                FastEngine(2));
  ASSERT_TRUE(result.ok());
  for (VertexId v = 1; v < 10; ++v) {
    EXPECT_LT(result->scores[v], result->scores[v - 1]) << "vertex " << v;
  }
}

TEST(RwrTest, RegisteredWithAbsoluteAggregateConvergence) {
  auto spec = FindAlgorithmSpec("rwr_proximity");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->convergence, ConvergenceKind::kAbsoluteAggregate);
}

TEST(RwrTest, PredictorEndToEnd) {
  const Graph g = GeneratePreferentialAttachment({15000, 6, 0.3, 7}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.1;
  options.engine = FastEngine(8);
  Predictor predictor(options);
  const AlgorithmConfig config = {
      {"tau", 0.001 / static_cast<double>(g.num_vertices())}};
  auto report = predictor.PredictRuntime("rwr_proximity", g, "rwr", config);
  ASSERT_TRUE(report.ok());

  RunOptions run_options;
  run_options.engine = options.engine;
  run_options.config_overrides = config;
  auto actual = RunAlgorithmByName("rwr_proximity", g, run_options);
  ASSERT_TRUE(actual.ok());
  const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
  EXPECT_LE(std::abs(eval.iterations_error), 0.4);
}

// ------------------------------------------------------------- binary I/O

TEST(BinaryIoTest, RoundTripUnweighted) {
  const Graph g = GeneratePreferentialAttachment({500, 4, 0.3, 9}).MoveValue();
  const std::string path =
      (std::filesystem::temp_directory_path() / "predict_bin_test.prdg").string();
  ASSERT_TRUE(WriteBinaryGraphFile(g, path).ok());
  auto loaded = ReadBinaryGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v);
    const auto b = loaded->out_neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::filesystem::remove(path);
}

TEST(BinaryIoTest, RoundTripWeighted) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.5f);
  b.AddEdge(1, 2, 0.25f);
  const Graph g = b.Build().MoveValue();
  const std::string path =
      (std::filesystem::temp_directory_path() / "predict_binw_test.prdg")
          .string();
  ASSERT_TRUE(WriteBinaryGraphFile(g, path).ok());
  auto loaded = ReadBinaryGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->is_weighted());
  EXPECT_FLOAT_EQ(loaded->out_weights(0)[0], 2.5f);
  EXPECT_FLOAT_EQ(loaded->out_weights(1)[0], 0.25f);
  std::filesystem::remove(path);
}

TEST(BinaryIoTest, RejectsNonPrdgFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "predict_notbin.txt").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("0 1\n1 2\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(ReadBinaryGraphFile(path).status().IsIOError());
  std::filesystem::remove(path);
}

TEST(BinaryIoTest, RejectsTruncatedFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "predict_trunc.prdg").string();
  const Graph g = GenerateComplete(5).MoveValue();
  ASSERT_TRUE(WriteBinaryGraphFile(g, path).ok());
  std::filesystem::resize_file(path, 30);  // cut into the edge section
  EXPECT_TRUE(ReadBinaryGraphFile(path).status().IsIOError());
  std::filesystem::remove(path);
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadBinaryGraphFile("/no/such/file.prdg").status().IsIOError());
}

// --------------------------------------- CC / NH prediction (extended TR)

TEST(ExtendedTest, ConnectedComponentsPrediction) {
  const Graph g = GeneratePreferentialAttachment({20000, 6, 0.3, 11}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.15;
  options.engine = FastEngine(8);
  Predictor predictor(options);
  auto report = predictor.PredictRuntime("connected_components", g, "", {});
  ASSERT_TRUE(report.ok());
  // Fixed-point convergence: nothing to transform.
  EXPECT_NE(report->transform_description.find("ID_Conv"), std::string::npos);

  RunOptions run_options;
  run_options.engine = options.engine;
  auto actual = RunAlgorithmByName("connected_components", g, run_options);
  ASSERT_TRUE(actual.ok());
  const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
  EXPECT_LE(std::abs(eval.iterations_error), 0.5);
}

TEST(ExtendedTest, NeighborhoodPrediction) {
  const Graph g = GeneratePreferentialAttachment({15000, 6, 0.3, 13}).MoveValue();
  PredictorOptions options;
  options.sampler.sampling_ratio = 0.15;
  options.engine = FastEngine(8);
  Predictor predictor(options);
  auto report =
      predictor.PredictRuntime("neighborhood", g, "", {{"tau", 0.001}});
  ASSERT_TRUE(report.ok());
  RunOptions run_options;
  run_options.engine = options.engine;
  run_options.config_overrides = {{"tau", 0.001}};
  auto actual = RunAlgorithmByName("neighborhood", g, run_options);
  ASSERT_TRUE(actual.ok());
  const PredictionEvaluation eval = EvaluatePrediction(*report, actual->stats);
  EXPECT_LE(std::abs(eval.iterations_error), 0.5);
}

}  // namespace
}  // namespace predict
