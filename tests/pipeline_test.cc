// Unit tests for the staged prediction pipeline: every stage exercised
// in isolation through its artifact types, with hand-built inputs where
// the stage's natural producer is not needed. No test here runs the full
// pipeline end to end (that is predictor_test.cc's job).

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/runner.h"
#include "graph/generators.h"
#include "pipeline/artifacts.h"
#include "pipeline/stages.h"

namespace predict {
namespace {

using pipeline::ExtrapolateStage;
using pipeline::ExtrapolationArtifact;
using pipeline::FitStage;
using pipeline::ModelArtifact;
using pipeline::ProfileArtifact;
using pipeline::ProfileStage;
using pipeline::SampleArtifact;
using pipeline::SampleKey;
using pipeline::SampleStage;
using pipeline::TransformArtifact;
using pipeline::TransformStage;

Graph TestGraph(VertexId n = 4000, uint64_t seed = 77) {
  return GeneratePreferentialAttachment({n, 6, 0.3, seed}).MoveValue();
}

bsp::EngineOptions TestEngine() {
  bsp::EngineOptions options;
  options.num_workers = 4;
  options.num_threads = 0;
  return options;
}

// Builds a SampleArtifact by hand: the "sample" is the whole graph.
SampleArtifact WholeGraphSample(const Graph& graph) {
  SampleArtifact artifact;
  artifact.key = SampleKey::For(graph, SamplerOptions{});
  artifact.sample.subgraph = graph;
  artifact.sample.vertices.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    artifact.sample.vertices[v] = v;
  }
  artifact.sample.original_num_vertices = graph.num_vertices();
  artifact.sample.realized_ratio = 1.0;
  return artifact;
}

// Builds a TransformArtifact by hand for `algorithm` with the given
// sample config (no TransformStage involved).
TransformArtifact HandTransform(const std::string& algorithm,
                                const AlgorithmConfig& sample_config) {
  TransformArtifact artifact;
  artifact.spec = FindAlgorithmSpec(algorithm).MoveValue();
  artifact.actual_config = sample_config;
  artifact.sample_config = sample_config;
  artifact.description = "hand-built";
  return artifact;
}

// ------------------------------------------------------------ SampleStage

TEST(SampleStageTest, ProducesKeyedArtifactWithRealizedRatio) {
  const Graph g = TestGraph();
  SamplerOptions options;
  options.sampling_ratio = 0.1;
  options.seed = 5;
  const SampleStage stage(options);
  auto artifact = stage.Run(g);
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ(artifact->key.graph_fingerprint, g.Fingerprint());
  EXPECT_EQ(artifact->key.options, options);
  EXPECT_NEAR(artifact->realized_ratio(), 0.1, 0.01);
  EXPECT_EQ(artifact->sample.original_num_vertices, g.num_vertices());
  EXPECT_EQ(artifact->sample.subgraph.num_vertices(),
            artifact->sample.vertices.size());
}

TEST(SampleStageTest, DeterministicForFixedOptions) {
  const Graph g = TestGraph();
  SamplerOptions options;
  options.sampling_ratio = 0.1;
  options.seed = 5;
  const SampleStage stage(options);
  auto a = stage.Run(g);
  auto b = stage.Run(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sample.vertices, b->sample.vertices);
  EXPECT_EQ(a->sample.subgraph.Fingerprint(), b->sample.subgraph.Fingerprint());
  EXPECT_EQ(a->key.ToString(), b->key.ToString());
}

TEST(SampleKeyTest, DistinguishesGraphsAndOptions) {
  const Graph g1 = TestGraph(4000, 77);
  const Graph g2 = TestGraph(4000, 78);
  SamplerOptions options;
  const std::string k1 = SampleKey::For(g1, options).ToString();
  const std::string k2 = SampleKey::For(g2, options).ToString();
  options.sampling_ratio = 0.2;
  const std::string k3 = SampleKey::For(g1, options).ToString();
  options.sampling_ratio = 0.1;
  options.seed = 99;
  const std::string k4 = SampleKey::For(g1, options).ToString();
  EXPECT_NE(k1, k2);  // different graph content
  EXPECT_NE(k1, k3);  // different ratio
  EXPECT_NE(k1, k4);  // different seed
  EXPECT_EQ(k1, SampleKey::For(g1, SamplerOptions{}).ToString());
}

// --------------------------------------------------------- TransformStage

TEST(TransformStageTest, ScalesTauForAbsoluteAggregateAlgorithms) {
  // No sample involved: the stage consumes only the realized ratio.
  const TransformStage stage;
  auto artifact = stage.Run("pagerank", {{"tau", 1e-6}}, 0.1);
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ(artifact->spec.name, "pagerank");
  EXPECT_DOUBLE_EQ(artifact->actual_config.at("tau"), 1e-6);
  EXPECT_NEAR(artifact->sample_config.at("tau"), 1e-5, 1e-12);
  EXPECT_FALSE(artifact->description.empty());
}

TEST(TransformStageTest, KeepsTauForRelativeRatioAlgorithms) {
  const TransformStage stage;
  auto artifact = stage.Run("semiclustering", {{"tau", 0.001}}, 0.1);
  ASSERT_TRUE(artifact.ok());
  EXPECT_DOUBLE_EQ(artifact->sample_config.at("tau"), 0.001);
}

TEST(TransformStageTest, CustomTransformHonored) {
  const IdentityTransform identity;
  const TransformStage stage(&identity);
  auto artifact = stage.Run("pagerank", {{"tau", 1e-6}}, 0.1);
  ASSERT_TRUE(artifact.ok());
  EXPECT_DOUBLE_EQ(artifact->sample_config.at("tau"), 1e-6);  // unscaled
}

TEST(TransformStageTest, UnknownAlgorithmAndBadKeyFail) {
  const TransformStage stage;
  EXPECT_TRUE(stage.Run("kmeans", {}, 0.1).status().IsNotFound());
  EXPECT_TRUE(
      stage.Run("pagerank", {{"zzz", 1.0}}, 0.1).status().IsInvalidArgument());
}

TEST(TransformArtifactTest, ConfigKeyIsCanonical) {
  TransformArtifact a = HandTransform("pagerank", {{"tau", 0.5}, {"d", 0.85}});
  TransformArtifact b = HandTransform("pagerank", {{"d", 0.85}, {"tau", 0.5}});
  EXPECT_EQ(a.ConfigKey(), b.ConfigKey());  // map order is canonical
  TransformArtifact c = HandTransform("pagerank", {{"tau", 0.25}, {"d", 0.85}});
  EXPECT_NE(a.ConfigKey(), c.ConfigKey());
}

// ----------------------------------------------------------- ProfileStage

TEST(ProfileStageTest, ProfilesHandBuiltSampleArtifact) {
  const Graph g = TestGraph(2000, 11);
  const SampleArtifact sample = WholeGraphSample(g);
  const TransformArtifact transform =
      HandTransform("connected_components", {});
  const ProfileStage stage(TestEngine());
  auto profile = stage.Run("connected_components", "ds", sample, transform);
  ASSERT_TRUE(profile.ok());
  EXPECT_GT(profile->sample_profile.num_iterations(), 0);
  EXPECT_EQ(profile->sample_profile.algorithm, "connected_components");
  EXPECT_EQ(profile->sample_profile.dataset, "ds_sample");
  EXPECT_EQ(profile->sample_profile.num_vertices, g.num_vertices());
  EXPECT_GT(profile->sample_total_seconds, 0.0);
  // Every iteration carries critical-worker features.
  for (const IterationProfile& it : profile->sample_profile.iterations) {
    EXPECT_GE(it.runtime_seconds, 0.0);
    EXPECT_GT(it.critical_features[static_cast<int>(Feature::kTotVert)], 0.0);
  }
}

TEST(ProfileStageTest, EmptyDatasetLabelledSample) {
  const Graph g = TestGraph(1000, 12);
  const SampleArtifact sample = WholeGraphSample(g);
  const TransformArtifact transform =
      HandTransform("connected_components", {});
  const ProfileStage stage(TestEngine());
  auto profile = stage.Run("connected_components", "", sample, transform);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->sample_profile.dataset, "sample");
}

// ------------------------------------------------------- ExtrapolateStage

TEST(ExtrapolateStageTest, ScalesHandBuiltProfileByGraphRatios) {
  // Full graph 8 vertices / 8 edges; "sample" 4 vertices / 2 edges —
  // both hand-built, no sampler involved.
  GraphBuilder full_b(8);
  for (VertexId v = 0; v < 8; ++v) full_b.AddEdge(v, (v + 1) % 8);
  const Graph full = full_b.Build().MoveValue();
  GraphBuilder sample_b(4);
  sample_b.AddEdge(0, 1);
  sample_b.AddEdge(1, 2);
  const Graph sample_graph = sample_b.Build().MoveValue();

  SampleArtifact sample;
  sample.sample.subgraph = sample_graph;
  sample.sample.original_num_vertices = full.num_vertices();
  sample.sample.realized_ratio = 0.5;

  ProfileArtifact profile;
  profile.sample_profile.algorithm = "x";
  IterationProfile it;
  it.iteration = 0;
  it.critical_features[static_cast<int>(Feature::kActVert)] = 10.0;
  it.critical_features[static_cast<int>(Feature::kRemMsgSize)] = 100.0;
  it.critical_features[static_cast<int>(Feature::kAvgMsgSize)] = 8.0;
  it.runtime_seconds = 1.5;
  profile.sample_profile.iterations.push_back(it);

  const ExtrapolateStage stage;
  auto extrapolation = stage.Run(full, sample, profile);
  ASSERT_TRUE(extrapolation.ok());
  EXPECT_DOUBLE_EQ(extrapolation->factors.vertex_factor, 2.0);  // 8/4
  EXPECT_DOUBLE_EQ(extrapolation->factors.edge_factor, 4.0);    // 8/2
  const FeatureVector& f =
      extrapolation->extrapolated_profile.iterations[0].critical_features;
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kActVert)], 20.0);     // eV
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kRemMsgSize)], 400.0); // eE
  EXPECT_DOUBLE_EQ(f[static_cast<int>(Feature::kAvgMsgSize)], 8.0);   // kept
}

TEST(ExtrapolateStageTest, EmptySampleGraphFails) {
  const Graph full = TestGraph(1000, 13);
  SampleArtifact sample;  // default: empty subgraph
  ProfileArtifact profile;
  const ExtrapolateStage stage;
  EXPECT_FALSE(stage.Run(full, sample, profile).ok());
}

// -------------------------------------------------------------- FitStage

// A profile whose runtimes follow an exact linear law over one feature.
ProfileArtifact LinearProfile(int rows, double slope, double intercept) {
  ProfileArtifact artifact;
  artifact.sample_profile.algorithm = "synthetic";
  for (int i = 0; i < rows; ++i) {
    IterationProfile it;
    it.iteration = i;
    const double x = 1000.0 * (i + 1);
    it.critical_features[static_cast<int>(Feature::kRemMsgSize)] = x;
    it.runtime_seconds = slope * x + intercept;
    artifact.sample_profile.iterations.push_back(it);
  }
  return artifact;
}

TEST(FitStageTest, RecoversLinearLawFromHandBuiltProfile) {
  const ProfileArtifact profile = LinearProfile(12, 2e-6, 0.25);
  const FitStage stage(CostModelOptions{}, nullptr);
  auto model = stage.Run(profile, "synthetic", "");
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->model.r_squared(), 0.999);
  FeatureVector probe{};
  probe[static_cast<int>(Feature::kRemMsgSize)] = 50000.0;
  EXPECT_NEAR(model->model.PredictIterationSeconds(probe),
              2e-6 * 50000.0 + 0.25, 1e-3);
}

TEST(FitStageTest, MergesHistoryButExcludesSameDataset) {
  const ProfileArtifact profile = LinearProfile(8, 2e-6, 0.25);

  HistoryStore history;
  RunProfile poisoned;
  poisoned.algorithm = "synthetic";
  poisoned.dataset = "mine";
  IterationProfile bad;
  bad.runtime_seconds = 1e9;
  poisoned.iterations.push_back(bad);
  history.Add(poisoned);

  const FitStage stage(CostModelOptions{}, &history);
  auto model = stage.Run(profile, "synthetic", "mine");
  ASSERT_TRUE(model.ok());
  // The absurd same-dataset row was excluded; the clean linear law holds.
  EXPECT_GT(model->model.r_squared(), 0.999);
}

TEST(FitStageTest, EmptyProfileFails) {
  const ProfileArtifact empty;
  const FitStage stage(CostModelOptions{}, nullptr);
  EXPECT_FALSE(stage.Run(empty, "synthetic", "").ok());
}

}  // namespace
}  // namespace predict
