// Bit-identical determinism of the BSP engine across host thread counts.
//
// Host threads only accelerate the simulation: RunStats (per-superstep
// Table-1 counters, simulated seconds, memory model) and final vertex
// values must be bit-identical for any num_threads, including 0
// (inline). These tests pin that contract for two real algorithms and
// for a deliberately order-sensitive (non-commutative) vertex program
// that folds its inbox into a hash, which fails if per-vertex delivery
// order ever deviates from (sender worker asc, within-sender send
// order).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/semiclustering.h"
#include "bsp/engine.h"
#include "bsp/partition.h"
#include "graph/generators.h"
#include "tests/run_fingerprint.h"

namespace predict {
namespace {

using bsp::Engine;
using bsp::EngineOptions;
using bsp::PartitionStrategy;
using bsp::RunStats;
using bsp::VertexContext;
using bsp::WorkerCounters;
using testing::FingerprintDoubles;
using testing::FingerprintIds;
using testing::FingerprintRunStats;

constexpr int kThreadCounts[] = {0, 1, 2, 8};

EngineOptions ClusterOptions(int num_threads) {
  EngineOptions options;
  options.num_workers = 29;  // the paper's cluster
  options.num_threads = num_threads;
  return options;  // default cost profile, noise on: still deterministic
}

void ExpectCountersEqual(const WorkerCounters& a, const WorkerCounters& b) {
  EXPECT_EQ(a.active_vertices, b.active_vertices);
  EXPECT_EQ(a.total_vertices, b.total_vertices);
  EXPECT_EQ(a.local_messages, b.local_messages);
  EXPECT_EQ(a.remote_messages, b.remote_messages);
  EXPECT_EQ(a.local_message_bytes, b.local_message_bytes);
  EXPECT_EQ(a.remote_message_bytes, b.remote_message_bytes);
}

// Bit-identical comparison of everything the simulation derives (wall
// time excluded: it is the one host-dependent field).
void ExpectStatsIdentical(const RunStats& a, const RunStats& b) {
  ASSERT_EQ(a.num_supersteps(), b.num_supersteps());
  EXPECT_EQ(a.halt_reason, b.halt_reason);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
  EXPECT_EQ(a.superstep_phase_seconds, b.superstep_phase_seconds);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.static_critical_worker, b.static_critical_worker);
  for (int s = 0; s < a.num_supersteps(); ++s) {
    const auto& sa = a.supersteps[s];
    const auto& sb = b.supersteps[s];
    EXPECT_EQ(sa.simulated_seconds, sb.simulated_seconds) << "superstep " << s;
    EXPECT_EQ(sa.critical_worker, sb.critical_worker) << "superstep " << s;
    EXPECT_EQ(sa.memory_bytes, sb.memory_bytes) << "superstep " << s;
    EXPECT_EQ(sa.aggregates, sb.aggregates) << "superstep " << s;
    ASSERT_EQ(sa.per_worker.size(), sb.per_worker.size());
    for (size_t w = 0; w < sa.per_worker.size(); ++w) {
      ExpectCountersEqual(sa.per_worker[w], sb.per_worker[w]);
    }
  }
}

TEST(DeterminismTest, PageRankBitIdenticalAcrossThreadCounts) {
  const Graph g =
      GeneratePreferentialAttachment({4000, 6, 0.3, 29}).MoveValue();
  bool have_baseline = false;
  PageRankResult baseline;
  for (const int threads : kThreadCounts) {
    auto result =
        RunPageRank(g, {{"tau", 1e-4}}, ClusterOptions(threads));
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    if (!have_baseline) {
      baseline = std::move(result).MoveValue();
      have_baseline = true;
      continue;
    }
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectStatsIdentical(baseline.stats, result->stats);
    ASSERT_EQ(baseline.ranks.size(), result->ranks.size());
    for (size_t v = 0; v < baseline.ranks.size(); ++v) {
      // EXPECT_EQ, not NEAR: float summation order must not change.
      EXPECT_EQ(baseline.ranks[v], result->ranks[v]) << "vertex " << v;
    }
  }
}

TEST(DeterminismTest, ConnectedComponentsBitIdenticalAcrossThreadCounts) {
  // Disconnected union of communities: a long sparse-activation tail.
  const Graph g =
      GeneratePreferentialAttachment({3000, 3, 0.5, 31}).MoveValue();
  bool have_baseline = false;
  ConnectedComponentsResult baseline;
  for (const int threads : kThreadCounts) {
    auto result = RunConnectedComponents(g, ClusterOptions(threads));
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    if (!have_baseline) {
      baseline = std::move(result).MoveValue();
      have_baseline = true;
      continue;
    }
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectStatsIdentical(baseline.stats, result->stats);
    EXPECT_EQ(baseline.labels, result->labels);
  }
}

// ------------------------------------------- seed-engine golden pinning

// The run fingerprints of the seed engine (captured before the
// PartitionMap refactor, commit 38cd185) for PageRank, connected
// components and semi-clustering across worker counts. The hash
// Partitioner is the seed scheme's replacement and must reproduce these
// bit for bit, for every worker count and every host thread count; any
// change here is a silent behavioural break of the engine, not a test to
// update.
struct GoldenFingerprint {
  uint32_t workers;
  uint64_t pagerank;    // RunStats + final ranks
  uint64_t components;  // RunStats + final labels
  uint64_t semicluster; // RunStats
};

constexpr GoldenFingerprint kSeedGoldens[] = {
    {3u, 0x7595415653674d19ull, 0x4981973de31be539ull, 0x171f52343d1eacceull},
    {10u, 0xe276f012023efb15ull, 0x45ee625acd5ce880ull, 0xbb3b12a8e4caa168ull},
    {29u, 0x8d186e2e82759bffull, 0x020ae60863c92204ull, 0x9e525aadf52c72a4ull},
    {64u, 0xb25ca69b7ae61869ull, 0x21fe403a66b4e24aull, 0xdd228056bd97b7bbull},
};

const Graph& GoldenPrGraph() {
  static const Graph g =
      GeneratePreferentialAttachment({4000, 6, 0.3, 29}).MoveValue();
  return g;
}
const Graph& GoldenCcGraph() {
  static const Graph g =
      GeneratePreferentialAttachment({3000, 3, 0.5, 31}).MoveValue();
  return g;
}
const Graph& GoldenScGraph() {
  static const Graph g =
      GeneratePreferentialAttachment({800, 4, 0.4, 7}).MoveValue();
  return g;
}

TEST(DeterminismTest, HashPartitionerReproducesSeedEngineFingerprints) {
  for (const GoldenFingerprint& golden : kSeedGoldens) {
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("workers=" + std::to_string(golden.workers) +
                   " threads=" + std::to_string(threads));
      EngineOptions options;
      options.num_workers = golden.workers;
      options.num_threads = threads;

      auto pr = RunPageRank(GoldenPrGraph(), {{"tau", 1e-6}}, options);
      ASSERT_TRUE(pr.ok());
      EXPECT_EQ(FingerprintDoubles(pr->ranks, FingerprintRunStats(pr->stats)),
                golden.pagerank);

      auto cc = RunConnectedComponents(GoldenCcGraph(), options);
      ASSERT_TRUE(cc.ok());
      EXPECT_EQ(FingerprintIds(cc->labels, FingerprintRunStats(cc->stats)),
                golden.components);

      auto sc = RunSemiClustering(GoldenScGraph(), {{"tau", 0.01}}, options);
      ASSERT_TRUE(sc.ok());
      EXPECT_EQ(FingerprintRunStats(sc->stats), golden.semicluster);
    }
  }
}

// The alternative partitioners have no seed to match, but each must be
// internally deterministic: bit-identical output for any host thread
// count and across repeated runs.
TEST(DeterminismTest, AlternativePartitionersAreInternallyDeterministic) {
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kContiguousRange,
        PartitionStrategy::kGreedyEdgeBalanced}) {
    for (const uint32_t workers : {10u, 29u}) {
      SCOPED_TRACE(std::string(PartitionStrategyName(strategy)) +
                   " workers=" + std::to_string(workers));
      bool have_baseline = false;
      uint64_t baseline_pr = 0;
      uint64_t baseline_cc = 0;
      // Two passes at thread count 0 pin run-to-run determinism; the
      // remaining thread counts pin thread-count independence.
      const int thread_counts[] = {0, 0, 1, 2, 8};
      for (const int threads : thread_counts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EngineOptions options;
        options.num_workers = workers;
        options.num_threads = threads;
        options.partition = strategy;

        auto pr = RunPageRank(GoldenPrGraph(), {{"tau", 1e-6}}, options);
        ASSERT_TRUE(pr.ok());
        const uint64_t pr_fp =
            FingerprintDoubles(pr->ranks, FingerprintRunStats(pr->stats));

        auto cc = RunConnectedComponents(GoldenCcGraph(), options);
        ASSERT_TRUE(cc.ok());
        const uint64_t cc_fp =
            FingerprintIds(cc->labels, FingerprintRunStats(cc->stats));

        if (!have_baseline) {
          baseline_pr = pr_fp;
          baseline_cc = cc_fp;
          have_baseline = true;
          continue;
        }
        EXPECT_EQ(pr_fp, baseline_pr);
        EXPECT_EQ(cc_fp, baseline_cc);
      }
    }
  }
}

// ----------------------------------------- superstep path bit-identity

// The dense flat-array path must be indistinguishable from the sparse
// worklist path in everything but host wall clock — and the adaptive
// policy flips between them mid-run, so the guarantee must hold for any
// interleaving. Pins PageRank (every superstep fully active), connected
// components (dense head, long sparse tail: the adaptive run actually
// transitions) and semi-clustering across paths x thread counts against
// the always-sparse fingerprint.
TEST(DeterminismTest, SuperstepPathsBitIdentical) {
  struct PathCase {
    bsp::SuperstepPath path;
    double threshold;
  };
  const PathCase cases[] = {
      {bsp::SuperstepPath::kAdaptive, 0.6},
      {bsp::SuperstepPath::kAdaptive, 0.2},  // transitions earlier
      {bsp::SuperstepPath::kDense, 0.6},
  };
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EngineOptions sparse = ClusterOptions(threads);
    sparse.superstep_path = bsp::SuperstepPath::kSparse;

    auto pr = RunPageRank(GoldenPrGraph(), {{"tau", 1e-6}}, sparse);
    auto cc = RunConnectedComponents(GoldenCcGraph(), sparse);
    auto sc = RunSemiClustering(GoldenScGraph(), {}, sparse);
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(cc.ok());
    ASSERT_TRUE(sc.ok());
    const uint64_t pr_fp =
        FingerprintDoubles(pr->ranks, FingerprintRunStats(pr->stats));
    const uint64_t cc_fp =
        FingerprintIds(cc->labels, FingerprintRunStats(cc->stats));
    const uint64_t sc_fp = FingerprintRunStats(sc->stats);

    for (const PathCase& c : cases) {
      SCOPED_TRACE(std::string(bsp::SuperstepPathName(c.path)) +
                   " threshold=" + std::to_string(c.threshold));
      EngineOptions options = sparse;
      options.superstep_path = c.path;
      options.dense_path_threshold = c.threshold;

      auto pr2 = RunPageRank(GoldenPrGraph(), {{"tau", 1e-6}}, options);
      ASSERT_TRUE(pr2.ok());
      EXPECT_EQ(FingerprintDoubles(pr2->ranks, FingerprintRunStats(pr2->stats)),
                pr_fp);

      auto cc2 = RunConnectedComponents(GoldenCcGraph(), options);
      ASSERT_TRUE(cc2.ok());
      EXPECT_EQ(FingerprintIds(cc2->labels, FingerprintRunStats(cc2->stats)),
                cc_fp);

      auto sc2 = RunSemiClustering(GoldenScGraph(), {}, options);
      ASSERT_TRUE(sc2.ok());
      EXPECT_EQ(FingerprintRunStats(sc2->stats), sc_fp);
    }
  }
}

// A compressed input graph runs through the SAME engine paths and must
// produce bit-identical RESULTS: the representation changes decode cost
// and simulated memory accounting (a compressed graph genuinely occupies
// fewer simulated bytes — that is the point), never ranks, iteration
// count, or message traffic. The Run* wrappers set
// EngineOptions::compressed_graph from the graph they pass the engine.
TEST(DeterminismTest, CompressedGraphRunsBitIdenticalToPlain) {
  const Graph compressed = Graph::WithCompressedEdges(GoldenPrGraph());
  auto plain_run =
      RunPageRank(GoldenPrGraph(), {{"tau", 1e-6}}, ClusterOptions(0));
  ASSERT_TRUE(plain_run.ok());
  for (const int threads : kThreadCounts) {
    auto run = RunPageRank(compressed, {{"tau", 1e-6}}, ClusterOptions(threads));
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run->ranks, plain_run->ranks);
    ASSERT_EQ(run->stats.num_supersteps(), plain_run->stats.num_supersteps());
    EXPECT_EQ(run->stats.halt_reason, plain_run->stats.halt_reason);
    EXPECT_EQ(run->stats.superstep_phase_seconds,
              plain_run->stats.superstep_phase_seconds);
    for (int s = 0; s < run->stats.num_supersteps(); ++s) {
      const auto a = run->stats.supersteps[s].Totals();
      const auto b = plain_run->stats.supersteps[s].Totals();
      EXPECT_EQ(a.total_messages(), b.total_messages()) << "superstep " << s;
      EXPECT_EQ(a.total_message_bytes(), b.total_message_bytes())
          << "superstep " << s;
    }
    // The representation shrinks simulated memory, never grows it.
    EXPECT_LT(run->stats.peak_memory_bytes, plain_run->stats.peak_memory_bytes);
  }
}

// ----------------------------------------------------- delivery ordering

// Non-commutative inbox fold: value <- value * 7 + message. Any change
// in per-vertex delivery order changes the result. At superstep 0 every
// vertex sends two messages (id*10 + 1, id*10 + 2) to vertex 0.
class HashChainProgram : public bsp::VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int64_t, int64_t>* ctx,
               std::span<const int64_t> messages) override {
    for (const int64_t m : messages) ctx->value() = ctx->value() * 7 + m;
    if (ctx->superstep() == 0) {
      const int64_t base = static_cast<int64_t>(ctx->id()) * 10;
      ctx->SendMessage(0, base + 1);
      ctx->SendMessage(0, base + 2);
    }
    ctx->VoteToHalt();
  }
};

TEST(DeterminismTest, DeliveryOrderIsSenderWorkerThenSendOrder) {
  // 6 vertices on 3 workers (owner = id % 3): worker 0 owns {0, 3},
  // worker 1 owns {1, 4}, worker 2 owns {2, 5}. Vertex 0's inbox must
  // be ordered by sender worker asc, within a worker by compute order
  // (ascending vertex id), within a sender by send-call order.
  GraphBuilder b(6);
  const Graph g = b.Build().MoveValue();

  const std::vector<int64_t> expected_order = {
      1, 2, 31, 32,    // worker 0: senders 0, 3
      11, 12, 41, 42,  // worker 1: senders 1, 4
      21, 22, 51, 52,  // worker 2: senders 2, 5
  };
  int64_t expected = 0;
  for (const int64_t m : expected_order) expected = expected * 7 + m;

  for (const int threads : kThreadCounts) {
    EngineOptions options;
    options.num_workers = 3;
    options.num_threads = threads;
    Engine<int64_t, int64_t> engine(options);
    HashChainProgram program;
    ASSERT_TRUE(engine.Run(g, &program).ok()) << "threads=" << threads;
    EXPECT_EQ(engine.vertex_values()[0], expected) << "threads=" << threads;
  }
}

// A mismatched compressed_graph flag must fail loudly, not silently
// mis-simulate: the strict check is what keeps profile caches honest
// when direct Engine users pass their own options.
TEST(DeterminismTest, EngineRejectsCompressedFlagMismatch) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  const Graph plain = b.Build().MoveValue();
  Graph compressed = Graph::WithCompressedEdges(plain);
  HashChainProgram program;

  EngineOptions options;
  options.num_workers = 2;
  options.compressed_graph = true;  // but the graph is plain
  Engine<int64_t, int64_t> engine(options);
  EXPECT_TRUE(engine.Run(plain, &program).status().IsInvalidArgument());

  options.compressed_graph = false;  // but the graph is compressed
  Engine<int64_t, int64_t> engine2(options);
  EXPECT_TRUE(engine2.Run(compressed, &program).status().IsInvalidArgument());
}

}  // namespace
}  // namespace predict
