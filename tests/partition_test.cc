// PartitionMap unit tests: the ownership bijection every engine layer
// relies on, strategy-specific balance properties, and the equivalence
// of the arithmetic hash fast path with the general table path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algorithms/connected_components.h"
#include "bsp/engine.h"
#include "bsp/partition.h"
#include "graph/generators.h"

namespace predict {
namespace {

using bsp::PartitionMap;
using bsp::PartitionStrategy;
using bsp::WorkerId;

const Graph& TestGraph() {
  static const Graph g =
      GeneratePreferentialAttachment({5000, 6, 0.3, 17}).MoveValue();
  return g;
}

// Every strategy must expose a consistent bijection between global ids
// and (worker, local) pairs, with local order == ascending global order.
void CheckBijection(const PartitionMap& map) {
  const uint64_t n = map.num_vertices();
  const uint32_t workers = map.num_workers();

  uint64_t total_owned = 0;
  for (WorkerId w = 0; w < workers; ++w) {
    uint64_t count = 0;
    VertexId previous = 0;
    map.ForEachOwned(w, [&](VertexId v) {
      EXPECT_EQ(map.Owner(v), w);
      EXPECT_EQ(map.LocalIndex(v), count) << "local index is the rank";
      EXPECT_EQ(map.GlobalId(w, static_cast<uint32_t>(count)), v);
      if (count > 0) EXPECT_GT(v, previous) << "owned order is ascending";
      previous = v;
      ++count;
    });
    EXPECT_EQ(count, map.NumOwned(w));
    total_owned += count;
  }
  EXPECT_EQ(total_owned, n) << "every vertex owned exactly once";

  for (VertexId v = 0; v < n; ++v) {
    const PartitionMap::Location loc = map.Locate(v);
    EXPECT_EQ(loc.worker, map.Owner(v));
    EXPECT_EQ(loc.local, map.LocalIndex(v));
    EXPECT_EQ(map.GlobalId(loc.worker, loc.local), v);
  }
}

TEST(PartitionTest, HashModuloMatchesSeedScheme) {
  for (const uint32_t workers : {1u, 3u, 29u, 64u}) {
    const PartitionMap map = PartitionMap::HashModulo(workers, 1000);
    EXPECT_TRUE(map.is_modulo());
    for (VertexId v = 0; v < 1000; ++v) {
      EXPECT_EQ(map.Owner(v), v % workers);
      EXPECT_EQ(map.LocalIndex(v), v / workers);
    }
    CheckBijection(map);
  }
}

TEST(PartitionTest, HashTablePathMatchesArithmeticPath) {
  for (const uint32_t workers : {3u, 29u}) {
    const PartitionMap fast = PartitionMap::HashModulo(workers, 2111);
    const PartitionMap table = PartitionMap::HashModuloTable(workers, 2111);
    EXPECT_FALSE(table.is_modulo());
    for (VertexId v = 0; v < 2111; ++v) {
      EXPECT_EQ(fast.Owner(v), table.Owner(v));
      EXPECT_EQ(fast.LocalIndex(v), table.LocalIndex(v));
    }
    for (WorkerId w = 0; w < workers; ++w) {
      EXPECT_EQ(fast.NumOwned(w), table.NumOwned(w));
    }
    CheckBijection(table);
  }
}

TEST(PartitionTest, ContiguousRangeIsContiguousAndBalanced) {
  for (const uint32_t workers : {4u, 29u}) {
    const PartitionMap map = PartitionMap::ContiguousRange(workers, 1003);
    CheckBijection(map);
    uint64_t min_owned = ~0ull, max_owned = 0;
    WorkerId previous_owner = 0;
    for (VertexId v = 0; v < 1003; ++v) {
      EXPECT_GE(map.Owner(v), previous_owner) << "owners are non-decreasing";
      previous_owner = map.Owner(v);
    }
    for (WorkerId w = 0; w < workers; ++w) {
      min_owned = std::min(min_owned, map.NumOwned(w));
      max_owned = std::max(max_owned, map.NumOwned(w));
    }
    EXPECT_LE(max_owned - min_owned, 1u) << "vertex-balanced to within one";
  }
}

TEST(PartitionTest, EdgeBalancedFlattensOutboundEdgeSkew) {
  const Graph& g = TestGraph();
  for (const uint32_t workers : {10u, 29u}) {
    const PartitionMap hash = PartitionMap::HashModulo(workers, g.num_vertices());
    const PartitionMap range =
        PartitionMap::ContiguousRange(workers, g.num_vertices());
    const PartitionMap edge = PartitionMap::GreedyEdgeBalanced(workers, g);
    CheckBijection(edge);

    const auto max_edges = [&](const PartitionMap& map) {
      const std::vector<uint64_t> edges = map.OutboundEdges(g);
      return *std::max_element(edges.begin(), edges.end());
    };
    // The preferential-attachment hubs sit at low ids, so range
    // partitioning is badly skewed; LPT must beat both layouts and sit
    // close to the perfect per-worker average.
    const uint64_t perfect = (g.num_edges() + workers - 1) / workers;
    EXPECT_LE(max_edges(edge), max_edges(hash)) << "workers=" << workers;
    EXPECT_LT(max_edges(edge), max_edges(range)) << "workers=" << workers;
    EXPECT_LE(max_edges(edge), perfect + perfect / 10) << "workers=" << workers;
  }
}

TEST(PartitionTest, GreedyEdgeBalancedIsDeterministic) {
  const Graph& g = TestGraph();
  const PartitionMap a = PartitionMap::GreedyEdgeBalanced(29, g);
  const PartitionMap b = PartitionMap::GreedyEdgeBalanced(29, g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(a.Owner(v), b.Owner(v)) << "vertex " << v;
  }
}

// Vertex-program results that do not depend on message arrival order
// must be identical under every layout — partitioning decides where a
// vertex computes, never what it computes.
TEST(PartitionTest, ConnectedComponentsLabelsAgreeAcrossStrategies) {
  const Graph g =
      GeneratePreferentialAttachment({2000, 3, 0.5, 9}).MoveValue();
  std::vector<VertexId> baseline;
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHashModulo, PartitionStrategy::kContiguousRange,
        PartitionStrategy::kGreedyEdgeBalanced}) {
    bsp::EngineOptions options;
    options.num_workers = 13;
    options.num_threads = 0;
    options.partition = strategy;
    auto result = RunConnectedComponents(g, options);
    ASSERT_TRUE(result.ok()) << PartitionStrategyName(strategy);
    if (baseline.empty()) {
      baseline = result->labels;
      continue;
    }
    EXPECT_EQ(result->labels, baseline) << PartitionStrategyName(strategy);
  }
}

// The engine's per-superstep active/messaged totals are layout-
// independent as well (only the local/remote split moves): the same
// vertices compute, wherever they live.
TEST(PartitionTest, ActiveVertexTotalsAgreeAcrossStrategies) {
  const Graph g =
      GeneratePreferentialAttachment({2000, 3, 0.5, 9}).MoveValue();
  std::vector<uint64_t> baseline_active;
  std::vector<uint64_t> baseline_messages;
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHashModulo, PartitionStrategy::kContiguousRange,
        PartitionStrategy::kGreedyEdgeBalanced}) {
    bsp::EngineOptions options;
    options.num_workers = 7;
    options.num_threads = 0;
    options.partition = strategy;
    auto result = RunConnectedComponents(g, options);
    ASSERT_TRUE(result.ok());
    std::vector<uint64_t> active;
    std::vector<uint64_t> messages;
    for (const bsp::SuperstepStats& step : result->stats.supersteps) {
      const bsp::WorkerCounters totals = step.Totals();
      active.push_back(totals.active_vertices);
      messages.push_back(totals.total_messages());
    }
    if (baseline_active.empty()) {
      baseline_active = std::move(active);
      baseline_messages = std::move(messages);
      continue;
    }
    EXPECT_EQ(active, baseline_active) << PartitionStrategyName(strategy);
    EXPECT_EQ(messages, baseline_messages) << PartitionStrategyName(strategy);
  }
}

}  // namespace
}  // namespace predict
