// Tests for algorithms/: PageRank vs. a reference power iteration,
// connected components vs. union-find, semi-clustering invariants, top-k
// vs. brute-force reachability, neighborhood estimation accuracy, and the
// type-erased runner registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "algorithms/connected_components.h"
#include "algorithms/neighborhood.h"
#include "algorithms/pagerank.h"
#include "algorithms/runner.h"
#include "algorithms/semiclustering.h"
#include "algorithms/topk_ranking.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "graph/transforms.h"

namespace predict {
namespace {

bsp::EngineOptions FastEngine(uint32_t workers = 4) {
  bsp::EngineOptions options;
  options.num_workers = workers;
  options.num_threads = 0;
  options.cost_profile.noise_sigma = 0.0;
  options.cost_profile.setup_seconds = 0.0;
  options.cost_profile.read_bytes_per_second = 0.0;
  options.cost_profile.write_bytes_per_second = 0.0;
  return options;
}

// Reference PageRank: synchronous power iteration with the paper's §4.1
// formula and average-delta convergence.
std::pair<std::vector<double>, int> ReferencePageRank(const Graph& g, double d,
                                                      double tau,
                                                      int max_iters = 500) {
  const uint64_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  int iterations = 1;  // superstep 0 (initial sends) counts as the first
  for (int it = 1; it < max_iters; ++it) {
    ++iterations;
    std::fill(next.begin(), next.end(),
              (1.0 - d) / static_cast<double>(n));
    for (VertexId v = 0; v < n; ++v) {
      const uint64_t degree = g.out_degree(v);
      if (degree == 0) continue;
      const double share = d * rank[v] / static_cast<double>(degree);
      for (const VertexId u : g.out_neighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta / static_cast<double>(n) < tau) break;
  }
  return {rank, iterations};
}

// ---------------------------------------------------------------- PageRank

TEST(PageRankTest, MatchesReferenceOnScaleFreeGraph) {
  const Graph g = GeneratePreferentialAttachment({3000, 5, 0.3, 3}).MoveValue();
  const double tau = 1e-9;
  auto result = RunPageRank(g, {{"tau", tau}}, FastEngine());
  ASSERT_TRUE(result.ok());
  const auto [expected, expected_iters] = ReferencePageRank(g, 0.85, tau);
  ASSERT_EQ(result->ranks.size(), expected.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(result->ranks[v], expected[v], 1e-10);
  }
  EXPECT_EQ(result->stats.num_supersteps(), expected_iters);
}

TEST(PageRankTest, UniformRankOnCompleteGraph) {
  const Graph g = GenerateComplete(10).MoveValue();
  auto result = RunPageRank(g, {{"tau", 1e-12}}, FastEngine());
  ASSERT_TRUE(result.ok());
  for (const double r : result->ranks) EXPECT_NEAR(r, 0.1, 1e-9);
}

TEST(PageRankTest, RanksSumToOneWithoutDanglingVertices) {
  const Graph g = GeneratePreferentialAttachment({2000, 4, 0.5, 7}).MoveValue();
  // Preferential attachment leaves no dangling vertices, so no rank leaks.
  auto result = RunPageRank(g, {{"tau", 1e-12}}, FastEngine());
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const double r : result->ranks) total += r;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PageRankTest, HubOutranksSpokesInStar) {
  const Graph g = GenerateStar(20, /*bidirectional=*/true).MoveValue();
  auto result = RunPageRank(g, {{"tau", 1e-10}}, FastEngine());
  ASSERT_TRUE(result.ok());
  for (VertexId v = 1; v < 20; ++v) {
    EXPECT_GT(result->ranks[0], result->ranks[v]);
  }
}

TEST(PageRankTest, SmallerTauNeedsMoreIterations) {
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.3, 5}).MoveValue();
  auto coarse = RunPageRank(g, {{"tau", 1e-6}}, FastEngine());
  auto fine = RunPageRank(g, {{"tau", 1e-10}}, FastEngine());
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_LT(coarse->stats.num_supersteps(), fine->stats.num_supersteps());
}

TEST(PageRankTest, TauZeroRunsToMaxSupersteps) {
  const Graph g = GenerateComplete(5).MoveValue();
  bsp::EngineOptions engine = FastEngine();
  engine.max_supersteps = 7;
  auto result = RunPageRank(g, {{"tau", 0.0}}, engine);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_supersteps(), 7);
  EXPECT_EQ(result->stats.halt_reason, bsp::HaltReason::kMaxSupersteps);
}

TEST(PageRankTest, RejectsUnknownConfigKey) {
  const Graph g = GenerateComplete(5).MoveValue();
  EXPECT_TRUE(
      RunPageRank(g, {{"bogus", 1.0}}, FastEngine()).status().IsInvalidArgument());
}

TEST(PageRankTest, DeltaAggregateDecreasesMonotonicallyEventually) {
  const Graph g = GeneratePreferentialAttachment({2000, 5, 0.3, 5}).MoveValue();
  auto result = RunPageRank(g, {{"tau", 1e-10}}, FastEngine());
  ASSERT_TRUE(result.ok());
  const auto& steps = result->stats.supersteps;
  ASSERT_GE(steps.size(), 4u);
  // After mixing starts, the delta shrinks superstep over superstep.
  for (size_t s = 3; s < steps.size(); ++s) {
    EXPECT_LT(steps[s].aggregates.at(PageRankProgram::kDeltaAggregate),
              steps[s - 1].aggregates.at(PageRankProgram::kDeltaAggregate));
  }
}

// ---------------------------------------------------- connected components

TEST(ConnectedComponentsTest, MatchesUnionFind) {
  GraphBuilder b(12);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  b.AddEdge(5, 4);
  b.AddEdge(6, 7);
  b.AddEdge(8, 6);
  // 9, 10, 11 isolated.
  const Graph g = b.Build().MoveValue();
  auto result = RunConnectedComponents(g, FastEngine(3));
  ASSERT_TRUE(result.ok());
  const auto expected = WeaklyConnectedComponents(g);
  for (VertexId v = 0; v < 12; ++v) {
    for (VertexId u = 0; u < 12; ++u) {
      EXPECT_EQ(result->labels[v] == result->labels[u],
                expected[v] == expected[u])
          << "vertices " << v << "," << u;
    }
  }
}

TEST(ConnectedComponentsTest, LabelsAreComponentMinima) {
  GraphBuilder b(5);
  b.AddEdge(4, 2);
  b.AddEdge(2, 3);
  const Graph g = b.Build().MoveValue();
  auto result = RunConnectedComponents(g, FastEngine(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels[2], 2u);
  EXPECT_EQ(result->labels[3], 2u);
  EXPECT_EQ(result->labels[4], 2u);
  EXPECT_EQ(result->labels[0], 0u);
  EXPECT_EQ(result->labels[1], 1u);
}

TEST(ConnectedComponentsTest, ChainTakesDiameterSupersteps) {
  const Graph g = GenerateChain(20).MoveValue();
  auto result = RunConnectedComponents(g, FastEngine(2));
  ASSERT_TRUE(result.ok());
  // Label 0 must travel 19 hops.
  EXPECT_GE(result->stats.num_supersteps(), 19);
  for (const VertexId label : result->labels) EXPECT_EQ(label, 0u);
}

TEST(ConnectedComponentsTest, MessageCountDecaysAcrossSupersteps) {
  // The paper's "sparse computation" pattern: early supersteps move many
  // labels, late ones only a trickle. A long path maximizes the tail —
  // label 0 crawls one hop per superstep while everyone else is settled.
  const Graph g = GenerateChain(300).MoveValue();
  bsp::EngineOptions engine = FastEngine();
  engine.max_supersteps = 400;
  auto result = RunConnectedComponents(g, engine);
  ASSERT_TRUE(result.ok());
  const auto& steps = result->stats.supersteps;
  ASSERT_GE(steps.size(), 3u);
  // The first superstep floods every edge; the tail moves only the last
  // few label improvements.
  uint64_t smallest_nonzero = UINT64_MAX;
  for (size_t s = 1; s < steps.size(); ++s) {
    const uint64_t messages = steps[s].Totals().total_messages();
    if (messages > 0) smallest_nonzero = std::min(smallest_nonzero, messages);
  }
  const uint64_t first = steps[0].Totals().total_messages();
  ASSERT_NE(smallest_nonzero, UINT64_MAX);
  EXPECT_GT(first, 10 * smallest_nonzero);
}

// ----------------------------------------------------------- semiclustering

TEST(SemiClusteringTest, ScoreFormula) {
  SemiCluster c;
  c.members = {1, 2, 3};
  c.internal_weight = 3.0;  // triangle
  c.boundary_weight = 2.0;
  // S = (3 - 0.1*2) / (3*2/2) = 2.8 / 3.
  EXPECT_NEAR(c.Score(0.1), 2.8 / 3.0, 1e-12);
}

TEST(SemiClusteringTest, SingletonScoreUsesDenominatorOne) {
  SemiCluster c;
  c.members = {4};
  c.internal_weight = 0.0;
  c.boundary_weight = 5.0;
  EXPECT_NEAR(c.Score(0.2), -1.0, 1e-12);
}

TEST(SemiClusteringTest, ContainsVertexUsesBinarySearch) {
  SemiCluster c;
  c.members = {2, 5, 9};
  EXPECT_TRUE(c.ContainsVertex(5));
  EXPECT_FALSE(c.ContainsVertex(4));
}

TEST(SemiClusteringTest, FindsCliqueOnCliquePlusBridge) {
  // Two 4-cliques joined by one bridge edge. With f_b small, each clique
  // is the best semi-cluster for its members.
  GraphBuilder b(8);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) b.AddUndirectedEdge(i, j);
  }
  for (VertexId i = 4; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) b.AddUndirectedEdge(i, j);
  }
  b.AddUndirectedEdge(3, 4);  // bridge
  const Graph g = b.Build().MoveValue();
  AlgorithmConfig config = {{"v_max", 4}, {"f_b", 0.05}, {"tau", 0.0001}};
  auto result = RunSemiClustering(g, config, FastEngine(3));
  ASSERT_TRUE(result.ok());
  // Vertex 0's best cluster should be exactly clique {0,1,2,3}.
  const auto& clusters = result->clusters[0].clusters;
  ASSERT_FALSE(clusters.empty());
  EXPECT_EQ(clusters[0].members, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(SemiClusteringTest, ClusterSizeBoundedByVmax) {
  const Graph g = GenerateComplete(12).MoveValue();
  AlgorithmConfig config = {{"v_max", 3}, {"tau", 0.001}};
  auto result = RunSemiClustering(g, config, FastEngine(3));
  ASSERT_TRUE(result.ok());
  for (const SemiClusterValue& value : result->clusters) {
    for (const SemiCluster& cluster : value.clusters) {
      EXPECT_LE(cluster.members.size(), 3u);
    }
  }
}

TEST(SemiClusteringTest, EveryVertexKeepsAtMostCmaxClustersContainingIt) {
  const Graph g = GeneratePreferentialAttachment({500, 4, 0.4, 2}).MoveValue();
  AlgorithmConfig config = {{"c_max", 2}, {"tau", 0.01}};
  auto result = RunSemiClustering(g, config, FastEngine(3));
  ASSERT_TRUE(result.ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& clusters = result->clusters[v].clusters;
    EXPECT_LE(clusters.size(), 2u);
    for (const SemiCluster& cluster : clusters) {
      EXPECT_TRUE(cluster.ContainsVertex(v));
    }
  }
}

TEST(SemiClusteringTest, MessageBytesGrowWithClusterSize) {
  SemiClusteringProgram program(
      ResolveConfig(SemiClusteringSpec(), {}).MoveValue());
  SemiCluster small, large;
  small.members = {1};
  large.members = {1, 2, 3, 4, 5};
  SemiClusterMessage small_msg{
      std::make_shared<const std::vector<SemiCluster>>(1, small)};
  SemiClusterMessage large_msg{
      std::make_shared<const std::vector<SemiCluster>>(1, large)};
  EXPECT_GT(program.MessageBytes(large_msg), program.MessageBytes(small_msg));
}

TEST(SemiClusteringTest, DeterministicAcrossRuns) {
  const Graph g = GeneratePreferentialAttachment({800, 4, 0.4, 6}).MoveValue();
  auto a = RunSemiClustering(g, {}, FastEngine(3));
  auto b = RunSemiClustering(g, {}, FastEngine(3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->stats.num_supersteps(), b->stats.num_supersteps());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(a->clusters[v].clusters.size(), b->clusters[v].clusters.size());
    for (size_t i = 0; i < a->clusters[v].clusters.size(); ++i) {
      EXPECT_EQ(a->clusters[v].clusters[i].members,
                b->clusters[v].clusters[i].members);
    }
  }
}

// ------------------------------------------------------------------ top-k

// Brute force: for every vertex, the k largest ranks among vertices that
// can reach it (including itself).
std::vector<std::vector<double>> BruteForceTopK(const Graph& g,
                                                const std::vector<double>& ranks,
                                                size_t k) {
  const uint64_t n = g.num_vertices();
  std::vector<std::vector<double>> result(n);
  for (VertexId src = 0; src < n; ++src) {
    // BFS forward: src's rank reaches everything reachable from src.
    std::vector<bool> visited(n, false);
    std::queue<VertexId> queue;
    queue.push(src);
    visited[src] = true;
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop();
      result[v].push_back(ranks[src]);
      for (const VertexId u : g.out_neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          queue.push(u);
        }
      }
    }
  }
  for (auto& list : result) {
    std::sort(list.begin(), list.end(), std::greater<double>());
    if (list.size() > k) list.resize(k);
  }
  return result;
}

TEST(TopKTest, MatchesBruteForceOnSmallGraph) {
  const Graph g = GeneratePreferentialAttachment({200, 3, 0.3, 4}).MoveValue();
  // Distinct ranks so comparisons are unambiguous.
  std::vector<double> ranks(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ranks[v] = 1.0 + static_cast<double>(v) * 0.001;
  }
  const size_t k = 5;
  AlgorithmConfig config = {{"k", static_cast<double>(k)}, {"tau", 0.0}};
  bsp::EngineOptions engine = FastEngine(3);
  engine.max_supersteps = 300;
  auto result = RunTopKRanking(g, config, engine, ranks);
  ASSERT_TRUE(result.ok());
  const auto expected = BruteForceTopK(g, ranks, k);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& list = result->lists[v].entries;
    ASSERT_EQ(list.size(), expected[v].size()) << "vertex " << v;
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_DOUBLE_EQ(list[i].rank, expected[v][i]) << "vertex " << v;
    }
  }
}

TEST(TopKTest, ListsSortedDescendingAndBounded) {
  const Graph g = GeneratePreferentialAttachment({1000, 4, 0.3, 5}).MoveValue();
  auto result = RunTopKRanking(g, {{"k", 3.0}}, FastEngine());
  ASSERT_TRUE(result.ok());
  for (const TopKValue& value : result->lists) {
    EXPECT_LE(value.entries.size(), 3u);
    for (size_t i = 1; i < value.entries.size(); ++i) {
      EXPECT_GE(value.entries[i - 1].rank, value.entries[i].rank);
    }
  }
}

TEST(TopKTest, OriginsAreUnique) {
  const Graph g = GeneratePreferentialAttachment({500, 4, 0.3, 6}).MoveValue();
  auto result = RunTopKRanking(g, {{"k", 5.0}}, FastEngine());
  ASSERT_TRUE(result.ok());
  for (const TopKValue& value : result->lists) {
    std::set<VertexId> origins;
    for (const RankEntry& entry : value.entries) {
      EXPECT_TRUE(origins.insert(entry.origin).second);
    }
  }
}

TEST(TopKTest, ComputesRanksWhenNotProvided) {
  const Graph g = GeneratePreferentialAttachment({500, 4, 0.3, 7}).MoveValue();
  auto result = RunTopKRanking(g, {}, FastEngine());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.num_supersteps(), 1);
}

TEST(TopKTest, RejectsWrongRankVectorSize) {
  const Graph g = GenerateComplete(5).MoveValue();
  EXPECT_TRUE(RunTopKRanking(g, {}, FastEngine(), {1.0, 2.0})
                  .status()
                  .IsInvalidArgument());
}

TEST(TopKTest, MessageCountDecaysAcrossSupersteps) {
  const Graph g = GeneratePreferentialAttachment({3000, 5, 0.3, 8}).MoveValue();
  auto result = RunTopKRanking(g, {{"tau", 0.001}}, FastEngine());
  ASSERT_TRUE(result.ok());
  const auto& steps = result->stats.supersteps;
  ASSERT_GE(steps.size(), 3u);
  EXPECT_GT(steps[0].Totals().total_messages(),
            steps.back().Totals().total_messages());
}

// ------------------------------------------------------------ neighborhood

TEST(NeighborhoodTest, EstimatesWithinToleranceOnSmallGraph) {
  const Graph g = GeneratePreferentialAttachment({400, 4, 0.5, 3}).MoveValue();
  auto result = RunNeighborhoodEstimation(g, {{"tau", 0.0}}, FastEngine());
  ASSERT_TRUE(result.ok());
  // The graph is connected and undirected for NH, so every vertex
  // eventually reaches all 400. FM with 16 registers: ~25% typical error.
  double mean_estimate = 0.0;
  for (const double estimate : result->neighborhood_sizes) {
    mean_estimate += estimate;
  }
  mean_estimate /= static_cast<double>(result->neighborhood_sizes.size());
  EXPECT_NEAR(mean_estimate, 400.0, 160.0);
}

TEST(NeighborhoodTest, EstimateCardinalityMonotonicInSketchBits) {
  NeighborhoodValue sparse, dense;
  for (size_t r = 0; r < kNeighborhoodRegisters; ++r) {
    sparse.sketch[r] = 0b1;      // lowest zero at 1
    dense.sketch[r] = 0b111111;  // lowest zero at 6
  }
  EXPECT_GT(EstimateCardinality(dense), EstimateCardinality(sparse));
}

TEST(NeighborhoodTest, ConvergesOnChainSlowly) {
  const Graph g = GenerateChain(30).MoveValue();
  auto result = RunNeighborhoodEstimation(g, {{"tau", 0.0}}, FastEngine(2));
  ASSERT_TRUE(result.ok());
  // Sketches must propagate along the chain: at least ~diameter supersteps.
  EXPECT_GE(result->stats.num_supersteps(), 15);
}

TEST(NeighborhoodTest, HigherTauStopsEarlier) {
  const Graph g = GeneratePreferentialAttachment({2000, 4, 0.3, 9}).MoveValue();
  auto strict = RunNeighborhoodEstimation(g, {{"tau", 0.0001}}, FastEngine());
  auto loose = RunNeighborhoodEstimation(g, {{"tau", 0.2}}, FastEngine());
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(loose->stats.num_supersteps(), strict->stats.num_supersteps());
}

// ----------------------------------------------------------------- runner

TEST(RunnerTest, AllBuiltinsRegistered) {
  const auto names = RegisteredAlgorithmNames();
  for (const char* expected :
       {"pagerank", "semiclustering", "topk_ranking", "connected_components",
        "neighborhood"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(RunnerTest, UnknownAlgorithmIsNotFound) {
  EXPECT_TRUE(FindAlgorithmSpec("kmeans").status().IsNotFound());
  const Graph g = GenerateComplete(4).MoveValue();
  RunOptions options;
  EXPECT_TRUE(RunAlgorithmByName("kmeans", g, options).status().IsNotFound());
}

TEST(RunnerTest, SpecsDeclareConvergenceKinds) {
  EXPECT_EQ(FindAlgorithmSpec("pagerank")->convergence,
            ConvergenceKind::kAbsoluteAggregate);
  EXPECT_EQ(FindAlgorithmSpec("semiclustering")->convergence,
            ConvergenceKind::kRelativeRatio);
  EXPECT_EQ(FindAlgorithmSpec("topk_ranking")->convergence,
            ConvergenceKind::kRelativeRatio);
  EXPECT_EQ(FindAlgorithmSpec("connected_components")->convergence,
            ConvergenceKind::kFixedPoint);
  EXPECT_EQ(FindAlgorithmSpec("neighborhood")->convergence,
            ConvergenceKind::kRelativeRatio);
}

TEST(RunnerTest, RunsPageRankAndReturnsRanks) {
  const Graph g = GenerateComplete(6).MoveValue();
  RunOptions options;
  options.engine = FastEngine(2);
  options.config_overrides = {{"tau", 1e-10}};
  auto result = RunAlgorithmByName("pagerank", g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ranks.size(), 6u);
  EXPECT_GT(result->stats.num_supersteps(), 0);
}

TEST(RunnerTest, ConnectedComponentsRejectsConfig) {
  const Graph g = GenerateComplete(4).MoveValue();
  RunOptions options;
  options.engine = FastEngine(2);
  options.config_overrides = {{"tau", 0.1}};
  EXPECT_TRUE(RunAlgorithmByName("connected_components", g, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(RunnerTest, RegisterCustomAlgorithm) {
  AlgorithmSpec spec;
  spec.name = "custom_noop_for_test";
  spec.convergence = ConvergenceKind::kFixedPoint;
  ASSERT_TRUE(RegisterAlgorithm(spec,
                                [](const Graph&, const RunOptions&)
                                    -> Result<AlgorithmRunResult> {
                                  AlgorithmRunResult result;
                                  result.stats.total_seconds = 1.0;
                                  return result;
                                })
                  .ok());
  EXPECT_TRUE(FindAlgorithmSpec("custom_noop_for_test").ok());
  // Double registration fails.
  EXPECT_TRUE(RegisterAlgorithm(spec, nullptr).IsAlreadyExists());
  // Empty name fails.
  EXPECT_TRUE(RegisterAlgorithm(AlgorithmSpec{}, nullptr).IsInvalidArgument());
}

TEST(RunnerTest, ResolveConfigMergesAndValidates) {
  const AlgorithmSpec& spec = SemiClusteringSpec();
  auto merged = ResolveConfig(spec, {{"v_max", 5.0}});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->at("v_max"), 5.0);
  EXPECT_DOUBLE_EQ(merged->at("f_b"), 0.1);  // default untouched
  EXPECT_TRUE(ResolveConfig(spec, {{"nope", 1.0}}).status().IsInvalidArgument());
}

TEST(RunnerTest, GetConfigValue) {
  const AlgorithmConfig config = {{"tau", 0.5}};
  EXPECT_DOUBLE_EQ(GetConfigValue(config, "tau").value(), 0.5);
  EXPECT_TRUE(GetConfigValue(config, "missing").status().IsNotFound());
}

TEST(RunnerTest, ConvergenceKindNames) {
  EXPECT_STREQ(ConvergenceKindName(ConvergenceKind::kAbsoluteAggregate),
               "absolute_aggregate");
  EXPECT_STREQ(ConvergenceKindName(ConvergenceKind::kRelativeRatio),
               "relative_ratio");
  EXPECT_STREQ(ConvergenceKindName(ConvergenceKind::kFixedPoint),
               "fixed_point");
}

}  // namespace
}  // namespace predict
